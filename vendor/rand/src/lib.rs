//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this workspace has no network access, so the
//! handful of `rand` 0.8 APIs the MTO-Sampler reproduction uses are
//! implemented here verbatim-compatible: [`Rng`], [`RngCore`],
//! [`SeedableRng`], [`rngs::StdRng`] (a deterministic xoshiro256**), the
//! [`seq::SliceRandom`] slice helpers, and uniform range sampling for the
//! primitive integer and float types.
//!
//! Determinism is the only contract callers rely on: every generator is
//! seeded explicitly via [`SeedableRng::seed_from_u64`], and identical
//! seeds produce identical streams across runs and platforms.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (the high bits of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A distribution that can produce values of type `T` from an RNG.
pub trait Distribution<T> {
    /// Samples one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "standard" distribution: uniform over a type's natural domain
/// (`[0, 1)` for floats, the full range for integers, fair coin for bool).
pub struct Standard;

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53 high-quality mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // The top bit of a xoshiro output is its strongest.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Distribution<$t> for Standard {
            fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Distribution<u128> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u128 {
        (rng.next_u64() as u128) << 64 | rng.next_u64() as u128
    }
}

/// Types that support uniform sampling from a half-open or closed range.
pub trait SampleUniform: Sized {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_range<R: RngCore + ?Sized>(lo: Self, hi: Self, inclusive: bool, rng: &mut R) -> Self;
}

/// Widening-multiply map of a raw `u64` onto `[0, span)`; `span = 0` means
/// the full 2^64 range.
#[inline]
fn map_u64<R: RngCore + ?Sized>(span: u64, rng: &mut R) -> u64 {
    let raw = rng.next_u64();
    if span == 0 {
        raw
    } else {
        ((raw as u128 * span as u128) >> 64) as u64
    }
}

macro_rules! uniform_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                    // Span of hi - lo + 1; wraps to 0 for the full domain,
                    // which map_u64 treats as "no reduction".
                    let span =
                        ((hi as $unsigned).wrapping_sub(lo as $unsigned) as u64).wrapping_add(1);
                    lo.wrapping_add(map_u64(span, rng) as $t)
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                    let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                    lo.wrapping_add(map_u64(span, rng) as $t)
                }
            }
        }
    )*};
}
uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                if inclusive {
                    assert!(lo <= hi, "cannot sample from empty range");
                } else {
                    assert!(lo < hi, "cannot sample from empty range");
                }
                let unit: f64 = Standard.sample(rng);
                let v = lo as f64 + (hi as f64 - lo as f64) * unit;
                // Half-open semantics: never emit `hi` itself.
                if !inclusive && v as $t >= hi {
                    lo
                } else {
                    v as $t
                }
            }
        }
    )*};
}
uniform_float!(f32, f64);

/// Range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_range(lo, hi, true, rng)
    }
}

/// High-level convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples a value from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S>(&mut self, range: S) -> T
    where
        T: SampleUniform,
        S: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        let unit: f64 = Standard.sample(self);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 exactly
    /// like `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 step.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256**.
    ///
    /// (Upstream `rand` uses ChaCha12 here; for this reproduction only
    /// determinism and statistical quality matter, not crypto strength.)
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for slices: random element choice and shuffling.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Returns one uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

/// The most common imports, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = rng.gen_range(5u32..17);
            assert!((5..17).contains(&v));
            let w = rng.gen_range(0usize..=3);
            assert!(w <= 3);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_mean_is_reasonable() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 100_000;
        let sum: u64 = (0..n).map(|_| rng.gen_range(0u64..10) as u64).sum();
        let mean = sum as f64 / n as f64;
        assert!((mean - 4.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(13);
        let v = [1u8, 2, 3];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 3);
    }

    #[test]
    fn gen_bool_probability() {
        let mut rng = StdRng::seed_from_u64(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }
}
