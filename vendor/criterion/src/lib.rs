//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access, so this crate implements
//! the subset of the criterion 0.5 API the workspace's bench targets use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup`] configuration
//! (`sample_size`, `measurement_time`, `throughput`), `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`Throughput`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up once,
//! then timed over `min(sample_size, 25)` iterations (capped by the
//! group's measurement time), reporting mean ns/iter to stdout. That is
//! enough for coarse regression tracking without criterion's statistics.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One finished measurement, mirrored into the process-wide registry.
///
/// Real criterion persists estimates under `target/criterion/`; this
/// shim instead lets a bench binary drain the estimates after its groups
/// ran and serialize them wherever it wants (the workspace commits them
/// as `BENCH_*.json` perf ledgers).
#[derive(Clone, Debug)]
pub struct Estimate {
    /// Full `group/benchmark` id.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Number of timed iterations behind the mean.
    pub iters: u64,
}

static ESTIMATES: std::sync::Mutex<Vec<Estimate>> = std::sync::Mutex::new(Vec::new());

/// Drains every estimate recorded by `bench_function` so far, in run
/// order.
pub fn drain_estimates() -> Vec<Estimate> {
    std::mem::take(&mut ESTIMATES.lock().expect("estimate registry poisoned"))
}

/// Whether the binary was invoked with `--quick`: a smoke-test mode that
/// caps each benchmark at a handful of iterations so CI can verify the
/// harness end-to-end without paying for stable measurements.
fn quick_mode() -> bool {
    std::env::args().any(|a| a == "--quick")
}

/// Work-unit annotation for throughput reporting.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier (`function_name/parameter`).
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { name: format!("{}/{}", function_name.into(), parameter) }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

/// Anything usable as a benchmark id: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered id.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.name
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iters: u64,
    budget: Duration,
    elapsed: Duration,
    performed: u64,
}

impl Bencher {
    /// Times `routine`, running it repeatedly.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up (also primes lazy statics and caches).
        black_box(routine());
        let start = Instant::now();
        let mut performed = 0u64;
        for _ in 0..self.iters {
            black_box(routine());
            performed += 1;
            if start.elapsed() > self.budget {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.performed = performed.max(1);
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    measurement_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of timed iterations.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Caps the wall-clock time spent measuring each benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Records the per-iteration work unit (accepted, not reported).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<I, F>(&mut self, id: I, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        let id = id.into_id();
        let (iters, budget) = if quick_mode() {
            (self.sample_size.min(3), self.measurement_time.min(Duration::from_millis(200)))
        } else {
            (self.sample_size.min(25), self.measurement_time)
        };
        let mut b = Bencher { iters, budget, elapsed: Duration::ZERO, performed: 0 };
        f(&mut b);
        let ns = b.elapsed.as_nanos() as f64 / b.performed as f64;
        println!("bench {}/{id} ... {ns:.0} ns/iter ({} iters)", self.name, b.performed);
        ESTIMATES
            .lock()
            .expect("estimate registry poisoned")
            .push(Estimate { id: format!("{}/{id}", self.name), ns_per_iter: ns, iters: b.performed });
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        T: ?Sized,
        F: FnMut(&mut Bencher, &T),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Entry point handed to each bench function.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group(id).bench_function("default", f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Generated benchmark group entry point.
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs each group, mirroring criterion's
/// macro. Ignores harness CLI flags (`--bench`, filters) so that both
/// `cargo bench` and direct invocation work.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` may invoke bench binaries with `--test`; a test
            // pass must not pay for a full measurement run.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("unit");
        g.sample_size(5).measurement_time(Duration::from_millis(50));
        g.throughput(Throughput::Elements(10));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::new("sum-to", 50u64), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.finish();
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion::default();
        sample_bench(&mut c);
    }
}
