//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, backed by `std::sync` primitives.
//!
//! The build environment has no network access, so this crate provides the
//! small slice of the `parking_lot` 0.12 API the workspace uses — a
//! [`Mutex`] and [`RwLock`] whose lock methods return guards directly
//! (no `Result`; poisoning is absorbed, matching `parking_lot` semantics
//! where a panicking holder never poisons the lock).

#![warn(missing_docs)]

use std::sync::{Mutex as StdMutex, MutexGuard as StdMutexGuard};
use std::sync::{RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with `parking_lot`'s panic-tolerant API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = StdMutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(StdMutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never panics on a
    /// poisoned lock — the poison flag is ignored, as in `parking_lot`.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: the `&mut` receiver proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader–writer lock with `parking_lot`'s panic-tolerant API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(StdRwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Returns a mutable reference to the underlying data.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn lock_survives_a_panicked_holder() {
        let m = Arc::new(Mutex::new(0));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: still lockable afterwards.
        assert_eq!(*m.lock(), 0);
    }
}
