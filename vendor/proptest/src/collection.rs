//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A half-open range of collection sizes.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let (lo, hi) = r.into_inner();
        assert!(lo <= hi, "empty size range");
        SizeRange { lo, hi: hi + 1 }
    }
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact + 1 }
    }
}

/// Strategy producing `Vec`s whose elements come from `element`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64;
        let len = self.size.lo + rng.below(span.max(1)) as usize;
        (0..len).map(|_| self.element.new_value(rng)).collect()
    }
}

/// Generates vectors with lengths in `size`, elements from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}
