//! Configuration, RNG, and the case-execution loop.

use crate::strategy::Strategy;

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property case.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail<S: Into<String>>(message: S) -> Self {
        TestCaseError(message.into())
    }

    /// The failure message.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Result of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generator strategies sample from (xorshift64*).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator; a zero seed is remapped to a fixed constant.
    pub fn new(seed: u64) -> Self {
        TestRng { state: if seed == 0 { 0x9E37_79B9_7F4A_7C15 } else { seed } }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        // xorshift64* — tiny, full-period, plenty for test-case generation.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `[0, span)`; `span` must be nonzero.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        ((self.next_u64() as u128 * span as u128) >> 64) as u64
    }

    /// Uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runs a strategy against a property closure for the configured number of
/// cases, panicking (like a failed `assert!`) on the first failing case.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
}

/// Base seed shared by every runner; the per-test name hash and case index
/// decorrelate the streams. Fixed so failures reproduce without state.
const BASE_SEED: u64 = 0xB5AD_4ECE_DA1C_E2A9;

impl TestRunner {
    /// Creates a runner for the named property.
    pub fn new(config: ProptestConfig, name: &'static str) -> Self {
        TestRunner { config, name }
    }

    /// Executes the property over `config.cases` generated inputs.
    pub fn run<S, F>(&mut self, strategy: &S, mut test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        // FNV-1a over the test name, mixed into the base seed.
        let mut name_hash = 0xcbf2_9ce4_8422_2325u64;
        for b in self.name.bytes() {
            name_hash = (name_hash ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        for case in 0..self.config.cases as u64 {
            let mut rng =
                TestRng::new(BASE_SEED ^ name_hash ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let value = strategy.new_value(&mut rng);
            let rendered = format!("{value:?}");
            if let Err(e) = test(value) {
                panic!(
                    "proptest property `{}` failed at case #{case}:\n  {}\n  input: {}",
                    self.name,
                    e.message(),
                    rendered
                );
            }
        }
    }
}
