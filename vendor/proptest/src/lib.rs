//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing framework.
//!
//! The build environment has no network access, so this crate implements
//! the subset of the proptest 1.x API the workspace's property suites use:
//! the [`proptest!`] macro (with an optional `#![proptest_config(..)]`
//! header), [`Strategy`] with `prop_map` / `prop_filter_map`, range and
//! tuple strategies, [`collection::vec`], `any::<T>()`, and the
//! `prop_assert!` family.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! * **No shrinking.** A failing case reports the generated inputs via
//!   `Debug` but does not minimize them.
//! * **Deterministic seeding.** Case `i` of every test derives its RNG
//!   from a fixed base seed xor the case index, so failures reproduce
//!   exactly across runs without a persistence file.

#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports: strategies, config, assertions, and the macro.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests. Mirrors proptest's macro surface:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u32..100, flip in any::<bool>()) {
///         prop_assert!(x < 100 || flip);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                let strategy = ($($strategy,)+);
                runner.run(&strategy, |($($arg,)+)| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` ({})\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` ({})\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l
        );
    }};
}
