//! `any::<T>()` — canonical whole-domain strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Whole-domain strategy for a primitive type.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_prim {
    ($($t:ty => |$rng:ident| $sample:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn new_value(&self, $rng: &mut TestRng) -> $t {
                $sample
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_prim!(
    bool => |rng| rng.next_u64() >> 63 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
    f64 => |rng| rng.unit_f64(),
    f32 => |rng| rng.unit_f64() as f32,
);
