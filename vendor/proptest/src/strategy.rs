//! The [`Strategy`] trait and its combinators.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Maps generated values through a partial function, retrying (up to an
    /// internal bound) whenever `f` returns `None`.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Option<O>,
    {
        FilterMap { base: self, f, reason }
    }

    /// Boxes the strategy, erasing its concrete type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.new_value(rng)
    }
}

/// Always yields a clone of the same value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.new_value(rng))
    }
}

/// See [`Strategy::prop_filter_map`].
pub struct FilterMap<S, F> {
    base: S,
    f: F,
    reason: &'static str,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Option<O>,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        for _ in 0..10_000 {
            if let Some(v) = (self.f)(self.base.new_value(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 10000 consecutive candidates: {}", self.reason)
    }
}

/// Primitive types that can be drawn uniformly from a range strategy.
pub trait RangeSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self;
}

macro_rules! range_sample_int {
    ($($t:ty => $unsigned:ty),*) => {$(
        impl RangeSample for $t {
            fn half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range strategy");
                let span = (hi as $unsigned).wrapping_sub(lo as $unsigned) as u64;
                lo.wrapping_add(rng.below(span) as $t)
            }

            fn closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range strategy");
                let span =
                    ((hi as $unsigned).wrapping_sub(lo as $unsigned) as u64).wrapping_add(1);
                if span == 0 {
                    // Full 2^64 domain.
                    rng.next_u64() as $t
                } else {
                    lo.wrapping_add(rng.below(span) as $t)
                }
            }
        }
    )*};
}
range_sample_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! range_sample_float {
    ($($t:ty),*) => {$(
        impl RangeSample for $t {
            fn half_open(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo < hi, "empty range strategy");
                let v = lo as f64 + (hi as f64 - lo as f64) * rng.unit_f64();
                if v as $t >= hi { lo } else { v as $t }
            }

            fn closed(lo: Self, hi: Self, rng: &mut TestRng) -> Self {
                assert!(lo <= hi, "empty range strategy");
                (lo as f64 + (hi as f64 - lo as f64) * rng.unit_f64()) as $t
            }
        }
    )*};
}
range_sample_float!(f32, f64);

impl<T: RangeSample> Strategy for Range<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::half_open(self.start, self.end, rng)
    }
}

impl<T: RangeSample> Strategy for RangeInclusive<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::closed(*self.start(), *self.end(), rng)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
