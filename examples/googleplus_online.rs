//! Sampling a "live" rate-limited social network.
//!
//! The paper's Google Plus study ran against the real (long retired)
//! Social Graph API under per-day quotas. This example reproduces the
//! setting: a large simulated network behind a token-bucket rate limiter
//! with a virtual clock, so we can report what a sampling campaign would
//! cost in *wall-clock days* against the live service — the number that
//! actually matters to a third party.
//!
//! ```text
//! cargo run --release --example googleplus_online
//! ```

use mto_sampler::core::estimate::ImportanceEstimator;
use mto_sampler::core::mto::{MtoConfig, MtoSampler};
use mto_sampler::core::walk::{SimpleRandomWalk, SrwConfig, Walker};
use mto_sampler::experiments::datasets::{build_dataset, DatasetSpec};
use mto_sampler::graph::NodeId;
use mto_sampler::osn::{CachedClient, OsnService, RateLimitPolicy, RateLimitedInterface};

fn main() {
    // 1/30-scale Google-Plus stand-in (≈8k users). Scale 1 = 240k users,
    // matching what the paper's crawl touched.
    let spec = DatasetSpec::google_plus().scaled_down(30);
    println!("building {} stand-in…", spec.name);
    let graph = build_dataset(&spec);
    println!("{} users, {} connections\n", graph.num_nodes(), graph.num_edges());

    let steps = 6_000;
    let burn_in = 1_500;

    // --- SRW through the rate-limited interface -------------------------
    let limited = RateLimitedInterface::new(
        OsnService::with_defaults(&graph),
        RateLimitPolicy::google_plus(),
    );
    let mut srw = SimpleRandomWalk::new(
        CachedClient::new(limited),
        NodeId(0),
        SrwConfig { seed: 7, lazy: false },
    )
    .expect("start node exists");
    let mut srw_estimate = ImportanceEstimator::new();
    for step in 0..steps {
        let v = srw.step().expect("rate limiter stalls instead of failing");
        if step < burn_in {
            continue;
        }
        let w = srw.importance_weight(v).expect("cached");
        // f(v) = degree; the walker just queried v so this is free info.
        let deg = 1.0 / w;
        srw_estimate.push(deg, w);
    }
    let srw_days = srw.client().inner().virtual_now() / 86_400.0;
    println!(
        "SRW : est. avg degree {:>7.3} | {:>6} unique queries | {:>5.2} virtual days ({} stalls)",
        srw_estimate.estimate().unwrap_or(f64::NAN),
        srw.query_cost(),
        srw_days,
        srw.client().inner().stalls(),
    );

    // --- MTO through an identical interface -----------------------------
    let limited = RateLimitedInterface::new(
        OsnService::with_defaults(&graph),
        RateLimitPolicy::google_plus(),
    );
    let mut mto = MtoSampler::new(
        CachedClient::new(limited),
        NodeId(0),
        MtoConfig { seed: 7, ..Default::default() },
    )
    .expect("start node exists");
    // Collect visits first; weight retrospectively against the *final*
    // overlay (see DESIGN.md §5 — cuts the reweighting bias severalfold).
    let mut visits = Vec::with_capacity(steps);
    for step in 0..steps {
        let v = mto.step().expect("rate limiter stalls instead of failing");
        if step >= burn_in {
            visits.push(v);
        }
    }
    let mut mto_estimate = ImportanceEstimator::new();
    let mut weight_of = std::collections::HashMap::new();
    for v in visits {
        let w = *weight_of.entry(v).or_insert_with(|| mto.importance_weight(v).expect("cached"));
        let deg = mto.client().inner().inner().ground_truth().degree(v) as f64;
        mto_estimate.push(deg, w);
    }
    let mto_days = mto.client().inner().virtual_now() / 86_400.0;
    println!(
        "MTO : est. avg degree {:>7.3} | {:>6} unique queries | {:>5.2} virtual days ({} removals)",
        mto_estimate.estimate().unwrap_or(f64::NAN),
        mto.query_cost(),
        mto_days,
        mto.stats().removals,
    );

    let truth = 2.0 * graph.num_edges() as f64 / graph.num_nodes() as f64;
    println!("\ntrue average degree: {truth:.3}");
    println!(
        "(the virtual clock shows what the same campaign would cost against the \
         \n live API's {}-requests-per-day quota)",
        RateLimitPolicy::google_plus().burst
    );
}
