//! Quickstart: rewire the paper's barbell graph and watch the mixing
//! bottleneck dissolve.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mto_sampler::core::mto::{MtoConfig, MtoSampler};
use mto_sampler::core::walk::Walker;
use mto_sampler::graph::generators::paper_barbell;
use mto_sampler::graph::NodeId;
use mto_sampler::osn::{CachedClient, OsnService};
use mto_sampler::spectral::conductance::exact_conductance;
use mto_sampler::spectral::mixing::mixing_bound_log10_coefficient;

fn main() {
    // The running example of the paper: two 11-cliques joined by a single
    // bridge. 22 nodes, 111 edges, conductance 1/56 — a terrible graph for
    // random walks.
    let graph = paper_barbell();
    let phi_before = exact_conductance(&graph).phi;
    println!("original graph: {} nodes, {} edges", graph.num_nodes(), graph.num_edges());
    println!("conductance Φ(G)        = {phi_before:.4}  (paper: 0.018)");

    // Put it behind the restrictive per-user interface and walk it with
    // the MTO-Sampler.
    let service = OsnService::with_defaults(&graph);
    let mut sampler = MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default())
        .expect("start node exists");

    for _ in 0..20_000 {
        sampler.step().expect("simulated interface cannot fail");
    }

    let stats = sampler.stats();
    println!(
        "\nafter 20k steps: {} removals, {} replacements, {} unique queries",
        stats.removals,
        stats.replacements,
        sampler.query_cost()
    );

    // Materialize the overlay the walk effectively followed and compare.
    let overlay = sampler.overlay().materialize(&graph);
    let phi_after = exact_conductance(&overlay).phi;
    println!("overlay graph:  {} nodes, {} edges", overlay.num_nodes(), overlay.num_edges());
    println!("conductance Φ(G**)      = {phi_after:.4}  (paper: 0.105)");

    let coeff = mixing_bound_log10_coefficient;
    let reduction = coeff(phi_after) / coeff(phi_before);
    println!("mixing-time bound drops to {:.1}% of the original (paper: ~3%)", 100.0 * reduction);
    assert!(phi_after > phi_before, "rewiring must raise conductance");
}
