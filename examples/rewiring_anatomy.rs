//! Anatomy of a rewiring: watch Theorems 3, 4 and 5 fire on real
//! neighborhoods.
//!
//! Walks a community-structured graph step by step and prints every
//! overlay modification with the criterion values that justified it —
//! useful to build intuition for *why* the removals concentrate inside
//! dense communities and the replacements bridge them.
//!
//! ```text
//! cargo run --release --example rewiring_anatomy
//! ```

use mto_sampler::core::mto::{CriterionView, MtoConfig, MtoSampler, OverlayDegreeMode};
use mto_sampler::core::rewire::removal_criterion;
use mto_sampler::core::walk::Walker;
use mto_sampler::graph::generators::{paper_barbell, planted_partition_graph};
use mto_sampler::graph::NodeId;
use mto_sampler::osn::{CachedClient, OsnService};
use mto_sampler::spectral::conductance::exact_conductance;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Part 1: the criterion by hand, on the barbell ----------------------
    let g = paper_barbell();
    println!("== Theorem 3 by hand, on the barbell ==");
    for (u, v) in [(NodeId(1), NodeId(2)), (NodeId(0), NodeId(11))] {
        let common = g.common_neighbor_count(u, v);
        let (ku, kv) = (g.degree(u), g.degree(v));
        let fires = removal_criterion(common, ku, kv);
        println!(
            "edge ({u}, {v}): |N(u)∩N(v)| = {common}, k = ({ku}, {kv}) → \
             ⌈{common}/2⌉+1 = {} vs max/2 = {:.1} → {}",
            common.div_ceil(2) + 1,
            ku.max(kv) as f64 / 2.0,
            if fires { "REMOVABLE" } else { "keep (potentially cross-cutting)" }
        );
    }

    // Part 2: a live trace on a two-community graph ----------------------
    // Near-clique blocks: Theorem 3 needs |N(u)∩N(v)| ≳ max(k)−2, so the
    // communities must be dense for removals to fire.
    println!("\n== Live rewiring trace (two planted communities) ==");
    let mut rng = StdRng::seed_from_u64(5);
    let g = planted_partition_graph(12, 0.95, 0.03, &mut rng);
    let g = mto_sampler::graph::algo::largest_component(&g).0;
    let phi0 = if g.num_nodes() <= 26 { exact_conductance(&g).phi } else { f64::NAN };
    println!("graph: {} nodes, {} edges, Φ = {phi0:.4}", g.num_nodes(), g.num_edges());

    let service = OsnService::with_defaults(&g);
    let mut sampler = MtoSampler::new(
        CachedClient::new(service),
        NodeId(0),
        MtoConfig {
            seed: 5,
            extension: true, // Theorem 5 on: history degrees strengthen removals
            criterion_view: CriterionView::Original,
            ..Default::default()
        },
    )
    .expect("start node exists");

    let mut last = sampler.stats();
    let mut seen_removed: std::collections::BTreeSet<_> =
        sampler.overlay().removed_edges().collect();
    let mut seen_added: std::collections::BTreeSet<_> = sampler.overlay().added_edges().collect();
    for step in 1..=4000 {
        sampler.step().expect("simulated interface cannot fail");
        let now = sampler.stats();
        if now.removals > last.removals && now.removals <= 12 {
            for e in sampler.overlay().removed_edges() {
                if seen_removed.insert(e) {
                    println!("step {step:>4}: removed {e} (total {})", now.removals);
                }
            }
        }
        if now.replacements > last.replacements && now.replacements <= 6 {
            for e in sampler.overlay().added_edges() {
                if seen_added.insert(e) {
                    println!("step {step:>4}: REPLACED an edge; new overlay edge {e}");
                }
            }
        }
        last = now;
    }

    let overlay = sampler.overlay().materialize(&g);
    let phi1 = if overlay.num_nodes() <= 26 { exact_conductance(&overlay).phi } else { f64::NAN };
    println!(
        "\nafter 4000 steps: {} removals, {} replacements ({} rejected)",
        last.removals, last.replacements, last.replacement_rejections
    );
    println!(
        "overlay: {} edges (was {}), Φ = {phi1:.4} (was {phi0:.4})",
        overlay.num_edges(),
        g.num_edges()
    );

    // Part 3: the three k* estimation modes -------------------------------
    println!("\n== Overlay-degree estimation modes for importance weights ==");
    let v = sampler.current();
    for (name, mode) in [
        ("Discovered", OverlayDegreeMode::Discovered),
        ("ExactRemoval", OverlayDegreeMode::ExactRemoval),
        ("Sampled(4)", OverlayDegreeMode::SampledRemoval(4)),
    ] {
        let k = sampler.overlay_degree_estimate(v, mode).expect("simulated interface cannot fail");
        println!("k*({v}) via {name:<13} = {k:.2}");
    }
}
