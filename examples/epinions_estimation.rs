//! Aggregate estimation over an Epinions-like social network.
//!
//! The workload of the paper's Fig 7: estimate the average degree of a
//! community-structured, heavy-tailed network through nothing but the
//! per-user query interface, and compare how many unique queries SRW,
//! MHRW, RJ and MTO each burn to get within 10% of the truth.
//!
//! ```text
//! cargo run --release --example epinions_estimation
//! ```

use std::sync::Arc;

use mto_sampler::core::estimate::Aggregate;
use mto_sampler::experiments::datasets::{build_dataset, DatasetSpec};
use mto_sampler::experiments::driver::{run_converged, Algorithm, RunProtocol};
use mto_sampler::graph::NodeId;
use mto_sampler::osn::OsnService;

fn main() {
    // A 1/10-scale Epinions stand-in keeps this example snappy; drop the
    // scale factor for the full 26,588-node graph.
    let spec = DatasetSpec::epinions().scaled_down(10);
    println!("building {} stand-in ({} nodes requested)…", spec.name, spec.nodes);
    let graph = build_dataset(&spec);
    let service = Arc::new(OsnService::with_defaults(&graph));
    let truth = service.true_average_degree();
    println!(
        "ground truth: {} nodes, {} edges, average degree {truth:.3}\n",
        graph.num_nodes(),
        graph.num_edges()
    );

    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>10}",
        "algo", "estimate", "rel. error", "burn-in", "queries"
    );
    for alg in Algorithm::all() {
        let mut walker = alg.build(service.clone(), NodeId(0), 2024).expect("start node exists");
        let protocol =
            RunProtocol { geweke_threshold: 0.1, max_burn_in_steps: 30_000, sample_steps: 6_000 };
        let run = run_converged(walker.as_mut(), &service, Aggregate::AverageDegree, protocol)
            .expect("simulated interface cannot fail");
        let estimate = run.final_estimate().unwrap_or(f64::NAN);
        let rel = (estimate - truth).abs() / truth;
        println!(
            "{:<6} {:>12.3} {:>11.1}% {:>10} {:>10}",
            alg.label(),
            estimate,
            100.0 * rel,
            run.burn_in_cost,
            run.total_cost
        );
    }

    println!(
        "\nMTO reaches comparable accuracy with fewer unique queries because the \
         \noverlay walk mixes faster across the planted communities."
    );
}
