//! # mto-sampler — Faster Random Walks By Rewiring Online Social Networks On-The-Fly
//!
//! A full Rust reproduction of Zhou, Zhang, Gong & Das (ICDE 2013).
//!
//! Online social networks only expose a per-user query `q(v)` returning one
//! user's profile and neighbor list, under tight rate limits. Third-party
//! analytics therefore sample via random walks — whose burn-in cost is
//! governed by the graph conductance, and real OSNs have *low* conductance.
//! The **MTO-Sampler** rewires a virtual overlay while it walks: it deletes
//! edges that are provably not cross-cutting (Theorem 3, strengthened by
//! the local degree history per Theorem 5) and re-routes edges around
//! degree-3 pivots (Theorem 4); both moves can only raise conductance, so
//! the walk mixes faster and every sample costs fewer queries.
//!
//! This umbrella crate re-exports the library layers:
//!
//! * [`graph`] (`mto-graph`) — graph substrate: structures, generators
//!   (including the paper's barbell running example and latent-space
//!   model), algorithms, IO;
//! * [`spectral`] (`mto-spectral`) — conductance (the paper's Definition
//!   3, exactly), SLEM, mixing-time machinery;
//! * [`osn`] (`mto-osn`) — the simulated restrictive web interface with
//!   caching, rate limits and profiles;
//! * [`core`] (`mto-core`) — the samplers: MTO plus the SRW/MHRW/RJ
//!   baselines, estimators and diagnostics;
//! * [`net`] (`mto-net`) — the deterministic discrete-event network
//!   engine: latency models with provider presets, the K-in-flight query
//!   pipeline over a virtual clock, and the walk-not-wait driver that
//!   multiplexes walker pools and prefetches speculatively;
//! * [`serve`] (`mto-serve`) — the service layer: resumable sampler
//!   sessions, the persistent crawl-history store (with a crash-safe
//!   append-only journal) and cross-run warm starts, and the multi-job
//!   scheduler;
//! * [`qos`] (`mto-qos`) — the quality-of-service layer: history-
//!   calibrated cost prediction, deadline-aware admission control,
//!   EDF-with-aging quantum planning, and the fleet-wide budget ledger;
//! * [`fleet`] (`mto-fleet`) — the deterministic sharded crawl fleet:
//!   epoch-based history gossip between shard workers, per-shard query
//!   pipelines on virtual clocks, crash-safe journaling, QoS-governed
//!   budgets and deadlines, and the `mto_serve` front-end binary;
//! * [`experiments`] (`mto-experiments`) — regenerates every table and
//!   figure of the paper's evaluation (see EXPERIMENTS.md).
//!
//! ## Quickstart
//!
//! ```
//! use mto_sampler::core::mto::{MtoConfig, MtoSampler};
//! use mto_sampler::core::walk::Walker;
//! use mto_sampler::graph::generators::paper_barbell;
//! use mto_sampler::graph::NodeId;
//! use mto_sampler::osn::{CachedClient, OsnService};
//!
//! // A simulated social network behind the restrictive interface…
//! let service = OsnService::with_defaults(&paper_barbell());
//! // …walked by the rewiring sampler.
//! let mut sampler =
//!     MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default()).unwrap();
//! for _ in 0..1000 {
//!     sampler.step().unwrap();
//! }
//! println!(
//!     "removed {} edges, replaced {}, spent {} queries",
//!     sampler.stats().removals,
//!     sampler.stats().replacements,
//!     sampler.query_cost()
//! );
//! ```
//!
//! Run the paper's experiments with
//! `cargo run --release -p mto-experiments --bin mto-lab -- all`.
//!
//! See the repository `README.md` for the workspace layout, the crate
//! dependency DAG, and how to regenerate each paper figure.

#![warn(missing_docs)]

pub use mto_core as core;
pub use mto_experiments as experiments;
pub use mto_fleet as fleet;
pub use mto_graph as graph;
pub use mto_net as net;
pub use mto_obs as obs;
pub use mto_osn as osn;
pub use mto_qos as qos;
pub use mto_serve as serve;
pub use mto_spectral as spectral;

/// The most commonly used items across all layers.
pub mod prelude {
    pub use mto_core::estimate::{Aggregate, ImportanceEstimator};
    pub use mto_core::mto::{MtoConfig, MtoSampler, OverlayDegreeMode};
    pub use mto_core::walk::{
        MetropolisHastingsWalk, RandomJumpWalk, SimpleRandomWalk, SrwConfig, Walker,
    };
    pub use mto_fleet::{FleetConfig, FleetCoordinator, FleetReport};
    pub use mto_graph::{Edge, Graph, GraphBuilder, NodeId};
    pub use mto_net::{LatencyModel, ProviderProfile, QueryPipeline, VirtualClock};
    pub use mto_obs::{Histogram, MetricsRegistry, TraceSink};
    pub use mto_osn::{CachedClient, OsnService, QueryClient, SocialNetworkInterface};
    pub use mto_qos::{AdmissionController, BudgetLedger, CostPredictor, DeadlinePolicy};
    pub use mto_serve::{HistoryJournal, HistoryStore, JobScheduler, JobSpec, SamplerSession};
    pub use mto_spectral::conductance::exact_conductance;
}
