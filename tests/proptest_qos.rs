//! Property suite for the QoS layer (ISSUE 5, satellite 4):
//!
//! * **ledger conservation** — no sequence of split / charge / release /
//!   rebalance operations ever mints or leaks budget: the pool plus
//!   every account's allowance always sums to the initial total;
//! * **EDF determinism** — `SchedulePolicy::EarliestDeadlineFirst`
//!   produces results identical to round-robin's across scheduler
//!   worker counts *and* fleet shard counts, for arbitrary job mixes
//!   with arbitrary deadlines (and budgeted fleets stay bit-identical
//!   across `W`, bill and all);
//! * **predictor monotonicity** — growing the warm history never raises
//!   a predicted bill.

use proptest::collection::vec;
use proptest::prelude::*;

use mto_core::mto::MtoConfig;
use mto_core::walk::{MhrwConfig, SrwConfig};
use mto_fleet::{FleetConfig, FleetCoordinator};
use mto_graph::generators::paper_barbell;
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService};
use mto_qos::{BudgetLedger, CostPredictor};
use mto_serve::history::HistoryStore;
use mto_serve::scheduler::{JobScheduler, SchedulePolicy, SchedulerConfig};
use mto_serve::session::{AlgoSpec, JobSpec};

/// One proptest-generated job: `(algo selector, seed, start, steps,
/// deci-deadline)` — the deadline applies only when the flag is set
/// (the vendored proptest has no `option::of`).
type RawJob = (u8, u64, u32, usize, (bool, u32));

fn job_strategy() -> impl Strategy<Value = RawJob> {
    (0u8..3, 1u64..1_000, 0u32..22, 20usize..160, (any::<bool>(), 1u32..600))
}

fn build_jobs(raw: &[RawJob]) -> Vec<JobSpec> {
    raw.iter()
        .enumerate()
        .map(|(i, &(algo, seed, start, steps, (with_deadline, deadline)))| JobSpec {
            id: format!("job-{i}"),
            algo: match algo {
                0 => AlgoSpec::Mto(MtoConfig { seed, ..Default::default() }),
                1 => AlgoSpec::Srw(SrwConfig { seed, lazy: false }),
                _ => AlgoSpec::Mhrw(MhrwConfig { seed }),
            },
            start: NodeId(start),
            step_budget: steps,
            deadline: with_deadline.then_some(deadline as f64 / 10.0),
            ess: None,
        })
        .collect()
}

fn run_fleet(
    jobs: Vec<JobSpec>,
    shards: usize,
    quantum: usize,
    policy: SchedulePolicy,
    fleet_budget: Option<u64>,
) -> mto_fleet::FleetReport {
    FleetCoordinator::new(
        |_| OsnService::with_defaults(&paper_barbell()),
        FleetConfig { shards, epoch_quantum: quantum, policy, fleet_budget, ..Default::default() },
    )
    .run(jobs)
    .expect("fleet run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ledger_conservation_survives_any_operation_sequence(
        total in 0u64..10_000,
        predicted in vec(0u64..500, 1..9),
        ops in vec((0usize..8, 0u64..600, any::<bool>()), 0..40),
    ) {
        let mut ledger = BudgetLedger::split(total, &predicted);
        prop_assert!(ledger.conserves(), "split minted or leaked");
        prop_assert_eq!(
            ledger.pool() + (0..ledger.len()).map(|i| ledger.account(i).allowance).sum::<u64>(),
            total
        );
        for (slot, amount, release) in ops {
            let i = slot % predicted.len();
            if release {
                ledger.release(i);
            } else {
                ledger.charge(i, amount);
            }
            // A rebalance after every operation, claiming for every
            // account that has run dry.
            let claims: Vec<(usize, u64)> = (0..ledger.len())
                .filter(|&j| ledger.account(j).exhausted())
                .map(|j| (j, 1 + amount / 2))
                .collect();
            ledger.rebalance(&[], &claims);
            prop_assert!(
                ledger.conserves(),
                "operation (account {i}, amount {amount}, release {release}) broke conservation"
            );
        }
    }

    #[test]
    fn edf_results_match_round_robin_across_workers_and_shards(
        raw in vec(job_strategy(), 1..6),
        workers in 1usize..5,
        shards in 1usize..5,
        quantum in 8usize..64,
    ) {
        let jobs = build_jobs(&raw);

        // Scheduler: EDF at any worker count reproduces fair results.
        let serve = |policy, workers| {
            JobScheduler::new(
                OsnService::with_defaults(&paper_barbell()),
                SchedulerConfig { workers, quantum, policy, ..Default::default() },
            )
            .run(jobs.clone())
            .expect("scheduler run")
        };
        let fair = serve(SchedulePolicy::RoundRobin, 1);
        let edf = serve(SchedulePolicy::EarliestDeadlineFirst, workers);
        for (a, b) in fair.outcomes.iter().zip(&edf.outcomes) {
            prop_assert_eq!(&a.history, &b.history, "scheduler EDF diverged for {}", a.id);
            prop_assert_eq!(a.stats, b.stats);
            prop_assert_eq!((a.steps, a.completed), (b.steps, b.completed));
        }

        // Fleet: EDF at any shard count keeps the digest of W=1 fair.
        let reference =
            run_fleet(jobs.clone(), 1, quantum, SchedulePolicy::RoundRobin, None).results_digest();
        for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::EarliestDeadlineFirst] {
            let digest =
                run_fleet(jobs.clone(), shards, quantum, policy, None).results_digest();
            prop_assert_eq!(
                &digest, &reference,
                "fleet {} diverged at W={}", policy.name(), shards
            );
        }
    }

    #[test]
    fn budgeted_fleets_are_bit_identical_across_shard_counts(
        raw in vec(job_strategy(), 2..6),
        budget in 4u64..60,
        quantum in 8usize..48,
    ) {
        let jobs = build_jobs(&raw);
        let reference = run_fleet(jobs.clone(), 1, quantum, SchedulePolicy::RoundRobin, Some(budget));
        let ref_ledger = reference.ledger.expect("budgeted run carries a ledger");
        for shards in [2, 4] {
            let report =
                run_fleet(jobs.clone(), shards, quantum, SchedulePolicy::RoundRobin, Some(budget));
            prop_assert_eq!(
                report.results_digest(),
                reference.results_digest(),
                "budget cuts diverged at W={}", shards
            );
            let ledger = report.ledger.expect("budgeted run carries a ledger");
            prop_assert_eq!(ledger.spent, ref_ledger.spent, "spend diverged at W={}", shards);
            prop_assert_eq!(ledger.reclaimed, ref_ledger.reclaimed);
            prop_assert_eq!(ledger.granted, ref_ledger.granted);
            prop_assert_eq!(ledger.cut_jobs, ref_ledger.cut_jobs);
        }
    }

    #[test]
    fn predictions_never_rise_as_warm_history_grows(
        crawl_a in vec(0u32..22, 0..12),
        extra in vec(0u32..22, 1..12),
        steps in 1usize..2_000,
        start in 0u32..22,
        algo in 0u8..3,
    ) {
        // Two crawls of the barbell where the second is a superset of
        // the first: the predicted bill must not rise.
        let crawl = |nodes: &[u32]| {
            let mut client = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
            for &v in nodes {
                client.query(NodeId(v)).expect("barbell node");
            }
            HistoryStore::from_client(&client)
        };
        let smaller = crawl(&crawl_a);
        let mut union: Vec<u32> = crawl_a.clone();
        union.extend(&extra);
        let larger = crawl(&union);

        let spec = JobSpec {
            id: "probe".into(),
            algo: match algo {
                0 => AlgoSpec::Mto(MtoConfig::default()),
                1 => AlgoSpec::Srw(SrwConfig { seed: 1, lazy: false }),
                _ => AlgoSpec::Mhrw(MhrwConfig { seed: 1 }),
            },
            start: NodeId(start),
            step_budget: steps,
            deadline: None,
            ess: None,
        };
        let predictor = CostPredictor::new(Some(22));
        let cold = predictor.predict_queries(&spec, None);
        let warm = predictor.predict_queries(&spec, Some(&smaller));
        let warmer = predictor.predict_queries(&spec, Some(&larger));
        prop_assert!(warm <= cold, "any history must discount: {warm} > {cold}");
        prop_assert!(
            warmer <= warm,
            "more history raised the bill: {warmer} > {warm} \
             (crawl {crawl_a:?} + {extra:?}, start {start}, steps {steps})"
        );
    }
}
