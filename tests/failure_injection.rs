//! Resilience: samplers must survive transient interface failures and
//! rate limiting without corrupting their state or their estimates.

use mto_sampler::core::mto::{MtoConfig, MtoSampler};
use mto_sampler::core::walk::{SimpleRandomWalk, SrwConfig, Walker};
use mto_sampler::graph::generators::paper_barbell;
use mto_sampler::graph::NodeId;
use mto_sampler::osn::{
    CachedClient, OsnService, OsnServiceConfig, RateLimitPolicy, RateLimitedInterface,
};

fn flaky_service(rate: f64) -> OsnService {
    OsnService::new(
        &paper_barbell(),
        OsnServiceConfig { transient_failure_rate: rate, ..Default::default() },
    )
}

#[test]
fn srw_completes_through_transient_failures() {
    let mut walk = SimpleRandomWalk::new(
        CachedClient::new(flaky_service(0.3)),
        NodeId(0),
        SrwConfig { seed: 1, lazy: false },
    )
    .expect("retries hide the failures");
    for _ in 0..2_000 {
        walk.step().expect("cached client retries transient failures");
    }
    assert_eq!(walk.history().len(), 2_001);
    assert!(walk.client().transient_retries() > 0, "failures must actually have occurred");
}

#[test]
fn mto_completes_through_transient_failures() {
    let mut sampler =
        MtoSampler::new(CachedClient::new(flaky_service(0.3)), NodeId(0), MtoConfig::default())
            .expect("retries hide the failures");
    for _ in 0..3_000 {
        sampler.step().expect("cached client retries transient failures");
    }
    assert!(sampler.stats().removals > 0, "rewiring proceeds despite failures");
    // Overlay must still be coherent.
    let overlay = sampler.overlay().materialize(&paper_barbell());
    overlay.validate().unwrap();
}

#[test]
fn failure_rate_does_not_change_the_walk_itself() {
    // Retries are invisible to the chain: same seed ⇒ same trajectory,
    // with and without failures (the walker RNG is independent of the
    // failure RNG).
    let mut clean = SimpleRandomWalk::new(
        CachedClient::new(flaky_service(0.0)),
        NodeId(0),
        SrwConfig { seed: 9, lazy: false },
    )
    .unwrap();
    let mut flaky = SimpleRandomWalk::new(
        CachedClient::new(flaky_service(0.5)),
        NodeId(0),
        SrwConfig { seed: 9, lazy: false },
    )
    .unwrap();
    for _ in 0..500 {
        assert_eq!(clean.step().unwrap(), flaky.step().unwrap());
    }
}

#[test]
fn rate_limited_walk_advances_virtual_time_not_errors() {
    let limited = RateLimitedInterface::new(
        OsnService::with_defaults(&paper_barbell()),
        RateLimitPolicy { burst: 5, refill_per_sec: 2.0 },
    );
    let mut walk = SimpleRandomWalk::new(
        CachedClient::new(limited),
        NodeId(0),
        SrwConfig { seed: 2, lazy: false },
    )
    .unwrap();
    for _ in 0..200 {
        walk.step().expect("stall-mode limiter never errors");
    }
    let iface = walk.client().inner();
    assert!(iface.virtual_now() > 1.0, "clock advanced: {}", iface.virtual_now());
    // With only 22 unique nodes the cache absorbs most pressure; stalls
    // happen during the initial burst.
    assert!(iface.stalls() >= 1 || walk.query_cost() <= 5);
}

#[test]
fn fail_fast_mode_surfaces_rate_limit_errors() {
    let mut limited = RateLimitedInterface::new(
        OsnService::with_defaults(&paper_barbell()),
        RateLimitPolicy { burst: 2, refill_per_sec: 1e-6 },
    );
    limited.fail_when_limited = true;
    let mut client = CachedClient::new(limited);
    use mto_sampler::osn::{OsnError, QueryClient};
    client.fetch(NodeId(0)).unwrap();
    client.fetch(NodeId(1)).unwrap();
    match client.fetch(NodeId(2)) {
        Err(OsnError::RateLimited { retry_after_secs }) => {
            assert!(retry_after_secs > 0);
        }
        other => panic!("expected RateLimited, got {other:?}"),
    }
    // Cached nodes remain servable even while limited.
    assert!(client.fetch(NodeId(0)).is_ok());
}

#[test]
fn unknown_users_do_not_poison_the_cache() {
    let mut client = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
    use mto_sampler::osn::QueryClient;
    assert!(client.fetch(NodeId(999)).is_err());
    assert!(client.fetch(NodeId(999)).is_err(), "errors are not cached as successes");
    assert_eq!(client.unique_queries(), 0, "failed queries are not unique successes");
    assert!(client.fetch(NodeId(0)).is_ok());
}
