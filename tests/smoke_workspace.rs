//! Workspace smoke canary: the cheapest end-to-end proof that the whole
//! stack still works — graph generator → OSN interface → MTO sampler →
//! overlay materialization → spectral conductance.
//!
//! Kept deliberately fast (a short walk on the 22-node barbell) so future
//! PRs get a sub-second tier-1 signal before the heavier suites run.

use mto_sampler::core::mto::{MtoConfig, MtoSampler};
use mto_sampler::core::walk::Walker;
use mto_sampler::graph::generators::paper_barbell;
use mto_sampler::graph::NodeId;
use mto_sampler::osn::{CachedClient, OsnService};
use mto_sampler::spectral::conductance::exact_conductance;

#[test]
fn mto_walk_on_barbell_strictly_improves_conductance() {
    // The paper's running example: two 11-cliques and one bridge,
    // Φ(G) = 1/56 ≈ 0.018.
    let graph = paper_barbell();
    let phi_before = exact_conductance(&graph).phi;
    assert!((phi_before - 1.0 / 56.0).abs() < 1e-12, "seed barbell changed: Φ = {phi_before}");

    let service = OsnService::with_defaults(&graph);
    let mut sampler = MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default())
        .expect("node 0 exists");

    // Short walk — enough for Theorem 3 removals to fire inside the
    // cliques, far below the experiment-scale step counts.
    for _ in 0..3_000 {
        sampler.step().expect("simulated interface cannot fail");
    }

    let stats = sampler.stats();
    assert!(stats.removals > 0, "the dense cliques must shed edges");

    // The virtual overlay the walk follows must be strictly
    // better-conducting than the original graph — the paper's core claim.
    let overlay = sampler.overlay().materialize(&graph);
    let phi_after = exact_conductance(&overlay).phi;
    assert!(
        phi_after > phi_before,
        "overlay conductance must strictly improve: {phi_after} vs {phi_before}"
    );

    // Cost model sanity: duplicate queries are free, so the budget is
    // bounded by the node count.
    assert!(
        sampler.query_cost() <= graph.num_nodes() as u64,
        "query cost {} exceeds |V| = {}",
        sampler.query_cost(),
        graph.num_nodes()
    );
}
