//! Cross-layer integration tests of the `mto-serve` service layer: the
//! snapshot → resume fidelity guarantee and the scheduler/warm-start
//! behavior of ISSUE 2's acceptance criteria, exercised through the
//! umbrella crate like any consumer would.

use mto_sampler::core::mto::MtoConfig;
use mto_sampler::core::walk::{SrwConfig, Walker};
use mto_sampler::experiments::{build_dataset, DatasetSpec};
use mto_sampler::graph::NodeId;
use mto_sampler::osn::{CachedClient, OsnService, SharedClient};
use mto_sampler::serve::session::{AlgoSpec, SessionSnapshot, SessionState};
use mto_sampler::serve::{HistoryStore, JobScheduler, JobSpec, SamplerSession, SchedulerConfig};

fn mini_service() -> OsnService {
    OsnService::with_defaults(&build_dataset(&DatasetSpec::epinions().scaled_down(40)))
}

fn shared_client() -> SharedClient<OsnService> {
    SharedClient::new(CachedClient::new(mini_service()))
}

fn mto_job(id: &str, start: u32, steps: usize, seed: u64) -> JobSpec {
    JobSpec {
        id: id.into(),
        algo: AlgoSpec::Mto(MtoConfig { seed, ..Default::default() }),
        start: NodeId(start),
        step_budget: steps,
        deadline: None,
        ess: None,
    }
}

/// ISSUE 2 acceptance: a session paused at step k, snapshotted to disk,
/// and resumed produces the same visited history, estimates, and
/// unique-query count as an uninterrupted run with the same seed.
#[test]
fn snapshot_to_disk_and_resume_matches_uninterrupted_run() {
    let spec = mto_job("fidelity", 0, 900, 0xFEED);

    // The uninterrupted reference run.
    let mut reference = SamplerSession::create(shared_client(), spec.clone()).unwrap();
    reference.run_to_completion().unwrap();
    let ref_estimate = reference.average_degree_estimate().unwrap().unwrap();

    // The interrupted run: pause at step 317, freeze to disk, thaw,
    // restore against a *fresh* service instance, finish.
    let mut interrupted = SamplerSession::create(shared_client(), spec).unwrap();
    interrupted.advance(317).unwrap();
    interrupted.pause();
    assert_eq!(interrupted.state(), SessionState::Paused);
    let path =
        std::env::temp_dir().join(format!("mto-session-fidelity-{}.session", std::process::id()));
    interrupted.snapshot().save(&path).unwrap();

    let thawed = SessionSnapshot::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let mut resumed = SamplerSession::restore(shared_client(), &thawed).unwrap();
    assert_eq!(resumed.steps_taken(), 317);
    resumed.run_to_completion().unwrap();

    assert_eq!(resumed.walker().history(), reference.walker().history(), "visited history");
    assert_eq!(resumed.unique_queries(), reference.unique_queries(), "unique-query count");
    let res_estimate = resumed.average_degree_estimate().unwrap().unwrap();
    assert!(
        (res_estimate - ref_estimate).abs() < 1e-12,
        "estimates diverged: {res_estimate} vs {ref_estimate}"
    );
    assert_eq!(
        resumed.walker().rewire_stats(),
        reference.walker().rewire_stats(),
        "rewiring stats"
    );
}

/// Replaying a snapshot against the wrong network must fail loudly, not
/// silently produce a different walk.
#[test]
fn resume_against_wrong_network_is_rejected() {
    let mut session = SamplerSession::create(shared_client(), mto_job("w", 0, 400, 7)).unwrap();
    session.advance(200).unwrap();
    let snap = session.snapshot();
    // A barbell is not the Epinions stand-in.
    let wrong = SharedClient::new(CachedClient::new(OsnService::with_defaults(
        &mto_sampler::graph::generators::paper_barbell(),
    )));
    assert!(SamplerSession::restore(wrong, &snap).is_err());
}

/// The scheduler runs heterogeneous jobs over one shared budget and its
/// results do not depend on worker count or interleaving.
#[test]
fn scheduler_shares_budget_and_is_deterministic() {
    let jobs = || {
        vec![
            mto_job("a", 0, 500, 1),
            mto_job("b", 9, 400, 2),
            JobSpec {
                id: "srw".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 3, lazy: false }),
                start: NodeId(4),
                step_budget: 300,
                deadline: None,
                ess: None,
            },
        ]
    };
    let run = |workers| {
        let scheduler = JobScheduler::new(
            mini_service(),
            SchedulerConfig { workers, quantum: 37, ..Default::default() },
        );
        scheduler.run(jobs()).unwrap()
    };
    let solo = run(1);
    let fleet = run(4);
    assert_eq!(solo.total_unique_queries, fleet.total_unique_queries);
    for (a, b) in solo.outcomes.iter().zip(&fleet.outcomes) {
        assert_eq!(a.id, b.id);
        assert!(a.completed && b.completed);
        assert_eq!(a.history, b.history, "job {} depends on interleaving", a.id);
        assert_eq!(a.stats, b.stats);
    }
    // One shared cache: total cost is far below the sum of independent runs.
    let independent: u64 = jobs()
        .into_iter()
        .map(|j| {
            let mut s = SamplerSession::create(shared_client(), j).unwrap();
            s.run_to_completion().unwrap();
            s.unique_queries()
        })
        .sum();
    assert!(
        solo.total_unique_queries < independent,
        "shared {} vs independent {}",
        solo.total_unique_queries,
        independent
    );
}

/// ISSUE 2 acceptance: a second scheduler warm-started from a persisted
/// HistoryStore spends strictly fewer unique queries on the same jobs.
#[test]
fn warm_started_scheduler_is_strictly_cheaper() {
    let jobs = || vec![mto_job("x", 0, 600, 11), mto_job("y", 2, 600, 13)];
    let cold = JobScheduler::new(mini_service(), SchedulerConfig::default());
    let cold_report = cold.run(jobs()).unwrap();

    let path = std::env::temp_dir().join(format!("mto-sched-warm-{}.hist", std::process::id()));
    cold.client().with(|c| HistoryStore::from_client(c)).save(&path).unwrap();
    let store = HistoryStore::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let warm =
        JobScheduler::warm_start(mini_service(), &store, SchedulerConfig::default()).unwrap();
    let warm_report = warm.run(jobs()).unwrap();
    assert!(
        warm_report.total_unique_queries < cold_report.total_unique_queries,
        "warm {} must be strictly below cold {}",
        warm_report.total_unique_queries,
        cold_report.total_unique_queries
    );
    // Identical walks either way: history only changes the bill.
    for (c, w) in cold_report.outcomes.iter().zip(&warm_report.outcomes) {
        assert_eq!(c.history, w.history);
    }
}

/// A global query budget interrupts jobs cleanly: every job still reports,
/// interrupted ones are marked incomplete.
#[test]
fn global_query_budget_interrupts_cleanly() {
    let scheduler = JobScheduler::new(
        mini_service(),
        SchedulerConfig {
            workers: 2,
            quantum: 16,
            global_query_budget: Some(25),
            ..Default::default()
        },
    );
    let report = scheduler.run(vec![mto_job("a", 0, 3_000, 5), mto_job("b", 1, 3_000, 6)]).unwrap();
    assert_eq!(report.outcomes.len(), 2, "interrupted jobs still report");
    assert!(report.outcomes.iter().any(|o| !o.completed), "budget must cut someone off");
    for o in &report.outcomes {
        assert_eq!(o.history.len(), o.steps + 1, "history stays consistent when interrupted");
    }
}
