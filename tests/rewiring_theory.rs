//! Property-based verification of the paper's theory (Theorems 1–5), run
//! across the crate boundaries: criteria from `mto-core`, exact
//! conductance and cross-cutting identification from `mto-spectral`,
//! random topologies from `mto-graph`.

use mto_sampler::core::rewire::{removal_criterion, PIVOT_DEGREE};
use mto_sampler::graph::{Graph, NodeId};
use mto_sampler::spectral::conductance::{
    cross_cutting_edges, cut_metrics, exact_conductance, mask_to_membership,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Random connected graph with 4–11 nodes for exhaustive-cut checking.
fn small_connected_graph(seed: u64, n: usize, p: f64) -> Option<Graph> {
    let mut rng = StdRng::seed_from_u64(seed);
    let g = mto_sampler::graph::generators::gnp_graph(n, p, &mut rng);
    let (lcc, _) = mto_sampler::graph::algo::largest_component(&g);
    (lcc.num_nodes() >= 4 && lcc.min_degree() >= 1).then_some(lcc)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The combinatorial core of Theorem 3: when the criterion holds for
    /// an edge (u, v) crossing ANY bipartition, dragging u or v across it
    /// strictly shrinks the edge boundary. (This is the step the paper's
    /// proof rests on, and unlike the conductance-level claim it needs no
    /// "cut volume >> cut size" assumption.)
    #[test]
    fn dragging_shrinks_the_boundary(seed in 0u64..5000, n in 5usize..11, cut_bits in 0u64..2048) {
        let Some(g) = small_connected_graph(seed, n, 0.5) else { return Ok(()) };
        let nn = g.num_nodes();
        let membership: Vec<bool> = (0..nn).map(|i| cut_bits >> i & 1 == 1).collect();

        for e in g.edges() {
            let (u, v) = e.endpoints();
            if membership[u.index()] == membership[v.index()] {
                continue; // not crossing this cut
            }
            let common = g.common_neighbor_count(u, v);
            if !removal_criterion(common, g.degree(u), g.degree(v)) {
                continue;
            }
            let before = mto_sampler::spectral::conductance::edge_boundary(&g, &membership);
            let mut drag_u = membership.clone();
            drag_u[u.index()] = !drag_u[u.index()];
            let mut drag_v = membership.clone();
            drag_v[v.index()] = !drag_v[v.index()];
            let after_u = mto_sampler::spectral::conductance::edge_boundary(&g, &drag_u);
            let after_v = mto_sampler::spectral::conductance::edge_boundary(&g, &drag_v);
            prop_assert!(
                after_u < before || after_v < before,
                "edge ({u},{v}) common={common} k=({},{}): boundary {before} \
                 not reduced by either drag ({after_u}, {after_v})",
                g.degree(u), g.degree(v)
            );
        }
    }

    /// Theorem 3 at the conductance level, tested on graphs where the
    /// paper's side condition (cut volume exceeding cut size) holds:
    /// a criterion-satisfying edge never crosses a minimizing cut.
    #[test]
    fn removable_edges_are_not_cross_cutting(seed in 0u64..3000, n in 5usize..11) {
        let Some(g) = small_connected_graph(seed, n, 0.55) else { return Ok(()) };
        let result = exact_conductance(&g);
        if result.truncated || result.phi == 0.0 {
            return Ok(()); // degenerate: skip
        }
        // Side condition from the paper's proof: every minimizing cut has
        // strictly more within-side edges than cut edges on both sides.
        let side_ok = result.argmin_cuts.iter().all(|&mask| {
            let m = cut_metrics(&g, &mask_to_membership(mask, g.num_nodes()));
            m.within_s > m.cut && m.within_t > m.cut
        });
        if !side_ok {
            return Ok(());
        }
        let crossing = cross_cutting_edges(&g);
        for e in g.edges() {
            let (u, v) = e.endpoints();
            let common = g.common_neighbor_count(u, v);
            if removal_criterion(common, g.degree(u), g.degree(v)) {
                prop_assert!(
                    !crossing.contains(&e),
                    "removable edge {e} crosses a minimizing cut (Φ = {})",
                    result.phi
                );
            }
        }
    }

    /// Theorem 4's supporting lemma: for a degree-3 pivot v with
    /// u, w ∈ N(v), the edges (u,v) and (v,w) cannot BOTH be
    /// cross-cutting (otherwise dragging v to the side of u and w reduces
    /// the boundary).
    #[test]
    fn degree3_pivot_edges_not_both_cross_cutting(seed in 0u64..3000, n in 5usize..11) {
        let Some(g) = small_connected_graph(seed, n, 0.45) else { return Ok(()) };
        let result = exact_conductance(&g);
        if result.truncated || result.phi == 0.0 {
            return Ok(());
        }
        let side_ok = result.argmin_cuts.iter().all(|&mask| {
            let m = cut_metrics(&g, &mask_to_membership(mask, g.num_nodes()));
            m.within_s > m.cut && m.within_t > m.cut
        });
        if !side_ok {
            return Ok(());
        }
        for pivot in g.nodes() {
            if g.degree(pivot) != PIVOT_DEGREE {
                continue;
            }
            let nbrs = g.neighbors(pivot);
            // Both edges cross-cutting on the SAME minimizing cut would
            // contradict minimality.
            for &mask in &result.argmin_cuts {
                let membership = mask_to_membership(mask, g.num_nodes());
                let crossing_count = nbrs
                    .iter()
                    .filter(|&&u| membership[u.index()] != membership[pivot.index()])
                    .count();
                // If 2+ of the pivot's 3 edges cross, dragging the pivot
                // across reduces the boundary by at least 1 — and the
                // minimizing cut volume condition makes ϕ drop too.
                prop_assert!(
                    crossing_count <= 1,
                    "pivot {pivot}: {crossing_count}/3 edges cross a minimizing cut"
                );
            }
        }
    }
}

#[test]
fn corollary1_tightness_witness() {
    // Corollary 1: when the criterion fails, a graph exists where the edge
    // IS cross-cutting. Witness: the barbell bridge (common=0, k=11 each)
    // fails the criterion and is the unique cross-cutting edge.
    let g = mto_sampler::graph::generators::paper_barbell();
    let (u, v) = (NodeId(0), NodeId(11));
    assert!(!removal_criterion(0, 11, 11));
    let crossing = cross_cutting_edges(&g);
    assert!(crossing.contains(&mto_sampler::graph::Edge::new(u, v)));
}

#[test]
fn corollary2_counterexample_for_degree4_pivot() {
    // Corollary 2: for pivot degree ≠ 3 the replacement can destroy
    // conductance. Build the paper's Fig 13 shape: pivot v of degree 4
    // whose edges (u,v) and (w,v) both cross the bottleneck.
    //
    //   clique A — u — v — w — clique B, plus v-x, v-y pendant-ish links
    //   into both sides: removing (u,v) & adding (u,w) merges two cross
    //   edges into one.
    let mut g = Graph::with_nodes(0);
    // Clique A: 0..4, clique B: 5..9, pivot v = 10, x=...
    for _ in 0..11 {
        g.add_node();
    }
    for i in 0..5u32 {
        for j in (i + 1)..5 {
            g.add_edge(NodeId(i), NodeId(j)).unwrap();
        }
    }
    for i in 5..10u32 {
        for j in (i + 1)..10 {
            g.add_edge(NodeId(i), NodeId(j)).unwrap();
        }
    }
    // Pivot 10 with degree 4: two edges into each clique.
    g.add_edge(NodeId(10), NodeId(0)).unwrap();
    g.add_edge(NodeId(10), NodeId(1)).unwrap();
    g.add_edge(NodeId(10), NodeId(5)).unwrap();
    g.add_edge(NodeId(10), NodeId(6)).unwrap();

    let before = exact_conductance(&g).phi;

    // Theorem-4-style replacement around the degree-4 pivot: replace
    // (0, 10) with (0, 5)? That *adds* a cross edge. The damaging variant
    // the corollary describes replaces a cross edge with an intra-side
    // edge: replace (5, 10) by (5, 0)... also cross. Take the literal
    // move: u = 0, w = 1 (both clique-A neighbors of the pivot):
    // remove (0, 10), add (0, 1)? — already present. Use u = 0, w = 1 is
    // blocked; the valid damaging move is u = 5, w = 6: remove (5, 10),
    // add (5, 6) — but that's present too. So emulate the corollary's
    // effect directly: drop one of the pivot's cross edges.
    let mut worse = g.clone();
    worse.remove_edge(NodeId(10), NodeId(5)).unwrap();
    let after = exact_conductance(&worse).phi;
    assert!(after < before, "losing one pivot cross-edge must hurt: {after} vs {before}");
}

#[test]
fn theorem2_indistinguishability_construction() {
    // Theorem 2: from any locally-observed neighborhood set one can build
    // a graph where a given edge is NOT cross-cutting, by cloning the
    // graph and bridging the clones at an unvisited node. Verify the
    // construction concretely on a small graph.
    let g = mto_sampler::graph::generators::cycle_graph(5);
    let n = g.num_nodes();
    // Clone: nodes n..2n mirror 0..n; bridge at w=3 (unvisited by a
    // sampler that saw only nodes 0 and 1).
    let mut clone = Graph::with_nodes(2 * n);
    for e in g.edges() {
        let (u, v) = e.endpoints();
        clone.add_edge(u, v).unwrap();
        clone.add_edge(NodeId((u.index() + n) as u32), NodeId((v.index() + n) as u32)).unwrap();
    }
    clone.add_edge(NodeId(3), NodeId((3 + n) as u32)).unwrap();

    let crossing = cross_cutting_edges(&clone);
    // The only cross-cutting edge of the doubled graph is the bridge.
    assert_eq!(crossing.len(), 1);
    let bridge = mto_sampler::graph::Edge::new(NodeId(3), NodeId((3 + n) as u32));
    assert!(crossing.contains(&bridge));
    // In particular, the edge (0, 1) the sampler observed is NOT
    // cross-cutting in the clone — though it may look pivotal locally.
    assert!(!crossing.contains(&mto_sampler::graph::Edge::new(NodeId(0), NodeId(1))));
}
