//! The headline end-to-end claim: MTO's overlay mixes faster.
//!
//! For several low-conductance graph families, running the MTO-Sampler
//! and materializing its overlay must yield a smaller SLEM-based
//! theoretical mixing time, and the lower/upper distance envelopes of the
//! paper's Eq. (3) must bracket the exact `Δ(t)`.

use mto_sampler::core::mto::{MtoConfig, MtoSampler};
use mto_sampler::core::walk::Walker;
use mto_sampler::graph::generators::{
    barbell_graph, latent_space_graph, planted_partition_graph, BarbellSpec, LatentSpaceModel,
};
use mto_sampler::graph::{Graph, NodeId};
use mto_sampler::osn::{CachedClient, OsnService};
use mto_sampler::spectral::mixing::{lower_bound_distance, upper_bound_distance};
use mto_sampler::spectral::MixingAnalysis;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rewire_to_coverage(g: &Graph, seed: u64) -> Graph {
    let service = OsnService::with_defaults(g);
    let mut sampler = MtoSampler::new(
        CachedClient::new(service),
        NodeId(0),
        MtoConfig { seed, ..Default::default() },
    )
    .expect("node 0 exists");
    let mut seen = std::collections::HashSet::new();
    seen.insert(NodeId(0));
    let budget = 500 * g.num_nodes();
    let mut steps = 0;
    while seen.len() < g.num_nodes() && steps < budget {
        seen.insert(sampler.step().expect("simulated interface cannot fail"));
        steps += 1;
    }
    sampler.overlay().materialize(g)
}

#[test]
fn barbell_conductance_bound_shrinks_multifold() {
    // The paper's running-example claim is about the Eq (4)/(5)
    // conductance *bound* on mixing time, which drops to ~11% after
    // removal and ~3% after replacement. Verify the bound-level claim.
    use mto_sampler::spectral::conductance::exact_conductance;
    use mto_sampler::spectral::mixing::mixing_bound_log10_coefficient;
    let g = barbell_graph(BarbellSpec::paper());
    let overlay = rewire_to_coverage(&g, 3);
    let phi_before = exact_conductance(&g).phi;
    let phi_after = exact_conductance(&overlay).phi;
    assert!(phi_after > 2.0 * phi_before, "Φ: {phi_before:.4} → {phi_after:.4}");
    let ratio =
        mixing_bound_log10_coefficient(phi_after) / mixing_bound_log10_coefficient(phi_before);
    assert!(ratio < 0.25, "bound must shrink at least 4x, got ratio {ratio:.3}");
}

#[test]
fn barbell_slem_tradeoff_is_bounded() {
    // Reproduction finding (documented in EXPERIMENTS.md): on the extreme
    // K11-barbell, thinning the cliques to ~17 edges/side slows
    // *within-side* diffusion enough that the realized SLEM mixing time
    // does not improve even though the conductance bound does — the
    // Cheeger gap between bound and spectrum is real. The overlay must
    // still stay within a small constant factor of the original; the
    // regime the paper evaluates (sparse latent-space graphs, Fig 10) is
    // covered by `latent_space_mixing_improves_on_average` below.
    let g = barbell_graph(BarbellSpec::paper());
    let overlay = rewire_to_coverage(&g, 3);
    let before = MixingAnalysis::new(&g, true).theoretical_mixing_time();
    let after = MixingAnalysis::new(&overlay, true).theoretical_mixing_time();
    assert!(after.is_finite() && after > 0.0);
    assert!(after < 4.0 * before, "overlay mixing must stay comparable: {before:.1} → {after:.1}");
}

#[test]
fn planted_partition_conductance_improves() {
    // The removal criterion needs near-clique neighborhoods
    // (|N(u)∩N(v)| ≳ max(k) − 2), so use dense blocks: p_in = 0.95 over
    // 16-node communities. At p_in = 0.5 nothing is removable — a real
    // property of Theorem 3 documented in EXPERIMENTS.md.
    let mut rng = StdRng::seed_from_u64(11);
    let g = planted_partition_graph(16, 0.95, 0.02, &mut rng);
    let g = mto_sampler::graph::algo::largest_component(&g).0;
    let overlay = rewire_to_coverage(&g, 5);
    assert!(overlay.num_edges() < g.num_edges(), "dense blocks must shed edges");
    let (phi_before, _) = mto_sampler::spectral::conductance::sweep_conductance(&g);
    let (phi_after, _) = mto_sampler::spectral::conductance::sweep_conductance(&overlay);
    assert!(
        phi_after > phi_before,
        "two dense communities must rewire profitably: Φ {phi_before:.4} → {phi_after:.4}"
    );
}

#[test]
fn latent_space_mixing_improves_on_average() {
    // Individual draws can be wash-outs (sparse graphs have little to
    // remove); the average across seeds must improve — this is Fig 10's
    // claim in miniature.
    let model = LatentSpaceModel::paper_fig10();
    let mut befores = Vec::new();
    let mut afters = Vec::new();
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let sample = latent_space_graph(&model, 60, &mut rng);
        let (g, _) = mto_sampler::graph::algo::largest_component(&sample.graph);
        if g.num_nodes() < 40 || g.min_degree() == 0 {
            continue;
        }
        befores.push(MixingAnalysis::new(&g, true).theoretical_mixing_time());
        let overlay = rewire_to_coverage(&g, seed);
        afters.push(MixingAnalysis::new(&overlay, true).theoretical_mixing_time());
    }
    assert!(befores.len() >= 3, "need enough usable draws");
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    assert!(
        mean(&afters) < mean(&befores),
        "average mixing time must improve: {:.1} → {:.1}",
        mean(&befores),
        mean(&afters)
    );
}

#[test]
fn eq3_envelopes_bracket_exact_distance() {
    // Eq (3): (1 − 2Φ)^t ≤ Δ(t) ≤ (2|E|/min_k)(1 − Φ²/2)^t.
    // Verified for the barbell with its exact Definition-3 conductance.
    let g = barbell_graph(BarbellSpec::paper());
    let analysis = MixingAnalysis::new(&g, true);
    let phi = mto_sampler::spectral::conductance::exact_conductance(&g).phi;
    for t in [1u32, 10, 100, 1000] {
        let delta = analysis.delta(t);
        let ub = upper_bound_distance(phi, t, g.num_edges(), g.min_degree());
        assert!(delta <= ub + 1e-9, "t={t}: Δ={delta:.6} above upper bound {ub:.6}");
        // The lower envelope holds for the non-lazy chain in the paper;
        // the lazy chain halves the spectral gap, so compare against the
        // lazy-adjusted rate (1 − Φ).
        let lb_lazy = lower_bound_distance(phi / 2.0, t);
        assert!(
            delta >= lb_lazy * 1e-6,
            "t={t}: Δ={delta:.2e} collapsed far below the envelope {lb_lazy:.2e}"
        );
    }
}

#[test]
fn overlay_stationary_distribution_matches_visits() {
    // The walk's empirical occupancy must converge to k*/2|E*| of its own
    // overlay — the fact the importance estimator relies on.
    let g = barbell_graph(BarbellSpec { clique_size: 6, bridges: 1 });
    let service = OsnService::with_defaults(&g);
    let mut sampler = MtoSampler::new(
        CachedClient::new(service),
        NodeId(0),
        MtoConfig { seed: 23, ..Default::default() },
    )
    .unwrap();
    // Phase 1: let the overlay stabilize.
    for _ in 0..20_000 {
        sampler.step().unwrap();
    }
    let overlay = sampler.overlay().materialize(&g);
    // Phase 2: count visits. The overlay may still change slightly; use a
    // long window so residual drift washes out.
    let mut visits = vec![0u64; g.num_nodes()];
    let steps = 400_000;
    for _ in 0..steps {
        visits[sampler.step().unwrap().index()] += 1;
    }
    let final_overlay = sampler.overlay().materialize(&g);
    // Only compare if the overlay froze between phases (usually true).
    if overlay.num_edges() != final_overlay.num_edges() {
        return;
    }
    let vol = final_overlay.volume() as f64;
    for v in final_overlay.nodes() {
        let expected = final_overlay.degree(v) as f64 / vol;
        let got = visits[v.index()] as f64 / steps as f64;
        assert!(
            (got - expected).abs() < 0.35 * expected + 0.01,
            "node {v}: occupancy {got:.4} vs overlay stationary {expected:.4}"
        );
    }
}
