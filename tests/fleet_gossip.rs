//! Cross-crate integration of the fleet layer through the umbrella
//! crate: sharded crawling with epoch gossip, journal-backed crash
//! safety, and the W=1 ↔ scheduler equivalence — everything wired
//! together the way a consumer of `mto_sampler` sees it.

use mto_sampler::core::mto::MtoConfig;
use mto_sampler::fleet::{FleetConfig, FleetCoordinator, MergeOrder};
use mto_sampler::graph::generators::gnp_graph;
use mto_sampler::graph::{Graph, NodeId};
use mto_sampler::osn::OsnService;
use mto_sampler::serve::journal::HistoryJournal;
use mto_sampler::serve::scheduler::{JobScheduler, SchedulerConfig};
use mto_sampler::serve::session::{AlgoSpec, JobSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A 200-node sparse network: big enough that no shard can crawl it all
/// before the first gossip barrier (the paper barbell's 22 nodes would
/// be fully cached in a handful of MTO steps).
fn network() -> Graph {
    gnp_graph(200, 0.04, &mut StdRng::seed_from_u64(7))
}

fn jobs() -> Vec<JobSpec> {
    (0..6u64)
        .map(|i| JobSpec {
            id: format!("w{i}"),
            algo: AlgoSpec::Mto(MtoConfig { seed: i + 1, ..Default::default() }),
            start: NodeId((17 * i as u32) % 200),
            step_budget: 400,
            deadline: None,
            ess: None,
        })
        .collect()
}

fn fleet(config: FleetConfig) -> impl FnOnce(Vec<JobSpec>) -> mto_sampler::fleet::FleetReport {
    move |jobs| {
        let graph = network();
        FleetCoordinator::new(|_| OsnService::with_defaults(&graph), config)
            .run(jobs)
            .expect("fleet run")
    }
}

#[test]
fn gossip_cuts_the_bill_without_touching_results() {
    let gossiped =
        fleet(FleetConfig { shards: 3, epoch_quantum: 25, ..Default::default() })(jobs());
    let isolated =
        fleet(FleetConfig { shards: 3, epoch_quantum: 25, gossip: false, ..Default::default() })(
            jobs(),
        );
    assert!(
        gossiped.total_unique_queries < isolated.total_unique_queries,
        "gossip {} vs isolated {}",
        gossiped.total_unique_queries,
        isolated.total_unique_queries
    );
    assert_eq!(gossiped.results_digest(), isolated.results_digest());
    assert!(gossiped.gossip_adopted_responses > 0);
    assert_eq!(gossiped.merge_conflicts, 0, "honest shards never conflict");
}

#[test]
fn fleet_results_survive_every_knob() {
    let reference = fleet(FleetConfig { shards: 1, ..Default::default() })(jobs());
    let scheduler =
        JobScheduler::new(OsnService::with_defaults(&network()), SchedulerConfig::default())
            .run(jobs())
            .unwrap();
    for (f, s) in reference.outcomes.iter().zip(&scheduler.outcomes) {
        assert_eq!(f.history, s.history, "W=1 must be the scheduler, exactly");
        assert_eq!(f.avg_degree_estimate, s.avg_degree_estimate);
    }
    for shards in [2, 4, 6] {
        for order in [MergeOrder::Forward, MergeOrder::Reverse] {
            let report = fleet(FleetConfig {
                shards,
                merge_order: order,
                epoch_quantum: 45,
                ..Default::default()
            })(jobs());
            assert_eq!(report.results_digest(), reference.results_digest(), "W={shards} {order:?}");
        }
    }
}

#[test]
fn union_store_journals_and_warm_starts_the_next_fleet() {
    let path =
        std::env::temp_dir().join(format!("mto-fleet-integration-{}.journal", std::process::id()));
    let first = fleet(FleetConfig { shards: 4, epoch_quantum: 40, ..Default::default() })(jobs());

    let mut journal = HistoryJournal::create(&path).unwrap();
    journal.absorb(&first.union_store).unwrap();
    journal.sync().unwrap();
    drop(journal);

    let (journal, recovery) = HistoryJournal::open(&path).unwrap();
    assert!(!recovery.recovered);
    let graph = network();
    let warm = FleetCoordinator::new(
        |_| OsnService::with_defaults(&graph),
        FleetConfig { shards: 4, epoch_quantum: 40, ..Default::default() },
    )
    .with_warm_start(journal.store().clone())
    .run(jobs())
    .unwrap();
    std::fs::remove_file(&path).ok();

    assert_eq!(warm.total_unique_queries, 0, "the union store covers every node the jobs visit");
    assert_eq!(warm.results_digest(), first.results_digest());
}
