//! Cross-layer integration: the `mto-net` discrete-event engine driving
//! the full stack through the umbrella crate.
//!
//! Covers the seams the crate-local suites cannot: the unified
//! [`VirtualClock`] spanning `mto-osn` rate limiting and `mto-net`
//! simulation, the walk-not-wait driver over the Epinions-scale
//! stand-in, and the scheduler reporting virtual wall-clock through a
//! `TimedInterface`-wrapped service.

use mto_sampler::core::mto::MtoConfig;
use mto_sampler::graph::generators::paper_barbell;
use mto_sampler::graph::NodeId;
use mto_sampler::net::demand::{PoolJob, WalkerSpec};
use mto_sampler::net::driver::{run_pool, DriverConfig, DriverMode};
use mto_sampler::net::pipeline::PipelineConfig;
use mto_sampler::net::{ProviderProfile, TimedInterface};
use mto_sampler::osn::{
    OsnService, RateLimitPolicy, RateLimitedInterface, SocialNetworkInterface, VirtualClock,
};
use mto_sampler::serve::session::AlgoSpec;
use mto_sampler::serve::{JobScheduler, JobSpec, SchedulePolicy, SchedulerConfig};

fn barbell_service() -> OsnService {
    OsnService::with_defaults(&paper_barbell())
}

#[test]
fn one_clock_spans_rate_limiting_and_event_simulation() {
    // A rate-limited interface and an externally advanced clock share a
    // timeline: latency elapsing in the event engine refills the bucket.
    let clock = VirtualClock::new();
    let limited = RateLimitedInterface::with_clock(
        barbell_service(),
        RateLimitPolicy { burst: 2, refill_per_sec: 1.0 },
        clock.clone(),
    );
    limited.query(NodeId(0)).unwrap();
    limited.query(NodeId(1)).unwrap(); // bucket empty
    clock.advance(30.0); // pipeline latency elapsing elsewhere
    limited.query(NodeId(2)).unwrap();
    assert_eq!(limited.stalls(), 0, "external time covered the refill");
    assert!(limited.virtual_now() >= 30.0);
}

#[test]
fn walk_not_wait_beats_serial_on_the_barbell() {
    let jobs: Vec<PoolJob> = (0..4u64)
        .map(|i| PoolJob {
            spec: WalkerSpec::Mto(MtoConfig { seed: 77 + i, ..Default::default() }),
            start: NodeId((i as u32 * 11) % 22),
            steps: 150,
        })
        .collect();
    let profile = ProviderProfile::facebook();
    let run = |mode| {
        let config = DriverConfig {
            mode,
            pipeline: PipelineConfig {
                max_in_flight: if mode == DriverMode::Serial { 1 } else { 4 },
                latency: profile.latency,
                faults: profile.faults,
                rate_limit: Some(profile.policy),
                seed: 0xBEEF,
                ..Default::default()
            },
            unique_query_budget: Some(22),
        };
        run_pool(barbell_service(), &jobs, &config).unwrap()
    };
    let serial = run(DriverMode::Serial);
    let wnw = run(DriverMode::WalkNotWait);
    assert!(
        wnw.virtual_secs < serial.virtual_secs,
        "walk-not-wait {} vs serial {}",
        wnw.virtual_secs,
        serial.virtual_secs
    );
    for (a, b) in serial.walkers.iter().zip(&wnw.walkers) {
        assert_eq!(a.history, b.history, "overlap changed the samples");
    }
    assert!(wnw.unique_queries <= 22 && serial.unique_queries <= 22, "equal budget respected");
}

#[test]
fn scheduler_reports_virtual_wall_clock_through_the_timed_interface() {
    let timed = TimedInterface::new(barbell_service(), ProviderProfile::google_plus(), 3);
    let clock = timed.clock().clone();
    let scheduler = JobScheduler::new(
        timed,
        SchedulerConfig {
            workers: 2,
            quantum: 32,
            policy: SchedulePolicy::BudgetProportional,
            ..Default::default()
        },
    )
    .with_virtual_clock(clock);
    let jobs = vec![
        JobSpec {
            id: "big".into(),
            algo: AlgoSpec::Mto(MtoConfig { seed: 1, ..Default::default() }),
            start: NodeId(0),
            step_budget: 600,
            deadline: None,
            ess: None,
        },
        JobSpec {
            id: "small".into(),
            algo: AlgoSpec::Mto(MtoConfig { seed: 2, ..Default::default() }),
            start: NodeId(11),
            step_budget: 100,
            deadline: None,
            ess: None,
        },
    ];
    let report = scheduler.run(jobs).unwrap();
    let secs = report.virtual_secs.expect("clock attached");
    assert!(secs > 0.0, "latency must surface in the report");
    // Google Plus preset: uniform latency in [0.04, 0.09] per unique
    // query, generous quota — the bill is latency, not stalls.
    let unique = report.total_unique_queries as f64;
    assert!(
        secs >= 0.04 * unique && secs <= 0.09 * unique,
        "virtual {secs:.3}s outside the latency envelope for {unique} queries"
    );
    assert!(report.outcomes.iter().all(|o| o.completed));
}
