//! Determinism regression witnesses for the hot-path rework (ISSUE 6).
//!
//! The CSR neighborhood arena, the zero-alloc overlay views, and the
//! batched RNG may not move a single sample: every walker remains a pure
//! function of `(config, seed, responses)`, and the RNG stream must stay
//! bit-identical to call-by-call draws. These tests pin end-to-end run
//! digests — walk history, estimate bits, rewiring counters, and the
//! unique-query bill — captured on the pre-arena implementation (the
//! PR 5 tree). If any hot-path change shifts a draw, a neighbor order,
//! or an estimate ULP, the digest moves and this fails loudly.

use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::walk::{RandomJumpWalk, RjConfig, SimpleRandomWalk, SrwConfig, Walker};
use mto_experiments::{build_dataset, DatasetSpec};
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService, QueryClient};

/// FNV-1a 64 over a byte stream (same constants as the serve codec).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x1_0000_01b3);
    }
    hash
}

/// Digests one finished walk: every visited node, the self-normalized
/// average-degree estimate's exact bits, and the unique-query bill.
fn digest_run<W: Walker>(w: &mut W, degrees: &[usize], unique_queries: u64) -> u64 {
    let history = w.history().to_vec();
    assert_eq!(history.len(), degrees.len());
    let (mut num, mut den) = (0.0f64, 0.0f64);
    let mut bytes = Vec::new();
    for (&v, &deg) in history.iter().zip(degrees) {
        bytes.extend_from_slice(&v.0.to_le_bytes());
        let weight = w.importance_weight(v).expect("visited node is cached");
        num += weight * deg as f64;
        den += weight;
    }
    let est = num / den;
    bytes.extend_from_slice(&est.to_bits().to_le_bytes());
    bytes.extend_from_slice(&unique_queries.to_le_bytes());
    fnv1a64(&bytes)
}

/// True degrees of every visited node, read from the walker's own cache.
fn visited_degrees<W: Walker, C: QueryClient>(w: &W, client: &C) -> Vec<usize> {
    w.history().iter().map(|&v| client.known_degree(v).expect("visited node is cached")).collect()
}

fn epinions_standin() -> mto_graph::Graph {
    build_dataset(&DatasetSpec::epinions().scaled_down(40))
}

#[test]
fn mto_run_digest_is_frozen() {
    let graph = epinions_standin();
    let mut s = MtoSampler::new(
        CachedClient::new(OsnService::with_defaults(&graph)),
        NodeId(0),
        MtoConfig { seed: 0xD16E57, ..Default::default() },
    )
    .unwrap();
    for _ in 0..4_000 {
        s.step().unwrap();
    }
    let stats = s.stats();
    let unique = s.client().unique_queries();
    let degrees = visited_degrees(&s, s.client());
    let mut digest = digest_run(&mut s, &degrees, unique);
    // Fold the rewiring counters in too: the overlay trajectory is part
    // of the witness, not just the walk.
    let mut tail = Vec::new();
    tail.extend_from_slice(&digest.to_le_bytes());
    tail.extend_from_slice(&stats.removals.to_le_bytes());
    tail.extend_from_slice(&stats.replacements.to_le_bytes());
    digest = fnv1a64(&tail);
    assert_eq!(digest, 0xf99e_606b_e21e_b1d6, "MTO end-to-end digest moved: got {digest:#018x}");
}

#[test]
fn srw_run_digest_is_frozen() {
    let graph = epinions_standin();
    let mut w = SimpleRandomWalk::new(
        CachedClient::new(OsnService::with_defaults(&graph)),
        NodeId(0),
        SrwConfig { seed: 0xD16E57, lazy: true },
    )
    .unwrap();
    for _ in 0..4_000 {
        w.step().unwrap();
    }
    let unique = w.client().unique_queries();
    let degrees = visited_degrees(&w, w.client());
    let digest = digest_run(&mut w, &degrees, unique);
    assert_eq!(digest, 0xd7de_8ae2_4cc5_a545, "SRW end-to-end digest moved: got {digest:#018x}");
}

#[test]
fn rj_run_digest_is_frozen() {
    let graph = epinions_standin();
    let mut w = RandomJumpWalk::new(
        CachedClient::new(OsnService::with_defaults(&graph)),
        NodeId(0),
        RjConfig { seed: 0xD16E57, ..Default::default() },
    )
    .unwrap();
    for _ in 0..4_000 {
        w.step().unwrap();
    }
    let unique = w.client().unique_queries();
    let degrees = visited_degrees(&w, w.client());
    let digest = digest_run(&mut w, &degrees, unique);
    assert_eq!(digest, 0x2cf8_db71_c6ec_092a, "RJ end-to-end digest moved: got {digest:#018x}");
}
