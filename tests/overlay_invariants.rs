//! Long-run invariants of the MTO overlay across graph families: the
//! overlay must stay simple, connected, degree-floored, and must never
//! lose a cross-cutting bridge.

use mto_sampler::core::mto::{CriterionView, MtoConfig, MtoSampler};
use mto_sampler::core::walk::Walker;
use mto_sampler::graph::algo::connected_components;
use mto_sampler::graph::generators::{
    barbell_graph, gnp_graph, planted_partition_graph, watts_strogatz_graph, BarbellSpec,
};
use mto_sampler::graph::{Graph, NodeId};
use mto_sampler::osn::{CachedClient, OsnService};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<(&'static str, Graph)> = Vec::new();
    out.push(("barbell", barbell_graph(BarbellSpec { clique_size: 8, bridges: 1 })));
    let pp = planted_partition_graph(40, 0.35, 0.01, &mut rng);
    out.push(("planted-partition", mto_sampler::graph::algo::largest_component(&pp).0));
    let er = gnp_graph(60, 0.12, &mut rng);
    out.push(("erdos-renyi", mto_sampler::graph::algo::largest_component(&er).0));
    out.push(("small-world", watts_strogatz_graph(70, 6, 0.2, &mut rng)));
    out
}

fn run_sampler(g: &Graph, config: MtoConfig, steps: usize) -> MtoSampler<CachedClient<OsnService>> {
    let service = OsnService::with_defaults(g);
    let mut s =
        MtoSampler::new(CachedClient::new(service), NodeId(0), config).expect("node 0 exists");
    for _ in 0..steps {
        s.step().expect("simulated interface cannot fail");
    }
    s
}

#[test]
fn overlay_stays_connected_across_families_and_views() {
    for (name, g) in families(1) {
        for view in [CriterionView::Original, CriterionView::Overlay] {
            let config = MtoConfig { criterion_view: view, seed: 3, ..Default::default() };
            let sampler = run_sampler(&g, config, 6_000);
            let overlay = sampler.overlay().materialize(&g);
            overlay.validate().expect("overlay must be a valid simple graph");
            assert_eq!(
                connected_components(&overlay).num_components(),
                1,
                "{name}/{view:?}: overlay disconnected after {} removals, {} replacements",
                sampler.stats().removals,
                sampler.stats().replacements
            );
        }
    }
}

#[test]
fn overlay_respects_min_degree_floor() {
    for (name, g) in families(2) {
        let config = MtoConfig { min_overlay_degree: 2, seed: 9, ..Default::default() };
        let sampler = run_sampler(&g, config, 6_000);
        let overlay = sampler.overlay().materialize(&g);
        // Replacement moves one edge endpoint, so a pivot can drop from 3
        // to 2 — never below the floor of 2.
        assert!(
            overlay.min_degree() >= 2,
            "{name}: overlay min degree {} below floor",
            overlay.min_degree()
        );
    }
}

#[test]
fn removals_concentrate_inside_communities() {
    // Near-clique blocks: the removal criterion needs
    // |N(u)∩N(v)| ≳ max(k) − 2, which p_in ≈ 0.95 delivers.
    let mut rng = StdRng::seed_from_u64(5);
    let g = planted_partition_graph(14, 0.95, 0.02, &mut rng);
    let g = mto_sampler::graph::algo::largest_component(&g).0;
    let config = MtoConfig { seed: 7, ..Default::default() };
    let sampler = run_sampler(&g, config, 20_000);

    // With blocks of 50, original node v belongs to block v/50; after LCC
    // relabelling we approximate via parity of the *original* id, so just
    // measure directly: a removed edge is intra-community iff both
    // endpoints are on the same side of the LCC's best sweep cut.
    let (_, membership) = mto_sampler::spectral::conductance::sweep_conductance(&g);
    let mut intra = 0usize;
    let mut inter = 0usize;
    for e in sampler.overlay().removed_edges() {
        let (u, v) = e.endpoints();
        if membership[u.index()] == membership[v.index()] {
            intra += 1;
        } else {
            inter += 1;
        }
    }
    assert!(intra + inter > 0, "no removals happened");
    assert!(
        intra >= inter * 3,
        "removals should hit dense community interiors: intra {intra}, inter {inter}"
    );
}

#[test]
fn replacement_edges_are_never_re_removed() {
    // The sampler marks Theorem-4 edges exempt from removal; after long
    // runs no added edge may appear in the removed set.
    for (name, g) in families(3) {
        let sampler = run_sampler(&g, MtoConfig { seed: 13, ..Default::default() }, 8_000);
        for e in sampler.overlay().added_edges() {
            assert!(
                !sampler.overlay().is_removed(e.small(), e.large()),
                "{name}: edge {e} both added and removed"
            );
        }
    }
}

#[test]
fn stats_match_overlay_contents() {
    let (_, g) = families(4).remove(1);
    let sampler = run_sampler(&g, MtoConfig { seed: 17, ..Default::default() }, 10_000);
    let stats = sampler.stats();
    let overlay = sampler.overlay();
    // Every replacement contributes one removal-record and one addition;
    // add/remove cancellation can only shrink the sets, never grow them.
    assert!(overlay.num_added() <= stats.replacements as usize);
    assert!(
        overlay.num_removed() <= (stats.removals + stats.replacements) as usize,
        "removed set {} exceeds removal+replacement count {}",
        overlay.num_removed(),
        stats.removals + stats.replacements
    );
}

#[test]
fn extension_discovers_at_least_as_many_removals() {
    // Theorem 5 (with optimal N* selection) dominates Theorem 3, so with
    // the same seed the extended sampler can only remove more or equal
    // edges. Run on a sparse graph where the margin matters.
    let mut rng = StdRng::seed_from_u64(21);
    let g = watts_strogatz_graph(80, 6, 0.05, &mut rng);
    let plain =
        run_sampler(&g, MtoConfig { seed: 5, extension: false, ..Default::default() }, 10_000);
    let extended =
        run_sampler(&g, MtoConfig { seed: 5, extension: true, ..Default::default() }, 10_000);
    // Paths diverge once criteria differ, so compare totals, not sets.
    assert!(
        extended.stats().removals + 5 >= plain.stats().removals,
        "extension lost removals: {} vs {}",
        extended.stats().removals,
        plain.stats().removals
    );
}
