//! End-to-end integration: all four samplers estimate aggregates of a
//! community-structured network through the restrictive interface, and the
//! importance-sampling pipeline debiases them.

use std::sync::Arc;

use mto_sampler::core::estimate::Aggregate;
use mto_sampler::experiments::datasets::{build_dataset, DatasetSpec};
use mto_sampler::experiments::driver::{run_converged, Algorithm, RunProtocol};
use mto_sampler::graph::NodeId;
use mto_sampler::osn::OsnService;

fn mini_service() -> (Arc<OsnService>, f64) {
    let graph = build_dataset(&DatasetSpec::epinions().scaled_down(30));
    let service = Arc::new(OsnService::with_defaults(&graph));
    let truth = service.true_average_degree();
    (service, truth)
}

#[test]
fn every_sampler_estimates_average_degree_within_tolerance() {
    let (service, truth) = mini_service();
    for alg in Algorithm::all() {
        let mut walker = alg.build(service.clone(), NodeId(0), 99).unwrap();
        let protocol =
            RunProtocol { geweke_threshold: 0.15, max_burn_in_steps: 25_000, sample_steps: 10_000 };
        let run =
            run_converged(walker.as_mut(), &service, Aggregate::AverageDegree, protocol).unwrap();
        let est = run.final_estimate().expect("nonzero weight mass");
        let err = (est - truth).abs() / truth;
        assert!(
            err < 0.30,
            "{}: estimate {est:.3} vs truth {truth:.3} (err {err:.3})",
            alg.label()
        );
    }
}

#[test]
fn unweighted_srw_overestimates_degree_weighted_does_not() {
    // The classic bias demo: SRW's raw samples are degree-proportional, so
    // a plain mean of sampled degrees lands near E[k²]/E[k] > E[k].
    let (service, truth) = mini_service();
    let mut walker = Algorithm::Srw.build(service.clone(), NodeId(0), 4).unwrap();
    let protocol =
        RunProtocol { geweke_threshold: 0.2, max_burn_in_steps: 20_000, sample_steps: 12_000 };
    let run = run_converged(walker.as_mut(), &service, Aggregate::AverageDegree, protocol).unwrap();

    let plain: f64 =
        run.samples.iter().map(|(s, _)| s.value).sum::<f64>() / run.samples.len() as f64;
    let weighted = run.final_estimate().unwrap();

    assert!(plain > truth * 1.3, "plain mean {plain:.3} should exceed truth {truth:.3} markedly");
    let err = (weighted - truth).abs() / truth;
    assert!(err < 0.3, "weighted estimate {weighted:.3} vs {truth:.3}");
}

#[test]
fn profile_aggregates_are_estimable_too() {
    let (service, _) = mini_service();
    let truth_age = Aggregate::AverageAge.ground_truth(&service);
    let mut walker = Algorithm::Mto.build(service.clone(), NodeId(0), 11).unwrap();
    let protocol =
        RunProtocol { geweke_threshold: 0.2, max_burn_in_steps: 20_000, sample_steps: 10_000 };
    let run = run_converged(walker.as_mut(), &service, Aggregate::AverageAge, protocol).unwrap();
    let est = run.final_estimate().unwrap();
    let err = (est - truth_age).abs() / truth_age;
    assert!(err < 0.2, "age estimate {est:.2} vs truth {truth_age:.2} (err {err:.3})");
}

#[test]
fn count_estimates_need_published_population() {
    use mto_sampler::core::estimate::count_estimate;
    let (service, _) = mini_service();
    let n = service.ground_truth().num_nodes();
    let truth_public = Aggregate::PublicProportion.ground_truth(&service) * n as f64;

    let mut walker = Algorithm::Rj.build(service.clone(), NodeId(0), 5).unwrap();
    let protocol =
        RunProtocol { geweke_threshold: 0.2, max_burn_in_steps: 15_000, sample_steps: 10_000 };
    let run =
        run_converged(walker.as_mut(), &service, Aggregate::PublicProportion, protocol).unwrap();
    let samples: Vec<_> = run.samples.iter().map(|(s, _)| *s).collect();
    let est = count_estimate(&samples, n).unwrap();
    let err = (est - truth_public).abs() / truth_public;
    assert!(err < 0.2, "COUNT(public) estimate {est:.0} vs truth {truth_public:.0} (err {err:.3})");
}

#[test]
fn query_costs_order_sensibly() {
    // MHRW wastes queries on rejected proposals; SRW does not. Both spend
    // the same per accepted move, so for equal step budgets MHRW's unique
    // cost is at least in the same ballpark but its estimate converges
    // slower. Here we only pin the invariant that costs are monotone in
    // steps and bounded by the node count.
    let (service, _) = mini_service();
    let n = service.ground_truth().num_nodes() as u64;
    for alg in Algorithm::all() {
        let mut walker = alg.build(service.clone(), NodeId(0), 1).unwrap();
        walker.run(200).unwrap();
        let cost_200 = walker.query_cost();
        walker.run(800).unwrap();
        let cost_1000 = walker.query_cost();
        assert!(cost_200 <= cost_1000, "{}", alg.label());
        assert!(cost_1000 <= n, "{}: cost {cost_1000} exceeds |V| = {n}", alg.label());
    }
}
