//! Deterministic partitioning of a job list across shard workers.
//!
//! The fleet's determinism contract starts here: which shard owns which
//! job is a pure function of `(job count, shard count)` — round-robin by
//! submission index — so a request replayed with the same `shards W`
//! always lands the same jobs on the same workers, and results can be
//! compared bit-for-bit across runs.

/// A partition of `num_jobs` jobs across `num_shards` shard workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardPlan {
    assignments: Vec<Vec<usize>>,
}

impl ShardPlan {
    /// Round-robin partition: job `i` goes to shard `i % num_shards`.
    /// Shards never exceed the job count (trailing empty shards are
    /// dropped), so every planned shard has work.
    pub fn round_robin(num_jobs: usize, num_shards: usize) -> Self {
        let shards = num_shards.max(1).min(num_jobs.max(1));
        let mut assignments = vec![Vec::new(); shards];
        for job in 0..num_jobs {
            assignments[job % shards].push(job);
        }
        ShardPlan { assignments }
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.assignments.len()
    }

    /// Job indices owned by shard `s`, ascending.
    pub fn jobs_of(&self, s: usize) -> &[usize] {
        &self.assignments[s]
    }

    /// The shard owning job `job`.
    pub fn shard_of(&self, job: usize) -> usize {
        job % self.assignments.len()
    }

    /// Iterates `(shard, jobs)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &[usize])> {
        self.assignments.iter().enumerate().map(|(s, jobs)| (s, jobs.as_slice()))
    }

    /// Largest shard minus smallest shard — at most 1 for round-robin.
    pub fn imbalance(&self) -> usize {
        let sizes: Vec<usize> = self.assignments.iter().map(Vec::len).collect();
        let max = sizes.iter().copied().max().unwrap_or(0);
        let min = sizes.iter().copied().min().unwrap_or(0);
        max - min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_covers_every_job_exactly_once() {
        let plan = ShardPlan::round_robin(10, 4);
        assert_eq!(plan.num_shards(), 4);
        let mut all: Vec<usize> = plan.iter().flat_map(|(_, jobs)| jobs.to_vec()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..10).collect::<Vec<_>>());
        assert!(plan.imbalance() <= 1);
        for (s, jobs) in plan.iter() {
            for &j in jobs {
                assert_eq!(plan.shard_of(j), s);
            }
        }
    }

    #[test]
    fn more_shards_than_jobs_collapses_to_one_job_per_shard() {
        let plan = ShardPlan::round_robin(3, 8);
        assert_eq!(plan.num_shards(), 3, "empty shards are dropped");
        assert!(plan.iter().all(|(_, jobs)| jobs.len() == 1));
    }

    #[test]
    fn degenerate_inputs_stay_well_formed() {
        assert_eq!(ShardPlan::round_robin(0, 4).num_shards(), 1);
        assert_eq!(ShardPlan::round_robin(5, 0).num_shards(), 1, "shards clamp to 1");
        assert_eq!(ShardPlan::round_robin(5, 1).jobs_of(0), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn plans_are_pure_functions_of_their_inputs() {
        assert_eq!(ShardPlan::round_robin(7, 3), ShardPlan::round_robin(7, 3));
    }
}
