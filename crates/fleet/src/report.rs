//! What a fleet run produced: per-epoch gossip accounting plus the same
//! per-job outcomes the single-client scheduler reports.

use mto_core::mto::RewireStats;
use mto_net::PipelineStats;
use mto_obs::{MetricsRegistry, TraceSink};
use mto_qos::AdmissionDecision;
use mto_serve::history::{fnv1a64, HistoryStore};
use mto_serve::scheduler::JobOutcome;

/// Accounting of one epoch barrier.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EpochReport {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Fleet-wide unique queries (sum over shard clients) at the
    /// barrier.
    pub fleet_unique_queries: u64,
    /// Responses shards adopted from each other's crawls at this
    /// barrier — queries nobody has to re-pay: the gossip dedup saving.
    pub adopted_responses: u64,
    /// Conflicts the gossip merges resolved keep-first at this barrier
    /// (nonzero means two shards disagreed about the network).
    pub merge_conflicts: u64,
    /// Max per-shard virtual seconds at the barrier — the fleet's
    /// makespan so far.
    pub makespan_secs: f64,
    /// Budget units finished jobs returned to the ledger pool at this
    /// barrier (budgeted runs only).
    pub ledger_reclaimed: u64,
    /// Budget units the ledger granted from the pool to dry jobs at
    /// this barrier (budgeted runs only).
    pub ledger_granted: u64,
}

/// Aggregate [`mto_qos::BudgetLedger`] accounting of a budgeted run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerSummary {
    /// The fleet-wide budget the request asked for.
    pub total: u64,
    /// Units spent across every job account — each job's unique demand,
    /// a shard-invariant figure (identical across `W`).
    pub spent: u64,
    /// Units returned to the pool by finished jobs, total.
    pub reclaimed: u64,
    /// Units re-granted from the pool to dry jobs, total.
    pub granted: u64,
    /// Units left in the pool at the end of the run.
    pub pool: u64,
    /// Jobs terminated early because their slice ran dry on an empty
    /// pool.
    pub cut_jobs: u64,
}

/// Observability the coordinator collected when
/// [`crate::FleetConfig::obs`] is on: the fleet-wide metrics registry
/// (per-shard registries merged at every epoch barrier, like the
/// history gossip) and the deterministic trace.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FleetObsData {
    /// Counters, gauges, and histograms merged across shards. Timing
    /// histograms (queue wait, service time) legitimately vary with the
    /// shard count; the deterministic-plane figures do not.
    pub registry: MetricsRegistry,
    /// Span/point/gossip events of the deterministic plane, stamped
    /// with epoch-ordinal virtual time and threaded with causal
    /// structure (span ids, parent links, cross-job adoption edges) —
    /// byte-identical across shard counts once encoded
    /// (`mto-trace/v2`).
    pub trace: TraceSink,
}

/// Aggregate result of one [`crate::FleetCoordinator::run`].
#[derive(Clone, Debug, Default)]
pub struct FleetReport {
    /// Per-job outcomes, in submission order — the same shape (and, for
    /// equal inputs, the same *content*) as
    /// [`mto_serve::scheduler::ServeReport::outcomes`].
    pub outcomes: Vec<JobOutcome>,
    /// Shards that ran.
    pub shards: usize,
    /// Epoch barriers crossed.
    pub epochs: Vec<EpochReport>,
    /// Fleet-wide unique-query bill: the sum over shard clients.
    pub total_unique_queries: u64,
    /// Responses adopted through gossip, total.
    pub gossip_adopted_responses: u64,
    /// Keep-first merge conflicts, total (epoch gossip plus the final
    /// union fold).
    pub merge_conflicts: u64,
    /// Max per-shard virtual seconds at the end of the run.
    pub makespan_secs: f64,
    /// Sum of rewiring counters across all rewiring jobs.
    pub aggregate_stats: RewireStats,
    /// The fleet-wide union history (cache union of every shard plus the
    /// walkers' overlay deltas) — what `save-history` persists and what
    /// a journal absorbs.
    pub union_store: HistoryStore,
    /// Budget-ledger accounting (`Some` iff the run was budgeted).
    pub ledger: Option<LedgerSummary>,
    /// The QoS admission review of every submitted job, in submission
    /// order (non-admitted jobs report placeholder outcomes).
    pub admission: Vec<AdmissionDecision>,
    /// Per-shard pipeline counters summed fleet-wide: ramp-ups/downs,
    /// latency backoffs, token-bucket stalls, retries, timeouts.
    pub pipeline_stats: PipelineStats,
    /// Metrics and trace, when the run was observed
    /// ([`crate::FleetConfig::obs`]).
    pub obs: Option<FleetObsData>,
    /// Wall-clock telemetry (`Some` iff [`crate::FleetConfig::wall`]):
    /// per-epoch/per-shard service time, barrier waits, gossip-merge
    /// cost, pipeline replay time. Deliberately **not** covered by
    /// [`FleetReport::results_digest`] or any deterministic surface —
    /// wall figures vary run to run by nature.
    pub wall: Option<mto_obs::wallclock::WallClockRegistry>,
    /// Estimator-quality figures (`Some` iff
    /// [`crate::FleetConfig::quality`]): per-job streaming ESS, windowed
    /// Geweke z, SLO status, and the cross-chain R-hat, folded from slot
    /// sample series at every epoch barrier. Every figure is a pure
    /// function of the walks, so the report — like the `metric
    /// quality-*` lines derived from it — is byte-identical across shard
    /// counts.
    pub quality: Option<mto_obs::quality::QualityReport>,
}

impl FleetReport {
    /// A canonical digest of the fleet's *results* — everything the
    /// determinism contract covers (samples, estimates, rewire stats),
    /// and nothing it does not (bills and timing legitimately vary with
    /// `W` and gossip). Two runs are result-identical iff their digests
    /// are byte-identical.
    pub fn results_digest(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for o in &self.outcomes {
            let mut walk = String::new();
            for v in &o.history {
                write!(walk, "{},", v.0).expect("string write");
            }
            write!(
                out,
                "job={} algo={} steps={} completed={} final={} visits={} walk-fnv={:016x}",
                o.id,
                o.algorithm,
                o.steps,
                u8::from(o.completed),
                o.final_node.0,
                o.history.len(),
                fnv1a64(walk.as_bytes())
            )
            .expect("string write");
            if let Some(est) = o.avg_degree_estimate {
                // Exact bit pattern, not a rounded rendering: the
                // contract is bit-identical estimates.
                write!(out, " est-bits={:016x}", est.to_bits()).expect("string write");
            }
            if let Some(s) = o.stats {
                write!(
                    out,
                    " removals={} replacements={} rejections={}",
                    s.removals, s.replacements, s.replacement_rejections
                )
                .expect("string write");
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::NodeId;

    fn outcome(id: &str, est: Option<f64>) -> JobOutcome {
        JobOutcome {
            id: id.into(),
            algorithm: "MTO",
            steps: 10,
            completed: true,
            final_node: NodeId(3),
            history: vec![NodeId(0), NodeId(1), NodeId(3)],
            stats: Some(RewireStats { removals: 2, replacements: 1, replacement_rejections: 0 }),
            scan: None,
            mh: None,
            avg_degree_estimate: est,
            finished_secs: Some(1.25),
        }
    }

    #[test]
    fn digest_reflects_results_not_bills() {
        let mut a = FleetReport {
            outcomes: vec![outcome("x", Some(4.25))],
            total_unique_queries: 10,
            ..Default::default()
        };
        let b = FleetReport {
            outcomes: vec![outcome("x", Some(4.25))],
            total_unique_queries: 99, // different bill, same results
            shards: 8,
            makespan_secs: 123.0,
            ..Default::default()
        };
        assert_eq!(a.results_digest(), b.results_digest());
        a.outcomes[0].history.push(NodeId(5));
        assert_ne!(a.results_digest(), b.results_digest(), "walks are covered by the digest");
    }

    #[test]
    fn digest_distinguishes_estimates_at_full_precision() {
        let a = FleetReport { outcomes: vec![outcome("x", Some(4.25))], ..Default::default() };
        let b =
            FleetReport { outcomes: vec![outcome("x", Some(4.25 + 1e-15))], ..Default::default() };
        assert_ne!(a.results_digest(), b.results_digest(), "bit-level estimate fidelity");
    }
}
