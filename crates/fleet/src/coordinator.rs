//! The fleet coordinator: shard workers in lockstep epochs, history
//! gossip at every barrier — now with a QoS brain above the shards.
//!
//! A [`crate::ShardPlan`] gives each of `W` shard workers its own slice
//! of the job list. Each shard owns a **private** [`CachedClient`] over
//! its own interface instance, its own [`QueryPipeline`] on its own
//! [`VirtualClock`] (the shard's wall-clock model: every unique query
//! the shard pays is replayed through the pipeline with up to `K` — or
//! adaptively fewer/more — requests in flight), and its sessions'
//! private overlays. Shards therefore never contend on a lock; the price
//! is that two shards can *re-pay* for the same node.
//!
//! That price is what the **epoch gossip** recovers: the coordinator
//! steps every shard through its epoch grants on
//! [`std::thread::scope`] workers, and at the barrier folds every
//! shard's [`HistoryStore`] into a fleet-wide union (pairwise
//! [`HistoryStore::merge`], keep-first, conflicts counted) that is
//! redistributed to every shard — so from the next epoch on, nobody
//! re-pays for a node any shard has already bought ("Leveraging History
//! for Faster Sampling of Online Social Networks", arXiv:1505.00079,
//! applied *between* concurrent crawlers instead of between runs).
//!
//! The **QoS layer** (`mto-qos`) decides which work deserves those
//! epochs and budgets, through three shard-invariant mechanisms:
//!
//! * **admission** — before any shard is built, every job is reviewed
//!   against its deadline and the fleet budget
//!   ([`AdmissionController`]); rejected and deferred jobs never run and
//!   report placeholder outcomes;
//! * **EDF planning** — under
//!   [`SchedulePolicy::EarliestDeadlineFirst`] each epoch's fleet-wide
//!   step capacity is dealt out earliest-deadline-first with aging
//!   ([`mto_qos::plan_epoch`]), so urgent jobs finish in earlier epochs
//!   (at earlier virtual times) while the fair policies keep the
//!   historical lockstep grants;
//! * **the budget ledger** — `fleet_budget` is split per job at
//!   admission, spent against each job's *unique demand* (distinct
//!   nodes its own walk requested — a pure function of the walk, no
//!   matter which shard runs it), and rebalanced at every barrier
//!   (releases to the pool, proportional grants to dry jobs). A job
//!   whose slice runs dry suspends until a rebalance refills it, or is
//!   cut (`completed = false`) when the pool cannot.
//!
//! **Determinism contract.** Walkers are pure functions of
//! `(config, responses)` and responses are pure functions of the
//! network; admission, planning, and the ledger are pure functions of
//! job-local state. So per-job results — walks, estimates, rewire
//! stats, budget cut points — are bit-identical regardless of shard
//! count, worker interleaving, and gossip merge order; `W = 1`
//! reproduces the single-client
//! [`mto_serve::scheduler::JobScheduler`] outcomes exactly (under the
//! fair policies with no budget). Only the *bill* (unique queries) and
//! the *timing* (virtual seconds) depend on `W` and gossip — that is
//! the whole point of measuring them.

use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap, HashSet};

use mto_core::mto::RewireStats;
use mto_core::walk::Walker;
use mto_graph::NodeId;
use mto_net::{Concurrency, PipelineConfig, ProviderProfile, QueryPipeline};
use mto_osn::{CachedClient, SharedClient, SocialNetworkInterface, VirtualClock};
use mto_qos::{
    plan_epoch, AdmissionController, BudgetLedger, CostPredictor, DeadlinePolicy, LiveJob,
    PlannerConfig,
};
use mto_serve::error::{Result, ServeError};
use mto_serve::history::HistoryStore;
use mto_serve::scheduler::{finalize_session, JobOutcome, SchedulePolicy};
use mto_serve::session::{JobSpec, SampleObserver, SamplerSession, SessionState};

use mto_net::PipelineStats;
use mto_obs::MetricsRegistry;

use crate::plan::ShardPlan;
use crate::report::{EpochReport, FleetObsData, FleetReport, LedgerSummary};

/// The order in which per-shard stores are folded into the gossip
/// union. Merge is keep-first, so the order could only matter when
/// shards *disagree* about the network — the determinism proptests run
/// both orders to witness that results never depend on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeOrder {
    /// Fold shard 0 first.
    #[default]
    Forward,
    /// Fold shard `W−1` first.
    Reverse,
}

/// Tuning of a [`FleetCoordinator`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetConfig {
    /// Shard workers `W` (clamped to the job count; ≥ 1).
    pub shards: usize,
    /// Steps each job takes between gossip barriers (≥ 1) — the base
    /// quantum the epoch planner deals out.
    pub epoch_quantum: usize,
    /// Whether the epoch barrier gossips history (disable to measure the
    /// isolated-shards baseline the `fleet` experiment compares against).
    pub gossip: bool,
    /// Gossip fold order (see [`MergeOrder`]).
    pub merge_order: MergeOrder,
    /// Provider preset for the per-shard pipelines (latency + quota +
    /// faults); `None` models a plain 50 ms constant-latency provider
    /// with no quota.
    pub provider: Option<ProviderProfile>,
    /// Per-shard pipeline lanes (max requests in flight).
    pub max_in_flight: usize,
    /// Fixed or adaptive in-flight control for the per-shard pipelines.
    pub concurrency: Concurrency,
    /// Base seed of the per-shard latency RNGs (shard `s` uses
    /// `seed + s`).
    pub seed: u64,
    /// How epoch step capacity is allocated among live jobs:
    /// the fair policies grant lockstep quanta (the historical
    /// behavior), [`SchedulePolicy::EarliestDeadlineFirst`] front-loads
    /// deadline jobs (see [`mto_qos::plan_epoch`]).
    pub policy: SchedulePolicy,
    /// Fleet-wide unique-query budget, split per job at admission by
    /// the [`BudgetLedger`] and rebalanced at epoch barriers. `None`
    /// runs unbudgeted.
    pub fleet_budget: Option<u64>,
    /// How admission treats predicted-unmeetable deadlines.
    pub deadline_policy: DeadlinePolicy,
    /// Collect observability: per-shard metrics registries merged at
    /// every epoch barrier, pipeline queue-wait/service-time histograms,
    /// and the deterministic `mto-trace/v2` trace. Off by default — the
    /// disabled configuration adds no work to the epoch loop.
    pub obs: bool,
    /// Collect the wall-clock telemetry plane
    /// ([`mto_obs::wallclock`]): per-epoch/per-shard service wall time,
    /// barrier-wait time, gossip-merge cost, and per-shard pipeline
    /// replay time, reported in [`FleetReport::wall`]. Independent of
    /// [`FleetConfig::obs`] and excluded from every deterministic
    /// surface — results, traces, and `metric` figures are
    /// byte-identical whether this is on or off.
    pub wall: bool,
    /// Collect the estimator-quality plane ([`mto_obs::quality`]):
    /// per-job streaming ESS, windowed Geweke z, and the cross-chain
    /// R-hat, folded from per-slot sample series (the degree of every
    /// node the walk visits — a pure function of the walk) at every
    /// epoch barrier, reported in [`FleetReport::quality`]. Jobs may
    /// additionally declare `ess=N` SLOs: the epoch planner stops
    /// granting a converged job's quanta and its remaining budget is
    /// released to the ledger at the same barrier. Off by default; the
    /// disabled configuration adds no work to the epoch loop, and a
    /// quality run without SLOs produces byte-identical results,
    /// traces, and non-quality `metric` lines to a run without it.
    pub quality: bool,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            epoch_quantum: 64,
            gossip: true,
            merge_order: MergeOrder::Forward,
            provider: None,
            max_in_flight: 8,
            concurrency: Concurrency::Fixed,
            seed: 0xF1EE7,
            policy: SchedulePolicy::RoundRobin,
            fleet_budget: None,
            deadline_policy: DeadlinePolicy::Optimistic,
            obs: false,
            wall: false,
            quality: false,
        }
    }
}

/// The trace stamp of epoch `e`: the epoch ordinal is the finest
/// shard-invariant clock the lockstep fleet has, scaled so the timeline
/// reads as one virtual second per epoch.
fn epoch_t_us(epoch: usize) -> u64 {
    (epoch as u64).saturating_mul(1_000_000)
}

impl FleetConfig {
    fn pipeline_config(&self, shard: usize) -> PipelineConfig {
        let base = PipelineConfig {
            max_in_flight: self.max_in_flight.max(1),
            concurrency: self.concurrency,
            seed: self.seed.wrapping_add(shard as u64),
            ..Default::default()
        };
        match self.provider {
            Some(p) => PipelineConfig {
                latency: p.latency,
                faults: p.faults,
                rate_limit: Some(p.policy),
                ..base
            },
            None => base,
        }
    }
}

/// One admitted job's session plus its QoS bookkeeping.
struct Slot<I: SocialNetworkInterface> {
    /// Index into the *submitted* job list (outcome ordering).
    orig: usize,
    /// Index into the *admitted* job list (ledger/planner accounts).
    account: usize,
    session: SamplerSession<I>,
    /// Distinct nodes this job's walk has visited — the shard-invariant
    /// spend metric of the budget ledger (tracked only when budgeted).
    demand: HashSet<NodeId>,
    /// History prefix already folded into `demand`.
    processed: usize,
    /// Steps taken as of the last barrier (for calibration deltas).
    steps_seen: usize,
    /// Suspended by an exhausted ledger slice (resumes on re-grant).
    suspended: bool,
    /// Terminated by the budget: the pool could not refill its slice.
    cut: bool,
    /// Shard-clock time at the barrier after the job's last step.
    finished_secs: Option<f64>,
    /// Cursor into the walk history for the quality plane's sample
    /// series (tracked only when [`FleetConfig::quality`]).
    observer: SampleObserver,
    /// The job's `ess=N` SLO latched: the quality plane judged the walk
    /// converged, so the planner stops granting it quanta and the
    /// ledger treats it as finished (outcome reports `completed`).
    quality_met: bool,
}

impl<I: SocialNetworkInterface> Slot<I> {
    /// Folds newly visited history into the demand set, returning the
    /// cumulative unique demand.
    fn refresh_demand(&mut self) -> u64 {
        let history = self.session.walker().history();
        for &v in &history[self.processed.min(history.len())..] {
            self.demand.insert(v);
        }
        self.processed = history.len();
        self.demand.len() as u64
    }

    fn done(&self) -> bool {
        self.cut || self.quality_met || self.session.state() == SessionState::Completed
    }
}

/// Derives the causal cross-job adoption edges carried by the trace's
/// `gossip` records: job *B* adopted node `v` at a barrier if *B*'s walk
/// visited `v` after some job *A*'s walk had already paid for it.
///
/// The per-shard cache adoption counts gossiped at the same barrier are
/// a `W`-dependent figure (which shard paid first depends on the job
/// placement), so they live in the registry's timing plane. These edges
/// instead are a pure function of the walk histories — themselves
/// byte-identical across shard counts — folded in ascending account
/// order, so the traced edge multiset is shard-invariant and safe for
/// the byte-identity contract.
struct CausalGossip {
    /// First account whose walk visited each node.
    first_owner: HashMap<NodeId, usize>,
    /// Nodes each account's own walk already visited (revisits and
    /// self-adoptions are never edges).
    seen: Vec<HashSet<NodeId>>,
    /// History prefix already folded, per account.
    cursors: Vec<usize>,
    /// Total adoptions across all barriers.
    total: u64,
}

impl CausalGossip {
    fn new(accounts: usize) -> Self {
        CausalGossip {
            first_owner: HashMap::new(),
            seen: vec![HashSet::new(); accounts],
            cursors: vec![0; accounts],
            total: 0,
        }
    }

    /// Folds every account's new history suffix (ascending account
    /// order) and returns this barrier's adoption edges
    /// `(owner, adopter, count)`, sorted by `(owner, adopter)`.
    fn barrier(&mut self, histories: &[&[NodeId]]) -> Vec<(usize, usize, u64)> {
        let mut edges: BTreeMap<(usize, usize), u64> = BTreeMap::new();
        for (account, history) in histories.iter().enumerate() {
            for &v in &history[self.cursors[account].min(history.len())..] {
                if !self.seen[account].insert(v) {
                    continue;
                }
                match self.first_owner.entry(v) {
                    Entry::Vacant(slot) => {
                        slot.insert(account);
                    }
                    Entry::Occupied(owner) => {
                        let owner = *owner.get();
                        if owner != account {
                            *edges.entry((owner, account)).or_insert(0) += 1;
                            self.total += 1;
                        }
                    }
                }
            }
            self.cursors[account] = history.len();
        }
        edges.into_iter().map(|((from, to), count)| (from, to, count)).collect()
    }
}

/// One shard worker: private client, private pipeline, private clock,
/// and the slots of its assigned jobs.
struct Shard<I: SocialNetworkInterface> {
    client: SharedClient<I>,
    pipeline: QueryPipeline<I>,
    /// Slots in ascending original-job order.
    slots: Vec<Slot<I>>,
    /// Cached node ids at the last barrier (ascending) — the diff basis
    /// for "which nodes did *this shard pay for* this epoch".
    known: Vec<NodeId>,
    /// Wall plane: this epoch's self-timed service (`Some` iff
    /// [`FleetConfig::wall`]). The shard accumulates on its own thread;
    /// the coordinator takes and keys it after the barrier, so the hot
    /// path needs no locks and no knowledge of its epoch/shard index.
    wall: Option<mto_obs::WallStats>,
    error: Option<ServeError>,
}

impl<I: SocialNetworkInterface> Shard<I> {
    fn refresh_known(&mut self) {
        self.known = self.client.with(|c| c.cached_nodes().collect());
    }

    /// Advances every slot by its epoch grant, then replays the nodes
    /// this shard newly paid for through its pipeline — the shard's
    /// wall-clock bill for the epoch. Gossip-imported nodes are already
    /// in `known` and cost no virtual time here: nobody re-pays them.
    /// `grants` is indexed by ledger account.
    fn run_epoch(&mut self, grants: &[usize]) {
        let timer = self.wall.is_some().then(mto_obs::WallClockScope::start);
        self.run_epoch_inner(grants);
        if let (Some(wall), Some(timer)) = (self.wall.as_mut(), timer) {
            wall.absorb(timer.stop());
        }
    }

    fn run_epoch_inner(&mut self, grants: &[usize]) {
        for slot in &mut self.slots {
            let steps = grants[slot.account];
            if steps == 0 {
                continue;
            }
            if let Err(e) = slot.session.advance(steps) {
                self.error = Some(e);
                return;
            }
        }
        let now: Vec<NodeId> = self.client.with(|c| c.cached_nodes().collect());
        // Ascending-sorted set difference: nodes cached now but unknown
        // at the last barrier.
        let mut old = self.known.iter().peekable();
        for &v in &now {
            while old.peek().is_some_and(|&&o| o < v) {
                old.next();
            }
            if old.peek() != Some(&&v) {
                self.pipeline.submit(v);
            }
        }
        self.pipeline.drain();
        self.known = now;
    }
}

/// Runs a job list as a sharded fleet (see the module docs).
pub struct FleetCoordinator<I, F> {
    factory: F,
    config: FleetConfig,
    warm_start: Option<HistoryStore>,
    _marker: std::marker::PhantomData<fn() -> I>,
}

impl<I, F> FleetCoordinator<I, F>
where
    I: SocialNetworkInterface + Send + Sync,
    F: Fn(usize) -> I,
{
    /// A coordinator whose shard `s` crawls through `factory(s)`. The
    /// factory must be deterministic — every shard must see the *same
    /// network* (instances may differ, answers may not).
    pub fn new(factory: F, config: FleetConfig) -> Self {
        FleetCoordinator { factory, config, warm_start: None, _marker: std::marker::PhantomData }
    }

    /// Warm-starts every shard from a persisted history: imported nodes
    /// are free for all shards from step one (and discount every
    /// admission-time cost prediction).
    pub fn with_warm_start(mut self, store: HistoryStore) -> Self {
        self.warm_start = Some(store);
        self
    }

    /// Runs `jobs` to completion (or to their budget slices) and reports
    /// per-epoch gossip and ledger accounting alongside the per-job
    /// outcomes.
    pub fn run(&self, jobs: Vec<JobSpec>) -> Result<FleetReport> {
        if jobs.is_empty() {
            return Ok(FleetReport { shards: 0, ..Default::default() });
        }
        // Validate up front: admission and planning consume specs before
        // any `SamplerSession::create` would (sessions validate on
        // creation, but rejected/deferred jobs never reach one).
        for spec in &jobs {
            spec.validate().map_err(|message| ServeError::Request { line: 0, message })?;
        }

        // ── Admission: a pure function of (jobs, history, budget), so it
        // commutes with sharding — every W sees the same admitted set.
        let mut predictor = CostPredictor::new((self.factory)(0).num_users_hint());
        if let Some(p) = &self.config.provider {
            predictor = predictor.with_provider(p);
        }
        let decisions = AdmissionController::new(self.config.deadline_policy).review(
            &predictor,
            &jobs,
            self.warm_start.as_ref(),
            self.config.fleet_budget,
        );
        let admitted: Vec<usize> =
            decisions.iter().filter(|d| d.verdict.admitted()).map(|d| d.job_index).collect();
        let mut ledger = self.config.fleet_budget.map(|budget| {
            let predicted: Vec<u64> =
                admitted.iter().map(|&i| decisions[i].predicted_queries).collect();
            BudgetLedger::split(budget, &predicted)
        });
        let budgeted = ledger.is_some();

        // ── Quality plane: one fleet-wide accumulator. Jobs are
        // registered in account order so the figures (and the trace
        // stamps derived from the id-ordered iteration) cover every
        // admitted job even before its first sample. Slot sample series
        // are folded in at every barrier; because a job runs whole on
        // one shard and its series is a pure function of its walk, the
        // fold commutes with sharding (`proptest_quality`).
        let mut quality = self.config.quality.then(mto_obs::quality::QualityAccumulator::new);
        if let Some(acc) = quality.as_mut() {
            for &orig in &admitted {
                acc.register(&jobs[orig].id, jobs[orig].ess);
            }
        }

        // ── Observability. Every trace event below is emitted from this
        // serial control path, stamped with epoch-ordinal virtual time,
        // and derived from shard-invariant state only (grants, demand,
        // ledger moves, step counts) — so encoded traces are
        // byte-identical across shard counts. The registry additionally
        // absorbs timing-plane figures (queue-wait/service-time
        // histograms, gossip savings) that legitimately vary with `W`.
        let mut obs = if self.config.obs { Some(FleetObsData::default()) } else { None };
        if let Some(obs) = obs.as_mut() {
            for d in &decisions {
                obs.trace.point(
                    0,
                    &format!("admission-{}-{}", d.id, d.verdict.name()),
                    d.predicted_queries,
                );
            }
            if let Some(ledger) = ledger.as_ref() {
                obs.trace.point(0, "ledger-split", ledger.total());
                for (account, &orig) in admitted.iter().enumerate() {
                    obs.trace.point(
                        0,
                        &format!("ledger-allowance-{}", jobs[orig].id),
                        ledger.account(account).allowance,
                    );
                }
            }
        }

        // Causal gossip edges are derived from walk histories (pure
        // functions of the jobs), so they are W-invariant and safe to
        // trace even though per-shard cache adoption counts are not.
        // `gossip = false` runs isolated shards: nothing is adopted, so
        // no edges are traced either — on any W.
        let mut causal = if self.config.obs && self.config.gossip {
            Some(CausalGossip::new(admitted.len()))
        } else {
            None
        };

        let plan = ShardPlan::round_robin(admitted.len(), self.config.shards);
        let quantum = self.config.epoch_quantum.max(1);
        let planner = PlannerConfig { quantum, ..Default::default() };

        // Build shards up front, in shard order, slots in ascending
        // admitted order — start-node queries charge deterministically.
        let mut shards: Vec<Shard<I>> = Vec::with_capacity(plan.num_shards());
        let mut slot_of_account: Vec<(usize, usize)> = vec![(0, 0); admitted.len()];
        if !admitted.is_empty() {
            for (s, positions) in plan.iter() {
                let inner = (self.factory)(s);
                let client = match &self.warm_start {
                    Some(store) => SharedClient::new(store.warm_start(inner)?),
                    None => SharedClient::new(CachedClient::new(inner)),
                };
                let mut pipeline = QueryPipeline::with_clock(
                    (self.factory)(s),
                    self.config.pipeline_config(s),
                    VirtualClock::new(),
                );
                if self.config.obs {
                    pipeline.enable_obs();
                }
                if self.config.wall {
                    pipeline.enable_wall();
                }
                let mut slots = Vec::with_capacity(positions.len());
                for &account in positions {
                    let orig = admitted[account];
                    slot_of_account[account] = (s, slots.len());
                    slots.push(Slot {
                        orig,
                        account,
                        session: SamplerSession::create(client.clone(), jobs[orig].clone())?,
                        demand: HashSet::new(),
                        processed: 0,
                        steps_seen: 0,
                        suspended: false,
                        cut: false,
                        finished_secs: None,
                        observer: SampleObserver::new(),
                        quality_met: false,
                    });
                }
                let mut shard = Shard {
                    client,
                    pipeline,
                    slots,
                    known: Vec::new(),
                    wall: self.config.wall.then(mto_obs::WallStats::default),
                    error: None,
                };
                shard.refresh_known();
                // The seed position is demand too: charge it before the
                // first epoch so a zero-step job still bills its start.
                if budgeted {
                    for slot in &mut shard.slots {
                        slot.refresh_demand();
                    }
                }
                shards.push(shard);
            }
        }
        if let Some(ledger) = ledger.as_mut() {
            for &(s, pos) in &slot_of_account {
                let slot = &mut shards[s].slots[pos];
                let demand = slot.demand.len() as u64;
                if let Some(obs) = obs.as_mut() {
                    if demand > 0 {
                        obs.trace.point(
                            0,
                            &format!("ledger-charge-{}", slot.session.spec().id),
                            demand,
                        );
                    }
                }
                if ledger.charge(slot.account, demand)
                    && slot.session.state() != SessionState::Completed
                {
                    slot.suspended = true;
                    slot.session.pause();
                    if let Some(obs) = obs.as_mut() {
                        obs.trace.point(0, &format!("suspend-{}", slot.session.spec().id), demand);
                    }
                }
            }
        }

        // Seed positions are causal demand too: a job starting on (or
        // instantly revisiting) a node another walk already owns adopts
        // it from epoch zero, before any span opens.
        if let (Some(obs), Some(causal)) = (obs.as_mut(), causal.as_mut()) {
            let histories: Vec<&[NodeId]> = slot_of_account
                .iter()
                .map(|&(s, pos)| shards[s].slots[pos].session.walker().history())
                .collect();
            for (from, to, count) in causal.barrier(&histories) {
                obs.trace.gossip(
                    0,
                    &format!("job-{}", jobs[admitted[from]].id),
                    &format!("job-{}", jobs[admitted[to]].id),
                    count,
                );
            }
        }

        // ── Epoch loop: planned grants, parallel stepping, serial QoS
        // accounting and gossip at the barrier.
        let mut wall =
            if self.config.wall { Some(mto_obs::WallClockRegistry::new()) } else { None };
        let mut epochs = Vec::new();
        let mut total_adopted = 0u64;
        let mut total_conflicts = 0u64;
        let mut total_reclaimed = 0u64;
        let mut total_granted = 0u64;
        let mut starved: Vec<u32> = vec![0; admitted.len()];
        let mut released: Vec<bool> = vec![false; admitted.len()];
        let mut epoch = 0usize;
        loop {
            // The planner's view of every admitted job, by account.
            let live: Vec<LiveJob> = slot_of_account
                .iter()
                .map(|&(s, pos)| {
                    let slot = &shards[s].slots[pos];
                    LiveJob {
                        remaining_steps: if slot.done() {
                            0
                        } else {
                            slot.session.steps_remaining()
                        },
                        deadline: slot.session.spec().deadline,
                        starved_epochs: starved[slot.account],
                        suspended: slot.suspended,
                    }
                })
                .collect();
            let any_open = live.iter().any(|j| j.remaining_steps > 0);
            if !any_open {
                break;
            }
            let any_runnable = live.iter().any(|j| !j.suspended && j.remaining_steps > 0);
            if !any_runnable {
                // Every remaining job is suspended on an empty pool (a
                // rebalance ran at the last barrier): cut them.
                for &(s, pos) in &slot_of_account {
                    let cut_at = shards[s].pipeline.clock().now();
                    let slot = &mut shards[s].slots[pos];
                    if slot.suspended && !slot.done() {
                        slot.cut = true;
                        slot.finished_secs = Some(cut_at);
                        if let Some(obs) = obs.as_mut() {
                            obs.trace.point(
                                epoch_t_us(epoch),
                                &format!("cut-{}", slot.session.spec().id),
                                slot.session.steps_taken() as u64,
                            );
                        }
                    }
                }
                break;
            }
            let grants = plan_epoch(self.config.policy, &planner, &live);
            for (account, job) in live.iter().enumerate() {
                if !job.suspended && job.remaining_steps > 0 {
                    starved[account] = if grants[account] == 0 { starved[account] + 1 } else { 0 };
                }
            }

            let mut steps_before: Vec<usize> = Vec::new();
            let mut epoch_steps = 0u64;
            if let Some(obs) = obs.as_mut() {
                let t = epoch_t_us(epoch);
                obs.trace.enter(t, &format!("epoch-{epoch}"));
                for (account, job) in live.iter().enumerate() {
                    if grants[account] == 0 {
                        continue;
                    }
                    let (s, pos) = slot_of_account[account];
                    let id = &shards[s].slots[pos].session.spec().id;
                    obs.trace.point(t, &format!("grant-{id}"), grants[account] as u64);
                    // An EDF aging promotion is visible in the plan's own
                    // inputs: a job starved past the threshold that got a
                    // grant this epoch was promoted ahead of every
                    // deadline.
                    if self.config.policy == SchedulePolicy::EarliestDeadlineFirst
                        && job.starved_epochs >= planner.aging_epochs
                    {
                        obs.trace.point(
                            t,
                            &format!("aging-promotion-{id}"),
                            u64::from(job.starved_epochs),
                        );
                    }
                }
                steps_before = slot_of_account
                    .iter()
                    .map(|&(s, pos)| shards[s].slots[pos].session.steps_taken())
                    .collect();
            }

            let section_timer = wall.is_some().then(mto_obs::WallClockScope::start);
            std::thread::scope(|scope| {
                for shard in shards.iter_mut() {
                    let grants = &grants;
                    scope.spawn(move || shard.run_epoch(grants));
                }
            });
            if let Some(timer) = section_timer {
                let section = timer.stop();
                let wall = wall.as_mut().expect("section timer implies wall plane");
                // Each shard self-timed its service; the coordinator keys
                // it now that the epoch and shard index are known. The
                // barrier's own cost is what the parallel section took
                // beyond the slowest shard: spawn/join overhead plus the
                // lockstep wait every faster shard paid.
                let mut slowest = 0u64;
                for (s, shard) in shards.iter_mut().enumerate() {
                    if let Some(service) = shard.wall.replace(mto_obs::WallStats::default()) {
                        slowest = slowest.max(service.nanos);
                        wall.record(
                            mto_obs::WallKey::phase("shard-service")
                                .at_epoch(epoch as u64)
                                .on_shard(s as u64),
                            service,
                        );
                    }
                }
                wall.record(
                    mto_obs::WallKey::phase("barrier-wait").at_epoch(epoch as u64),
                    mto_obs::WallStats {
                        count: 1,
                        nanos: section.nanos.saturating_sub(slowest),
                        allocs: 0,
                        bytes: 0,
                    },
                );
            }
            for shard in &mut shards {
                if let Some(e) = shard.error.take() {
                    return Err(e);
                }
            }

            if let Some(obs) = obs.as_mut() {
                let t = epoch_t_us(epoch);
                // One span per job that ran, nested under the epoch span,
                // weighted by the steps it actually took — the virtual
                // work `trace2flame` folds into `epoch-N;job-id` rows.
                for (account, &(s, pos)) in slot_of_account.iter().enumerate() {
                    let slot = &shards[s].slots[pos];
                    let delta = (slot.session.steps_taken() - steps_before[account]) as u64;
                    if delta > 0 {
                        epoch_steps += delta;
                        obs.trace.enter(t, &format!("job-{}", slot.session.spec().id));
                        obs.trace.exit(t, delta);
                    }
                }
                // Per-shard epoch registries folded into the fleet
                // registry at the barrier — the metrics analogue of the
                // history gossip (merge is associative and commutative,
                // so the fold order cannot matter).
                for shard in shards.iter_mut() {
                    let mut shard_reg = MetricsRegistry::new();
                    if let Some(po) = shard.pipeline.take_obs() {
                        shard_reg.inc("pipeline-completions", po.service_time_us.count());
                        shard_reg.merge_histogram("queue-wait-us", &po.queue_wait_us);
                        shard_reg.merge_histogram("service-time-us", &po.service_time_us);
                        shard.pipeline.enable_obs();
                    }
                    obs.registry.merge(&shard_reg);
                }
            }

            // ── Quality barrier: fold every slot's fresh sample series
            // (the degree of each node its walk visited this epoch)
            // into the fleet accumulator, shards in the gossip merge
            // order. Jobs are disjoint across shards and every figure
            // is job-local, so — like the history gossip — the fold
            // order cannot change a single figure.
            if let Some(acc) = quality.as_mut() {
                let shard_order: Vec<usize> = match self.config.merge_order {
                    MergeOrder::Forward => (0..shards.len()).collect(),
                    MergeOrder::Reverse => (0..shards.len()).rev().collect(),
                };
                for s in shard_order {
                    for slot in &mut shards[s].slots {
                        let samples = slot.observer.drain(&slot.session);
                        acc.observe(&slot.session.spec().id, &samples);
                    }
                }
                // Stamp the epoch's figures into the trace (id order,
                // inside the epoch span): per-job ESS, the Geweke z
                // once the window splits, then the fleet R-hat —
                // exactly what `trace2mix` folds into trajectories.
                if let Some(obs) = obs.as_mut() {
                    let t = epoch_t_us(epoch);
                    for (id, jq) in acc.jobs() {
                        let ess = mto_obs::quality::scale_milli(jq.ess());
                        obs.trace.point(t, &format!("quality-ess-{id}"), ess);
                        if let Some(z) = jq.geweke_z() {
                            let z = mto_obs::quality::scale_milli(z);
                            obs.trace.point(t, &format!("quality-z-{id}"), z);
                        }
                    }
                    if let Some(rhat) = acc.rhat() {
                        obs.trace.point(t, "quality-rhat", mto_obs::quality::scale_milli(rhat));
                    }
                }
                // Early stop, in account order: a job whose `ess=N` SLO
                // latched is converged — pause it so the planner stops
                // granting its quanta. The ledger block below treats it
                // as finished, releasing its unspent slice to the pool
                // at this same barrier.
                for &(s, pos) in &slot_of_account {
                    let slot = &mut shards[s].slots[pos];
                    if slot.done() {
                        continue;
                    }
                    let id = slot.session.spec().id.clone();
                    let Some(jq) = acc.job(&id) else { continue };
                    if jq.met() {
                        slot.quality_met = true;
                        slot.session.pause();
                        if let Some(obs) = obs.as_mut() {
                            obs.trace.point(
                                epoch_t_us(epoch),
                                &format!("quality-met-{id}"),
                                mto_obs::quality::scale_milli(jq.ess()),
                            );
                        }
                    }
                }
            }

            let mut report = EpochReport {
                epoch,
                fleet_unique_queries: shards
                    .iter()
                    .map(|s| s.client.with(|c| c.unique_queries()))
                    .sum(),
                makespan_secs: shards.iter().map(|s| s.pipeline.clock().now()).fold(0.0, f64::max),
                ..Default::default()
            };

            // ── Barrier QoS accounting, in account order (serial, and a
            // pure function of job-local state — shard-invariant).
            if let Some(ledger) = ledger.as_mut() {
                let mut finished: Vec<usize> = Vec::new();
                let mut claims: Vec<(usize, u64)> = Vec::new();
                for &(s, pos) in &slot_of_account {
                    let now_secs = shards[s].pipeline.clock().now();
                    let slot = &mut shards[s].slots[pos];
                    let demand = slot.refresh_demand();
                    let steps_now = slot.session.steps_taken();
                    let demand_before = ledger.account(slot.account).spent;
                    let exhausted = ledger.charge(slot.account, demand);
                    predictor.observe(
                        slot.session.spec().algo.name(),
                        (steps_now - slot.steps_seen) as u64,
                        demand.saturating_sub(demand_before),
                    );
                    slot.steps_seen = steps_now;
                    if let Some(obs) = obs.as_mut() {
                        let charged = demand.saturating_sub(demand_before);
                        if charged > 0 {
                            obs.trace.point(
                                epoch_t_us(epoch),
                                &format!("ledger-charge-{}", slot.session.spec().id),
                                charged,
                            );
                        }
                    }
                    if slot.session.state() == SessionState::Completed || slot.quality_met {
                        // Quality-met jobs finish here too: their SLO
                        // latch already marked the convergence in the
                        // trace, so only true completions get a
                        // `finish-` point, but both release their
                        // unspent slice to the pool.
                        if !released[slot.account] {
                            released[slot.account] = true;
                            finished.push(slot.account);
                            slot.finished_secs.get_or_insert(now_secs);
                            if let Some(obs) = obs.as_mut() {
                                if slot.session.state() == SessionState::Completed {
                                    obs.trace.point(
                                        epoch_t_us(epoch),
                                        &format!("finish-{}", slot.session.spec().id),
                                        steps_now as u64,
                                    );
                                }
                            }
                        }
                    } else if exhausted && !slot.suspended {
                        slot.suspended = true;
                        slot.session.pause();
                        if let Some(obs) = obs.as_mut() {
                            obs.trace.point(
                                epoch_t_us(epoch),
                                &format!("suspend-{}", slot.session.spec().id),
                                demand,
                            );
                        }
                    }
                    if slot.suspended && !slot.done() {
                        // Claim what the rest of the walk is predicted to
                        // demand, judged against the *static* warm store
                        // so the claim is shard-invariant — PLUS the
                        // overshoot already spent past the allowance: a
                        // grant that ignored it could cover the predicted
                        // remainder yet leave the account exhausted, and
                        // the job would be cut with budget still pooled.
                        let account = ledger.account(slot.account);
                        let overshoot = account.spent.saturating_sub(account.allowance);
                        let want = predictor.predict_remaining_queries(
                            slot.session.spec(),
                            slot.session.steps_remaining(),
                            self.warm_start.as_ref(),
                        );
                        claims.push((slot.account, overshoot + want.max(1)));
                    }
                }
                let outcome = ledger.rebalance(&finished, &claims);
                report.ledger_reclaimed = outcome.reclaimed;
                report.ledger_granted = outcome.granted;
                total_reclaimed += outcome.reclaimed;
                total_granted += outcome.granted;
                if let Some(obs) = obs.as_mut() {
                    if outcome.reclaimed > 0 {
                        obs.trace.point(epoch_t_us(epoch), "ledger-reclaimed", outcome.reclaimed);
                    }
                    if outcome.granted > 0 {
                        obs.trace.point(epoch_t_us(epoch), "ledger-granted", outcome.granted);
                    }
                }
                // Re-granted slices resume their jobs.
                for &(account, _) in &claims {
                    let (s, pos) = slot_of_account[account];
                    let slot = &mut shards[s].slots[pos];
                    if slot.suspended && !ledger.account(account).exhausted() {
                        slot.suspended = false;
                        slot.session.resume_stepping();
                        if let Some(obs) = obs.as_mut() {
                            obs.trace.point(
                                epoch_t_us(epoch),
                                &format!("resume-{}", slot.session.spec().id),
                                ledger.account(account).allowance,
                            );
                        }
                    }
                }
            } else {
                // Unbudgeted: only completion times need recording
                // (quality-met jobs finish here too; their convergence
                // is already marked by the `quality-met-` point).
                for &(s, pos) in &slot_of_account {
                    let now_secs = shards[s].pipeline.clock().now();
                    let slot = &mut shards[s].slots[pos];
                    if slot.session.state() == SessionState::Completed || slot.quality_met {
                        if slot.finished_secs.is_none()
                            && slot.session.state() == SessionState::Completed
                        {
                            if let Some(obs) = obs.as_mut() {
                                obs.trace.point(
                                    epoch_t_us(epoch),
                                    &format!("finish-{}", slot.session.spec().id),
                                    slot.session.steps_taken() as u64,
                                );
                            }
                        }
                        slot.finished_secs.get_or_insert(now_secs);
                    }
                }
            }

            if self.config.gossip && shards.len() > 1 {
                let timer = wall.is_some().then(mto_obs::WallClockScope::start);
                let stores: Vec<HistoryStore> = shards
                    .iter()
                    .map(|s| s.client.with(|c| HistoryStore::from_client(c)))
                    .collect();
                let (union, conflicts) = fold_stores(&stores, self.config.merge_order)?;
                for (shard, store) in shards.iter_mut().zip(&stores) {
                    let adopted = union.num_responses() - store.num_responses();
                    report.adopted_responses += adopted as u64;
                    if adopted > 0 {
                        shard.client.with(|c| c.import_entries(&union.cache));
                        shard.refresh_known();
                    }
                }
                report.merge_conflicts = conflicts;
                total_adopted += report.adopted_responses;
                total_conflicts += conflicts;
                if let (Some(wall), Some(timer)) = (wall.as_mut(), timer) {
                    timer.stop_into(
                        wall,
                        mto_obs::WallKey::phase("gossip-merge").at_epoch(epoch as u64),
                    );
                }
            }
            if let Some(obs) = obs.as_mut() {
                // Gossip savings are a W-dependent figure: registry only,
                // never the trace.
                obs.registry.inc("gossip-adopted-responses", report.adopted_responses);
                obs.registry.inc("gossip-merge-conflicts", report.merge_conflicts);
                obs.registry.inc("walk-steps", epoch_steps);
                // The causal (W-invariant) face of the same barrier:
                // which job's walk adopted nodes first paid for by
                // another job's walk, emitted inside the epoch span so
                // the analysis layer can stamp the edge with its epoch.
                if let Some(causal) = causal.as_mut() {
                    let histories: Vec<&[NodeId]> = slot_of_account
                        .iter()
                        .map(|&(s, pos)| shards[s].slots[pos].session.walker().history())
                        .collect();
                    for (from, to, count) in causal.barrier(&histories) {
                        obs.trace.gossip(
                            epoch_t_us(epoch),
                            &format!("job-{}", jobs[admitted[from]].id),
                            &format!("job-{}", jobs[admitted[to]].id),
                            count,
                        );
                    }
                }
                // Exit cost 0: the epoch's work is already attributed to
                // the nested job spans (the fold treats exit cost as
                // *self* weight, so a nonzero epoch cost would double
                // count).
                obs.trace.exit(epoch_t_us(epoch), 0);
            }
            epochs.push(report);
            epoch += 1;
        }
        if let Some(obs) = obs.as_mut() {
            // In-trace self-check: `trace2critpath` cross-checks the
            // epoch count it reconstructs against this final point.
            obs.trace.point(epoch_t_us(epochs.len()), "fleet-epochs", epochs.len() as u64);
        }

        // Final quality drain (idempotent — the observer cursor makes a
        // re-drain of already-folded history a no-op): covers runs that
        // never crossed a barrier, e.g. zero-step jobs whose only sample
        // is the seed position.
        if let Some(acc) = quality.as_mut() {
            for &(s, pos) in &slot_of_account {
                let slot = &mut shards[s].slots[pos];
                let samples = slot.observer.drain(&slot.session);
                acc.observe(&slot.session.spec().id, &samples);
            }
        }

        // ── Finalize outcomes in submission order: run slots first, then
        // placeholders for jobs admission kept off the fleet.
        let mut indexed: Vec<(usize, JobOutcome)> = Vec::with_capacity(jobs.len());
        let mut aggregate_stats = RewireStats::default();
        let mut cut_jobs = 0u64;
        for shard in &mut shards {
            for slot in &mut shard.slots {
                let mut outcome = finalize_session(&mut slot.session, !slot.cut)?;
                outcome.finished_secs = slot.finished_secs;
                // A quality-met job stopped early *because it met its
                // goal*: it completes by SLO even though its session
                // never exhausted the step budget.
                if slot.quality_met {
                    outcome.completed = true;
                }
                if slot.cut {
                    cut_jobs += 1;
                }
                if let Some(s) = outcome.stats {
                    aggregate_stats += s;
                }
                indexed.push((slot.orig, outcome));
            }
        }
        for d in &decisions {
            if !d.verdict.admitted() {
                let spec = &jobs[d.job_index];
                indexed.push((
                    d.job_index,
                    JobOutcome {
                        id: spec.id.clone(),
                        algorithm: spec.algo.name(),
                        steps: 0,
                        completed: false,
                        final_node: spec.start,
                        history: Vec::new(),
                        stats: None,
                        scan: None,
                        mh: None,
                        avg_degree_estimate: None,
                        finished_secs: None,
                    },
                ));
            }
        }
        indexed.sort_unstable_by_key(|(j, _)| *j);

        // The fleet-wide union store: every shard's cache plus every
        // rewiring walker's overlay delta (in submission order).
        let stores: Vec<HistoryStore> =
            shards.iter().map(|s| s.client.with(|c| HistoryStore::from_client(c))).collect();
        let (mut union, fold_conflicts) = fold_stores(&stores, self.config.merge_order)?;
        total_conflicts += fold_conflicts;
        for shard in &shards {
            for slot in &shard.slots {
                if let Some(delta) = slot.session.walker().overlay() {
                    let overlay_only = HistoryStore {
                        removed: delta.removed_edges().map(|e| (e.small(), e.large())).collect(),
                        added: delta.added_edges().map(|e| (e.small(), e.large())).collect(),
                        ..Default::default()
                    };
                    let outcome =
                        union.merge(&overlay_only).map_err(ServeError::SnapshotMismatch)?;
                    total_conflicts += outcome.conflicts;
                }
            }
        }

        // Fleet-wide pipeline counters (satellite surface for the
        // adaptive-concurrency ramps and token-bucket stalls).
        let mut pipeline_stats = PipelineStats::default();
        for shard in &shards {
            let s = shard.pipeline.stats();
            pipeline_stats.submitted += s.submitted;
            pipeline_stats.completed += s.completed;
            pipeline_stats.timeouts += s.timeouts;
            pipeline_stats.rate_limit_stalls += s.rate_limit_stalls;
            pipeline_stats.transient_retries += s.transient_retries;
            pipeline_stats.ramp_ups += s.ramp_ups;
            pipeline_stats.ramp_downs += s.ramp_downs;
            pipeline_stats.latency_backoffs += s.latency_backoffs;
        }

        // Final registry fill: walker telemetry (deterministic plane,
        // summed over jobs in submission order) plus cache/arena figures
        // (W-dependent: per-shard caches diverge with the shard count).
        if let Some(obs) = obs.as_mut() {
            // A nonzero underflow count means an exit was submitted with
            // no open span — an instrumentation bug the metrics surface
            // must report rather than silently drop.
            let underflows = obs.trace.underflows();
            let reg = &mut obs.registry;
            reg.inc("trace-underflows", underflows);
            reg.inc("gossip-causal-adoptions", causal.as_ref().map_or(0, |c| c.total));
            reg.inc("unique-nodes-crawled", union.num_responses() as u64);
            for shard in &shards {
                reg.inc("total-lookups", shard.client.with(|c| c.total_lookups()));
                reg.inc("transient-retries", shard.client.with(|c| c.transient_retries()));
                reg.inc(
                    "arena-rewrites-in-place",
                    shard.client.with(|c| c.arena().rewrites_in_place()),
                );
                reg.inc("arena-leaked-ids", shard.client.with(|c| c.arena().leaked_ids()));
            }
            for (_, o) in &indexed {
                if let Some((proposals, rejections)) = o.mh {
                    reg.inc("mh-proposals", proposals);
                    reg.inc("mh-rejections", rejections);
                }
                if let Some(scan) = o.scan {
                    reg.inc("criterion-scans", scan.criterion_scans);
                    reg.inc("criterion-scanned", scan.criterion_scanned);
                    reg.gauge_max("max-scan-len", scan.max_scan);
                }
                if let Some(s) = o.stats {
                    reg.inc("rewire-removals", s.removals);
                    reg.inc("rewire-replacements", s.replacements);
                    reg.inc("rewire-replacement-rejections", s.replacement_rejections);
                }
            }
        }

        // Wall plane: fold each shard pipeline's accumulated replay time
        // (one figure per shard, not per epoch — the pipeline does not
        // know about barriers).
        if let Some(wall) = wall.as_mut() {
            for (s, shard) in shards.iter_mut().enumerate() {
                if let Some(replay) = shard.pipeline.take_wall() {
                    wall.record(
                        mto_obs::WallKey::phase("pipeline-replay").on_shard(s as u64),
                        replay,
                    );
                }
            }
        }

        Ok(FleetReport {
            outcomes: indexed.into_iter().map(|(_, o)| o).collect(),
            shards: shards.len(),
            total_unique_queries: shards
                .iter()
                .map(|s| s.client.with(|c| c.unique_queries()))
                .sum(),
            gossip_adopted_responses: total_adopted,
            merge_conflicts: total_conflicts,
            makespan_secs: shards.iter().map(|s| s.pipeline.clock().now()).fold(0.0, f64::max),
            aggregate_stats,
            union_store: union,
            ledger: ledger.map(|l| LedgerSummary {
                total: l.total(),
                spent: l.total_spent(),
                reclaimed: total_reclaimed,
                granted: total_granted,
                pool: l.pool(),
                cut_jobs,
            }),
            admission: decisions,
            epochs,
            pipeline_stats,
            obs,
            wall,
            quality: quality.map(|acc| acc.report()),
        })
    }
}

/// Folds per-shard stores into one union in the configured order,
/// returning the union and the keep-first conflict count.
fn fold_stores(stores: &[HistoryStore], order: MergeOrder) -> Result<(HistoryStore, u64)> {
    let mut union = HistoryStore::default();
    let mut conflicts = 0u64;
    let indices: Vec<usize> = match order {
        MergeOrder::Forward => (0..stores.len()).collect(),
        MergeOrder::Reverse => (0..stores.len()).rev().collect(),
    };
    for i in indices {
        let outcome = union.merge(&stores[i]).map_err(ServeError::SnapshotMismatch)?;
        conflicts += outcome.conflicts;
    }
    Ok((union, conflicts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_core::mto::MtoConfig;
    use mto_core::walk::{MhrwConfig, SrwConfig};
    use mto_graph::generators::paper_barbell;
    use mto_osn::OsnService;
    use mto_qos::AdmissionVerdict;
    use mto_serve::scheduler::{JobScheduler, SchedulerConfig};
    use mto_serve::session::AlgoSpec;

    fn barbell_fleet(
        config: FleetConfig,
    ) -> FleetCoordinator<OsnService, impl Fn(usize) -> OsnService> {
        FleetCoordinator::new(|_| OsnService::with_defaults(&paper_barbell()), config)
    }

    fn mixed_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                id: "mto-a".into(),
                algo: AlgoSpec::Mto(MtoConfig { seed: 1, ..Default::default() }),
                start: NodeId(0),
                step_budget: 400,
                deadline: None,
                ess: None,
            },
            JobSpec {
                id: "mto-b".into(),
                algo: AlgoSpec::Mto(MtoConfig { seed: 2, ..Default::default() }),
                start: NodeId(11),
                step_budget: 300,
                deadline: None,
                ess: None,
            },
            JobSpec {
                id: "srw".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 3, lazy: false }),
                start: NodeId(5),
                step_budget: 250,
                deadline: None,
                ess: None,
            },
            JobSpec {
                id: "mhrw".into(),
                algo: AlgoSpec::Mhrw(MhrwConfig { seed: 4 }),
                start: NodeId(16),
                step_budget: 200,
                deadline: None,
                ess: None,
            },
        ]
    }

    /// The mixed pool with deadlines on two jobs.
    fn deadline_jobs() -> Vec<JobSpec> {
        let mut jobs = mixed_jobs();
        jobs[1].deadline = Some(2.0);
        jobs[3].deadline = Some(5.0);
        jobs
    }

    #[test]
    fn fleet_runs_jobs_to_their_budgets_and_reports_epochs() {
        let fleet =
            barbell_fleet(FleetConfig { shards: 4, epoch_quantum: 50, ..Default::default() });
        let report = fleet.run(mixed_jobs()).unwrap();
        assert_eq!(report.shards, 4);
        let by_id: Vec<(&str, usize, bool)> =
            report.outcomes.iter().map(|o| (o.id.as_str(), o.steps, o.completed)).collect();
        assert_eq!(
            by_id,
            vec![
                ("mto-a", 400, true),
                ("mto-b", 300, true),
                ("srw", 250, true),
                ("mhrw", 200, true)
            ]
        );
        assert_eq!(report.epochs.len(), 8, "longest job (400) at quantum 50");
        assert!(report.makespan_secs > 0.0, "pipelines must bill virtual time");
        assert!(report.aggregate_stats.removals > 0, "MTO jobs rewire");
        // Honest shards crawling one network never conflict.
        assert_eq!(report.epochs.iter().map(|e| e.merge_conflicts).sum::<u64>(), 0);
        // The union store holds every node anyone paid for.
        assert!(report.union_store.num_responses() >= 20, "barbell is nearly fully crawled");
        // Unbudgeted run: no ledger; every job admitted; finish times set.
        assert!(report.ledger.is_none());
        assert!(report.admission.iter().all(|d| d.verdict == AdmissionVerdict::Admit));
        assert!(report.outcomes.iter().all(|o| o.finished_secs.is_some()));
    }

    #[test]
    fn results_are_invariant_to_shard_count_and_merge_order() {
        let digest = |shards, merge_order, gossip| {
            barbell_fleet(FleetConfig {
                shards,
                merge_order,
                gossip,
                epoch_quantum: 32,
                ..Default::default()
            })
            .run(mixed_jobs())
            .unwrap()
            .results_digest()
        };
        let reference = digest(1, MergeOrder::Forward, true);
        assert!(!reference.is_empty());
        for shards in [2, 3, 4] {
            for order in [MergeOrder::Forward, MergeOrder::Reverse] {
                for gossip in [true, false] {
                    assert_eq!(
                        digest(shards, order, gossip),
                        reference,
                        "W={shards} {order:?} gossip={gossip} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn single_shard_fleet_matches_the_job_scheduler_exactly() {
        let fleet =
            barbell_fleet(FleetConfig { shards: 1, epoch_quantum: 64, ..Default::default() });
        let fleet_report = fleet.run(mixed_jobs()).unwrap();

        let scheduler = JobScheduler::new(
            OsnService::with_defaults(&paper_barbell()),
            SchedulerConfig { workers: 3, quantum: 16, ..Default::default() },
        );
        let serve_report = scheduler.run(mixed_jobs()).unwrap();

        assert_eq!(fleet_report.outcomes.len(), serve_report.outcomes.len());
        for (f, s) in fleet_report.outcomes.iter().zip(&serve_report.outcomes) {
            assert_eq!(f.id, s.id);
            assert_eq!(f.history, s.history, "job {} diverged from the scheduler", f.id);
            assert_eq!(f.stats, s.stats);
            assert_eq!(f.avg_degree_estimate, s.avg_degree_estimate);
            assert_eq!((f.steps, f.completed), (s.steps, s.completed));
        }
        assert_eq!(
            fleet_report.total_unique_queries, serve_report.total_unique_queries,
            "one shard, one client: the same bill"
        );
    }

    #[test]
    fn gossip_cuts_the_fleet_bill_versus_isolated_shards() {
        let bill = |gossip| {
            barbell_fleet(FleetConfig {
                shards: 4,
                gossip,
                epoch_quantum: 25,
                ..Default::default()
            })
            .run(mixed_jobs())
            .unwrap()
            .total_unique_queries
        };
        let (gossiped, isolated) = (bill(true), bill(false));
        assert!(
            gossiped < isolated,
            "gossip {gossiped} must beat isolated {isolated} on overlapping crawls"
        );
    }

    #[test]
    fn gossip_adoption_is_visible_in_epoch_reports() {
        let report =
            barbell_fleet(FleetConfig { shards: 4, epoch_quantum: 25, ..Default::default() })
                .run(mixed_jobs())
                .unwrap();
        assert!(report.gossip_adopted_responses > 0, "shards must trade history");
        assert_eq!(
            report.gossip_adopted_responses,
            report.epochs.iter().map(|e| e.adopted_responses).sum::<u64>()
        );
        for w in report.epochs.windows(2) {
            assert!(
                w[1].fleet_unique_queries >= w[0].fleet_unique_queries,
                "the bill is cumulative"
            );
            assert!(w[1].makespan_secs >= w[0].makespan_secs, "makespan is monotone");
        }
    }

    #[test]
    fn warm_started_fleet_pays_less() {
        let cold = barbell_fleet(FleetConfig { shards: 2, ..Default::default() });
        let cold_report = cold.run(mixed_jobs()).unwrap();
        let warm = barbell_fleet(FleetConfig { shards: 2, ..Default::default() })
            .with_warm_start(cold_report.union_store.clone());
        let warm_report = warm.run(mixed_jobs()).unwrap();
        assert!(
            warm_report.total_unique_queries < cold_report.total_unique_queries,
            "warm {} vs cold {}",
            warm_report.total_unique_queries,
            cold_report.total_unique_queries
        );
        assert_eq!(warm_report.results_digest(), cold_report.results_digest());
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let report = barbell_fleet(FleetConfig::default()).run(Vec::new()).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.total_unique_queries, 0);
        assert_eq!(report.shards, 0);
    }

    #[test]
    fn provider_profiles_shape_the_makespan() {
        let makespan = |provider| {
            barbell_fleet(FleetConfig { shards: 2, provider, ..Default::default() })
                .run(mixed_jobs())
                .unwrap()
                .makespan_secs
        };
        let plain = makespan(None);
        let twitter = makespan(Some(ProviderProfile::twitter()));
        assert!(plain > 0.0);
        assert!(twitter > plain, "twitter's quota must dominate a plain 50 ms provider");
    }

    #[test]
    fn edf_policy_preserves_results_but_front_loads_deadline_finishes() {
        // A 200-node G(n, p) keeps walks discovering (and the shard
        // clocks advancing) for the whole run, so finish times resolve
        // finer than the tiny barbell's fully-crawled plateau.
        use rand::SeedableRng;
        let run = |policy, shards| {
            FleetCoordinator::new(
                |_| {
                    OsnService::with_defaults(&mto_graph::generators::gnp_graph(
                        200,
                        0.04,
                        &mut rand::rngs::StdRng::seed_from_u64(7),
                    ))
                },
                FleetConfig { shards, epoch_quantum: 25, policy, ..Default::default() },
            )
            .run(deadline_jobs())
            .unwrap()
        };
        let rr = run(SchedulePolicy::RoundRobin, 2);
        for shards in [1, 2, 4] {
            let edf = run(SchedulePolicy::EarliestDeadlineFirst, shards);
            assert_eq!(
                edf.results_digest(),
                rr.results_digest(),
                "policy/W must never change results (W={shards})"
            );
        }
        // Timing is what EDF changes: on a one-shard fleet (all four
        // jobs contending), the deadline jobs must finish no later than
        // under round-robin — and strictly earlier than the best-effort
        // hog that shares their shard.
        let rr1 = run(SchedulePolicy::RoundRobin, 1);
        let edf1 = run(SchedulePolicy::EarliestDeadlineFirst, 1);
        let finish = |r: &FleetReport, id: &str| -> f64 {
            r.outcomes.iter().find(|o| o.id == id).unwrap().finished_secs.unwrap()
        };
        assert!(
            finish(&edf1, "mto-b") <= finish(&rr1, "mto-b"),
            "EDF must not delay a deadline job"
        );
        assert!(
            finish(&edf1, "mto-b") < finish(&edf1, "mto-a"),
            "the deadline job outruns the best-effort hog under EDF"
        );
    }

    #[test]
    fn budgeted_fleet_is_bit_identical_across_shard_counts() {
        // The acceptance criterion of ISSUE 5: budget + shards composes,
        // with identical results and identical ledger spend across W.
        let run = |shards| {
            barbell_fleet(FleetConfig {
                shards,
                epoch_quantum: 25,
                fleet_budget: Some(30),
                ..Default::default()
            })
            .run(mixed_jobs())
            .unwrap()
        };
        let reference = run(1);
        let ref_ledger = reference.ledger.expect("budgeted run carries a ledger");
        assert!(ref_ledger.spent > 0);
        for shards in [2, 3, 4] {
            let report = run(shards);
            assert_eq!(
                report.results_digest(),
                reference.results_digest(),
                "budget cuts diverged at W={shards}"
            );
            let ledger = report.ledger.unwrap();
            assert_eq!(ledger.spent, ref_ledger.spent, "ledger spend diverged at W={shards}");
            assert_eq!(ledger.reclaimed, ref_ledger.reclaimed);
            assert_eq!(ledger.granted, ref_ledger.granted);
            assert_eq!(ledger.cut_jobs, ref_ledger.cut_jobs);
        }
    }

    #[test]
    fn tight_budgets_cut_jobs_and_generous_budgets_do_not() {
        let run = |budget| {
            barbell_fleet(FleetConfig {
                shards: 2,
                epoch_quantum: 25,
                fleet_budget: Some(budget),
                ..Default::default()
            })
            .run(mixed_jobs())
            .unwrap()
        };
        let tight = run(6);
        assert!(
            tight.outcomes.iter().any(|o| !o.completed),
            "a 6-unit budget cannot cover four walks of the barbell"
        );
        assert!(tight.ledger.unwrap().cut_jobs > 0);
        let generous = run(10_000);
        assert!(generous.outcomes.iter().all(|o| o.completed));
        assert_eq!(generous.ledger.unwrap().cut_jobs, 0);
        // The ledger never lets total spend sail past budget + one
        // quantum's overshoot per job.
        let spent = tight.ledger.unwrap().spent;
        assert!(spent >= 6, "the budget itself is spendable");
    }

    #[test]
    fn strict_deadline_policy_rejects_hopeless_jobs_up_front() {
        let mut jobs = mixed_jobs();
        // 400 steps at ≥ 50 ms per predicted query cannot finish in 1 ms.
        jobs[0].deadline = Some(0.001);
        let report = barbell_fleet(FleetConfig {
            shards: 2,
            deadline_policy: DeadlinePolicy::Strict,
            ..Default::default()
        })
        .run(jobs)
        .unwrap();
        assert_eq!(report.admission[0].verdict, AdmissionVerdict::Reject);
        let rejected = &report.outcomes[0];
        assert_eq!((rejected.steps, rejected.completed), (0, false), "never ran");
        assert!(rejected.history.is_empty());
        // The other three ran normally.
        assert!(report.outcomes[1..].iter().all(|o| o.completed));
    }

    #[test]
    fn fleet_refuses_mismatched_shard_networks() {
        // Shard 1 sees a different network: the gossip merge must refuse
        // the union instead of poisoning every shard's cache.
        let fleet = FleetCoordinator::new(
            |s| {
                if s == 0 {
                    OsnService::with_defaults(&paper_barbell())
                } else {
                    OsnService::with_defaults(&mto_graph::generators::complete_graph(5))
                }
            },
            FleetConfig { shards: 2, epoch_quantum: 16, ..Default::default() },
        );
        let jobs = vec![
            JobSpec {
                id: "a".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 1, lazy: false }),
                start: NodeId(0),
                step_budget: 64,
                deadline: None,
                ess: None,
            },
            JobSpec {
                id: "b".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 2, lazy: false }),
                start: NodeId(1),
                step_budget: 64,
                deadline: None,
                ess: None,
            },
        ];
        let err = fleet.run(jobs).unwrap_err();
        assert!(matches!(err, ServeError::SnapshotMismatch(_)), "{err:?}");
    }

    #[test]
    fn observed_traces_are_byte_identical_across_shard_counts() {
        let observe = |shards| {
            barbell_fleet(FleetConfig {
                shards,
                epoch_quantum: 32,
                fleet_budget: Some(10_000),
                obs: true,
                ..Default::default()
            })
            .run(deadline_jobs())
            .unwrap()
            .obs
            .expect("obs was requested")
        };
        let reference = observe(1);
        let encoded = mto_obs::encode_trace(&reference.trace);
        assert!(!reference.trace.is_empty(), "an observed run records events");
        assert_eq!(reference.trace.open_spans(), 0, "every epoch span closed");
        assert_eq!(reference.trace.underflows(), 0, "every exit had an open span");
        // The causal records are part of the byte-identical plane: the
        // W=1 trace already carries gossip edges and the epoch-count
        // self-check, so cross-W equality covers them too.
        assert!(
            reference
                .trace
                .events()
                .iter()
                .any(|e| matches!(e, mto_obs::TraceRecord::Gossip { .. })),
            "deadline jobs on one barbell share nodes: adoption edges must appear"
        );
        assert!(
            reference.trace.events().iter().any(|e| matches!(
                e,
                mto_obs::TraceRecord::Point { name, .. } if name == "fleet-epochs"
            )),
            "the trace must close with its epoch-count self-check"
        );
        for shards in [2, 4] {
            let other = observe(shards);
            assert_eq!(
                mto_obs::encode_trace(&other.trace),
                encoded,
                "trace diverged at W={shards}"
            );
            // Deterministic-plane registry figures are W-invariant too;
            // the timing histograms legitimately are not.
            for name in ["walk-steps", "unique-nodes-crawled", "total-lookups", "mh-proposals"] {
                assert_eq!(
                    other.registry.counter(name),
                    reference.registry.counter(name),
                    "{name} diverged at W={shards}"
                );
            }
        }
    }

    #[test]
    fn the_critical_path_spans_the_makespan_and_is_shard_invariant() {
        let run = |shards| {
            barbell_fleet(FleetConfig {
                shards,
                epoch_quantum: 32,
                fleet_budget: Some(10_000),
                obs: true,
                ..Default::default()
            })
            .run(deadline_jobs())
            .unwrap()
        };
        let reference = run(1);
        let data = reference.obs.as_ref().expect("obs was requested");
        let model = mto_obs::critpath::FleetModel::from_records(data.trace.events())
            .expect("fleet traces parse into the epoch/job model");
        let path = mto_obs::critpath::critical_path(&model).expect("the run has epochs");
        // The path is an unbroken causal chain through every epoch: its
        // virtual-time total *is* the makespan, in epochs — the trace's
        // own `fleet-epochs` self-check already pinned that count to the
        // model during parsing.
        assert_eq!(path.epochs, reference.epochs.len());
        let report = mto_obs::critpath::render(&path);
        let lanes = mto_obs::timeline::render(&model).expect("fleet traces have epoch lanes");
        for shards in [2, 4] {
            let other = run(shards);
            let other_data = other.obs.as_ref().expect("obs was requested");
            let other_model =
                mto_obs::critpath::FleetModel::from_records(other_data.trace.events())
                    .expect("fleet traces parse into the epoch/job model");
            let other_path = mto_obs::critpath::critical_path(&other_model).unwrap();
            assert_eq!(mto_obs::critpath::render(&other_path), report, "W={shards}");
            assert_eq!(mto_obs::timeline::render(&other_model).unwrap(), lanes, "W={shards}");
        }
    }

    #[test]
    fn wall_plane_reports_phases_without_perturbing_the_deterministic_plane() {
        let run = |wall| {
            barbell_fleet(FleetConfig {
                shards: 2,
                epoch_quantum: 32,
                obs: true,
                wall,
                ..Default::default()
            })
            .run(mixed_jobs())
            .unwrap()
        };
        let plain = run(false);
        assert!(plain.wall.is_none(), "the wall plane is strictly opt-in");
        let timed = run(true);
        // The determinism contract with the wall plane enabled: results,
        // bills, trace bytes, and the whole metrics registry are
        // identical to the uninstrumented run.
        assert_eq!(timed.results_digest(), plain.results_digest());
        assert_eq!(timed.total_unique_queries, plain.total_unique_queries);
        let (a, b) = (plain.obs.as_ref().unwrap(), timed.obs.as_ref().unwrap());
        assert_eq!(mto_obs::encode_trace(&b.trace), mto_obs::encode_trace(&a.trace));
        assert_eq!(b.registry, a.registry, "wall figures must never leak into metrics");

        let wall = timed.wall.expect("wall was requested");
        assert!(!wall.is_empty());
        for (key, stats) in wall.iter() {
            match key.phase {
                "shard-service" => {
                    assert!(key.epoch.is_some() && key.shard.is_some(), "{key:?}");
                }
                "barrier-wait" | "gossip-merge" => {
                    assert!(key.epoch.is_some() && key.shard.is_none(), "{key:?}");
                }
                "pipeline-replay" => {
                    assert!(key.epoch.is_none() && key.shard.is_some(), "{key:?}");
                }
                other => panic!("unexpected wall phase {other:?}"),
            }
            assert!(stats.count > 0, "{key:?} recorded nothing");
        }
        // Every epoch has both shards' service and a barrier row; the
        // replay fold covers both shard pipelines.
        for e in 0..timed.epochs.len() as u64 {
            for s in 0..2 {
                let key = mto_obs::WallKey::phase("shard-service").at_epoch(e).on_shard(s);
                assert!(wall.get(&key).is_some(), "missing {key:?}");
            }
            let key = mto_obs::WallKey::phase("barrier-wait").at_epoch(e);
            assert!(wall.get(&key).is_some(), "missing {key:?}");
        }
        for s in 0..2 {
            let key = mto_obs::WallKey::phase("pipeline-replay").on_shard(s);
            assert!(wall.get(&key).is_some(), "missing {key:?}");
        }
        assert!(wall.total().nanos > 0, "wall clocks advance");
    }

    #[test]
    fn unobserved_runs_collect_nothing_and_observed_runs_match_results() {
        let run = |obs| {
            barbell_fleet(FleetConfig { shards: 2, epoch_quantum: 32, obs, ..Default::default() })
                .run(mixed_jobs())
                .unwrap()
        };
        let plain = run(false);
        assert!(plain.obs.is_none(), "obs is strictly opt-in");
        let observed = run(true);
        let data = observed.obs.as_ref().expect("obs was requested");
        // Observation is read-only: results and bills are untouched.
        assert_eq!(observed.results_digest(), plain.results_digest());
        assert_eq!(observed.total_unique_queries, plain.total_unique_queries);
        // The registry cross-checks the outcomes it was derived from.
        let steps: u64 = observed.outcomes.iter().map(|o| o.steps as u64).sum();
        assert_eq!(data.registry.counter("walk-steps"), steps);
        assert_eq!(
            data.registry.counter("unique-nodes-crawled"),
            observed.union_store.num_responses() as u64
        );
    }

    #[test]
    fn quality_plane_is_shard_invariant_and_strictly_opt_in() {
        let run = |shards, merge_order, quality| {
            barbell_fleet(FleetConfig {
                shards,
                merge_order,
                epoch_quantum: 32,
                obs: true,
                quality,
                ..Default::default()
            })
            .run(mixed_jobs())
            .unwrap()
        };
        let plain = run(2, MergeOrder::Forward, false);
        assert!(plain.quality.is_none(), "the quality plane is strictly opt-in");

        let reference = run(1, MergeOrder::Forward, true);
        let report = reference.quality.as_ref().expect("quality was requested");
        // Observation is read-only: results and bills are untouched by
        // the plane (no job declared an SLO, so nothing stops early).
        assert_eq!(reference.results_digest(), plain.results_digest());
        for (id, figures) in &report.jobs {
            let outcome = reference.outcomes.iter().find(|o| &o.id == id).unwrap();
            assert_eq!(
                figures.samples,
                outcome.history.len() as u64,
                "job {id}: one sample per visited position"
            );
            assert!(figures.ess > 0.0, "job {id} has a positive ESS");
            assert!(figures.target_ess.is_none() && !figures.met, "no job declared an SLO");
        }
        assert!(report.rhat.is_some(), "four chains fold into an R-hat");

        // Every figure is a pure function of the walks, so the report —
        // and the quality trace stamps — are byte-identical across
        // shard counts and fold orders.
        let encoded = mto_obs::encode_trace(&reference.obs.as_ref().unwrap().trace);
        assert!(
            reference.obs.as_ref().unwrap().trace.events().iter().any(|e| matches!(
                e,
                mto_obs::TraceRecord::Point { name, .. } if name.starts_with("quality-ess-")
            )),
            "quality runs stamp per-epoch ESS points"
        );
        for shards in [2, 4] {
            for order in [MergeOrder::Forward, MergeOrder::Reverse] {
                let other = run(shards, order, true);
                assert_eq!(
                    other.quality.as_ref(),
                    Some(report),
                    "quality figures diverged at W={shards} {order:?}"
                );
                assert_eq!(
                    mto_obs::encode_trace(&other.obs.as_ref().unwrap().trace),
                    encoded,
                    "quality trace diverged at W={shards} {order:?}"
                );
            }
        }
    }

    #[test]
    fn quality_slo_stops_a_converged_job_early_and_releases_its_budget() {
        let jobs = || {
            vec![
                JobSpec {
                    id: "converge".into(),
                    algo: AlgoSpec::Mto(MtoConfig { seed: 9, ..Default::default() }),
                    start: NodeId(0),
                    step_budget: 4000,
                    deadline: None,
                    ess: Some(10),
                },
                JobSpec {
                    id: "plain".into(),
                    algo: AlgoSpec::Srw(SrwConfig { seed: 4, lazy: false }),
                    start: NodeId(11),
                    step_budget: 300,
                    deadline: None,
                    ess: None,
                },
            ]
        };
        let run = |shards| {
            barbell_fleet(FleetConfig {
                shards,
                epoch_quantum: 50,
                fleet_budget: Some(10_000),
                obs: true,
                quality: true,
                ..Default::default()
            })
            .run(jobs())
            .unwrap()
        };
        let report = run(2);
        let converged = report.outcomes.iter().find(|o| o.id == "converge").unwrap();
        assert!(
            converged.steps < 4000,
            "a 10-ESS target on a 4000-step walk must latch early (took {})",
            converged.steps
        );
        assert!(converged.completed, "meeting the SLO is completion");
        assert!(converged.finished_secs.is_some(), "early stop records a finish time");
        let plain = report.outcomes.iter().find(|o| o.id == "plain").unwrap();
        assert_eq!((plain.steps, plain.completed), (300, true), "non-SLO jobs run to budget");

        let quality = report.quality.as_ref().expect("quality was requested");
        let figures = &quality.jobs["converge"];
        assert!(figures.met && figures.target_ess == Some(10));
        assert!(figures.ess >= 10.0, "the latch means the target was reached");

        // The early stop released the converged job's unspent slice to
        // the pool at the same barrier, and the trace marks the latch.
        let ledger = report.ledger.as_ref().expect("the run was budgeted");
        assert!(ledger.reclaimed > 0, "an early-stopped job reclaims budget");
        assert_eq!(ledger.cut_jobs, 0, "a generous budget cuts nobody");
        let trace = &report.obs.as_ref().unwrap().trace;
        assert!(
            trace.events().iter().any(|e| matches!(
                e,
                mto_obs::TraceRecord::Point { name, .. } if name == "quality-met-converge"
            )),
            "the SLO latch is stamped into the trace"
        );

        // The latch fires at an epoch barrier — a shard-invariant clock
        // — so the early-stopped walk itself is bit-identical across W.
        for shards in [1, 4] {
            let other = run(shards);
            assert_eq!(other.results_digest(), report.results_digest(), "W={shards}");
            assert_eq!(other.quality.as_ref(), report.quality.as_ref(), "W={shards}");
        }
    }
}
