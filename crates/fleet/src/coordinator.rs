//! The fleet coordinator: shard workers in lockstep epochs, history
//! gossip at every barrier.
//!
//! A [`crate::ShardPlan`] gives each of `W` shard workers its own slice
//! of the job list. Each shard owns a **private** [`CachedClient`] over
//! its own interface instance, its own [`QueryPipeline`] on its own
//! [`VirtualClock`] (the shard's wall-clock model: every unique query
//! the shard pays is replayed through the pipeline with up to `K` — or
//! adaptively fewer/more — requests in flight), and its sessions'
//! private overlays. Shards therefore never contend on a lock; the price
//! is that two shards can *re-pay* for the same node.
//!
//! That price is what the **epoch gossip** recovers: the coordinator
//! steps every shard `epoch_quantum` steps per job on
//! [`std::thread::scope`] workers, and at the barrier folds every
//! shard's [`HistoryStore`] into a fleet-wide union (pairwise
//! [`HistoryStore::merge`], keep-first, conflicts counted) that is
//! redistributed to every shard — so from the next epoch on, nobody
//! re-pays for a node any shard has already bought ("Leveraging History
//! for Faster Sampling of Online Social Networks", arXiv:1505.00079,
//! applied *between* concurrent crawlers instead of between runs).
//!
//! **Determinism contract.** Walkers are pure functions of
//! `(config, responses)` and responses are pure functions of the
//! network, so per-job results — walks, estimates, rewire stats — are
//! bit-identical regardless of shard count, worker interleaving, and
//! gossip merge order; `W = 1` reproduces the single-client
//! [`mto_serve::scheduler::JobScheduler`] outcomes exactly. Only the
//! *bill* (unique queries) and the *makespan* (virtual seconds) depend
//! on `W` and gossip — that is the whole point of measuring them.

use mto_core::mto::RewireStats;
use mto_graph::NodeId;
use mto_net::{Concurrency, PipelineConfig, ProviderProfile, QueryPipeline};
use mto_osn::{CachedClient, SharedClient, SocialNetworkInterface, VirtualClock};
use mto_serve::error::{Result, ServeError};
use mto_serve::history::HistoryStore;
use mto_serve::scheduler::finalize_session;
use mto_serve::session::{JobSpec, SamplerSession, SessionState};

use crate::plan::ShardPlan;
use crate::report::{EpochReport, FleetReport};

/// The order in which per-shard stores are folded into the gossip
/// union. Merge is keep-first, so the order could only matter when
/// shards *disagree* about the network — the determinism proptests run
/// both orders to witness that results never depend on it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum MergeOrder {
    /// Fold shard 0 first.
    #[default]
    Forward,
    /// Fold shard `W−1` first.
    Reverse,
}

/// Tuning of a [`FleetCoordinator`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetConfig {
    /// Shard workers `W` (clamped to the job count; ≥ 1).
    pub shards: usize,
    /// Steps each job takes between gossip barriers (≥ 1).
    pub epoch_quantum: usize,
    /// Whether the epoch barrier gossips history (disable to measure the
    /// isolated-shards baseline the `fleet` experiment compares against).
    pub gossip: bool,
    /// Gossip fold order (see [`MergeOrder`]).
    pub merge_order: MergeOrder,
    /// Provider preset for the per-shard pipelines (latency + quota +
    /// faults); `None` models a plain 50 ms constant-latency provider
    /// with no quota.
    pub provider: Option<ProviderProfile>,
    /// Per-shard pipeline lanes (max requests in flight).
    pub max_in_flight: usize,
    /// Fixed or adaptive in-flight control for the per-shard pipelines.
    pub concurrency: Concurrency,
    /// Base seed of the per-shard latency RNGs (shard `s` uses
    /// `seed + s`).
    pub seed: u64,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            shards: 4,
            epoch_quantum: 64,
            gossip: true,
            merge_order: MergeOrder::Forward,
            provider: None,
            max_in_flight: 8,
            concurrency: Concurrency::Fixed,
            seed: 0xF1EE7,
        }
    }
}

impl FleetConfig {
    fn pipeline_config(&self, shard: usize) -> PipelineConfig {
        let base = PipelineConfig {
            max_in_flight: self.max_in_flight.max(1),
            concurrency: self.concurrency,
            seed: self.seed.wrapping_add(shard as u64),
            ..Default::default()
        };
        match self.provider {
            Some(p) => PipelineConfig {
                latency: p.latency,
                faults: p.faults,
                rate_limit: Some(p.policy),
                ..base
            },
            None => base,
        }
    }
}

/// One shard worker: private client, private pipeline, private clock,
/// and the sessions of its assigned jobs.
struct Shard<I: SocialNetworkInterface> {
    client: SharedClient<I>,
    pipeline: QueryPipeline<I>,
    /// `(job index, session)` in ascending job order.
    sessions: Vec<(usize, SamplerSession<I>)>,
    /// Cached node ids at the last barrier (ascending) — the diff basis
    /// for "which nodes did *this shard pay for* this epoch".
    known: Vec<NodeId>,
    error: Option<ServeError>,
}

impl<I: SocialNetworkInterface> Shard<I> {
    fn live(&self) -> bool {
        self.sessions.iter().any(|(_, s)| s.state() != SessionState::Completed)
    }

    fn refresh_known(&mut self) {
        self.known = self.client.with(|c| c.cached_nodes().collect());
    }

    /// Advances every session one epoch quantum, then replays the nodes
    /// this shard newly paid for through its pipeline — the shard's
    /// wall-clock bill for the epoch. Gossip-imported nodes are already
    /// in `known` and cost no virtual time here: nobody re-pays them.
    fn run_epoch(&mut self, quantum: usize) {
        for (_, session) in &mut self.sessions {
            if let Err(e) = session.advance(quantum) {
                self.error = Some(e);
                return;
            }
        }
        let now: Vec<NodeId> = self.client.with(|c| c.cached_nodes().collect());
        // Ascending-sorted set difference: nodes cached now but unknown
        // at the last barrier.
        let mut old = self.known.iter().peekable();
        for &v in &now {
            while old.peek().is_some_and(|&&o| o < v) {
                old.next();
            }
            if old.peek() != Some(&&v) {
                self.pipeline.submit(v);
            }
        }
        self.pipeline.drain();
        self.known = now;
    }
}

/// Runs a job list as a sharded fleet (see the module docs).
pub struct FleetCoordinator<I, F> {
    factory: F,
    config: FleetConfig,
    warm_start: Option<HistoryStore>,
    _marker: std::marker::PhantomData<fn() -> I>,
}

impl<I, F> FleetCoordinator<I, F>
where
    I: SocialNetworkInterface + Send + Sync,
    F: Fn(usize) -> I,
{
    /// A coordinator whose shard `s` crawls through `factory(s)`. The
    /// factory must be deterministic — every shard must see the *same
    /// network* (instances may differ, answers may not).
    pub fn new(factory: F, config: FleetConfig) -> Self {
        FleetCoordinator { factory, config, warm_start: None, _marker: std::marker::PhantomData }
    }

    /// Warm-starts every shard from a persisted history: imported nodes
    /// are free for all shards from step one.
    pub fn with_warm_start(mut self, store: HistoryStore) -> Self {
        self.warm_start = Some(store);
        self
    }

    /// Runs `jobs` to completion and reports per-epoch gossip
    /// accounting alongside the per-job outcomes.
    pub fn run(&self, jobs: Vec<JobSpec>) -> Result<FleetReport> {
        if jobs.is_empty() {
            return Ok(FleetReport { shards: 0, ..Default::default() });
        }
        let plan = ShardPlan::round_robin(jobs.len(), self.config.shards);
        let quantum = self.config.epoch_quantum.max(1);

        // Build shards up front, in shard order, sessions in ascending
        // job order — start-node queries charge deterministically.
        let mut shards: Vec<Shard<I>> = Vec::with_capacity(plan.num_shards());
        for (s, job_indices) in plan.iter() {
            let inner = (self.factory)(s);
            let client = match &self.warm_start {
                Some(store) => SharedClient::new(store.warm_start(inner)?),
                None => SharedClient::new(CachedClient::new(inner)),
            };
            let pipeline = QueryPipeline::with_clock(
                (self.factory)(s),
                self.config.pipeline_config(s),
                VirtualClock::new(),
            );
            let mut sessions = Vec::with_capacity(job_indices.len());
            for &j in job_indices {
                sessions.push((j, SamplerSession::create(client.clone(), jobs[j].clone())?));
            }
            let mut shard = Shard { client, pipeline, sessions, known: Vec::new(), error: None };
            shard.refresh_known();
            shards.push(shard);
        }

        // Epoch loop: parallel stepping, serial gossip at the barrier.
        let mut epochs = Vec::new();
        let mut total_adopted = 0u64;
        let mut total_conflicts = 0u64;
        let mut epoch = 0usize;
        while shards.iter().any(Shard::live) {
            std::thread::scope(|scope| {
                for shard in shards.iter_mut() {
                    scope.spawn(move || shard.run_epoch(quantum));
                }
            });
            for shard in &mut shards {
                if let Some(e) = shard.error.take() {
                    return Err(e);
                }
            }

            let mut report = EpochReport {
                epoch,
                fleet_unique_queries: shards
                    .iter()
                    .map(|s| s.client.with(|c| c.unique_queries()))
                    .sum(),
                makespan_secs: shards.iter().map(|s| s.pipeline.clock().now()).fold(0.0, f64::max),
                ..Default::default()
            };
            if self.config.gossip && shards.len() > 1 {
                let stores: Vec<HistoryStore> = shards
                    .iter()
                    .map(|s| s.client.with(|c| HistoryStore::from_client(c)))
                    .collect();
                let (union, conflicts) = fold_stores(&stores, self.config.merge_order)?;
                for (shard, store) in shards.iter_mut().zip(&stores) {
                    let adopted = union.num_responses() - store.num_responses();
                    report.adopted_responses += adopted as u64;
                    if adopted > 0 {
                        shard.client.with(|c| c.import_entries(&union.cache));
                        shard.refresh_known();
                    }
                }
                report.merge_conflicts = conflicts;
                total_adopted += report.adopted_responses;
                total_conflicts += conflicts;
            }
            epochs.push(report);
            epoch += 1;
        }

        // Finalize outcomes in submission order.
        let mut indexed: Vec<(usize, _)> = Vec::with_capacity(jobs.len());
        let mut aggregate_stats = RewireStats::default();
        for shard in &mut shards {
            for (j, session) in &mut shard.sessions {
                let outcome = finalize_session(session, true)?;
                if let Some(s) = outcome.stats {
                    aggregate_stats += s;
                }
                indexed.push((*j, outcome));
            }
        }
        indexed.sort_unstable_by_key(|(j, _)| *j);

        // The fleet-wide union store: every shard's cache plus every
        // rewiring walker's overlay delta (in submission order).
        let stores: Vec<HistoryStore> =
            shards.iter().map(|s| s.client.with(|c| HistoryStore::from_client(c))).collect();
        let (mut union, fold_conflicts) = fold_stores(&stores, self.config.merge_order)?;
        total_conflicts += fold_conflicts;
        for shard in &shards {
            for (_, session) in &shard.sessions {
                if let Some(delta) = session.walker().overlay() {
                    let overlay_only = HistoryStore {
                        removed: delta.removed_edges().map(|e| (e.small(), e.large())).collect(),
                        added: delta.added_edges().map(|e| (e.small(), e.large())).collect(),
                        ..Default::default()
                    };
                    let outcome =
                        union.merge(&overlay_only).map_err(ServeError::SnapshotMismatch)?;
                    total_conflicts += outcome.conflicts;
                }
            }
        }

        Ok(FleetReport {
            outcomes: indexed.into_iter().map(|(_, o)| o).collect(),
            shards: shards.len(),
            total_unique_queries: shards
                .iter()
                .map(|s| s.client.with(|c| c.unique_queries()))
                .sum(),
            gossip_adopted_responses: total_adopted,
            merge_conflicts: total_conflicts,
            makespan_secs: shards.iter().map(|s| s.pipeline.clock().now()).fold(0.0, f64::max),
            aggregate_stats,
            union_store: union,
            epochs,
        })
    }
}

/// Folds per-shard stores into one union in the configured order,
/// returning the union and the keep-first conflict count.
fn fold_stores(stores: &[HistoryStore], order: MergeOrder) -> Result<(HistoryStore, u64)> {
    let mut union = HistoryStore::default();
    let mut conflicts = 0u64;
    let indices: Vec<usize> = match order {
        MergeOrder::Forward => (0..stores.len()).collect(),
        MergeOrder::Reverse => (0..stores.len()).rev().collect(),
    };
    for i in indices {
        let outcome = union.merge(&stores[i]).map_err(ServeError::SnapshotMismatch)?;
        conflicts += outcome.conflicts;
    }
    Ok((union, conflicts))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_core::mto::MtoConfig;
    use mto_core::walk::{MhrwConfig, SrwConfig};
    use mto_graph::generators::paper_barbell;
    use mto_osn::OsnService;
    use mto_serve::scheduler::{JobScheduler, SchedulerConfig};
    use mto_serve::session::AlgoSpec;

    fn barbell_fleet(
        config: FleetConfig,
    ) -> FleetCoordinator<OsnService, impl Fn(usize) -> OsnService> {
        FleetCoordinator::new(|_| OsnService::with_defaults(&paper_barbell()), config)
    }

    fn mixed_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                id: "mto-a".into(),
                algo: AlgoSpec::Mto(MtoConfig { seed: 1, ..Default::default() }),
                start: NodeId(0),
                step_budget: 400,
            },
            JobSpec {
                id: "mto-b".into(),
                algo: AlgoSpec::Mto(MtoConfig { seed: 2, ..Default::default() }),
                start: NodeId(11),
                step_budget: 300,
            },
            JobSpec {
                id: "srw".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 3, lazy: false }),
                start: NodeId(5),
                step_budget: 250,
            },
            JobSpec {
                id: "mhrw".into(),
                algo: AlgoSpec::Mhrw(MhrwConfig { seed: 4 }),
                start: NodeId(16),
                step_budget: 200,
            },
        ]
    }

    #[test]
    fn fleet_runs_jobs_to_their_budgets_and_reports_epochs() {
        let fleet =
            barbell_fleet(FleetConfig { shards: 4, epoch_quantum: 50, ..Default::default() });
        let report = fleet.run(mixed_jobs()).unwrap();
        assert_eq!(report.shards, 4);
        let by_id: Vec<(&str, usize, bool)> =
            report.outcomes.iter().map(|o| (o.id.as_str(), o.steps, o.completed)).collect();
        assert_eq!(
            by_id,
            vec![
                ("mto-a", 400, true),
                ("mto-b", 300, true),
                ("srw", 250, true),
                ("mhrw", 200, true)
            ]
        );
        assert_eq!(report.epochs.len(), 8, "longest job (400) at quantum 50");
        assert!(report.makespan_secs > 0.0, "pipelines must bill virtual time");
        assert!(report.aggregate_stats.removals > 0, "MTO jobs rewire");
        // Honest shards crawling one network never conflict.
        assert_eq!(report.epochs.iter().map(|e| e.merge_conflicts).sum::<u64>(), 0);
        // The union store holds every node anyone paid for.
        assert!(report.union_store.num_responses() >= 20, "barbell is nearly fully crawled");
    }

    #[test]
    fn results_are_invariant_to_shard_count_and_merge_order() {
        let digest = |shards, merge_order, gossip| {
            barbell_fleet(FleetConfig {
                shards,
                merge_order,
                gossip,
                epoch_quantum: 32,
                ..Default::default()
            })
            .run(mixed_jobs())
            .unwrap()
            .results_digest()
        };
        let reference = digest(1, MergeOrder::Forward, true);
        assert!(!reference.is_empty());
        for shards in [2, 3, 4] {
            for order in [MergeOrder::Forward, MergeOrder::Reverse] {
                for gossip in [true, false] {
                    assert_eq!(
                        digest(shards, order, gossip),
                        reference,
                        "W={shards} {order:?} gossip={gossip} diverged"
                    );
                }
            }
        }
    }

    #[test]
    fn single_shard_fleet_matches_the_job_scheduler_exactly() {
        let fleet =
            barbell_fleet(FleetConfig { shards: 1, epoch_quantum: 64, ..Default::default() });
        let fleet_report = fleet.run(mixed_jobs()).unwrap();

        let scheduler = JobScheduler::new(
            OsnService::with_defaults(&paper_barbell()),
            SchedulerConfig { workers: 3, quantum: 16, ..Default::default() },
        );
        let serve_report = scheduler.run(mixed_jobs()).unwrap();

        assert_eq!(fleet_report.outcomes.len(), serve_report.outcomes.len());
        for (f, s) in fleet_report.outcomes.iter().zip(&serve_report.outcomes) {
            assert_eq!(f.id, s.id);
            assert_eq!(f.history, s.history, "job {} diverged from the scheduler", f.id);
            assert_eq!(f.stats, s.stats);
            assert_eq!(f.avg_degree_estimate, s.avg_degree_estimate);
            assert_eq!((f.steps, f.completed), (s.steps, s.completed));
        }
        assert_eq!(
            fleet_report.total_unique_queries, serve_report.total_unique_queries,
            "one shard, one client: the same bill"
        );
    }

    #[test]
    fn gossip_cuts_the_fleet_bill_versus_isolated_shards() {
        let bill = |gossip| {
            barbell_fleet(FleetConfig {
                shards: 4,
                gossip,
                epoch_quantum: 25,
                ..Default::default()
            })
            .run(mixed_jobs())
            .unwrap()
            .total_unique_queries
        };
        let (gossiped, isolated) = (bill(true), bill(false));
        assert!(
            gossiped < isolated,
            "gossip {gossiped} must beat isolated {isolated} on overlapping crawls"
        );
    }

    #[test]
    fn gossip_adoption_is_visible_in_epoch_reports() {
        let report =
            barbell_fleet(FleetConfig { shards: 4, epoch_quantum: 25, ..Default::default() })
                .run(mixed_jobs())
                .unwrap();
        assert!(report.gossip_adopted_responses > 0, "shards must trade history");
        assert_eq!(
            report.gossip_adopted_responses,
            report.epochs.iter().map(|e| e.adopted_responses).sum::<u64>()
        );
        for w in report.epochs.windows(2) {
            assert!(
                w[1].fleet_unique_queries >= w[0].fleet_unique_queries,
                "the bill is cumulative"
            );
            assert!(w[1].makespan_secs >= w[0].makespan_secs, "makespan is monotone");
        }
    }

    #[test]
    fn warm_started_fleet_pays_less() {
        let cold = barbell_fleet(FleetConfig { shards: 2, ..Default::default() });
        let cold_report = cold.run(mixed_jobs()).unwrap();
        let warm = barbell_fleet(FleetConfig { shards: 2, ..Default::default() })
            .with_warm_start(cold_report.union_store.clone());
        let warm_report = warm.run(mixed_jobs()).unwrap();
        assert!(
            warm_report.total_unique_queries < cold_report.total_unique_queries,
            "warm {} vs cold {}",
            warm_report.total_unique_queries,
            cold_report.total_unique_queries
        );
        assert_eq!(warm_report.results_digest(), cold_report.results_digest());
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let report = barbell_fleet(FleetConfig::default()).run(Vec::new()).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.total_unique_queries, 0);
        assert_eq!(report.shards, 0);
    }

    #[test]
    fn provider_profiles_shape_the_makespan() {
        let makespan = |provider| {
            barbell_fleet(FleetConfig { shards: 2, provider, ..Default::default() })
                .run(mixed_jobs())
                .unwrap()
                .makespan_secs
        };
        let plain = makespan(None);
        let twitter = makespan(Some(ProviderProfile::twitter()));
        assert!(plain > 0.0);
        assert!(twitter > plain, "twitter's quota must dominate a plain 50 ms provider");
    }

    #[test]
    fn fleet_refuses_mismatched_shard_networks() {
        // Shard 1 sees a different network: the gossip merge must refuse
        // the union instead of poisoning every shard's cache.
        let fleet = FleetCoordinator::new(
            |s| {
                if s == 0 {
                    OsnService::with_defaults(&paper_barbell())
                } else {
                    OsnService::with_defaults(&mto_graph::generators::complete_graph(5))
                }
            },
            FleetConfig { shards: 2, epoch_quantum: 16, ..Default::default() },
        );
        let jobs = vec![
            JobSpec {
                id: "a".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 1, lazy: false }),
                start: NodeId(0),
                step_budget: 64,
            },
            JobSpec {
                id: "b".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 2, lazy: false }),
                start: NodeId(1),
                step_budget: 64,
            },
        ];
        let err = fleet.run(jobs).unwrap_err();
        assert!(matches!(err, ServeError::SnapshotMismatch(_)), "{err:?}");
    }
}
