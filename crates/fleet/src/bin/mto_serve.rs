//! `mto_serve` — the sampling service front-end: request file in, results
//! out.
//!
//! ```text
//! mto_serve run <request-file> [--out FILE]
//! mto_serve snapshot <request-file> --at STEPS --to FILE
//! mto_serve resume <snapshot-file> [--out FILE]
//! ```
//!
//! * `run` executes every job of a request file — on the single-client
//!   [`JobScheduler`] by default, or as a sharded
//!   [`mto_fleet::FleetCoordinator`] when the request says `shards W`
//!   (with `epochs N` gossip barriers) — honoring its `warm-start` /
//!   `save-history` / `journal` directives. Fleet runs additionally
//!   report per-epoch gossip savings, keep-first `merge-conflicts`, the
//!   makespan (max per-shard virtual seconds), and — when the request
//!   carries `budget N` and/or per-job `deadline=` fields — the QoS
//!   surface: admission verdicts, the budget-ledger split/rebalance
//!   accounting, and per-job `deadline-met` flags (`policy edf`
//!   schedules quanta earliest-deadline-first). A `metrics` directive
//!   appends the mto-obs summary (shard-invariant `metric` lines plus
//!   `timing` lines), and `trace FILE` writes the deterministic
//!   `mto-trace/v1` span/point record — feed it to `trace2flame` for a
//!   collapsed-stack profile over virtual time. A `prom FILE` directive
//!   enables the wall-clock telemetry plane (per-phase wall time across
//!   shard service, barrier waits, gossip merges, pipeline replay,
//!   scheduler workers, and history encode/decode) and writes a
//!   Prometheus text-exposition snapshot of the metrics and wall
//!   registries — the run's only output that varies run to run; report
//!   bodies, traces, and `metric` lines are byte-identical with or
//!   without it (join the two planes with `trace2gap`). Build with
//!   `--features wall-alloc` to add per-phase allocation counts/bytes
//!   to the snapshot.
//! * `snapshot` runs the request's **first** job for `--at` steps as a
//!   [`SamplerSession`], then freezes it (network spec included) to
//!   `--to`. Fleet directives (`shards` / `epochs`) describe a whole
//!   fleet, not one frozen session: `snapshot` (and therefore the
//!   `resume` of anything it wrote) **fails fast** on them, naming the
//!   unsupported directive, instead of silently ignoring them.
//! * `resume` thaws a snapshot, replays it against a freshly built
//!   instance of the recorded network, finishes the remaining budget, and
//!   reports — the cross-process half of the snapshot → resume lifecycle.
//!
//! The binary lives in `mto-fleet` (not `mto-serve`) because the crate
//! DAG is `serve ← fleet`: the front-end must sit at or above every
//! layer it drives.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use mto_core::walk::Walker;
use mto_fleet::{FleetConfig, FleetCoordinator, FleetReport};
use mto_net::TimedInterface;
use mto_obs::quality::{JobQualityFigures, QualityReport};
use mto_obs::{
    encode_trace, percent, MetricsRegistry, TraceSink, WallClockRegistry, WallClockScope, WallKey,
};
use mto_osn::{CachedClient, OsnService, SharedClient, SocialNetworkInterface, VirtualClock};
use mto_serve::error::ServeError;
use mto_serve::history::HistoryStore;
use mto_serve::journal::{HistoryJournal, JournalRecovery};
use mto_serve::request::{NetworkSpec, ServeRequest};
use mto_serve::scheduler::{fold_quality, JobOutcome, JobScheduler, ServeReport};
use mto_serve::session::{SamplerSession, SessionSnapshot};

const USAGE: &str = "usage:
  mto_serve run <request-file> [--out FILE]
  mto_serve snapshot <request-file> --at STEPS --to FILE
  mto_serve resume <snapshot-file> [--out FILE]";

// With `--features wall-alloc`, every allocation bumps the process-wide
// counters the wall plane snapshots, so `prom` dumps carry per-phase
// alloc/byte figures. Without the feature those figures read 0.
#[cfg(feature = "wall-alloc")]
#[global_allocator]
static ALLOC: mto_obs::wallclock::CountingAllocator = mto_obs::wallclock::CountingAllocator;

/// Metadata key under which snapshots record their network spec.
const NETWORK_META: &str = "network";
/// Metadata key under which snapshots record their provider preset.
const PROVIDER_META: &str = "provider";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match dispatch(&args) {
        Ok(()) => 0,
        Err(Invocation::Usage(msg)) => {
            eprintln!("{msg}\n{USAGE}");
            2
        }
        Err(Invocation::Failed(e)) => {
            eprintln!("error: {e}");
            1
        }
    };
    std::process::exit(code);
}

enum Invocation {
    Usage(String),
    Failed(ServeError),
}

impl From<ServeError> for Invocation {
    fn from(e: ServeError) -> Self {
        Invocation::Failed(e)
    }
}

fn dispatch(args: &[String]) -> Result<(), Invocation> {
    let (command, rest) =
        args.split_first().ok_or_else(|| Invocation::Usage("no command given".into()))?;
    match command.as_str() {
        "run" => cmd_run(rest),
        "snapshot" => cmd_snapshot(rest),
        "resume" => cmd_resume(rest),
        other => Err(Invocation::Usage(format!("unknown command {other:?}"))),
    }
}

/// Pulls `<positional> [--flag value]...` out of `args`.
fn parse_flags(
    args: &[String],
    allowed: &[&str],
) -> Result<(PathBuf, std::collections::HashMap<String, PathBuf>), Invocation> {
    let mut positional = None;
    let mut flags = std::collections::HashMap::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if let Some(name) = arg.strip_prefix("--") {
            if !allowed.contains(&name) {
                return Err(Invocation::Usage(format!("unknown flag --{name}")));
            }
            let value =
                it.next().ok_or_else(|| Invocation::Usage(format!("--{name} needs a value")))?;
            flags.insert(name.to_string(), PathBuf::from(value));
        } else if positional.is_none() {
            positional = Some(PathBuf::from(arg));
        } else {
            return Err(Invocation::Usage(format!("unexpected argument {arg:?}")));
        }
    }
    let positional = positional.ok_or_else(|| Invocation::Usage("missing input file".into()))?;
    Ok((positional, flags))
}

fn read_request(path: &Path) -> Result<ServeRequest, ServeError> {
    let text = std::fs::read_to_string(path)?;
    ServeRequest::parse(&text)
}

fn emit(report: &str, out: Option<&PathBuf>) -> Result<(), ServeError> {
    println!("{report}");
    if let Some(path) = out {
        std::fs::write(path, report)?;
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), Invocation> {
    let (request_path, flags) = parse_flags(args, &["out"])?;
    let request = read_request(&request_path)?;

    // The `prom` directive turns on the wall plane; phases observed at
    // this process level (history codec work) accumulate here and merge
    // with whatever the run itself collected before the snapshot writes.
    let wall_on = request.prom.is_some();
    let mut process_wall = WallClockRegistry::new();

    // Prior history: a warm-start snapshot, or the journal's replayed
    // state (the request parser guarantees at most one of the two).
    let mut journal: Option<(HistoryJournal, JournalRecovery)> = match &request.journal {
        Some(path) => Some(open_journal(path)?),
        None => None,
    };
    let prior: Option<HistoryStore> = if let Some(path) = &request.warm_start {
        let timer = wall_on.then(WallClockScope::start);
        let store = HistoryStore::load(path)?;
        if let Some(timer) = timer {
            timer.stop_into(&mut process_wall, WallKey::phase("history-decode"));
        }
        eprintln!(
            "warm-starting from {} ({} cached responses)",
            path.display(),
            store.num_responses()
        );
        Some(store)
    } else {
        journal.as_ref().and_then(|(j, recovery)| {
            (j.records() > 0).then(|| {
                eprintln!(
                    "journal {}: replayed {} records{}",
                    j.path().display(),
                    recovery.replayed_records,
                    if recovery.recovered {
                        format!(" (recovered; dropped a {}-byte torn tail)", recovery.dropped_bytes)
                    } else {
                        String::new()
                    }
                );
                j.store().clone()
            })
        })
    };

    let (mut body, final_store, plane) = match request.shards {
        Some(shards) => run_fleet(&request, shards, prior)?,
        None => run_scheduler(&request, prior)?,
    };

    if let Some(path) = &request.save_history {
        let timer = wall_on.then(WallClockScope::start);
        final_store.save(path)?;
        if let Some(timer) = timer {
            timer.stop_into(&mut process_wall, WallKey::phase("history-encode"));
        }
        eprintln!(
            "saved history ({} cached responses) to {}",
            final_store.num_responses(),
            path.display()
        );
    }
    if let Some((mut j, recovery)) = journal.take() {
        let appended = j.absorb(&final_store)?;
        j.sync()?;
        use std::fmt::Write;
        writeln!(
            body,
            "journal {} replayed={} appended={} recovered={}",
            j.path().display(),
            recovery.replayed_records,
            appended,
            u8::from(recovery.recovered)
        )
        .expect("string write");
    }
    if let Some(path) = &request.prom {
        let mut plane = plane.unwrap_or_default();
        plane.wall.merge(&process_wall);
        std::fs::write(
            path,
            mto_obs::prom::render(plane.metrics.as_ref(), plane.quality.as_ref(), &plane.wall),
        )
        .map_err(ServeError::from)?;
        // A stderr note, like the trace write: report bodies (and their
        // CI diffs) stay byte-identical whether `prom` is present.
        eprintln!("wrote prom snapshot ({} wall keys) to {}", plane.wall.len(), path.display());
    }
    emit(&body, flags.get("out"))?;
    Ok(())
}

/// What the `prom` directive snapshots: the run's metrics registry
/// (when the run built one), the estimator-quality report (when the
/// request carried the `quality` directive), plus the wall-clock
/// registry.
#[derive(Default)]
struct WallPlane {
    metrics: Option<MetricsRegistry>,
    quality: Option<QualityReport>,
    wall: WallClockRegistry,
}

/// Opens an existing journal (replaying it, tolerating a torn tail) or
/// creates a fresh one.
fn open_journal(path: &Path) -> Result<(HistoryJournal, JournalRecovery), ServeError> {
    if path.exists() {
        HistoryJournal::open(path)
    } else {
        Ok((HistoryJournal::create(path)?, JournalRecovery::default()))
    }
}

/// The single-client path: every job on one [`JobScheduler`]. The
/// provider directive wraps the service in mto-net's simulated latency +
/// quota on a virtual clock, so the report can say what the run would
/// have cost in wall-clock time against the live API.
fn run_scheduler(
    request: &ServeRequest,
    prior: Option<HistoryStore>,
) -> Result<(String, HistoryStore, Option<WallPlane>), ServeError> {
    let service = OsnService::with_defaults(&request.network.build());
    let mut wall = request.prom.is_some().then(WallClockRegistry::new);
    let (report, store, obs) = match request.provider {
        Some(profile) => {
            let timed = TimedInterface::new(service, profile, 0x5EED);
            let clock = timed.clock().clone();
            execute(timed, request, prior, Some(clock), wall.as_mut())?
        }
        None => execute(service, request, prior, None, wall.as_mut())?,
    };
    let mut body = render_report(request, &report, obs.quality.as_ref());
    if request.metrics {
        render_scheduler_metrics(&mut body, &report, &obs);
    }
    if let Some(path) = &request.trace {
        write_trace(path, &scheduler_trace(&report, &obs.quanta))?;
    }
    // The single-client path renders its metrics straight off the
    // client; the prom snapshot rebuilds the same deterministic figures
    // as a registry so both planes export through one writer.
    let plane = wall.map(|wall| {
        let mut metrics = MetricsRegistry::new();
        metrics.inc("walk-steps", report.outcomes.iter().map(|o| o.steps as u64).sum());
        metrics.inc("unique-queries", obs.unique_queries);
        metrics.inc("total-lookups", obs.total_lookups);
        metrics.inc("transient-retries", obs.transient_retries);
        WallPlane { metrics: Some(metrics), quality: obs.quality.clone(), wall }
    });
    Ok((body, store, plane))
}

/// Client counters and planner quanta the single-client path surfaces
/// in its metrics/trace output (the fleet path reads the equivalents
/// out of its coordinator's merged registry).
struct SchedulerObs {
    quanta: Vec<usize>,
    unique_queries: u64,
    total_lookups: u64,
    transient_retries: u64,
    arena_rewrites_in_place: u64,
    arena_leaked_ids: u64,
    /// Estimator-quality figures (`Some` iff the request carried the
    /// `quality` directive), folded post-hoc from the full walk
    /// histories — the single-client path never stops early, so an
    /// `ess=` SLO here is judged at the end of the budget.
    quality: Option<QualityReport>,
}

/// Builds the scheduler (cold or warm-started), runs the jobs, and
/// exports the client's final history — generic over however the
/// service is wrapped.
fn execute<I: SocialNetworkInterface + Send + Sync>(
    service: I,
    request: &ServeRequest,
    prior: Option<HistoryStore>,
    clock: Option<VirtualClock>,
    wall: Option<&mut WallClockRegistry>,
) -> Result<(ServeReport, HistoryStore, SchedulerObs), ServeError> {
    let mut scheduler = match &prior {
        Some(store) => JobScheduler::warm_start(service, store, request.scheduler)?,
        None => JobScheduler::new(service, request.scheduler),
    };
    if let Some(clock) = clock {
        scheduler = scheduler.with_virtual_clock(clock);
    }
    let quanta = scheduler.planned_quanta(&request.jobs);
    let report = scheduler.run_instrumented(request.jobs.clone(), wall)?;
    let quality = request
        .quality
        .then(|| fold_quality(scheduler.client(), &request.jobs, &report.outcomes).report());
    let (store, obs) = scheduler.client().with(|c| {
        (
            HistoryStore::from_client(c),
            SchedulerObs {
                quanta,
                unique_queries: c.unique_queries(),
                total_lookups: c.total_lookups(),
                transient_retries: c.transient_retries(),
                arena_rewrites_in_place: c.arena().rewrites_in_place(),
                arena_leaked_ids: c.arena().leaked_ids(),
                quality,
            },
        )
    });
    Ok((report, store, obs))
}

/// Encodes `trace` as `mto-trace/v2` to `path`, noting the write on
/// stderr so report bodies (and their CI diffs) stay unchanged.
fn write_trace(path: &Path, trace: &TraceSink) -> Result<(), ServeError> {
    std::fs::write(path, encode_trace(trace))?;
    eprintln!("wrote trace ({} events) to {}", trace.len(), path.display());
    Ok(())
}

/// The single-client path has no epoch clock, so its trace is a flat
/// plan→run record at `t = 0`: one point per planned quantum, one span
/// per job weighted by the steps it actually took. Deterministic for
/// the same reason the report body is.
fn scheduler_trace(report: &ServeReport, quanta: &[usize]) -> TraceSink {
    let mut sink = TraceSink::new();
    sink.enter(0, "serve");
    for (o, q) in report.outcomes.iter().zip(quanta) {
        sink.point(0, &format!("quantum-{}", o.id), *q as u64);
    }
    for o in &report.outcomes {
        sink.enter(0, &format!("job-{}", o.id));
        sink.exit(0, o.steps as u64);
    }
    sink.exit(0, 0);
    sink
}

/// Walker-internal telemetry summed over outcomes: Metropolis–Hastings
/// proposal/rejection counts and Theorem-3 criterion-scan lengths. All
/// deterministic-plane figures (walkers are pure functions of their
/// configs and the network's responses).
fn render_walker_metrics(out: &mut String, outcomes: &[JobOutcome]) {
    use std::fmt::Write;
    let (mut proposals, mut rejections) = (0u64, 0u64);
    let (mut scans, mut scanned, mut max_scan) = (0u64, 0u64, 0u64);
    for o in outcomes {
        if let Some((p, r)) = o.mh {
            proposals += p;
            rejections += r;
        }
        if let Some(s) = o.scan {
            scans += s.criterion_scans;
            scanned += s.criterion_scanned;
            max_scan = max_scan.max(s.max_scan);
        }
    }
    writeln!(out, "metric mh-proposals {proposals}").expect("string write");
    writeln!(out, "metric mh-rejections {rejections}").expect("string write");
    writeln!(out, "metric criterion-scans {scans}").expect("string write");
    writeln!(out, "metric criterion-scanned {scanned}").expect("string write");
    writeln!(out, "metric max-scan-len {max_scan}").expect("string write");
}

/// Metrics summary of a single-client run (`metrics` directive). One
/// client means one plane: every line is deterministic.
fn render_scheduler_metrics(out: &mut String, report: &ServeReport, obs: &SchedulerObs) {
    use std::fmt::Write;
    let steps: u64 = report.outcomes.iter().map(|o| o.steps as u64).sum();
    writeln!(out, "# metrics").expect("string write");
    writeln!(out, "metric jobs {}", report.outcomes.len()).expect("string write");
    writeln!(out, "metric walk-steps {steps}").expect("string write");
    writeln!(out, "metric unique-queries {}", obs.unique_queries).expect("string write");
    writeln!(out, "metric total-lookups {}", obs.total_lookups).expect("string write");
    writeln!(
        out,
        "metric cache-hit-rate {}",
        percent(obs.total_lookups.saturating_sub(obs.unique_queries), obs.total_lookups)
    )
    .expect("string write");
    writeln!(out, "metric transient-retries {}", obs.transient_retries).expect("string write");
    writeln!(out, "metric arena-rewrites-in-place {}", obs.arena_rewrites_in_place)
        .expect("string write");
    writeln!(out, "metric arena-leaked-ids {}", obs.arena_leaked_ids).expect("string write");
    // The scheduler trace is built balanced by construction, so its
    // underflow anomaly counter is pinned at zero here — the line
    // exists so the baseline gate watches it anyway.
    writeln!(out, "metric trace-underflows 0").expect("string write");
    render_walker_metrics(out, &report.outcomes);
    if let Some(quality) = &obs.quality {
        quality.render_metric_lines(out);
    }
}

/// The fleet path: jobs sharded across `W` workers with epoch-barrier
/// history gossip (see `mto_fleet::FleetCoordinator`). The `epochs N`
/// directive is a *target barrier count*: the per-epoch quantum is the
/// longest job budget divided across `N` epochs. A `budget N` directive
/// becomes the fleet-wide unique-query budget of the QoS ledger, and
/// the `policy` directive selects the epoch planner.
fn run_fleet(
    request: &ServeRequest,
    shards: usize,
    prior: Option<HistoryStore>,
) -> Result<(String, HistoryStore, Option<WallPlane>), ServeError> {
    let service = Arc::new(OsnService::with_defaults(&request.network.build()));
    let max_budget = request.jobs.iter().map(|j| j.step_budget).max().unwrap_or(0);
    let target_epochs = request.epochs.unwrap_or(4).max(1);
    let epoch_quantum = max_budget.div_ceil(target_epochs).max(1);
    let config = FleetConfig {
        shards,
        epoch_quantum,
        provider: request.provider,
        policy: request.scheduler.policy,
        fleet_budget: request.scheduler.global_query_budget,
        // `prom` wants the metrics families in its snapshot, so it
        // implies obs; enabling obs never changes results (the fleet's
        // own tests pin that).
        obs: request.trace.is_some() || request.metrics || request.prom.is_some(),
        wall: request.prom.is_some(),
        quality: request.quality,
        ..Default::default()
    };
    let mut fleet = FleetCoordinator::new(move |_| service.clone(), config);
    if let Some(store) = prior {
        fleet = fleet.with_warm_start(store);
    }
    let report = fleet.run(request.jobs.clone())?;
    let mut body = render_fleet_report(request, &report, epoch_quantum);
    if request.metrics {
        render_fleet_metrics(&mut body, request, &report);
    }
    if let Some(path) = &request.trace {
        let fallback = TraceSink::new();
        write_trace(path, report.obs.as_ref().map_or(&fallback, |o| &o.trace))?;
    }
    let plane = report.wall.clone().map(|wall| WallPlane {
        metrics: report.obs.as_ref().map(|o| o.registry.clone()),
        quality: report.quality.clone(),
        wall,
    });
    let store = report.union_store;
    Ok((body, store, plane))
}

/// Metrics summary of a fleet run (`metrics` directive), in two planes:
/// `metric` lines are shard-invariant — byte-identical at every `W`
/// (the obs-smoke CI job diffs them) — while `timing` lines carry the
/// figures sharding legitimately changes: bills, queue waits, gossip
/// yield, per-job finish instants.
fn render_fleet_metrics(out: &mut String, request: &ServeRequest, report: &FleetReport) {
    use std::fmt::Write;
    let Some(obs) = &report.obs else { return };
    let reg = &obs.registry;
    writeln!(out, "# metrics (shard-invariant)").expect("string write");
    writeln!(out, "metric jobs {}", report.outcomes.len()).expect("string write");
    writeln!(out, "metric epochs {}", report.epochs.len()).expect("string write");
    writeln!(out, "metric walk-steps {}", reg.counter("walk-steps")).expect("string write");
    // The shard-invariant cache accounting: `unique-queries` is the
    // *union* of what the fleet learned (gossip makes it W-invariant),
    // `total-lookups` is the sum of every walker's fetch calls (each
    // walk is deterministic). The W-dependent bill — what the shards
    // actually re-paid — is `timing fleet-bill-unique-queries` below.
    let unique = reg.counter("unique-nodes-crawled");
    let lookups = reg.counter("total-lookups");
    writeln!(out, "metric unique-queries {unique}").expect("string write");
    writeln!(out, "metric total-lookups {lookups}").expect("string write");
    writeln!(out, "metric cache-hit-rate {}", percent(lookups.saturating_sub(unique), lookups))
        .expect("string write");
    // Causal adoptions are derived from walk histories, not shard
    // caches, so they sit in the invariant plane with the trace's
    // gossip edges; a nonzero underflow count is an instrumentation
    // bug this surface must scream about.
    writeln!(out, "metric gossip-causal-adoptions {}", reg.counter("gossip-causal-adoptions"))
        .expect("string write");
    writeln!(out, "metric trace-underflows {}", reg.counter("trace-underflows"))
        .expect("string write");
    render_walker_metrics(out, &report.outcomes);
    // Quality figures are pure functions of the walks, so they belong
    // to the shard-invariant plane (the quality-smoke CI job diffs them
    // across W).
    if let Some(quality) = &report.quality {
        quality.render_metric_lines(out);
    }
    writeln!(out, "# timing (varies with shard count)").expect("string write");
    writeln!(out, "timing fleet-bill-unique-queries {}", report.total_unique_queries)
        .expect("string write");
    writeln!(out, "timing gossip-adopted {}", report.gossip_adopted_responses)
        .expect("string write");
    writeln!(out, "timing merge-conflicts {}", report.merge_conflicts).expect("string write");
    writeln!(out, "timing makespan-secs {:.3}", report.makespan_secs).expect("string write");
    writeln!(out, "timing pipeline-completions {}", reg.counter("pipeline-completions"))
        .expect("string write");
    writeln!(out, "timing transient-retries {}", reg.counter("transient-retries"))
        .expect("string write");
    writeln!(out, "timing arena-rewrites-in-place {}", reg.counter("arena-rewrites-in-place"))
        .expect("string write");
    writeln!(out, "timing arena-leaked-ids {}", reg.counter("arena-leaked-ids"))
        .expect("string write");
    for name in ["queue-wait-us", "service-time-us"] {
        if let Some(h) = reg.histogram(name) {
            writeln!(out, "timing p50-{name} {}", h.p50()).expect("string write");
            writeln!(out, "timing p99-{name} {}", h.p99()).expect("string write");
        }
    }
    for (o, spec) in report.outcomes.iter().zip(&request.jobs) {
        if let (Some(d), Some(t)) = (spec.deadline, o.finished_secs) {
            writeln!(
                out,
                "timing deadline-slack job={} deadline={d:.3} finished-at={t:.3} slack-secs={:.3}",
                o.id,
                d - t
            )
            .expect("string write");
        }
    }
}

fn render_job_line(
    out: &mut String,
    o: &JobOutcome,
    deadline: Option<f64>,
    quality: Option<&JobQualityFigures>,
) {
    use std::fmt::Write;
    write!(
        out,
        "job {} algo={} steps={} completed={} final={} visits={}",
        o.id,
        o.algorithm,
        o.steps,
        u8::from(o.completed),
        o.final_node,
        o.history.len()
    )
    .expect("string write");
    if let Some(est) = o.avg_degree_estimate {
        write!(out, " est-avg-degree={est:.4}").expect("string write");
    }
    if let Some(s) = o.stats {
        write!(out, " removals={} replacements={}", s.removals, s.replacements)
            .expect("string write");
    }
    // Timing fields appear only for deadline jobs: deadline-free job
    // lines stay byte-stable across warm starts and shard counts.
    if let Some(d) = deadline {
        if let Some(t) = o.finished_secs {
            write!(out, " finished-at={t:.3}").expect("string write");
        }
        write!(out, " deadline={d:.3}").expect("string write");
        // The met flag needs a finish instant to judge against — the
        // fleet stamps one; the plain scheduler does not, and a job that
        // never ran (deferred/rejected/cut) has verifiably missed. A
        // completed job with no timestamp reports no verdict rather than
        // a false miss.
        if o.finished_secs.is_some() || !o.completed {
            write!(out, " deadline-met={}", u8::from(o.deadline_met(d))).expect("string write");
        }
    }
    // The SLO verdict appears only for jobs that declared `ess=`:
    // SLO-free job lines stay byte-stable with or without the quality
    // plane.
    if let Some(q) = quality {
        if q.target_ess.is_some() {
            write!(out, " quality-met={}", u8::from(q.met)).expect("string write");
        }
    }
    out.push('\n');
}

fn render_report(
    request: &ServeRequest,
    report: &ServeReport,
    quality: Option<&QualityReport>,
) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# mto-serve results").expect("string write");
    writeln!(out, "network {}", request.network.to_line()).expect("string write");
    writeln!(out, "jobs {}", report.outcomes.len()).expect("string write");
    writeln!(out, "total-unique-queries {}", report.total_unique_queries).expect("string write");
    if let (Some(profile), Some(secs)) = (&request.provider, report.virtual_secs) {
        writeln!(out, "provider {} virtual-secs {secs:.3}", profile.name).expect("string write");
    }
    writeln!(
        out,
        "aggregate-rewiring removals={} replacements={} rejections={}",
        report.aggregate_stats.removals,
        report.aggregate_stats.replacements,
        report.aggregate_stats.replacement_rejections
    )
    .expect("string write");
    for (o, spec) in report.outcomes.iter().zip(&request.jobs) {
        render_job_line(&mut out, o, spec.deadline, quality.and_then(|q| q.jobs.get(&o.id)));
    }
    out
}

fn render_fleet_report(request: &ServeRequest, report: &FleetReport, quantum: usize) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# mto-serve results (fleet)").expect("string write");
    writeln!(out, "network {}", request.network.to_line()).expect("string write");
    writeln!(
        out,
        "fleet shards={} epochs={} quantum={quantum}",
        report.shards,
        report.epochs.len()
    )
    .expect("string write");
    writeln!(out, "jobs {}", report.outcomes.len()).expect("string write");
    writeln!(out, "total-unique-queries {}", report.total_unique_queries).expect("string write");
    writeln!(out, "gossip-saved {}", report.gossip_adopted_responses).expect("string write");
    writeln!(out, "merge-conflicts {}", report.merge_conflicts).expect("string write");
    writeln!(out, "makespan-secs {:.3}", report.makespan_secs).expect("string write");
    if let Some(profile) = &request.provider {
        // The fleet line carries the pipeline's adaptation counters
        // (summed over shards); the single-client line keeps its
        // frozen `provider NAME virtual-secs T` shape — CI greps it.
        let ps = &report.pipeline_stats;
        writeln!(
            out,
            "provider {} ramp-ups={} ramp-downs={} latency-backoffs={} rate-limit-stalls={}",
            profile.name, ps.ramp_ups, ps.ramp_downs, ps.latency_backoffs, ps.rate_limit_stalls
        )
        .expect("string write");
    }
    if let Some(ledger) = &report.ledger {
        // The ledger figures are shard-invariant: identical lines at
        // every W (the qos-smoke CI job diffs them).
        writeln!(
            out,
            "ledger total={} spent={} pool={} cut-jobs={}",
            ledger.total, ledger.spent, ledger.pool, ledger.cut_jobs
        )
        .expect("string write");
        writeln!(out, "ledger-rebalance reclaimed={} granted={}", ledger.reclaimed, ledger.granted)
            .expect("string write");
    }
    for d in &report.admission {
        if let Some(reason) = &d.reason {
            writeln!(
                out,
                "admission job={} verdict={} predicted-queries={} predicted-secs={:.3} # {}",
                d.id,
                d.verdict.name(),
                d.predicted_queries,
                d.predicted_secs,
                reason
            )
            .expect("string write");
        }
    }
    writeln!(
        out,
        "aggregate-rewiring removals={} replacements={} rejections={}",
        report.aggregate_stats.removals,
        report.aggregate_stats.replacements,
        report.aggregate_stats.replacement_rejections
    )
    .expect("string write");
    for e in &report.epochs {
        writeln!(
            out,
            "epoch {} unique={} adopted={} conflicts={} makespan-secs={:.3}",
            e.epoch,
            e.fleet_unique_queries,
            e.adopted_responses,
            e.merge_conflicts,
            e.makespan_secs
        )
        .expect("string write");
    }
    for (o, spec) in report.outcomes.iter().zip(&request.jobs) {
        let figures = report.quality.as_ref().and_then(|q| q.jobs.get(&o.id));
        render_job_line(&mut out, o, spec.deadline, figures);
    }
    out
}

fn cmd_snapshot(args: &[String]) -> Result<(), Invocation> {
    let (request_path, flags) = parse_flags(args, &["at", "to"])?;
    let at: usize = flags
        .get("at")
        .ok_or_else(|| Invocation::Usage("snapshot needs --at STEPS".into()))?
        .to_string_lossy()
        .parse()
        .map_err(|e| Invocation::Usage(format!("bad --at value: {e}")))?;
    let to = flags.get("to").ok_or_else(|| Invocation::Usage("snapshot needs --to FILE".into()))?;

    let request = read_request(&request_path)?;
    // A snapshot freezes ONE session; a request that asks for a fleet
    // cannot be honored by silently ignoring its fleet directives (the
    // resumed run would quietly drop the sharding the user asked for).
    // Fail fast, naming the unsupported directive.
    for (present, directive) in
        [(request.shards.is_some(), "shards"), (request.epochs.is_some(), "epochs")]
    {
        if present {
            return Err(Invocation::Failed(ServeError::Request {
                line: 0,
                message: format!(
                    "`snapshot`/`resume` operate on a single session; the fleet directive \
                     `{directive}` is not supported here — drop it or use `run`"
                ),
            }));
        }
    }
    let service = OsnService::with_defaults(&request.network.build());
    // Honor the provider directive exactly like `run` does, so one
    // request file means the same thing under every subcommand; the
    // provider travels in the snapshot meta for `resume` to rebuild.
    match request.provider {
        Some(profile) => {
            snapshot_session(TimedInterface::new(service, profile, 0x5EED), &request, at, to)
        }
        None => snapshot_session(service, &request, at, to),
    }
}

fn snapshot_session<I: SocialNetworkInterface>(
    service: I,
    request: &ServeRequest,
    at: usize,
    to: &Path,
) -> Result<(), Invocation> {
    let job = request.jobs[0].clone(); // parse guarantees ≥ 1 job
    let client = SharedClient::new(CachedClient::new(service));
    let mut session = SamplerSession::create(client, job)?;
    session.set_meta(NETWORK_META, request.network.to_line());
    if let Some(profile) = &request.provider {
        session.set_meta(PROVIDER_META, profile.name);
    }
    let taken = session.advance(at)?;
    session.pause();
    session.snapshot().save(to)?;
    println!(
        "snapshotted job {} after {} steps ({} unique queries) to {}",
        session.spec().id,
        taken,
        session.unique_queries(),
        to.display()
    );
    Ok(())
}

fn cmd_resume(args: &[String]) -> Result<(), Invocation> {
    let (snapshot_path, flags) = parse_flags(args, &["out"])?;
    let snapshot = SessionSnapshot::load(&snapshot_path)?;
    let network_line = snapshot
        .meta_value(NETWORK_META)
        .ok_or_else(|| ServeError::SnapshotMismatch("snapshot records no network spec".into()))?
        .to_string();
    let network = NetworkSpec::parse(&network_line)
        .map_err(|m| ServeError::SnapshotMismatch(format!("bad network meta: {m}")))?;
    let provider = match snapshot.meta_value(PROVIDER_META) {
        Some(name) => Some(mto_net::ProviderProfile::by_name(name).ok_or_else(|| {
            ServeError::SnapshotMismatch(format!("unknown provider meta {name:?}"))
        })?),
        None => None,
    };

    let service = OsnService::with_defaults(&network.build());
    // Replaying the frozen prefix is pure cache hits, so the virtual
    // clock only charges the *remaining* steps — exactly what resuming
    // against the live provider would cost.
    let out = match provider {
        Some(profile) => {
            let timed = TimedInterface::new(service, profile, 0x5EED);
            let clock = timed.clock().clone();
            resume_session(timed, &snapshot, &network_line, Some((profile.name, clock)))?
        }
        None => resume_session(service, &snapshot, &network_line, None)?,
    };
    emit(&out, flags.get("out"))?;
    Ok(())
}

fn resume_session<I: SocialNetworkInterface>(
    service: I,
    snapshot: &SessionSnapshot,
    network_line: &str,
    provider_clock: Option<(&str, VirtualClock)>,
) -> Result<String, Invocation> {
    let client = SharedClient::new(CachedClient::new(service));
    let mut session = SamplerSession::restore(client, snapshot)?;
    let resumed_at = session.steps_taken();
    session.run_to_completion()?;
    let estimate = session.average_degree_estimate()?;

    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "# mto-serve resumed session").expect("string write");
    writeln!(out, "network {network_line}").expect("string write");
    writeln!(
        out,
        "job {} resumed-at={} steps={} final={} unique-queries={}",
        session.spec().id,
        resumed_at,
        session.steps_taken(),
        session.walker().current(),
        session.unique_queries()
    )
    .expect("string write");
    if let Some((name, clock)) = provider_clock {
        writeln!(out, "provider {name} virtual-secs {:.3}", clock.now()).expect("string write");
    }
    if let Some(est) = estimate {
        writeln!(out, "est-avg-degree {est:.4}").expect("string write");
    }
    Ok(out)
}
