//! # mto-fleet — the deterministic sharded crawl fleet
//!
//! One [`mto_serve::scheduler::JobScheduler`] spends crawl history well
//! *inside* a process: every job shares one client, so a neighborhood
//! paid for by one walker is free for all. But one shared client is one
//! shared lock — the architecture stops scaling exactly where the
//! ROADMAP's production north star begins. This crate is the
//! coordination layer that removes the lock without giving up the
//! history: many shard workers, each with a **private** cache, private
//! [`mto_net::QueryPipeline`] and private [`mto_osn::VirtualClock`], run
//! in lockstep **epochs**; at every barrier the shards **gossip** their
//! [`mto_serve::HistoryStore`]s into a fleet-wide union that is
//! redistributed, so shards stop re-paying for each other's queries
//! (history reuse à la arXiv:1505.00079, applied *between* concurrent
//! crawlers).
//!
//! * [`plan`] — [`ShardPlan`]: deterministic round-robin job
//!   partitioning;
//! * [`coordinator`] — [`FleetCoordinator`]: scoped-thread epochs,
//!   barrier gossip via keep-first [`mto_serve::HistoryStore::merge`]
//!   (conflicts counted and surfaced), per-shard wall-clock accounting
//!   through the query pipeline;
//! * [`report`] — [`FleetReport`] / [`EpochReport`]: per-epoch unique
//!   queries, gossip dedup savings, merge conflicts, and makespan (max
//!   per-shard virtual seconds), plus [`FleetReport::results_digest`],
//!   the byte-comparable witness of the determinism contract;
//! * the `mto_serve` **binary** (request file in, results out) — fleet
//!   mode behind `shards W` / `epochs N` directives, crash-safe
//!   journaling behind `journal FILE`.
//!
//! ## Determinism contract
//!
//! Fleet *results* — samples, estimates, rewire stats — are
//! bit-identical regardless of shard count, worker interleaving, and
//! gossip merge order, and `W = 1` reproduces the single-client
//! scheduler exactly (walkers are pure functions of their configs and
//! the network's responses; sharding and gossip only change who pays
//! for which response). The *bill* and the *makespan* are what sharding
//! changes — [`FleetReport`] measures both.
//!
//! ## Example
//!
//! ```
//! use mto_core::mto::MtoConfig;
//! use mto_fleet::{FleetConfig, FleetCoordinator};
//! use mto_graph::generators::paper_barbell;
//! use mto_graph::NodeId;
//! use mto_osn::OsnService;
//! use mto_serve::session::{AlgoSpec, JobSpec};
//!
//! let jobs: Vec<JobSpec> = (0..4)
//!     .map(|i: u32| JobSpec {
//!         id: format!("walker-{i}"),
//!         algo: AlgoSpec::Mto(MtoConfig { seed: i as u64 + 1, ..Default::default() }),
//!         start: NodeId(5 * i),
//!         step_budget: 200,
//!         deadline: None,
//!         ess: None,
//!     })
//!     .collect();
//! let fleet = FleetCoordinator::new(
//!     |_| OsnService::with_defaults(&paper_barbell()),
//!     FleetConfig { shards: 2, epoch_quantum: 50, ..Default::default() },
//! );
//! let report = fleet.run(jobs).unwrap();
//! assert_eq!(report.outcomes.len(), 4);
//! assert!(report.makespan_secs > 0.0, "per-shard pipelines bill virtual time");
//! // Two shards share one 22-node network: with gossip, the fleet-wide
//! // bill stays at most one crawl of the graph per shard.
//! assert!(report.total_unique_queries <= 44);
//! ```

#![warn(missing_docs)]

pub mod coordinator;
pub mod plan;
pub mod report;

pub use coordinator::{FleetConfig, FleetCoordinator, MergeOrder};
pub use plan::ShardPlan;
pub use report::{EpochReport, FleetObsData, FleetReport, LedgerSummary};
