//! Property suite for the fleet determinism contract (ISSUE 4,
//! satellite 4):
//!
//! * fleet **results** (samples, estimates, rewire stats) are invariant
//!   to shard count, epoch quantum (worker interleaving granularity),
//!   gossip on/off, and gossip merge order — for arbitrary heterogeneous
//!   job mixes;
//! * `W = 1` exactly reproduces the single-client
//!   [`mto_serve::scheduler::JobScheduler`] path, outcome by outcome;
//! * gossip never *increases* the fleet bill, and the per-epoch
//!   accounting is internally consistent (cumulative bills, monotone
//!   makespans, adopted totals).

use proptest::collection::vec;
use proptest::prelude::*;

use mto_core::mto::MtoConfig;
use mto_core::walk::{MhrwConfig, SrwConfig};
use mto_fleet::{FleetConfig, FleetCoordinator, MergeOrder};
use mto_graph::generators::paper_barbell;
use mto_graph::NodeId;
use mto_osn::OsnService;
use mto_serve::scheduler::{JobScheduler, SchedulerConfig};
use mto_serve::session::{AlgoSpec, JobSpec};

/// One proptest-generated job: `(algo selector, seed, start, steps)`.
fn job_strategy() -> impl Strategy<Value = (u8, u64, u32, usize)> {
    (0u8..3, 1u64..1_000, 0u32..22, 20usize..160)
}

fn build_jobs(raw: &[(u8, u64, u32, usize)]) -> Vec<JobSpec> {
    raw.iter()
        .enumerate()
        .map(|(i, &(algo, seed, start, steps))| JobSpec {
            id: format!("job-{i}"),
            algo: match algo {
                0 => AlgoSpec::Mto(MtoConfig { seed, ..Default::default() }),
                1 => AlgoSpec::Srw(SrwConfig { seed, lazy: false }),
                _ => AlgoSpec::Mhrw(MhrwConfig { seed }),
            },
            start: NodeId(start),
            step_budget: steps,
            deadline: None,
            ess: None,
        })
        .collect()
}

fn run_fleet(jobs: Vec<JobSpec>, config: FleetConfig) -> mto_fleet::FleetReport {
    FleetCoordinator::new(|_| OsnService::with_defaults(&paper_barbell()), config)
        .run(jobs)
        .expect("fleet run")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn results_are_invariant_to_sharding_quantum_gossip_and_merge_order(
        raw in vec(job_strategy(), 1..7),
        shards in 1usize..6,
        quantum in 1usize..80,
    ) {
        let jobs = build_jobs(&raw);
        let reference = run_fleet(
            jobs.clone(),
            FleetConfig { shards: 1, epoch_quantum: 64, ..Default::default() },
        )
        .results_digest();
        for (gossip, order) in [
            (true, MergeOrder::Forward),
            (true, MergeOrder::Reverse),
            (false, MergeOrder::Forward),
        ] {
            let digest = run_fleet(
                jobs.clone(),
                FleetConfig {
                    shards,
                    epoch_quantum: quantum,
                    gossip,
                    merge_order: order,
                    ..Default::default()
                },
            )
            .results_digest();
            prop_assert_eq!(
                &digest, &reference,
                "W={} quantum={} gossip={} {:?} diverged", shards, quantum, gossip, order
            );
        }
    }

    #[test]
    fn single_shard_reproduces_the_scheduler_exactly(
        raw in vec(job_strategy(), 1..6),
        workers in 1usize..5,
        quantum in 1usize..80,
    ) {
        let jobs = build_jobs(&raw);
        let fleet = run_fleet(
            jobs.clone(),
            FleetConfig { shards: 1, epoch_quantum: quantum, ..Default::default() },
        );
        let scheduler = JobScheduler::new(
            OsnService::with_defaults(&paper_barbell()),
            SchedulerConfig { workers, quantum: quantum.max(1), ..Default::default() },
        );
        let serve = scheduler.run(jobs).expect("scheduler run");
        prop_assert_eq!(fleet.outcomes.len(), serve.outcomes.len());
        for (f, s) in fleet.outcomes.iter().zip(&serve.outcomes) {
            prop_assert_eq!(&f.id, &s.id);
            prop_assert_eq!(&f.history, &s.history, "job {} diverged", f.id);
            prop_assert_eq!(f.stats, s.stats);
            prop_assert_eq!(f.avg_degree_estimate, s.avg_degree_estimate);
            prop_assert_eq!((f.steps, f.completed), (s.steps, s.completed));
        }
        prop_assert_eq!(fleet.total_unique_queries, serve.total_unique_queries);
    }

    #[test]
    fn gossip_never_costs_more_and_epoch_accounting_is_consistent(
        raw in vec(job_strategy(), 2..7),
        shards in 2usize..6,
        quantum in 4usize..40,
    ) {
        let jobs = build_jobs(&raw);
        let config = FleetConfig { shards, epoch_quantum: quantum, ..Default::default() };
        let gossiped = run_fleet(jobs.clone(), config);
        let isolated =
            run_fleet(jobs, FleetConfig { gossip: false, ..config });
        prop_assert!(
            gossiped.total_unique_queries <= isolated.total_unique_queries,
            "gossip raised the bill: {} > {}",
            gossiped.total_unique_queries,
            isolated.total_unique_queries
        );
        prop_assert_eq!(
            gossiped.gossip_adopted_responses,
            gossiped.epochs.iter().map(|e| e.adopted_responses).sum::<u64>()
        );
        for w in gossiped.epochs.windows(2) {
            prop_assert!(w[1].fleet_unique_queries >= w[0].fleet_unique_queries);
            prop_assert!(w[1].makespan_secs >= w[0].makespan_secs);
            prop_assert_eq!(w[1].epoch, w[0].epoch + 1);
        }
        // Honest shards crawling one network never conflict.
        prop_assert_eq!(gossiped.merge_conflicts, 0);
    }
}
