//! Property suite for the `mto-net` discrete-event engine.
//!
//! The contract under test (ISSUE 3, satellite 4):
//!
//! * the event queue's `(time, seq)` ordering is a **total order**: pops
//!   are sorted by time with FIFO tie-breaking, for arbitrary push
//!   schedules;
//! * the pipeline is **deterministic across retrieval interleavings and
//!   arbitrary K**: the completion log depends only on `(seed,
//!   submissions)`, and every submission completes exactly once;
//! * latency samples **respect their model's bounds**: constant is
//!   exact, uniform stays in `[lo, hi)`, log-normal is strictly positive
//!   and finite.

use proptest::collection::vec;
use proptest::prelude::*;

use mto_graph::generators::paper_barbell;
use mto_graph::NodeId;
use mto_net::event::EventQueue;
use mto_net::latency::{FaultModel, LatencyModel};
use mto_net::pipeline::{Concurrency, PipelineConfig, QueryPipeline};
use mto_osn::{OsnService, RateLimitPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pipeline_on_barbell(config: PipelineConfig) -> QueryPipeline<OsnService> {
    QueryPipeline::new(OsnService::with_defaults(&paper_barbell()), config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn event_queue_pops_a_total_order(times in vec(0u64..1_000, 1..120)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(t, i);
        }
        let popped: Vec<(u64, u64, usize)> =
            std::iter::from_fn(|| q.pop().map(|e| (e.time_us, e.seq, e.payload))).collect();
        prop_assert_eq!(popped.len(), times.len());
        for w in popped.windows(2) {
            let ((t0, s0, _), (t1, s1, _)) = (w[0], w[1]);
            // Strict (time, seq) lexicographic order: a total order, so
            // no two pops ever compare equal.
            prop_assert!(t0 < t1 || (t0 == t1 && s0 < s1), "pop order broke: {:?}", w);
        }
        // Every payload surfaces exactly once, and ties pop FIFO.
        let mut seen: Vec<usize> = popped.iter().map(|&(_, _, p)| p).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..times.len()).collect::<Vec<_>>());
        for w in popped.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].2 < w[1].2, "same-time events popped out of push order");
            }
        }
    }

    #[test]
    fn pipeline_log_is_invariant_under_retrieval_interleaving(
        nodes in vec(0u32..22, 1..40),
        seed in any::<u64>(),
        k in 1usize..9,
        pick in any::<u64>(),
    ) {
        let config = PipelineConfig {
            max_in_flight: k,
            latency: LatencyModel::LogNormal { median_secs: 0.2, sigma: 0.9 },
            faults: FaultModel { timeout_prob: 0.1, timeout_secs: 1.0, max_attempts: 3 },
            rate_limit: Some(RateLimitPolicy { burst: 10, refill_per_sec: 2.0 }),
            seed,
            ..Default::default()
        };
        // Run 1: drain in event order.
        let mut a = pipeline_on_barbell(config);
        let ids_a: Vec<_> = nodes.iter().map(|&v| a.submit(NodeId(v))).collect();
        let done_a = a.drain();
        // Run 2: force a different completion-retrieval interleaving —
        // wait for an arbitrary id first, then the rest in reverse.
        let mut b = pipeline_on_barbell(config);
        let ids_b: Vec<_> = nodes.iter().map(|&v| b.submit(NodeId(v))).collect();
        let first = ids_b[(pick % ids_b.len() as u64) as usize];
        prop_assert!(b.wait_for(first).is_some());
        let mut done_b = 1usize;
        for &id in ids_b.iter().rev() {
            if id != first {
                prop_assert!(b.wait_for(id).is_some(), "id {} lost", id);
                done_b += 1;
            }
        }
        prop_assert_eq!(done_a.len(), ids_a.len(), "every submission completes once");
        prop_assert_eq!(done_b, ids_b.len());
        prop_assert_eq!(a.log_text(), b.log_text(), "retrieval order leaked into the stream");
        prop_assert_eq!(a.clock().now_us(), b.clock().now_us());
    }

    #[test]
    fn pipeline_completion_times_are_monotone_and_causal(
        nodes in vec(0u32..22, 1..40),
        seed in any::<u64>(),
        k in 1usize..9,
    ) {
        let mut p = pipeline_on_barbell(PipelineConfig {
            max_in_flight: k,
            latency: LatencyModel::Uniform { lo: 0.05, hi: 0.4 },
            seed,
            ..Default::default()
        });
        for &v in &nodes {
            p.submit(NodeId(v));
        }
        let done = p.drain();
        for w in done.windows(2) {
            prop_assert!(w[0].completed_at <= w[1].completed_at, "stream out of time order");
        }
        for c in &done {
            prop_assert!(c.submitted_at <= c.started_at, "started before submission");
            prop_assert!(c.started_at < c.completed_at, "zero/negative service time");
        }
    }

    #[test]
    fn adaptive_concurrency_is_bounded_deterministic_and_lossless(
        nodes in vec(0u32..22, 1..40),
        seed in any::<u64>(),
        max_k in 2usize..9,
        min_k in 1usize..4,
        burst in 2u64..12,
    ) {
        let config = PipelineConfig {
            max_in_flight: max_k,
            concurrency: Concurrency::Adaptive { min_in_flight: min_k },
            latency: LatencyModel::LogNormal { median_secs: 0.15, sigma: 0.8 },
            rate_limit: Some(RateLimitPolicy { burst, refill_per_sec: 1.5 }),
            seed,
            ..Default::default()
        };
        let run = || {
            let mut p = pipeline_on_barbell(config);
            let mut limits = Vec::new();
            for &v in &nodes {
                p.submit(NodeId(v));
                limits.push(p.in_flight_limit());
            }
            let done = p.drain().len();
            (limits, done, p.log_text(), p.clock().now_us())
        };
        let (limits, done, log, t) = run();
        let floor = min_k.clamp(1, max_k);
        prop_assert!(
            limits.iter().all(|&k| (floor..=max_k).contains(&k)),
            "limit escaped [{}, {}]: {:?}", floor, max_k, limits
        );
        prop_assert_eq!(done, nodes.len(), "adaptive ramping lost a completion");
        prop_assert_eq!(run(), (limits, done, log, t), "adaptive run not reproducible");
    }

    #[test]
    fn constant_latency_is_exact(secs in 0.001f64..10.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = LatencyModel::Constant { secs };
        for _ in 0..32 {
            prop_assert_eq!(m.sample(&mut rng), secs);
        }
    }

    #[test]
    fn uniform_latency_respects_bounds(
        lo in 0.0f64..1.0,
        width in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let hi = lo + width;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = LatencyModel::Uniform { lo, hi };
        for _ in 0..64 {
            let s = m.sample(&mut rng);
            prop_assert!(s >= lo && s <= hi, "sample {} outside [{}, {}]", s, lo, hi);
        }
    }

    #[test]
    fn lognormal_latency_is_positive_and_finite(
        median in 0.001f64..5.0,
        sigma in 0.0f64..2.0,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let m = LatencyModel::LogNormal { median_secs: median, sigma };
        for _ in 0..64 {
            let s = m.sample(&mut rng);
            prop_assert!(s > 0.0 && s.is_finite(), "sample {} out of range", s);
        }
    }
}
