//! Latency and failure models for simulated provider traffic.
//!
//! The paper's cost model counts unique queries, but against a live
//! provider the real bill is *wall-clock time*: per-request latency plus
//! rate-limit stalls ("Walk, Not Wait", arXiv:1410.7833, measures
//! hundreds of milliseconds per OSN API round trip). [`LatencyModel`]
//! generates those per-request service times deterministically from a
//! seeded RNG; [`FaultModel`] layers timeout injection on top; and
//! [`ProviderProfile`] bundles a latency model, a fault model, and a
//! published [`RateLimitPolicy`] into the named presets the latency
//! experiment sweeps.

use rand::rngs::StdRng;
use rand::Rng;

use mto_osn::RateLimitPolicy;

/// Distribution of one request's service time, in virtual seconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatencyModel {
    /// Every request takes exactly this long.
    Constant {
        /// Service time in seconds.
        secs: f64,
    },
    /// Uniform over `[lo, hi)` seconds.
    Uniform {
        /// Lower bound (inclusive), seconds.
        lo: f64,
        /// Upper bound (exclusive; must be ≥ `lo`), seconds.
        hi: f64,
    },
    /// Log-normal — the heavy-tailed shape real API latencies follow.
    /// Parameterized by the median (`exp(μ)`) because that is what
    /// latency measurements report.
    LogNormal {
        /// Median service time in seconds (`exp(μ)` of the underlying
        /// normal).
        median_secs: f64,
        /// Shape parameter σ of the underlying normal (0 degenerates to
        /// constant `median_secs`).
        sigma: f64,
    },
}

impl LatencyModel {
    /// Draws one service time. Always finite and `> 0` for positive
    /// parameters.
    pub fn sample(&self, rng: &mut StdRng) -> f64 {
        match *self {
            LatencyModel::Constant { secs } => secs,
            LatencyModel::Uniform { lo, hi } => {
                debug_assert!(hi >= lo, "uniform bounds inverted: [{lo}, {hi})");
                lo + (hi - lo) * rng.gen::<f64>()
            }
            LatencyModel::LogNormal { median_secs, sigma } => {
                median_secs * (sigma * standard_normal(rng)).exp()
            }
        }
    }

    /// The distribution mean, used for capacity estimates in reports.
    pub fn mean(&self) -> f64 {
        match *self {
            LatencyModel::Constant { secs } => secs,
            LatencyModel::Uniform { lo, hi } => 0.5 * (lo + hi),
            LatencyModel::LogNormal { median_secs, sigma } => {
                median_secs * (0.5 * sigma * sigma).exp()
            }
        }
    }
}

/// One standard-normal draw via Box–Muller (the vendored `rand` has no
/// `rand_distr`). Uses `1 − U` so the logarithm argument is in `(0, 1]`.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Timeout injection: a request attempt may hang for the provider's
/// timeout window and have to be retried, consuming quota each time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultModel {
    /// Probability that any given attempt times out.
    pub timeout_prob: f64,
    /// Virtual seconds a timed-out attempt burns before the client gives
    /// up on it.
    pub timeout_secs: f64,
    /// Hard cap on attempts per request (≥ 1); the final attempt always
    /// succeeds so simulations terminate.
    pub max_attempts: u32,
}

impl FaultModel {
    /// No injected faults.
    pub fn none() -> Self {
        FaultModel { timeout_prob: 0.0, timeout_secs: 0.0, max_attempts: 1 }
    }
}

impl Default for FaultModel {
    fn default() -> Self {
        Self::none()
    }
}

/// A named provider preset: rate-limit policy + latency + faults.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProviderProfile {
    /// Display name (`"facebook"`, …).
    pub name: &'static str,
    /// The published request quota.
    pub policy: RateLimitPolicy,
    /// Per-request service-time distribution.
    pub latency: LatencyModel,
    /// Timeout injection.
    pub faults: FaultModel,
}

impl ProviderProfile {
    /// Facebook circa the paper: 600 requests / 600 s, a few hundred ms
    /// median latency with a heavy tail.
    pub fn facebook() -> Self {
        ProviderProfile {
            name: "facebook",
            policy: RateLimitPolicy::facebook(),
            latency: LatencyModel::LogNormal { median_secs: 0.28, sigma: 0.4 },
            faults: FaultModel::none(),
        }
    }

    /// Twitter circa the paper: 350 requests / hour, slightly slower
    /// responses.
    pub fn twitter() -> Self {
        ProviderProfile {
            name: "twitter",
            policy: RateLimitPolicy::twitter(),
            latency: LatencyModel::LogNormal { median_secs: 0.35, sigma: 0.5 },
            faults: FaultModel::none(),
        }
    }

    /// Google Plus developer quota: generous daily allowance, fast and
    /// steady responses.
    pub fn google_plus() -> Self {
        ProviderProfile {
            name: "google-plus",
            policy: RateLimitPolicy::google_plus(),
            latency: LatencyModel::Uniform { lo: 0.04, hi: 0.09 },
            faults: FaultModel::none(),
        }
    }

    /// Looks a preset up by name (`facebook` / `twitter` / `google-plus`).
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "facebook" => Some(Self::facebook()),
            "twitter" => Some(Self::twitter()),
            "google-plus" => Some(Self::google_plus()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_is_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = LatencyModel::Constant { secs: 0.25 };
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng), 0.25);
        }
        assert_eq!(m.mean(), 0.25);
    }

    #[test]
    fn uniform_respects_bounds_and_spreads() {
        let mut rng = StdRng::seed_from_u64(2);
        let m = LatencyModel::Uniform { lo: 0.1, hi: 0.3 };
        let samples: Vec<f64> = (0..2000).map(|_| m.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| (0.1..0.3).contains(&s)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 0.2).abs() < 0.01, "empirical mean {mean}");
    }

    #[test]
    fn lognormal_median_and_positivity() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = LatencyModel::LogNormal { median_secs: 0.28, sigma: 0.4 };
        let mut samples: Vec<f64> = (0..4001).map(|_| m.sample(&mut rng)).collect();
        assert!(samples.iter().all(|&s| s > 0.0 && s.is_finite()));
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 0.28).abs() < 0.03, "empirical median {median}");
        assert!(m.mean() > 0.28, "log-normal mean exceeds the median");
    }

    #[test]
    fn sampling_is_deterministic_under_seed() {
        let m = LatencyModel::LogNormal { median_secs: 0.3, sigma: 0.6 };
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50).map(|_| m.sample(&mut rng)).collect::<Vec<_>>()
        };
        assert_eq!(draw(9), draw(9));
        assert_ne!(draw(9), draw(10));
    }

    #[test]
    fn presets_resolve_by_name() {
        for name in ["facebook", "twitter", "google-plus"] {
            let p = ProviderProfile::by_name(name).unwrap();
            assert_eq!(p.name, name);
            assert!(p.latency.mean() > 0.0);
        }
        assert!(ProviderProfile::by_name("myspace").is_none());
    }

    #[test]
    fn facebook_is_faster_but_tighter_than_twitter() {
        let fb = ProviderProfile::facebook();
        let tw = ProviderProfile::twitter();
        assert!(fb.latency.mean() < tw.latency.mean());
        assert!(fb.policy.refill_per_sec > tw.policy.refill_per_sec);
    }
}
