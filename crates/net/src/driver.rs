//! The walk-not-wait driver: multiplexing a walker pool over the
//! pipeline.
//!
//! "Walk, Not Wait" (Nazi et al., arXiv:1410.7833) observes that a
//! blocking sampler does nothing during per-request latency and
//! rate-limit refills, and that overlapping *walking* with *waiting*
//! converts that dead time into progress. This driver realizes the idea
//! deterministically, in three regimes over one recorded workload:
//!
//! * [`DriverMode::Serial`] — walkers run one after another, every cache
//!   miss blocks for its full round trip: the baseline bill.
//! * [`DriverMode::Pipelined`] — walkers interleave: while one is stalled
//!   on a miss, any walker whose next touch is cached keeps stepping, so
//!   up to `K` demand requests are in flight together.
//! * [`DriverMode::WalkNotWait`] — additionally, whenever *every* runnable
//!   walker is stalled and a connection is idle, the driver issues
//!   **speculative prefetches** drawn from the walkers' own
//!   [`mto_core::walk::Walker::prefetch_candidates`] (for MTO, the
//!   overlay-adjusted neighborhood of the current node) — charged against
//!   the same unique-query budget as demand traffic.
//!
//! Timing cannot change where a walk goes (paths are pure functions of
//! `(config, responses)`), so all three regimes produce byte-identical
//! walker histories; only the virtual wall clock and the bill differ.
//! The whole simulation is single-threaded discrete-event: results are
//! reproducible for a given seed regardless of host threading.

use std::collections::HashSet;

use mto_graph::NodeId;
use mto_osn::{Result, SocialNetworkInterface, VirtualClock};

use crate::demand::{record_traces, PoolJob, TraceEvent, WalkTrace};
use crate::pipeline::{PipelineConfig, PipelineStats, QueryPipeline};

/// Concurrency regime of one pool run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DriverMode {
    /// One walker at a time, one request at a time.
    Serial,
    /// Walkers interleave; demand requests overlap up to `K`.
    Pipelined,
    /// Pipelined plus speculative prefetching on idle connections.
    WalkNotWait,
}

impl DriverMode {
    /// Display name (`serial` / `pipelined` / `walk-not-wait`).
    pub fn name(&self) -> &'static str {
        match self {
            DriverMode::Serial => "serial",
            DriverMode::Pipelined => "pipelined",
            DriverMode::WalkNotWait => "walk-not-wait",
        }
    }
}

/// Configuration of a pool run.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DriverConfig {
    /// Concurrency regime.
    pub mode: DriverMode,
    /// The network engine underneath (connections, latency, quota, seed).
    pub pipeline: PipelineConfig,
    /// Cap on distinct nodes submitted (demand + prefetch). Demand is
    /// always admitted — the walk must finish — but speculation stops at
    /// the cap, so every regime runs under the *same* budget.
    pub unique_query_budget: Option<u64>,
}

/// Per-walker outcome of a pool run.
#[derive(Clone, Debug)]
pub struct WalkerOutcome {
    /// Pool index.
    pub walker: usize,
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// Virtual seconds when this walker finished its budget.
    pub finish_secs: f64,
    /// Final position.
    pub final_node: NodeId,
    /// Every visited position, seed first (identical across regimes).
    pub history: Vec<NodeId>,
}

/// Aggregate outcome of a pool run.
#[derive(Clone, Debug)]
pub struct PoolReport {
    /// The regime that ran.
    pub mode: DriverMode,
    /// Virtual wall clock when the last walker finished.
    pub virtual_secs: f64,
    /// Per-walker outcomes, in pool order.
    pub walkers: Vec<WalkerOutcome>,
    /// Distinct nodes submitted to the provider (demand + prefetch) —
    /// the paper's unique-query bill for this run.
    pub unique_queries: u64,
    /// Distinct nodes the walks themselves demanded.
    pub demand_queries: u64,
    /// Speculative prefetches issued.
    pub prefetches_issued: u64,
    /// Prefetched nodes a walker later demanded (useful speculation).
    pub prefetch_hits: u64,
    /// Engine counters (stalls, timeouts, …).
    pub pipeline: PipelineStats,
}

/// Where one simulated walker is.
#[derive(Clone, Debug, PartialEq)]
enum SimState {
    Ready,
    Stalled(NodeId),
    Done,
}

struct SimWalker<'a> {
    trace: &'a WalkTrace,
    pos: usize,
    state: SimState,
    candidates: Vec<NodeId>,
    finish_us: u64,
}

/// Runs a walker pool under `config`, returning the virtual-time bill.
///
/// Phase one records each walker's demand trace (an oracle pass over the
/// real interface — walks are timing-independent, so this fixes *what*
/// happens); phase two replays the traces through the discrete-event
/// pipeline to measure *when*. `interface` is borrowed for both phases.
/// To compare several regimes over one workload, call
/// [`record_traces`] once and [`replay_pool`] per regime instead —
/// traces do not depend on latency, quota, or mode.
pub fn run_pool<I: SocialNetworkInterface>(
    interface: I,
    jobs: &[PoolJob],
    config: &DriverConfig,
) -> Result<PoolReport> {
    let traces = record_traces(&interface, jobs)?;
    replay_pool(&interface, &traces, config)
}

/// Replays previously recorded demand traces through the discrete-event
/// pipeline under `config` — phase two of [`run_pool`], reusable across
/// regimes. `interface` only serves the pipeline's completion-time
/// queries; it must expose the same network the traces were recorded
/// from.
pub fn replay_pool<I: SocialNetworkInterface>(
    interface: &I,
    traces: &[WalkTrace],
    config: &DriverConfig,
) -> Result<PoolReport> {
    let mut pipeline = QueryPipeline::new(interface, config.pipeline);

    let mut walkers: Vec<SimWalker> = traces
        .iter()
        .map(|trace| SimWalker {
            trace,
            pos: 0,
            state: SimState::Ready,
            candidates: Vec::new(),
            finish_us: 0,
        })
        .collect();

    let mut arrived: HashSet<NodeId> = HashSet::new();
    let mut in_flight: HashSet<NodeId> = HashSet::new();
    let mut demanded: HashSet<NodeId> = HashSet::new();
    let mut prefetched: HashSet<NodeId> = HashSet::new();
    let budget = config.unique_query_budget.unwrap_or(u64::MAX);
    // Distinct nodes submitted so far (a prefetched node later demanded
    // counts once — it was one request).
    let submitted = |d: &HashSet<NodeId>, p: &HashSet<NodeId>| d.union(p).count() as u64;

    loop {
        // Phase A: advance every eligible Ready walker as far as its
        // trace allows. In Serial mode only the first unfinished walker
        // is eligible — finishing it may make the next one runnable, so
        // loop until a full pass makes no progress.
        let mut progressed = true;
        while progressed {
            progressed = false;
            for i in 0..walkers.len() {
                if config.mode == DriverMode::Serial
                    && walkers[..i].iter().any(|w| w.state != SimState::Done)
                {
                    break;
                }
                while walkers[i].state == SimState::Ready {
                    let Some(event) = walkers[i].trace.events.get(walkers[i].pos) else {
                        walkers[i].state = SimState::Done;
                        walkers[i].finish_us = pipeline.clock().now_us();
                        progressed = true;
                        break;
                    };
                    match event {
                        TraceEvent::Fetch(v) => {
                            let v = *v;
                            if arrived.contains(&v) {
                                walkers[i].pos += 1; // free cache hit
                            } else {
                                // Demand miss: block on the round trip.
                                // Prefetched-but-not-landed nodes count
                                // as demanded too (the walker now needs
                                // them), but are not resubmitted.
                                demanded.insert(v);
                                if in_flight.insert(v) {
                                    pipeline.submit(v);
                                }
                                walkers[i].state = SimState::Stalled(v);
                                progressed = true;
                            }
                        }
                        TraceEvent::StepEnd { candidates } => {
                            walkers[i].candidates = candidates.clone();
                            walkers[i].pos += 1;
                        }
                    }
                }
            }
        }

        if walkers.iter().all(|w| w.state == SimState::Done) {
            break;
        }

        // Phase B: every runnable walker is stalled — the dead time the
        // paper converts. Fill idle connections with speculation (charged
        // against the same budget). Quota-aware: on a quota-bound
        // workload a wasted token extends the refill floor for demand,
        // so only speculate while the bucket holds a comfortable reserve
        // (one token per connection beyond the speculated one).
        if config.mode == DriverMode::WalkNotWait {
            let reserve = config.pipeline.max_in_flight as f64;
            'speculate: while pipeline.has_idle_connection()
                && pipeline.tokens_available() >= 1.0 + reserve
                && submitted(&demanded, &prefetched) < budget
            {
                for w in walkers.iter().filter(|w| matches!(w.state, SimState::Stalled(_))) {
                    if let Some(&c) =
                        w.candidates.iter().find(|c| !arrived.contains(c) && !in_flight.contains(c))
                    {
                        prefetched.insert(c);
                        in_flight.insert(c);
                        pipeline.submit(c);
                        continue 'speculate;
                    }
                }
                break; // nobody has anything left to speculate on
            }
        }

        // Phase C: advance virtual time to the next completion.
        let completion = pipeline
            .next_completion()
            .expect("stalled walkers always have a demand request in flight");
        if let Err(e) = &completion.response {
            // An UnknownUser reply IS an answer (Random Jump probes id
            // holes deliberately; the recording walker consumed the same
            // error). Anything else — transient retries exhausted — means
            // the simulated provider never answered a request the walk
            // needs, and pretending it landed would silently corrupt the
            // bill. Surface it.
            if !matches!(e, mto_osn::OsnError::UnknownUser(_)) {
                return Err(e.clone());
            }
        }
        in_flight.remove(&completion.node);
        arrived.insert(completion.node);
        for w in walkers.iter_mut() {
            if w.state == SimState::Stalled(completion.node) {
                w.state = SimState::Ready;
            }
        }
    }

    let prefetch_hits = prefetched.intersection(&demanded).count() as u64;
    let outcomes = walkers
        .iter()
        .enumerate()
        .map(|(walker, w)| WalkerOutcome {
            walker,
            algorithm: w.trace.algorithm,
            finish_secs: VirtualClock::us_to_secs(w.finish_us),
            final_node: w.trace.final_node,
            history: w.trace.history.clone(),
        })
        .collect();
    Ok(PoolReport {
        mode: config.mode,
        virtual_secs: pipeline.clock().now(),
        walkers: outcomes,
        unique_queries: submitted(&demanded, &prefetched),
        demand_queries: demanded.len() as u64,
        prefetches_issued: prefetched.len() as u64,
        prefetch_hits,
        pipeline: pipeline.stats(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::WalkerSpec;
    use crate::latency::{LatencyModel, ProviderProfile};
    use mto_core::mto::MtoConfig;
    use mto_core::walk::SrwConfig;
    use mto_graph::generators::paper_barbell;
    use mto_osn::OsnService;

    fn pool() -> Vec<PoolJob> {
        (0..4u64)
            .map(|i| PoolJob {
                spec: WalkerSpec::Mto(MtoConfig { seed: 10 + i, ..Default::default() }),
                start: NodeId((i as u32 * 7) % 22),
                steps: 120,
            })
            .collect()
    }

    fn config(mode: DriverMode) -> DriverConfig {
        let profile = ProviderProfile::facebook();
        DriverConfig {
            mode,
            pipeline: PipelineConfig {
                max_in_flight: 4,
                latency: profile.latency,
                faults: profile.faults,
                rate_limit: Some(profile.policy),
                seed: 0xD1CE,
                ..Default::default()
            },
            unique_query_budget: Some(22),
        }
    }

    fn run(mode: DriverMode) -> PoolReport {
        run_pool(OsnService::with_defaults(&paper_barbell()), &pool(), &config(mode)).unwrap()
    }

    #[test]
    fn histories_are_identical_across_all_regimes() {
        let serial = run(DriverMode::Serial);
        let pipelined = run(DriverMode::Pipelined);
        let wnw = run(DriverMode::WalkNotWait);
        for ((s, p), w) in serial.walkers.iter().zip(&pipelined.walkers).zip(&wnw.walkers) {
            assert_eq!(s.history, p.history, "timing changed walker {}", s.walker);
            assert_eq!(s.history, w.history, "speculation changed walker {}", s.walker);
            assert_eq!(s.history.len(), 121);
        }
        // Without speculation the demanded set is timing-independent.
        assert_eq!(serial.demand_queries, pipelined.demand_queries);
        // Speculation converts demand misses into free hits, so demand
        // can only shrink — but every node serial demanded was still
        // fetched (as demand or prefetch), so the bill can only grow.
        assert!(wnw.demand_queries <= serial.demand_queries);
        assert!(wnw.unique_queries >= serial.demand_queries);
    }

    #[test]
    fn overlap_strictly_beats_serial_time() {
        let serial = run(DriverMode::Serial);
        let pipelined = run(DriverMode::Pipelined);
        let wnw = run(DriverMode::WalkNotWait);
        assert!(
            pipelined.virtual_secs < serial.virtual_secs,
            "pipelined {} vs serial {}",
            pipelined.virtual_secs,
            serial.virtual_secs
        );
        assert!(
            wnw.virtual_secs <= pipelined.virtual_secs,
            "walk-not-wait {} vs pipelined {}",
            wnw.virtual_secs,
            pipelined.virtual_secs
        );
        assert!(wnw.prefetches_issued > 0, "speculation actually happened");
        assert!(wnw.prefetch_hits > 0, "some speculation was useful");
    }

    #[test]
    fn budget_caps_speculation_but_never_demand() {
        // Budget zero: no speculation at all, yet every walk still runs
        // to completion on demand traffic alone.
        let mut cfg = config(DriverMode::WalkNotWait);
        cfg.unique_query_budget = Some(0);
        let starved = run_pool(OsnService::with_defaults(&paper_barbell()), &pool(), &cfg).unwrap();
        assert_eq!(starved.prefetches_issued, 0, "speculation is refused at the cap");
        assert!(starved.demand_queries > 0, "demand is always admitted");
        assert!(starved.walkers.iter().all(|w| w.history.len() == 121));

        // An uncapped run speculates freely; the bill covers demand.
        cfg.unique_query_budget = None;
        let free = run_pool(OsnService::with_defaults(&paper_barbell()), &pool(), &cfg).unwrap();
        assert!(free.prefetches_issued > 0);
        assert!(free.unique_queries >= free.demand_queries);
        assert!(free.unique_queries <= 22, "bounded by |V| on the barbell");
    }

    #[test]
    fn runs_are_deterministic() {
        for mode in [DriverMode::Serial, DriverMode::Pipelined, DriverMode::WalkNotWait] {
            let a = run(mode);
            let b = run(mode);
            assert_eq!(a.virtual_secs, b.virtual_secs, "{mode:?} time diverged");
            assert_eq!(a.unique_queries, b.unique_queries);
            assert_eq!(a.prefetches_issued, b.prefetches_issued);
            for (wa, wb) in a.walkers.iter().zip(&b.walkers) {
                assert_eq!(wa.finish_secs, wb.finish_secs);
            }
        }
    }

    #[test]
    fn replay_reuses_traces_across_regimes() {
        let svc = OsnService::with_defaults(&paper_barbell());
        let traces = crate::demand::record_traces(&svc, &pool()).unwrap();
        let serial = replay_pool(&svc, &traces, &config(DriverMode::Serial)).unwrap();
        let wnw = replay_pool(&svc, &traces, &config(DriverMode::WalkNotWait)).unwrap();
        // One oracle pass, two regimes — same results as the coupled path.
        assert_eq!(serial.virtual_secs, run(DriverMode::Serial).virtual_secs);
        assert_eq!(wnw.virtual_secs, run(DriverMode::WalkNotWait).virtual_secs);
    }

    #[test]
    fn replay_surfaces_unanswered_requests_instead_of_inventing_data() {
        use mto_graph::NodeId;
        use mto_osn::{OsnError, QueryResponse, SocialNetworkInterface};

        /// Answers the first `cutoff` backend requests, then fails every
        /// later one transiently, forever.
        struct DiesAfter {
            inner: OsnService,
            cutoff: u64,
        }
        impl SocialNetworkInterface for DiesAfter {
            fn query(&self, v: NodeId) -> mto_osn::Result<QueryResponse> {
                if self.inner.requests_served() >= self.cutoff {
                    return Err(OsnError::Transient { user: v, attempt: 1 });
                }
                self.inner.query(v)
            }
            fn num_users_hint(&self) -> Option<usize> {
                self.inner.num_users_hint()
            }
            fn requests_served(&self) -> u64 {
                self.inner.requests_served()
            }
        }

        let jobs = &pool()[..1];
        let clean = run_pool(
            OsnService::with_defaults(&paper_barbell()),
            jobs,
            &config(DriverMode::Serial),
        )
        .unwrap();
        // Let the recording pass (demand_queries requests) succeed, then
        // kill the provider partway through the replay.
        let dying = DiesAfter {
            inner: OsnService::with_defaults(&paper_barbell()),
            cutoff: clean.demand_queries + 1,
        };
        let err = run_pool(dying, jobs, &config(DriverMode::Serial)).unwrap_err();
        assert!(matches!(err, OsnError::Transient { .. }), "got {err:?}");
    }

    #[test]
    fn serial_mode_finishes_walkers_in_pool_order() {
        let serial = run(DriverMode::Serial);
        let finishes: Vec<f64> = serial.walkers.iter().map(|w| w.finish_secs).collect();
        assert!(
            finishes.windows(2).all(|w| w[0] <= w[1]),
            "serial finishes out of order: {finishes:?}"
        );
    }

    #[test]
    fn mixed_pools_drive_baseline_walkers_too() {
        let jobs = vec![
            PoolJob {
                spec: WalkerSpec::Srw(SrwConfig { seed: 5, lazy: false }),
                start: NodeId(0),
                steps: 80,
            },
            PoolJob {
                spec: WalkerSpec::Mto(MtoConfig { seed: 6, ..Default::default() }),
                start: NodeId(11),
                steps: 80,
            },
        ];
        let cfg = DriverConfig {
            mode: DriverMode::WalkNotWait,
            pipeline: PipelineConfig {
                max_in_flight: 4,
                latency: LatencyModel::Constant { secs: 0.1 },
                rate_limit: None,
                ..Default::default()
            },
            unique_query_budget: None,
        };
        let report = run_pool(OsnService::with_defaults(&paper_barbell()), &jobs, &cfg).unwrap();
        assert_eq!(report.walkers[0].algorithm, "SRW");
        assert_eq!(report.walkers[1].algorithm, "MTO");
        assert!(report.virtual_secs > 0.0);
    }
}
