//! Compatibility shim: the walker demand-trace recorder moved to
//! [`crate::demand`].
//!
//! "Trace" now names the structured observability vocabulary
//! (`mto_obs::TraceSink`, the `mto-trace/v1` codec); what this module
//! used to hold is the walk-not-wait driver's *demand* recording — the
//! sequence of `fetch(v)` calls a walker makes — which lives on,
//! unchanged, as [`crate::demand`]. Existing `mto_net::trace::…` paths
//! keep compiling through this re-export.

pub use crate::demand::{record_traces, PoolJob, TraceEvent, WalkTrace, WalkerSpec};
