//! # mto-net — the deterministic discrete-event network engine
//!
//! The paper's cost model (Section II-B) counts *unique queries*, but
//! against a live provider the real bill is **wall-clock time**:
//! per-request latency plus rate-limit stalls, during which a blocking
//! walker does nothing. "Walk, Not Wait: Faster Sampling Over Online
//! Social Networks" (Nazi et al., arXiv:1410.7833) shows that keeping
//! many requests in flight and speculatively advancing converts that
//! dead time into progress. This crate models all of it *virtually* — no
//! thread ever sleeps, and every run is a pure function of its seed:
//!
//! * [`latency`] — per-request service-time distributions (constant /
//!   uniform / log-normal), timeout injection, and the
//!   Facebook/Twitter/Google-Plus [`ProviderProfile`] presets;
//! * [`event`] — the binary-heap event queue with a `(time, seq)` total
//!   order, the determinism backbone;
//! * [`pipeline`] — [`QueryPipeline`]: up to `K` requests in flight over
//!   any [`mto_osn::SocialNetworkInterface`], completing in
//!   simulated-time order on the shared [`VirtualClock`];
//! * [`timed`] — [`TimedInterface`]: the blocking (serial) provider
//!   simulation the `mto-serve` scheduler wraps to report virtual
//!   wall-clock alongside unique queries;
//! * [`trace`] / [`driver`] (feature `walkers`, on by default) — the
//!   **walk-not-wait driver**: records each walker's demand trace, then
//!   replays the pool through the pipeline under
//!   [`driver::DriverMode::Serial`] / `Pipelined` / `WalkNotWait`,
//!   issuing speculative prefetches from the walkers' own
//!   overlay-adjusted frontiers while they stall.
//!
//! The clock is `mto-osn`'s [`VirtualClock`] (re-exported here): rate
//! limiting and event simulation advance one unified timeline, so "this
//! crawl would have taken N hours" composes across both layers.
//!
//! ## Example
//!
//! ```
//! use mto_graph::generators::paper_barbell;
//! use mto_graph::NodeId;
//! use mto_net::latency::LatencyModel;
//! use mto_net::pipeline::{PipelineConfig, QueryPipeline};
//! use mto_osn::OsnService;
//!
//! let service = OsnService::with_defaults(&paper_barbell());
//! let mut pipeline = QueryPipeline::new(
//!     service,
//!     PipelineConfig {
//!         max_in_flight: 4,
//!         latency: LatencyModel::Constant { secs: 0.1 },
//!         ..Default::default()
//!     },
//! );
//! for v in 0..8u32 {
//!     pipeline.submit(NodeId(v));
//! }
//! let done = pipeline.drain();
//! // Eight 100 ms requests over four connections: 200 ms, not 800 ms.
//! assert!((pipeline.clock().now() - 0.2).abs() < 1e-6);
//! assert_eq!(done.len(), 8);
//! ```

#![warn(missing_docs)]

pub mod event;
pub mod latency;
pub mod pipeline;
pub mod timed;

#[cfg(feature = "walkers")]
pub mod demand;
#[cfg(feature = "walkers")]
pub mod driver;

pub use event::{Event, EventQueue};
pub use latency::{FaultModel, LatencyModel, ProviderProfile};
pub use pipeline::{
    Completion, Concurrency, PipelineConfig, PipelineObs, PipelineStats, QueryPipeline, RequestId,
    LATENCY_WINDOW,
};
pub use timed::TimedInterface;

// One clock for the whole stack: defined in mto-osn (the lowest layer
// that needs it — the token bucket refills on it), re-exported here as
// the event engine's clock.
pub use mto_osn::VirtualClock;

#[cfg(feature = "walkers")]
pub use demand::{record_traces, PoolJob, WalkTrace, WalkerSpec};
#[cfg(feature = "walkers")]
pub use driver::{replay_pool, run_pool, DriverConfig, DriverMode, PoolReport, WalkerOutcome};
