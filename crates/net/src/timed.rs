//! Synchronous provider simulation for blocking clients.
//!
//! The [`crate::pipeline::QueryPipeline`] models *overlapped* traffic;
//! this wrapper models the **serial** deployment — the `mto-serve`
//! scheduler and any other blocking [`SocialNetworkInterface`] consumer —
//! where every `q(v)` pays its full sampled latency (plus rate-limit
//! stalls) on the shared [`VirtualClock`] before returning. Sessions run
//! over a [`TimedInterface`] therefore report an honest virtual
//! wall-clock alongside their unique-query bill.
//!
//! It generalizes `mto-osn`'s [`mto_osn::RateLimitedInterface`] (fixed
//! 50 ms per request) to a full [`ProviderProfile`]: sampled latency
//! distribution, timeout injection, and the provider's token bucket, all
//! against the one unified clock.

use std::sync::atomic::{AtomicU64, Ordering};

use mto_graph::NodeId;
use mto_osn::{QueryResponse, Result, SocialNetworkInterface, TokenBucket, VirtualClock};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::latency::ProviderProfile;

/// Blocking provider simulation: latency + quota + timeouts, virtually.
pub struct TimedInterface<I> {
    inner: I,
    profile: ProviderProfile,
    clock: VirtualClock,
    bucket: Mutex<TokenBucket>,
    rng: Mutex<StdRng>,
    stalls: AtomicU64,
    timeouts: AtomicU64,
}

impl<I: SocialNetworkInterface> TimedInterface<I> {
    /// Wraps `inner` under a provider profile on a fresh clock.
    pub fn new(inner: I, profile: ProviderProfile, seed: u64) -> Self {
        Self::with_clock(inner, profile, seed, VirtualClock::new())
    }

    /// Wraps `inner` on an externally shared clock.
    pub fn with_clock(inner: I, profile: ProviderProfile, seed: u64, clock: VirtualClock) -> Self {
        TimedInterface {
            inner,
            clock,
            bucket: Mutex::new(TokenBucket::new(profile.policy)),
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            stalls: AtomicU64::new(0),
            timeouts: AtomicU64::new(0),
            profile,
        }
    }

    /// The shared clock.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// Current virtual time in seconds.
    pub fn virtual_now(&self) -> f64 {
        self.clock.now()
    }

    /// Requests that stalled on the token bucket.
    pub fn stalls(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// Injected attempt timeouts suffered.
    pub fn timeouts(&self) -> u64 {
        self.timeouts.load(Ordering::Relaxed)
    }

    /// The wrapped interface.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    fn take_token(&self) {
        let mut bucket = self.bucket.lock();
        if let Err(wait) = bucket.try_acquire(self.clock.now()) {
            self.stalls.fetch_add(1, Ordering::Relaxed);
            let mut later = self.clock.advance(wait);
            // Rounding in the refill can leave the bucket a hair short
            // at the computed instant; nudge forward until it lands.
            while let Err(more) = bucket.try_acquire(later) {
                later = self.clock.advance(more.max(1e-6));
            }
        }
    }
}

impl<I: SocialNetworkInterface> SocialNetworkInterface for TimedInterface<I> {
    fn query(&self, v: NodeId) -> Result<QueryResponse> {
        let faults = self.profile.faults;
        let mut attempts = 1u32;
        self.take_token();
        while attempts < faults.max_attempts
            && faults.timeout_prob > 0.0
            && self.rng.lock().gen::<f64>() < faults.timeout_prob
        {
            self.timeouts.fetch_add(1, Ordering::Relaxed);
            attempts += 1;
            self.clock.advance(faults.timeout_secs);
            self.take_token();
        }
        let latency = self.profile.latency.sample(&mut self.rng.lock()).max(0.0);
        self.clock.advance(latency);
        self.inner.query(v)
    }

    fn num_users_hint(&self) -> Option<usize> {
        self.inner.num_users_hint()
    }

    fn requests_served(&self) -> u64 {
        self.inner.requests_served()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::{FaultModel, LatencyModel};
    use mto_graph::generators::paper_barbell;
    use mto_osn::{OsnService, RateLimitPolicy};

    fn profile(latency: LatencyModel, policy: RateLimitPolicy) -> ProviderProfile {
        ProviderProfile { name: "test", policy, latency, faults: FaultModel::none() }
    }

    #[test]
    fn every_query_pays_its_latency() {
        let p = profile(LatencyModel::Constant { secs: 0.2 }, RateLimitPolicy::facebook());
        let t = TimedInterface::new(OsnService::with_defaults(&paper_barbell()), p, 1);
        for v in 0..10u32 {
            t.query(NodeId(v)).unwrap();
        }
        assert!((t.virtual_now() - 2.0).abs() < 1e-5, "10 × 200 ms serial");
        assert_eq!(t.stalls(), 0);
    }

    #[test]
    fn quota_exhaustion_stalls_the_clock() {
        let p = profile(
            LatencyModel::Constant { secs: 0.0 },
            RateLimitPolicy { burst: 3, refill_per_sec: 1.0 },
        );
        let t = TimedInterface::new(OsnService::with_defaults(&paper_barbell()), p, 1);
        for v in 0..6u32 {
            t.query(NodeId(v)).unwrap();
        }
        assert_eq!(t.stalls(), 3);
        assert!(t.virtual_now() >= 3.0, "three refill waits at 1 rps");
    }

    #[test]
    fn timeouts_burn_time_and_tokens() {
        let mut p = profile(LatencyModel::Constant { secs: 0.1 }, RateLimitPolicy::facebook());
        p.faults = FaultModel { timeout_prob: 1.0, timeout_secs: 5.0, max_attempts: 2 };
        let t = TimedInterface::new(OsnService::with_defaults(&paper_barbell()), p, 1);
        t.query(NodeId(0)).unwrap();
        assert_eq!(t.timeouts(), 1);
        assert!((t.virtual_now() - 5.1).abs() < 1e-5, "one timeout window + one latency");
    }

    #[test]
    fn shares_a_clock_with_other_components() {
        let clock = VirtualClock::new();
        let p = profile(LatencyModel::Constant { secs: 0.5 }, RateLimitPolicy::facebook());
        let t = TimedInterface::with_clock(
            OsnService::with_defaults(&paper_barbell()),
            p,
            1,
            clock.clone(),
        );
        clock.advance(100.0);
        t.query(NodeId(0)).unwrap();
        assert!((clock.now() - 100.5).abs() < 1e-5, "latency lands on the shared timeline");
    }
}
