//! The in-flight query pipeline: K concurrent requests over a virtual
//! event clock.
//!
//! A serial client issues `q(v)`, sleeps one latency, issues the next —
//! so wall-clock cost is `Σ latency + Σ stalls`. Real crawlers keep many
//! requests in flight; this module simulates that with a **deterministic
//! discrete-event engine**: submissions reserve one of `K` virtual
//! connections (FIFO when all are busy), acquire a rate-limit token,
//! suffer a sampled latency (and injected timeouts), and complete in
//! simulated-time order through a binary-heap [`EventQueue`].
//!
//! Everything is a pure function of `(seed, submission schedule)`: there
//! are no host threads, latency draws happen in submission order, and
//! completions pop in the `(time, seq)` total order — so the completion
//! log is byte-identical across runs no matter how the caller interleaves
//! retrieval (see `retrieval_order_cannot_change_the_stream` below).

use std::cmp::Reverse;
use std::collections::BTreeMap;
use std::collections::BinaryHeap;

use mto_graph::NodeId;
use mto_osn::{
    OsnError, QueryResponse, RateLimitPolicy, Result, SocialNetworkInterface, TokenBucket,
    VirtualClock,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::event::EventQueue;
use crate::latency::{FaultModel, LatencyModel};

/// Identifier of one submitted request (the submission sequence number).
pub type RequestId = u64;

/// How the pipeline chooses its in-flight limit.
///
/// Fixed `K` wastes lanes on quota-bound workloads (requests park on
/// connections waiting for tokens) and leaves throughput on the table
/// when the bucket is deep. [`Concurrency::Adaptive`] ramps the live
/// limit between a floor and [`PipelineConfig::max_in_flight`] against
/// the *observed token-bucket headroom*: one more lane whenever the
/// bucket could feed it, one fewer when the bucket runs dry. All inputs
/// are virtual, so adaptivity is as deterministic as everything else.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Concurrency {
    /// Always allow exactly `max_in_flight` requests in flight.
    #[default]
    Fixed,
    /// Ramp the live limit between `min_in_flight` and `max_in_flight`
    /// based on rate-limit headroom at each submission.
    Adaptive {
        /// Lower bound of the ramp (clamped to `1..=max_in_flight`).
        min_in_flight: usize,
    },
}

/// Tuning of a [`QueryPipeline`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PipelineConfig {
    /// Maximum requests in flight (virtual connections), ≥ 1.
    pub max_in_flight: usize,
    /// Fixed-K or headroom-adaptive in-flight limit (see [`Concurrency`];
    /// the default keeps the historical fixed-K behavior).
    pub concurrency: Concurrency,
    /// Per-request service-time distribution.
    pub latency: LatencyModel,
    /// Timeout injection.
    pub faults: FaultModel,
    /// Provider quota enforced at request *start* time (`None` = no
    /// limit).
    pub rate_limit: Option<RateLimitPolicy>,
    /// Latency-aware back-off for [`Concurrency::Adaptive`]: when the
    /// rolling mean completion latency (over the last
    /// [`LATENCY_WINDOW`] completions) exceeds this factor times the
    /// latency model's expectation ([`LatencyModel::mean`]), the
    /// controller sheds one lane — a slow provider is a signal to ease
    /// off, independent of token headroom. `None` disables the rule;
    /// fixed-K pipelines ignore it entirely.
    pub latency_backoff: Option<f64>,
    /// Seed of the latency/fault RNG.
    pub seed: u64,
}

/// Completions the latency-aware ramp averages over (and the minimum
/// sample count before it may trigger).
pub const LATENCY_WINDOW: usize = 8;

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            max_in_flight: 8,
            concurrency: Concurrency::Fixed,
            latency: LatencyModel::Constant { secs: 0.05 },
            faults: FaultModel::none(),
            rate_limit: None,
            latency_backoff: None,
            seed: 0x7E7,
        }
    }
}

/// One finished request: its full virtual timeline plus the response.
#[derive(Clone, Debug)]
pub struct Completion {
    /// Submission sequence number.
    pub id: RequestId,
    /// The queried node.
    pub node: NodeId,
    /// Virtual seconds when the request was submitted.
    pub submitted_at: f64,
    /// Virtual seconds when a connection and token were secured and the
    /// first attempt left.
    pub started_at: f64,
    /// Virtual seconds when the response arrived.
    pub completed_at: f64,
    /// Attempts taken (1 + injected timeouts).
    pub attempts: u32,
    /// The provider's answer.
    pub response: Result<QueryResponse>,
}

/// Aggregate pipeline counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Requests submitted.
    pub submitted: u64,
    /// Requests completed (claimed or buffered).
    pub completed: u64,
    /// Injected attempt timeouts.
    pub timeouts: u64,
    /// Token-bucket stalls (attempts that had to wait for refill).
    pub rate_limit_stalls: u64,
    /// Transient provider failures retried at completion.
    pub transient_retries: u64,
    /// Times the adaptive controller raised the in-flight limit.
    pub ramp_ups: u64,
    /// Times the adaptive controller lowered the in-flight limit.
    pub ramp_downs: u64,
    /// Ramp-downs forced by the latency rule alone (slow completions,
    /// token headroom notwithstanding); a subset of `ramp_downs`.
    pub latency_backoffs: u64,
}

/// Optional pipeline observability: queue-wait and service-time
/// distributions in integer virtual microseconds, recorded at the
/// moment each completion fires. Off (`None`) by default — the hot path
/// pays one `Option` branch per completion, nothing per step — and
/// harvested into a [`mto_obs::MetricsRegistry`] by whoever owns the
/// pipeline (the fleet does it per shard, merging at epoch barriers).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PipelineObs {
    /// `started − submitted` per completion: virtual µs spent queueing
    /// for a connection slot and a rate-limit token.
    pub queue_wait_us: mto_obs::Histogram,
    /// `completed − started` per completion: virtual µs of provider
    /// service time including injected timeout retries.
    pub service_time_us: mto_obs::Histogram,
}

/// What one in-flight event carries until it fires.
#[derive(Clone, Debug)]
struct Pending {
    id: RequestId,
    node: NodeId,
    submitted_us: u64,
    started_us: u64,
    attempts: u32,
}

/// Deterministic K-in-flight request pipeline over any
/// [`SocialNetworkInterface`].
pub struct QueryPipeline<I> {
    inner: I,
    clock: VirtualClock,
    config: PipelineConfig,
    rng: StdRng,
    bucket: Option<TokenBucket>,
    /// Busy-until times of the live virtual connections (entries in the
    /// past mean "idle"). Never grows beyond the current in-flight
    /// limit: a submit that finds it full pops the earliest-free entry
    /// and queues behind it.
    servers: BinaryHeap<Reverse<u64>>,
    /// The live in-flight limit: `max_in_flight` under
    /// [`Concurrency::Fixed`], the controller's current choice under
    /// [`Concurrency::Adaptive`].
    current_limit: usize,
    events: EventQueue<Pending>,
    /// Completions popped while waiting for a specific id, keyed by
    /// `(completion_us, id)` so they re-emerge in event order.
    ready: BTreeMap<(u64, RequestId), Completion>,
    /// Tokens are granted in submission order: no acquisition may be
    /// backdated before an earlier one (the bucket refills monotonically).
    token_cursor_us: u64,
    /// Service times (started → completed, virtual secs) of the last
    /// [`LATENCY_WINDOW`] completions — the rolling sample the
    /// latency-aware ramp judges against the model's expectation.
    recent_latency: std::collections::VecDeque<f64>,
    /// One line per completion, appended strictly in event order — the
    /// determinism witness.
    log: Vec<String>,
    next_id: RequestId,
    stats: PipelineStats,
    /// Latency histograms, recorded per completion when enabled.
    obs: Option<PipelineObs>,
    /// Wall-plane accumulator: real nanoseconds spent replaying
    /// completions (the backing query plus event bookkeeping), when
    /// enabled. Lives outside the determinism contract — nothing
    /// virtual ever reads it.
    wall: Option<mto_obs::WallStats>,
}

impl<I: SocialNetworkInterface> QueryPipeline<I> {
    /// A pipeline on a fresh private clock.
    pub fn new(inner: I, config: PipelineConfig) -> Self {
        Self::with_clock(inner, config, VirtualClock::new())
    }

    /// A pipeline advancing an externally shared [`VirtualClock`].
    pub fn with_clock(inner: I, config: PipelineConfig, clock: VirtualClock) -> Self {
        assert!(config.max_in_flight >= 1, "pipeline needs at least one connection");
        assert!(config.faults.max_attempts >= 1, "requests need at least one attempt");
        let current_limit = match config.concurrency {
            Concurrency::Fixed => config.max_in_flight,
            Concurrency::Adaptive { min_in_flight } => min_in_flight.clamp(1, config.max_in_flight),
        };
        QueryPipeline {
            inner,
            clock,
            rng: StdRng::seed_from_u64(config.seed),
            bucket: config.rate_limit.map(TokenBucket::new),
            servers: BinaryHeap::with_capacity(config.max_in_flight),
            current_limit,
            events: EventQueue::new(),
            ready: BTreeMap::new(),
            token_cursor_us: 0,
            recent_latency: std::collections::VecDeque::with_capacity(LATENCY_WINDOW),
            log: Vec::new(),
            next_id: 0,
            stats: PipelineStats::default(),
            obs: None,
            wall: None,
            config,
        }
    }

    /// Starts recording per-completion latency histograms (idempotent;
    /// already-recorded samples are kept).
    pub fn enable_obs(&mut self) {
        if self.obs.is_none() {
            self.obs = Some(PipelineObs::default());
        }
    }

    /// The recorded latency histograms, when enabled.
    pub fn obs(&self) -> Option<&PipelineObs> {
        self.obs.as_ref()
    }

    /// Detaches and returns the recorded latency histograms.
    pub fn take_obs(&mut self) -> Option<PipelineObs> {
        self.obs.take()
    }

    /// Starts recording wall-clock replay time (idempotent). Purely
    /// observational: completions, logs, and stats are byte-identical
    /// with the wall plane on or off.
    pub fn enable_wall(&mut self) {
        if self.wall.is_none() {
            self.wall = Some(mto_obs::WallStats::default());
        }
    }

    /// Detaches and returns the accumulated wall-clock replay stats.
    pub fn take_wall(&mut self) -> Option<mto_obs::WallStats> {
        self.wall.take()
    }

    /// The clock this pipeline advances.
    pub fn clock(&self) -> &VirtualClock {
        &self.clock
    }

    /// The wrapped interface.
    pub fn inner(&self) -> &I {
        &self.inner
    }

    /// Counters so far.
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// Requests submitted but not yet surfaced by
    /// [`QueryPipeline::next_completion`] / [`QueryPipeline::wait_for`].
    pub fn outstanding(&self) -> usize {
        self.events.len() + self.ready.len()
    }

    /// Whether a connection is idle *right now* — a request submitted at
    /// the current instant would start immediately (modulo tokens). The
    /// walk-not-wait prefetcher only speculates under this condition, so
    /// speculation never queues ahead of demand traffic.
    pub fn has_idle_connection(&self) -> bool {
        let now = self.clock.now_us();
        self.servers.len() < self.current_limit
            || self.servers.peek().is_some_and(|Reverse(t)| *t <= now)
    }

    /// The live in-flight limit: constant under [`Concurrency::Fixed`],
    /// the adaptive controller's current choice otherwise.
    pub fn in_flight_limit(&self) -> usize {
        self.current_limit
    }

    /// Re-evaluates the in-flight limit before a submission (a no-op
    /// under [`Concurrency::Fixed`]). Policy: one more lane whenever the
    /// bucket holds enough tokens to feed every live lane plus one; one
    /// fewer when the bucket cannot even cover a single request — or,
    /// with [`PipelineConfig::latency_backoff`] set, when the rolling
    /// mean completion latency exceeds that factor of the model's
    /// expectation (a slow provider sheds a lane even with token
    /// headroom to spare). Every input is virtual state, so the ramp is
    /// deterministic.
    fn adapt_limit(&mut self) {
        let Concurrency::Adaptive { min_in_flight } = self.config.concurrency else {
            return;
        };
        let max = self.config.max_in_flight;
        let min = min_in_flight.clamp(1, max);
        let headroom = self.tokens_available();
        let mut want = if headroom >= (self.current_limit + 1) as f64 {
            self.current_limit + 1
        } else if headroom < 1.0 {
            self.current_limit.saturating_sub(1)
        } else {
            self.current_limit
        };
        if let Some(factor) = self.config.latency_backoff {
            let expected = self.config.latency.mean();
            if self.recent_latency.len() >= LATENCY_WINDOW && expected > 0.0 {
                let mean: f64 =
                    self.recent_latency.iter().sum::<f64>() / self.recent_latency.len() as f64;
                if mean > factor * expected {
                    let slowed = self.current_limit.saturating_sub(1);
                    if slowed < want && slowed.clamp(min, max) < self.current_limit {
                        self.stats.latency_backoffs += 1;
                    }
                    want = want.min(slowed);
                }
            }
        }
        let want = want.clamp(min, max);
        match want.cmp(&self.current_limit) {
            std::cmp::Ordering::Greater => self.stats.ramp_ups += 1,
            std::cmp::Ordering::Less => {
                self.stats.ramp_downs += 1;
                // Retire the *busiest* connections so the survivors are
                // the earliest to free up; in-flight work on retired
                // lanes still completes (events are already scheduled).
                let mut lanes: Vec<u64> = self.servers.drain().map(|Reverse(t)| t).collect();
                lanes.sort_unstable();
                lanes.truncate(want);
                self.servers.extend(lanes.into_iter().map(Reverse));
            }
            std::cmp::Ordering::Equal => {}
        }
        self.current_limit = want;
    }

    /// Rate-limit tokens currently spendable (∞ when unlimited), *after*
    /// every already-committed acquisition. The walk-not-wait prefetcher
    /// uses this to stay quota-aware: on a quota-bound workload every
    /// wasted token extends the refill floor for demand traffic, so
    /// speculation must stop while the bucket runs low.
    pub fn tokens_available(&mut self) -> f64 {
        let now = self.clock.now();
        match self.bucket.as_mut() {
            // `available` refills only forward in time; if committed
            // acquisitions are already ahead of `now`, it reports the
            // post-commitment balance unchanged.
            Some(bucket) => bucket.available(now),
            None => f64::INFINITY,
        }
    }

    /// Acquires one token at `t_us` (or at the previous grant's instant,
    /// whichever is later — grants are serialized in submission order so
    /// the bucket's refill clock never runs backwards), stalling
    /// virtually if the bucket is empty; returns the instant the token
    /// was secured.
    fn acquire_token(&mut self, t_us: u64) -> u64 {
        let Some(bucket) = self.bucket.as_mut() else { return t_us };
        let t_us = t_us.max(self.token_cursor_us);
        let granted = match bucket.try_acquire(VirtualClock::us_to_secs(t_us)) {
            Ok(()) => t_us,
            Err(wait) => {
                self.stats.rate_limit_stalls += 1;
                let mut later = t_us + VirtualClock::secs_to_us(wait);
                // Floating-point rounding in the refill can leave the
                // bucket a hair short at the computed instant; nudge
                // forward (≥ 1 µs per try) until the token really lands.
                while let Err(more) = bucket.try_acquire(VirtualClock::us_to_secs(later)) {
                    later += VirtualClock::secs_to_us(more).max(1);
                }
                later
            }
        };
        self.token_cursor_us = granted;
        granted
    }

    /// Submits `q(v)`. Returns immediately with the request id; the
    /// response surfaces later in simulated-time order. If all `K`
    /// connections are busy the request queues FIFO behind the earliest
    /// one to free up.
    pub fn submit(&mut self, v: NodeId) -> RequestId {
        let id = self.next_id;
        self.next_id += 1;
        self.adapt_limit();
        let submitted_us = self.clock.now_us();

        // Reserve a connection: idle one now, else queue behind the
        // earliest-free.
        let free_at = if self.servers.len() < self.current_limit {
            submitted_us
        } else {
            let Reverse(earliest) = self.servers.pop().expect("full heap is non-empty");
            submitted_us.max(earliest)
        };

        // First attempt leaves once a token is secured.
        let started_us = self.acquire_token(free_at);
        let mut t = started_us;
        let mut attempts = 1u32;
        // Injected timeouts: each failed attempt burns the timeout window
        // and a fresh token. The attempt cap keeps simulations finite.
        while attempts < self.config.faults.max_attempts
            && self.config.faults.timeout_prob > 0.0
            && self.rng.gen::<f64>() < self.config.faults.timeout_prob
        {
            self.stats.timeouts += 1;
            attempts += 1;
            t += VirtualClock::secs_to_us(self.config.faults.timeout_secs);
            t = self.acquire_token(t);
        }
        t += VirtualClock::secs_to_us(self.config.latency.sample(&mut self.rng).max(0.0));

        self.servers.push(Reverse(t));
        self.events.push(t, Pending { id, node: v, submitted_us, started_us, attempts });
        self.stats.submitted += 1;
        id
    }

    /// Fires the earliest scheduled event: advances the clock to its
    /// completion time, performs the backing query (retrying transient
    /// failures), and logs it.
    fn fire_next_event(&mut self) -> Option<Completion> {
        let event = self.events.pop()?;
        let scope = self.wall.is_some().then(mto_obs::WallClockScope::start);
        let p = event.payload;
        self.clock.advance_to_us(event.time_us);

        let mut transient = 0u32;
        let response = loop {
            match self.inner.query(p.node) {
                Err(OsnError::Transient { .. }) if transient < 16 => {
                    transient += 1;
                    self.stats.transient_retries += 1;
                }
                other => break other,
            }
        };
        self.stats.completed += 1;
        if let Some(obs) = self.obs.as_mut() {
            obs.queue_wait_us.record(p.started_us.saturating_sub(p.submitted_us));
            obs.service_time_us.record(event.time_us.saturating_sub(p.started_us));
        }
        if self.recent_latency.len() == LATENCY_WINDOW {
            self.recent_latency.pop_front();
        }
        self.recent_latency
            .push_back(VirtualClock::us_to_secs(event.time_us.saturating_sub(p.started_us)));
        let summary = match &response {
            Ok(r) => format!("ok degree={}", r.degree()),
            Err(e) => format!("err {e}"),
        };
        self.log.push(format!(
            "#{} node={} submit={}us start={}us done={}us attempts={} {}",
            p.id, p.node, p.submitted_us, p.started_us, event.time_us, p.attempts, summary
        ));
        if let (Some(wall), Some(scope)) = (self.wall.as_mut(), scope) {
            wall.absorb(scope.stop());
        }
        Some(Completion {
            id: p.id,
            node: p.node,
            submitted_at: VirtualClock::us_to_secs(p.submitted_us),
            started_at: VirtualClock::us_to_secs(p.started_us),
            completed_at: VirtualClock::us_to_secs(event.time_us),
            attempts: p.attempts,
            response,
        })
    }

    /// Returns the next completion in simulated-time order (buffered ones
    /// first — they completed earlier than anything still scheduled), or
    /// `None` when nothing is outstanding.
    pub fn next_completion(&mut self) -> Option<Completion> {
        if let Some((&key, _)) = self.ready.iter().next() {
            return self.ready.remove(&key);
        }
        self.fire_next_event()
    }

    /// Processes events until request `id` completes, buffering every
    /// other completion for later retrieval. `None` if `id` was never
    /// submitted or already claimed. Out-of-order retrieval cannot
    /// perturb the event schedule: events still fire in `(time, seq)`
    /// order and the log stays identical.
    pub fn wait_for(&mut self, id: RequestId) -> Option<Completion> {
        if let Some(key) = self.ready.keys().find(|&&(_, i)| i == id).copied() {
            return self.ready.remove(&key);
        }
        while let Some(c) = self.fire_next_event() {
            if c.id == id {
                return Some(c);
            }
            self.ready.insert((VirtualClock::secs_to_us(c.completed_at), c.id), c);
        }
        None
    }

    /// Claims every outstanding completion, in simulated-time order.
    pub fn drain(&mut self) -> Vec<Completion> {
        std::iter::from_fn(|| self.next_completion()).collect()
    }

    /// The completion log: one line per completion, strictly in event
    /// order — byte-identical across runs with the same seed and
    /// submission schedule regardless of retrieval interleaving.
    pub fn log(&self) -> &[String] {
        &self.log
    }

    /// The log as one newline-joined string (for byte comparisons).
    pub fn log_text(&self) -> String {
        self.log.join("\n")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;
    use mto_osn::{OsnService, OsnServiceConfig};

    fn pipeline(config: PipelineConfig) -> QueryPipeline<OsnService> {
        QueryPipeline::new(OsnService::with_defaults(&paper_barbell()), config)
    }

    #[test]
    fn serial_pipeline_sums_latencies() {
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 1,
            latency: LatencyModel::Constant { secs: 0.1 },
            ..Default::default()
        });
        for v in 0..5u32 {
            p.submit(NodeId(v));
        }
        let done = p.drain();
        assert_eq!(done.len(), 5);
        assert!((done[4].completed_at - 0.5).abs() < 1e-6, "5 × 100 ms back to back");
        assert!((p.clock().now() - 0.5).abs() < 1e-6);
    }

    #[test]
    fn k_in_flight_overlaps_latency() {
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 5,
            latency: LatencyModel::Constant { secs: 0.1 },
            ..Default::default()
        });
        for v in 0..5u32 {
            p.submit(NodeId(v));
        }
        let done = p.drain();
        assert!(done.iter().all(|c| (c.completed_at - 0.1).abs() < 1e-6), "all five overlap fully");
    }

    #[test]
    fn sixth_request_queues_behind_five_connections() {
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 5,
            latency: LatencyModel::Constant { secs: 0.1 },
            ..Default::default()
        });
        for v in 0..6u32 {
            p.submit(NodeId(v));
        }
        let done = p.drain();
        assert!((done[5].started_at - 0.1).abs() < 1e-6, "waited for a free connection");
        assert!((done[5].completed_at - 0.2).abs() < 1e-6);
    }

    #[test]
    fn completions_surface_in_simulated_time_order() {
        // Log-normal latencies: later submissions can finish earlier.
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 8,
            latency: LatencyModel::LogNormal { median_secs: 0.2, sigma: 1.0 },
            seed: 5,
            ..Default::default()
        });
        for v in 0..8u32 {
            p.submit(NodeId(v));
        }
        let done = p.drain();
        let times: Vec<f64> = done.iter().map(|c| c.completed_at).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "out of order: {times:?}");
        assert_ne!(
            done.iter().map(|c| c.id).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>(),
            "heavy tail should reorder at least one completion (seed-dependent)"
        );
    }

    #[test]
    fn rate_limit_delays_starts_on_the_shared_clock() {
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 4,
            latency: LatencyModel::Constant { secs: 0.01 },
            rate_limit: Some(RateLimitPolicy { burst: 2, refill_per_sec: 1.0 }),
            ..Default::default()
        });
        for v in 0..4u32 {
            p.submit(NodeId(v));
        }
        let done = p.drain();
        assert_eq!(p.stats().rate_limit_stalls, 2);
        assert!(done[2].started_at >= 1.0, "third request waited for a token");
        assert!(done[3].started_at >= 2.0, "fourth waited for the next token");
    }

    #[test]
    fn timeouts_add_attempts_and_virtual_time() {
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 1,
            latency: LatencyModel::Constant { secs: 0.05 },
            faults: FaultModel { timeout_prob: 1.0, timeout_secs: 2.0, max_attempts: 3 },
            ..Default::default()
        });
        p.submit(NodeId(0));
        let c = p.next_completion().unwrap();
        assert_eq!(c.attempts, 3, "prob 1.0 burns every allowed attempt");
        assert!((c.completed_at - 4.05).abs() < 1e-6, "two timeouts + one success");
        assert_eq!(p.stats().timeouts, 2);
        assert!(c.response.is_ok(), "the final attempt succeeds");
    }

    #[test]
    fn transient_failures_retry_at_completion() {
        let svc = OsnService::new(
            &paper_barbell(),
            OsnServiceConfig { transient_failure_rate: 0.5, ..Default::default() },
        );
        let mut p = QueryPipeline::new(svc, PipelineConfig::default());
        for v in 0..22u32 {
            p.submit(NodeId(v));
        }
        let done = p.drain();
        assert!(done.iter().all(|c| c.response.is_ok()));
        assert!(p.stats().transient_retries > 0);
    }

    #[test]
    fn unknown_user_surfaces_as_an_error_completion() {
        let mut p = pipeline(PipelineConfig::default());
        let id = p.submit(NodeId(404));
        let c = p.wait_for(id).unwrap();
        assert!(matches!(c.response, Err(OsnError::UnknownUser(_))));
    }

    #[test]
    fn retrieval_order_cannot_change_the_stream() {
        // The acceptance property: same seed, same submissions, three
        // *different* retrieval interleavings — byte-identical logs.
        let run = |mode: u8| {
            let mut p = pipeline(PipelineConfig {
                max_in_flight: 4,
                latency: LatencyModel::LogNormal { median_secs: 0.2, sigma: 0.8 },
                seed: 77,
                ..Default::default()
            });
            let ids: Vec<RequestId> = (0..12u32).map(|v| p.submit(NodeId(v % 22))).collect();
            match mode {
                0 => {
                    p.drain();
                }
                1 => {
                    for &id in ids.iter().rev() {
                        p.wait_for(id).unwrap();
                    }
                }
                _ => {
                    // Zig-zag: wait for the middle, then drain.
                    p.wait_for(ids[6]).unwrap();
                    p.wait_for(ids[1]).unwrap();
                    p.drain();
                }
            }
            p.log_text()
        };
        let a = run(0);
        assert!(!a.is_empty());
        assert_eq!(a, run(1), "reverse retrieval changed the stream");
        assert_eq!(a, run(2), "zig-zag retrieval changed the stream");
    }

    #[test]
    fn same_seed_reproduces_different_seed_diverges() {
        let run = |seed| {
            let mut p = pipeline(PipelineConfig {
                latency: LatencyModel::LogNormal { median_secs: 0.3, sigma: 0.7 },
                seed,
                ..Default::default()
            });
            for v in 0..10u32 {
                p.submit(NodeId(v));
            }
            p.drain();
            p.log_text()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn fixed_concurrency_default_is_byte_identical_to_explicit_fixed() {
        let run = |concurrency| {
            let mut p = pipeline(PipelineConfig {
                max_in_flight: 4,
                concurrency,
                latency: LatencyModel::LogNormal { median_secs: 0.2, sigma: 0.8 },
                rate_limit: Some(RateLimitPolicy { burst: 6, refill_per_sec: 2.0 }),
                seed: 11,
                ..Default::default()
            });
            for v in 0..14u32 {
                p.submit(NodeId(v % 22));
            }
            p.drain();
            (p.log_text(), p.stats())
        };
        let (log_default, stats_default) = run(Concurrency::Fixed);
        assert_eq!(stats_default.ramp_ups, 0, "fixed K never ramps");
        assert_eq!(stats_default.ramp_downs, 0);
        let mut p = pipeline(PipelineConfig::default());
        assert_eq!(p.in_flight_limit(), 8);
        p.submit(NodeId(0));
        assert_eq!(p.in_flight_limit(), 8, "fixed limit is inert");
        assert!(!log_default.is_empty());
    }

    #[test]
    fn adaptive_ramps_to_max_under_unlimited_headroom() {
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 6,
            concurrency: Concurrency::Adaptive { min_in_flight: 1 },
            latency: LatencyModel::Constant { secs: 0.1 },
            ..Default::default()
        });
        assert_eq!(p.in_flight_limit(), 1, "adaptive starts at the floor");
        for v in 0..12u32 {
            p.submit(NodeId(v % 22));
        }
        assert_eq!(p.in_flight_limit(), 6, "no quota: every submit earns a lane");
        assert_eq!(p.stats().ramp_ups, 5);
        assert_eq!(p.stats().ramp_downs, 0);
        let done = p.drain();
        assert_eq!(done.len(), 12);
    }

    #[test]
    fn adaptive_backs_off_when_the_bucket_runs_dry() {
        // Burst 3 at a slow refill: after the burst is spent the
        // controller must fall back to the floor instead of parking
        // requests on lanes that only wait for tokens.
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 8,
            concurrency: Concurrency::Adaptive { min_in_flight: 2 },
            latency: LatencyModel::Constant { secs: 0.01 },
            rate_limit: Some(RateLimitPolicy { burst: 3, refill_per_sec: 0.5 }),
            ..Default::default()
        });
        for v in 0..10u32 {
            p.submit(NodeId(v % 22));
        }
        let done = p.drain();
        assert_eq!(done.len(), 10);
        assert!(p.stats().ramp_downs > 0, "an exhausted bucket must shed lanes");
        assert_eq!(p.in_flight_limit(), 2, "settles at the floor while quota-bound");
    }

    #[test]
    fn adaptive_limit_stays_within_its_bounds_and_is_deterministic() {
        let run = || {
            let mut p = pipeline(PipelineConfig {
                max_in_flight: 5,
                concurrency: Concurrency::Adaptive { min_in_flight: 2 },
                latency: LatencyModel::LogNormal { median_secs: 0.2, sigma: 0.7 },
                rate_limit: Some(RateLimitPolicy { burst: 4, refill_per_sec: 1.0 }),
                seed: 23,
                ..Default::default()
            });
            let mut limits = Vec::new();
            for v in 0..20u32 {
                p.submit(NodeId(v % 22));
                limits.push(p.in_flight_limit());
            }
            p.drain();
            (limits, p.log_text())
        };
        let (limits, log) = run();
        assert!(limits.iter().all(|&k| (2..=5).contains(&k)), "limits {limits:?}");
        assert_eq!((limits, log), run(), "adaptive control must stay deterministic");
    }

    #[test]
    fn latency_backoff_sheds_lanes_when_completions_run_slow() {
        // Injected timeouts make the measured service time (~2.05 s)
        // dwarf the model's 50 ms expectation, so the latency rule must
        // shed lanes down to the floor even though tokens are unlimited
        // (the old headroom-only rule would have ramped to max).
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 6,
            concurrency: Concurrency::Adaptive { min_in_flight: 2 },
            latency: LatencyModel::Constant { secs: 0.05 },
            faults: FaultModel { timeout_prob: 1.0, timeout_secs: 2.0, max_attempts: 2 },
            latency_backoff: Some(2.0),
            ..Default::default()
        });
        for v in 0..40u32 {
            p.submit(NodeId(v % 22));
            // Interleave retrieval so completions feed the rolling window.
            p.next_completion();
        }
        p.drain();
        assert!(p.stats().latency_backoffs > 0, "slow completions must trigger the rule");
        assert_eq!(p.in_flight_limit(), 2, "settles at the floor while the provider is slow");
    }

    #[test]
    fn latency_backoff_stays_quiet_when_completions_match_the_model() {
        let run = |backoff| {
            let mut p = pipeline(PipelineConfig {
                max_in_flight: 6,
                concurrency: Concurrency::Adaptive { min_in_flight: 1 },
                latency: LatencyModel::Constant { secs: 0.05 },
                latency_backoff: backoff,
                ..Default::default()
            });
            for v in 0..30u32 {
                p.submit(NodeId(v % 22));
                p.next_completion();
            }
            p.drain();
            (p.log_text(), p.stats())
        };
        let (log_on, stats_on) = run(Some(1.5));
        let (log_off, stats_off) = run(None);
        assert_eq!(stats_on.latency_backoffs, 0, "on-model completions never back off");
        assert_eq!(log_on, log_off, "an idle rule must not perturb the stream");
        assert_eq!(stats_on, stats_off);
    }

    #[test]
    fn fixed_k_ignores_the_latency_backoff_knob() {
        let run = |backoff| {
            let mut p = pipeline(PipelineConfig {
                max_in_flight: 4,
                latency: LatencyModel::LogNormal { median_secs: 0.2, sigma: 0.9 },
                faults: FaultModel { timeout_prob: 0.3, timeout_secs: 1.0, max_attempts: 3 },
                latency_backoff: backoff,
                seed: 41,
                ..Default::default()
            });
            for v in 0..20u32 {
                p.submit(NodeId(v % 22));
            }
            p.drain();
            (p.log_text(), p.stats())
        };
        assert_eq!(run(Some(0.01)), run(None), "fixed-K must stay byte-identical");
    }

    #[test]
    fn wall_plane_observes_replay_without_perturbing_the_stream() {
        let run = |wall: bool| {
            let mut p = pipeline(PipelineConfig {
                max_in_flight: 4,
                latency: LatencyModel::LogNormal { median_secs: 0.2, sigma: 0.8 },
                seed: 77,
                ..Default::default()
            });
            if wall {
                p.enable_wall();
            }
            for v in 0..12u32 {
                p.submit(NodeId(v % 22));
            }
            p.drain();
            (p.log_text(), p.stats(), p.take_wall())
        };
        let (log_on, stats_on, wall_on) = run(true);
        let (log_off, stats_off, wall_off) = run(false);
        assert_eq!(log_on, log_off, "wall plane must not perturb the completion stream");
        assert_eq!(stats_on, stats_off);
        assert_eq!(wall_off, None, "disabled: nothing collected");
        let wall = wall_on.expect("enabled: replay observed");
        assert_eq!(wall.count, 12, "one observation per completion");
        assert!(wall.nanos > 0, "replay spends real time: {wall:?}");
    }

    #[test]
    fn idle_connection_accounting() {
        let mut p = pipeline(PipelineConfig {
            max_in_flight: 2,
            latency: LatencyModel::Constant { secs: 0.1 },
            ..Default::default()
        });
        assert!(p.has_idle_connection());
        p.submit(NodeId(0));
        assert!(p.has_idle_connection(), "one of two connections still free");
        p.submit(NodeId(1));
        assert!(!p.has_idle_connection(), "both busy");
        p.next_completion().unwrap();
        assert!(p.has_idle_connection(), "completion freed a connection");
        assert_eq!(p.outstanding(), 1);
    }
}
