//! Demand-trace recording: phase one of the walk-not-wait driver
//! (formerly `mto_net::trace`).
//!
//! A walker's *path* is a pure function of `(config, responses)` — timing
//! never changes where it goes, only how long it takes (the same argument
//! that makes `mto_core::parallel` and session resume deterministic). So
//! the driver splits simulation in two: this module runs each walker once
//! against a plain cached client and records its **demand trace** — the
//! exact sequence of `fetch(v)` calls it makes, with the walker's own
//! [`Walker::prefetch_candidates`] snapshot at every step boundary — and
//! [`crate::driver`] then replays those traces through the
//! [`crate::pipeline::QueryPipeline`] to measure virtual wall-clock under
//! any latency/concurrency regime, without re-deciding anything.

use std::cell::RefCell;
use std::rc::Rc;

use mto_core::mto::{MtoConfig, MtoSampler, RewireStats};
use mto_core::walk::{
    MetropolisHastingsWalk, MhrwConfig, RandomJumpWalk, RjConfig, SimpleRandomWalk, SrwConfig,
    Walker,
};
use mto_graph::NodeId;
use mto_osn::{
    CachedClient, QueryClient, QueryResponse, Result, SharedClient, SocialNetworkInterface,
};

/// Which sampler a pool slot runs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WalkerSpec {
    /// The MTO-Sampler.
    Mto(MtoConfig),
    /// Simple random walk.
    Srw(SrwConfig),
    /// Metropolis–Hastings.
    Mhrw(MhrwConfig),
    /// Random Jump (requires a published user count).
    Rj(RjConfig),
}

/// One walker of the pool: sampler, start node, step budget.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PoolJob {
    /// Sampler and configuration.
    pub spec: WalkerSpec,
    /// Start node (queried immediately, like any walker).
    pub start: NodeId,
    /// Steps this walker takes.
    pub steps: usize,
}

/// One recorded client interaction.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// The walker called `fetch(v)` (hit or miss — the cache state at
    /// replay time decides which).
    Fetch(NodeId),
    /// A step finished; the walker's speculative targets at that moment,
    /// most likely first.
    StepEnd {
        /// Output of [`Walker::prefetch_candidates`] after the step.
        candidates: Vec<NodeId>,
    },
}

/// Everything phase one learned about one walker.
#[derive(Clone, Debug)]
pub struct WalkTrace {
    /// Algorithm display name.
    pub algorithm: &'static str,
    /// The interaction sequence, in program order.
    pub events: Vec<TraceEvent>,
    /// Every visited position, seed first.
    pub history: Vec<NodeId>,
    /// Final position.
    pub final_node: NodeId,
    /// Rewiring counters, for rewiring samplers.
    pub stats: Option<RewireStats>,
}

/// Client wrapper that logs every `fetch` while delegating to a shared
/// cache (so recording one pool costs each unique node only once).
struct RecordingClient<I> {
    inner: SharedClient<I>,
    log: Rc<RefCell<Vec<TraceEvent>>>,
}

impl<I: SocialNetworkInterface> QueryClient for RecordingClient<I> {
    fn fetch(&mut self, v: NodeId) -> Result<QueryResponse> {
        self.log.borrow_mut().push(TraceEvent::Fetch(v));
        self.inner.fetch(v)
    }

    fn known_degree(&self, v: NodeId) -> Option<usize> {
        self.inner.known_degree(v)
    }

    fn unique_queries(&self) -> u64 {
        self.inner.unique_queries()
    }

    fn num_users_hint(&self) -> Option<usize> {
        self.inner.num_users_hint()
    }

    fn cached_neighbors(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.inner.cached_neighbors(v)
    }
}

/// The concrete walker behind a [`WalkerSpec`], generic over the client.
enum AnyWalker<C: QueryClient> {
    // Boxed: the sampler carries its scratch buffers inline, dwarfing
    // the other variants.
    Mto(Box<MtoSampler<C>>),
    Srw(SimpleRandomWalk<C>),
    Mhrw(MetropolisHastingsWalk<C>),
    Rj(RandomJumpWalk<C>),
}

impl<C: QueryClient> AnyWalker<C> {
    fn build(client: C, job: &PoolJob) -> Result<Self> {
        Ok(match job.spec {
            WalkerSpec::Mto(cfg) => {
                AnyWalker::Mto(Box::new(MtoSampler::new(client, job.start, cfg)?))
            }
            WalkerSpec::Srw(cfg) => AnyWalker::Srw(SimpleRandomWalk::new(client, job.start, cfg)?),
            WalkerSpec::Mhrw(cfg) => {
                AnyWalker::Mhrw(MetropolisHastingsWalk::new(client, job.start, cfg)?)
            }
            WalkerSpec::Rj(cfg) => AnyWalker::Rj(RandomJumpWalk::new(client, job.start, cfg)?),
        })
    }

    fn rewire_stats(&self) -> Option<RewireStats> {
        match self {
            AnyWalker::Mto(w) => Some(w.stats()),
            _ => None,
        }
    }
}

impl<C: QueryClient> Walker for AnyWalker<C> {
    fn name(&self) -> &'static str {
        match self {
            AnyWalker::Mto(w) => w.name(),
            AnyWalker::Srw(w) => w.name(),
            AnyWalker::Mhrw(w) => w.name(),
            AnyWalker::Rj(w) => w.name(),
        }
    }

    fn current(&self) -> NodeId {
        match self {
            AnyWalker::Mto(w) => w.current(),
            AnyWalker::Srw(w) => w.current(),
            AnyWalker::Mhrw(w) => w.current(),
            AnyWalker::Rj(w) => w.current(),
        }
    }

    fn step(&mut self) -> Result<NodeId> {
        match self {
            AnyWalker::Mto(w) => w.step(),
            AnyWalker::Srw(w) => w.step(),
            AnyWalker::Mhrw(w) => w.step(),
            AnyWalker::Rj(w) => w.step(),
        }
    }

    fn history(&self) -> &[NodeId] {
        match self {
            AnyWalker::Mto(w) => w.history(),
            AnyWalker::Srw(w) => w.history(),
            AnyWalker::Mhrw(w) => w.history(),
            AnyWalker::Rj(w) => w.history(),
        }
    }

    fn query_cost(&self) -> u64 {
        match self {
            AnyWalker::Mto(w) => w.query_cost(),
            AnyWalker::Srw(w) => w.query_cost(),
            AnyWalker::Mhrw(w) => w.query_cost(),
            AnyWalker::Rj(w) => w.query_cost(),
        }
    }

    fn importance_weight(&mut self, v: NodeId) -> Result<f64> {
        match self {
            AnyWalker::Mto(w) => w.importance_weight(v),
            AnyWalker::Srw(w) => w.importance_weight(v),
            AnyWalker::Mhrw(w) => w.importance_weight(v),
            AnyWalker::Rj(w) => w.importance_weight(v),
        }
    }

    fn prefetch_candidates(&self) -> Vec<NodeId> {
        match self {
            AnyWalker::Mto(w) => w.prefetch_candidates(),
            AnyWalker::Srw(w) => w.prefetch_candidates(),
            AnyWalker::Mhrw(w) => w.prefetch_candidates(),
            AnyWalker::Rj(w) => w.prefetch_candidates(),
        }
    }
}

/// Records the demand trace of every job, in job order. The walkers run
/// over one shared cache (sharing changes nothing about their paths —
/// responses are immutable — it only avoids paying twice for the oracle
/// pass).
pub fn record_traces<I: SocialNetworkInterface>(
    interface: &I,
    jobs: &[PoolJob],
) -> Result<Vec<WalkTrace>> {
    let shared = SharedClient::new(CachedClient::new(interface));
    let mut traces = Vec::with_capacity(jobs.len());
    for job in jobs {
        let log = Rc::new(RefCell::new(Vec::new()));
        let client = RecordingClient { inner: shared.clone(), log: Rc::clone(&log) };
        let mut walker = AnyWalker::build(client, job)?;
        for _ in 0..job.steps {
            walker.step()?;
            log.borrow_mut().push(TraceEvent::StepEnd { candidates: walker.prefetch_candidates() });
        }
        traces.push(WalkTrace {
            algorithm: walker.name(),
            history: walker.history().to_vec(),
            final_node: walker.current(),
            stats: walker.rewire_stats(),
            events: std::mem::take(&mut *log.borrow_mut()),
        });
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;
    use mto_osn::OsnService;

    fn jobs() -> Vec<PoolJob> {
        vec![
            PoolJob {
                spec: WalkerSpec::Mto(MtoConfig { seed: 1, ..Default::default() }),
                start: NodeId(0),
                steps: 50,
            },
            PoolJob {
                spec: WalkerSpec::Srw(SrwConfig { seed: 2, lazy: false }),
                start: NodeId(11),
                steps: 40,
            },
        ]
    }

    #[test]
    fn traces_capture_fetches_and_step_boundaries() {
        let svc = OsnService::with_defaults(&paper_barbell());
        let traces = record_traces(&svc, &jobs()).unwrap();
        assert_eq!(traces.len(), 2);
        let mto = &traces[0];
        assert_eq!(mto.algorithm, "MTO");
        assert_eq!(mto.history.len(), 51);
        assert_eq!(mto.events[0], TraceEvent::Fetch(NodeId(0)), "creation queries the start");
        let step_ends =
            mto.events.iter().filter(|e| matches!(e, TraceEvent::StepEnd { .. })).count();
        assert_eq!(step_ends, 50, "one boundary per step");
        assert!(mto.stats.unwrap().removals > 0);
        assert!(traces[1].stats.is_none(), "SRW does not rewire");
    }

    #[test]
    fn traces_match_an_independent_run_of_the_same_walker() {
        let g = paper_barbell();
        let traces = record_traces(&OsnService::with_defaults(&g), &jobs()).unwrap();
        // A plain, separately-built SRW with the same seed walks the same
        // path — the recorder is an observer, not a participant.
        let client = CachedClient::new(OsnService::with_defaults(&g));
        let mut srw =
            SimpleRandomWalk::new(client, NodeId(11), SrwConfig { seed: 2, lazy: false }).unwrap();
        for _ in 0..40 {
            srw.step().unwrap();
        }
        assert_eq!(traces[1].history, srw.history());
        assert_eq!(traces[1].final_node, srw.current());
    }

    #[test]
    fn recording_is_deterministic() {
        let g = paper_barbell();
        let a = record_traces(&OsnService::with_defaults(&g), &jobs()).unwrap();
        let b = record_traces(&OsnService::with_defaults(&g), &jobs()).unwrap();
        for (ta, tb) in a.iter().zip(&b) {
            assert_eq!(ta.events, tb.events);
            assert_eq!(ta.history, tb.history);
        }
    }
}
