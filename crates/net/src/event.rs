//! The discrete-event queue: a binary heap with a deterministic total
//! order.
//!
//! Simulated events are ordered by `(time, sequence)`: earliest virtual
//! time first, and FIFO among events scheduled for the same instant (the
//! sequence number is assigned at push). The order is therefore *total* —
//! no two events ever compare equal — which is what makes every consumer
//! of the queue reproducible: the pop order depends only on the push
//! history, never on heap internals or host scheduling.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled event: when it fires, its tie-breaking sequence number,
/// and an arbitrary payload.
#[derive(Clone, Debug)]
pub struct Event<T> {
    /// Virtual firing time in microseconds.
    pub time_us: u64,
    /// Push-order sequence number (unique per queue; breaks time ties
    /// FIFO).
    pub seq: u64,
    /// The scheduled work.
    pub payload: T,
}

// Ordering ignores the payload entirely: `(time_us, seq)` is unique, so
// the derived-looking equivalence below is a genuine total order.
impl<T> PartialEq for Event<T> {
    fn eq(&self, other: &Self) -> bool {
        (self.time_us, self.seq) == (other.time_us, other.seq)
    }
}
impl<T> Eq for Event<T> {}
impl<T> PartialOrd for Event<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Event<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the *earliest*
        // event on top.
        (other.time_us, other.seq).cmp(&(self.time_us, self.seq))
    }
}

/// Min-heap of [`Event`]s with queue-assigned sequence numbers.
#[derive(Clone, Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Event<T>>,
    next_seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue { heap: BinaryHeap::new(), next_seq: 0 }
    }
}

impl<T> EventQueue<T> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Schedules `payload` at `time_us`, returning its sequence number.
    pub fn push(&mut self, time_us: u64, payload: T) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Event { time_us, seq, payload });
        seq
    }

    /// Removes and returns the earliest event (`(time, seq)` order).
    pub fn pop(&mut self) -> Option<Event<T>> {
        self.heap.pop()
    }

    /// Firing time of the earliest event without removing it.
    pub fn peek_time_us(&self) -> Option<u64> {
        self.heap.peek().map(|e| e.time_us)
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(30, "c");
        q.push(10, "a");
        q.push(20, "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo_by_sequence() {
        let mut q = EventQueue::new();
        for i in 0..16 {
            q.push(5, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..16).collect::<Vec<_>>(), "same-time events pop FIFO");
    }

    #[test]
    fn sequence_numbers_are_unique_and_monotone() {
        let mut q = EventQueue::new();
        let s0 = q.push(9, ());
        let s1 = q.push(3, ());
        let s2 = q.push(9, ());
        assert_eq!((s0, s1, s2), (0, 1, 2));
    }

    #[test]
    fn peek_matches_pop() {
        let mut q = EventQueue::new();
        q.push(42, 'x');
        q.push(7, 'y');
        assert_eq!(q.peek_time_us(), Some(7));
        assert_eq!(q.pop().unwrap().time_us, 7);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
