//! The committed perf ledger: serialized criterion estimates.
//!
//! The vendored criterion shim records every `bench_function` run in a
//! process-wide registry; a bench binary drains it after its groups ran
//! and hands the estimates here to be rendered as a `BENCH_<pr>.json`
//! committed at the repository root. Re-anchoring sessions read the
//! ledger to see the perf trajectory without re-running anything.
//!
//! The renderer is hand-rolled: the workspace vendors no JSON crate, and
//! the schema is flat enough that escaping bench ids (plain
//! `group/name-with-dashes` strings) is the only subtlety.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// One measured benchmark, as drained from the criterion registry.
#[derive(Clone, Debug, PartialEq)]
pub struct LedgerEntry {
    /// Full `group/benchmark` id.
    pub id: String,
    /// Mean nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Timed iterations behind the mean.
    pub iters: u64,
}

/// The assembled ledger for one PR.
#[derive(Clone, Debug)]
pub struct Ledger {
    /// PR number the ledger belongs to (`BENCH_<pr>.json`).
    pub pr: u32,
    /// Free-text provenance note (what machine/commit the baseline
    /// numbers were measured at).
    pub note: String,
    /// Pre-PR baseline, `id → ns_per_iter`, for benches that already
    /// existed before the PR. Benches absent here serialize a `null`
    /// baseline and speedup.
    pub baseline: BTreeMap<String, f64>,
}

impl Ledger {
    /// Renders the ledger with `current` measurements as a JSON document.
    ///
    /// Keys are emitted in sorted order so the output is deterministic
    /// for a given set of estimates.
    pub fn render(&self, current: &[LedgerEntry]) -> String {
        let mut sorted: BTreeMap<&str, &LedgerEntry> = BTreeMap::new();
        for e in current {
            sorted.insert(&e.id, e);
        }
        let mut out = String::with_capacity(256 + 160 * sorted.len());
        out.push_str("{\n");
        writeln!(out, "  \"schema\": \"mto-perf-ledger/v1\",").unwrap();
        writeln!(out, "  \"pr\": {},", self.pr).unwrap();
        writeln!(out, "  \"note\": \"{}\",", escape(&self.note)).unwrap();
        out.push_str("  \"benches\": {\n");
        let last = sorted.len().saturating_sub(1);
        for (i, (id, e)) in sorted.iter().enumerate() {
            write!(
                out,
                "    \"{}\": {{\"baseline_ns_per_iter\": {}, \"ns_per_iter\": {}, \
                 \"iters\": {}, \"speedup\": {}}}",
                escape(id),
                self.baseline.get(*id).map_or("null".into(), |b| format_f64(*b)),
                format_f64(e.ns_per_iter),
                e.iters,
                self.baseline
                    .get(*id)
                    .filter(|_| e.ns_per_iter > 0.0)
                    .map_or("null".into(), |b| format_f64(b / e.ns_per_iter)),
            )
            .unwrap();
            out.push_str(if i == last { "\n" } else { ",\n" });
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Renders and writes the ledger to `path`.
    pub fn write(&self, path: &Path, current: &[LedgerEntry]) -> io::Result<()> {
        std::fs::write(path, self.render(current))
    }
}

/// JSON number formatting: finite, no exponent, enough precision for
/// nanosecond means (two decimals) without trailing noise.
fn format_f64(x: f64) -> String {
    if !x.is_finite() {
        return "null".into();
    }
    let s = format!("{x:.2}");
    s.strip_suffix(".00").map_or(s.clone(), str::to_owned)
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                write!(out, "\\u{:04x}", c as u32).unwrap();
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Ledger, Vec<LedgerEntry>) {
        let mut baseline = BTreeMap::new();
        baseline.insert("g/walk".to_owned(), 500.0);
        let ledger = Ledger { pr: 6, note: "unit \"test\"".to_owned(), baseline };
        let current = vec![
            LedgerEntry { id: "g/walk".into(), ns_per_iter: 125.0, iters: 25 },
            LedgerEntry { id: "g/new".into(), ns_per_iter: 7.5, iters: 10 },
        ];
        (ledger, current)
    }

    #[test]
    fn renders_speedup_against_the_baseline() {
        let (ledger, current) = sample();
        let json = ledger.render(&current);
        assert!(json.contains("\"g/walk\": {\"baseline_ns_per_iter\": 500, \"ns_per_iter\": 125, \"iters\": 25, \"speedup\": 4}"), "{json}");
        assert!(
            json.contains("\"g/new\": {\"baseline_ns_per_iter\": null, \"ns_per_iter\": 7.50, \"iters\": 10, \"speedup\": null}"),
            "{json}"
        );
    }

    #[test]
    fn output_is_valid_json_shape() {
        // No JSON parser is vendored; check the structural invariants a
        // parser would: balanced braces outside strings, escaped quotes,
        // sorted deterministic key order.
        let (ledger, current) = sample();
        let json = ledger.render(&current);
        let mut depth = 0i32;
        let mut in_string = false;
        let mut prev = '\0';
        for c in json.chars() {
            if in_string {
                if c == '"' && prev != '\\' {
                    in_string = false;
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' => depth += 1,
                    '}' => depth -= 1,
                    _ => {}
                }
            }
            prev = if prev == '\\' && c == '\\' { '\0' } else { c };
        }
        assert_eq!(depth, 0, "unbalanced braces:\n{json}");
        assert!(!in_string, "unterminated string:\n{json}");
        assert!(json.contains(r#"unit \"test\""#), "note not escaped: {json}");
        let walk = json.find("g/walk").unwrap();
        let new = json.find("g/new").unwrap();
        assert!(new < walk, "keys not sorted");
    }

    #[test]
    fn render_is_deterministic_across_input_order() {
        let (ledger, mut current) = sample();
        let a = ledger.render(&current);
        current.reverse();
        assert_eq!(a, ledger.render(&current));
    }
}
