//! Shared helpers for the Criterion benchmarks.
//!
//! Every paper table/figure has a bench target (`bench_table1`,
//! `bench_fig7`, …) exercising the same kernel the experiment harness
//! runs, at a size chosen so `cargo bench` completes in minutes. The
//! micro (`bench_micro`) and ablation (`bench_ablations`) targets profile
//! the individual moving parts.

pub mod ledger;

/// A tiny deterministic service for walker benches.
pub fn mini_epinions_service(scale: usize) -> mto_osn::OsnService {
    let spec = mto_experiments::DatasetSpec::epinions().scaled_down(scale);
    let graph = mto_experiments::build_dataset(&spec);
    mto_osn::OsnService::with_defaults(&graph)
}

/// A tiny deterministic graph for spectral benches.
pub fn mini_epinions_graph(scale: usize) -> mto_graph::Graph {
    let spec = mto_experiments::DatasetSpec::epinions().scaled_down(scale);
    mto_experiments::build_dataset(&spec)
}
