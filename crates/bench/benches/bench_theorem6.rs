//! Bench for the Theorem 6 experiment: the Monte-Carlo removable-edge
//! probability and the overlay materialization on latent-space graphs.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mto_core::materialize_removal_overlay;
use mto_experiments::fig10::removal_probability_bound;
use mto_graph::algo::largest_component;
use mto_graph::generators::{latent_space_graph, LatentSpaceModel};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem6");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let model = LatentSpaceModel::paper_fig10();

    group.bench_function("monte-carlo-bound-20k-pairs", |b| {
        b.iter(|| std::hint::black_box(removal_probability_bound(&model, 20_000, 1)))
    });

    let mut rng = StdRng::seed_from_u64(4);
    let sample = latent_space_graph(&model, 80, &mut rng);
    let (g, _) = largest_component(&sample.graph);
    group.bench_function("materialize-overlay-latent-n80", |b| {
        b.iter(|| std::hint::black_box(materialize_removal_overlay(&g).num_edges()))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
