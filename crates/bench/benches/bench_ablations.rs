//! Ablation benches for the design choices DESIGN.md calls out: the
//! removal/replacement split (Fig 10's MTO_RM / MTO_RP / MTO_Both), the
//! Theorem 5 extension, the criterion view, laziness, and the
//! replacement-probability knob. Each variant reports both wall time and
//! (via the returned stats) how much rewiring it accomplished.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mto_core::mto::{CriterionView, MtoConfig, MtoSampler, OverlayDegreeMode};
use mto_core::walk::Walker;
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService};

fn run_variant(graph: &mto_graph::Graph, config: MtoConfig, steps: usize) -> u64 {
    let service = OsnService::with_defaults(graph);
    let mut sampler = MtoSampler::new(CachedClient::new(service), NodeId(0), config).unwrap();
    for _ in 0..steps {
        sampler.step().unwrap();
    }
    sampler.stats().removals + sampler.stats().replacements
}

fn bench_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/variants");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(4));

    let graph = mto_bench::mini_epinions_graph(40);
    let variants: Vec<(&str, MtoConfig)> = vec![
        ("both", MtoConfig::default()),
        ("removal-only", MtoConfig::removal_only()),
        ("replacement-only", MtoConfig::replacement_only()),
        ("with-extension", MtoConfig::with_extension()),
        (
            "overlay-view",
            MtoConfig { criterion_view: CriterionView::Overlay, ..Default::default() },
        ),
        ("non-lazy", MtoConfig { lazy: false, ..Default::default() }),
        ("plain-lazy-walk", MtoConfig { removal: false, replacement: false, ..Default::default() }),
    ];

    for (name, config) in variants {
        group.bench_with_input(BenchmarkId::new("mto-2k-steps", name), &config, |b, cfg| {
            b.iter(|| std::hint::black_box(run_variant(&graph, *cfg, 2_000)))
        });
    }
    group.finish();
}

fn bench_replace_prob(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/replace-prob");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let graph = mto_bench::mini_epinions_graph(40);
    for prob in [0.0f64, 0.25, 0.5, 1.0] {
        let config = MtoConfig { replace_prob: prob, ..Default::default() };
        group.bench_with_input(
            BenchmarkId::new("mto-2k-steps", format!("p={prob}")),
            &config,
            |b, cfg| b.iter(|| std::hint::black_box(run_variant(&graph, *cfg, 2_000))),
        );
    }
    group.finish();
}

fn bench_weight_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/weight-modes");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let graph = mto_bench::mini_epinions_graph(40);
    let service = OsnService::with_defaults(&graph);
    let mut sampler =
        MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default()).unwrap();
    for _ in 0..3_000 {
        sampler.step().unwrap();
    }
    let probe = sampler.current();

    for (name, mode) in [
        ("discovered", OverlayDegreeMode::Discovered),
        ("exact-removal", OverlayDegreeMode::ExactRemoval),
        ("sampled-4", OverlayDegreeMode::SampledRemoval(4)),
    ] {
        group.bench_with_input(
            BenchmarkId::new("overlay-degree-estimate", name),
            &mode,
            |b, &mode| {
                b.iter(|| {
                    std::hint::black_box(sampler.overlay_degree_estimate(probe, mode).unwrap())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_variants, bench_replace_prob, bench_weight_modes);
criterion_main!(benches);
