//! Bench for the §II–III running example: exact conductance of the
//! barbell, Theorem-3 overlay materialization, and the full rewiring walk.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mto_core::materialize_removal_overlay;
use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::walk::Walker;
use mto_graph::generators::paper_barbell;
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService};
use mto_spectral::conductance::exact_conductance;
use mto_spectral::mixing::mixing_bound_log10_coefficient;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("running-example");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let g = paper_barbell();

    group.bench_function("exact-conductance-barbell", |b| {
        b.iter(|| std::hint::black_box(exact_conductance(&g).phi))
    });

    group.bench_function("materialize-removal-overlay", |b| {
        b.iter(|| std::hint::black_box(materialize_removal_overlay(&g).num_edges()))
    });

    group.bench_function("mto-walk-2000-steps", |b| {
        b.iter(|| {
            let service = OsnService::with_defaults(&g);
            let mut sampler =
                MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default())
                    .expect("start exists");
            for _ in 0..2000 {
                sampler.step().expect("cannot fail");
            }
            std::hint::black_box(sampler.stats())
        })
    });

    group.bench_function("full-pipeline-phi-and-bound", |b| {
        b.iter(|| {
            let overlay = materialize_removal_overlay(&g);
            let phi = exact_conductance(&overlay).phi;
            std::hint::black_box(mixing_bound_log10_coefficient(phi))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
