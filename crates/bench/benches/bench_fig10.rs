//! Bench for Fig 10: the latent-space mixing-time pipeline — graph
//! sampling, SLEM via Jacobi, and the coverage walk + overlay evaluation.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::walk::Walker;
use mto_graph::algo::largest_component;
use mto_graph::generators::{latent_space_graph, LatentSpaceModel};
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService};
use mto_spectral::MixingAnalysis;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    let model = LatentSpaceModel::paper_fig10();
    let mut rng = StdRng::seed_from_u64(2);
    let sample = latent_space_graph(&model, 60, &mut rng);
    let (g, _) = largest_component(&sample.graph);

    group.bench_function("sample-latent-space-n60", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(2);
            std::hint::black_box(latent_space_graph(&model, 60, &mut rng).graph.num_edges())
        })
    });

    group.bench_function("slem-mixing-time-jacobi", |b| {
        b.iter(|| std::hint::black_box(MixingAnalysis::new(&g, true).theoretical_mixing_time()))
    });

    group.bench_function("coverage-walk-plus-overlay-mixing", |b| {
        b.iter(|| {
            let service = OsnService::with_defaults(&g);
            let mut sampler =
                MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default())
                    .unwrap();
            let mut seen = std::collections::HashSet::new();
            seen.insert(NodeId(0));
            let mut steps = 0;
            while seen.len() < g.num_nodes() && steps < 200 * g.num_nodes() {
                seen.insert(sampler.step().unwrap());
                steps += 1;
            }
            let overlay = sampler.overlay().materialize(&g);
            let (lcc, _) = largest_component(&overlay);
            std::hint::black_box(MixingAnalysis::new(&lcc, true).theoretical_mixing_time())
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
