//! Micro-benchmarks of the hot kernels: walker steps, the removal
//! criterion, common-neighbor intersection, overlay operations, the
//! client cache's slot-map lookup, the history codec, the history-store
//! merge the fleet's gossip folds at every barrier, the discrete-event
//! query pipeline (and the full walk-not-wait driver), the QoS layer's
//! cost prediction / budget ledger / EDF epoch planning, and the
//! spectral solvers.

use std::collections::HashMap;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::rewire::{removal_criterion, OverlayDelta};
use mto_core::walk::{MetropolisHastingsWalk, MhrwConfig, SimpleRandomWalk, SrwConfig, Walker};
use mto_graph::generators::paper_barbell;
use mto_graph::{CsrGraph, NodeId};
use mto_osn::{CachedClient, OsnService, QueryResponse};
use mto_serve::history::HistoryStore;
use mto_spectral::jacobi::{jacobi_eigen, JacobiOptions};
use mto_spectral::power::{slem_power_iteration, PowerIterationOptions};
use mto_spectral::transition::symmetrized_transition;

fn bench_walk_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/walk-steps");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(1_000));

    let graph = mto_bench::mini_epinions_graph(40);

    group.bench_function("srw-1k-steps", |b| {
        b.iter(|| {
            let service = OsnService::with_defaults(&graph);
            let mut w = SimpleRandomWalk::new(
                CachedClient::new(service),
                NodeId(0),
                SrwConfig { seed: 1, lazy: false },
            )
            .unwrap();
            for _ in 0..1_000 {
                w.step().unwrap();
            }
            std::hint::black_box(w.current())
        })
    });

    group.bench_function("mhrw-1k-steps", |b| {
        b.iter(|| {
            let service = OsnService::with_defaults(&graph);
            let mut w = MetropolisHastingsWalk::new(
                CachedClient::new(service),
                NodeId(0),
                MhrwConfig { seed: 1 },
            )
            .unwrap();
            for _ in 0..1_000 {
                w.step().unwrap();
            }
            std::hint::black_box(w.current())
        })
    });

    group.bench_function("mto-1k-steps", |b| {
        b.iter(|| {
            let service = OsnService::with_defaults(&graph);
            let mut w =
                MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default())
                    .unwrap();
            for _ in 0..1_000 {
                w.step().unwrap();
            }
            std::hint::black_box(w.current())
        })
    });

    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/kernels");
    group.sample_size(50);
    group.measurement_time(Duration::from_secs(2));

    let graph = mto_bench::mini_epinions_graph(40);

    group.bench_function("removal-criterion-1k-calls", |b| {
        b.iter(|| {
            let mut fired = 0usize;
            for i in 0..1_000usize {
                if removal_criterion(i % 12, 3 + i % 9, 3 + (i * 7) % 11) {
                    fired += 1;
                }
            }
            std::hint::black_box(fired)
        })
    });

    group.bench_function("common-neighbors-all-edges", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for e in graph.edges() {
                total += graph.common_neighbor_count(e.small(), e.large());
            }
            std::hint::black_box(total)
        })
    });

    group.bench_function("csr-freeze", |b| {
        b.iter(|| std::hint::black_box(CsrGraph::from_graph(&graph).num_edges()))
    });

    group.bench_function("overlay-delta-1k-ops", |b| {
        b.iter(|| {
            let mut delta = OverlayDelta::new();
            for i in 0..1_000u32 {
                let (u, v) = (NodeId(i % 97), NodeId((i * 13 + 1) % 97));
                if u == v {
                    continue;
                }
                if i % 3 == 0 {
                    delta.add_edge(u, v);
                } else {
                    delta.remove_edge(u, v);
                }
            }
            std::hint::black_box(delta.num_removed() + delta.num_added())
        })
    });

    group.finish();
}

/// The ISSUE 2 satellite benchmark: the `CachedClient` hot path is a
/// dense `Vec`-indexed slot-map lookup; the baseline is the
/// `HashMap<NodeId, QueryResponse>` layout it replaced. Both serve the
/// same fully-warmed 650-node cache and the same cyclic lookup pattern.
fn bench_cache_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/cache");
    group.sample_size(50);
    group.measurement_time(Duration::from_secs(2));
    group.throughput(Throughput::Elements(4_096));

    let graph = mto_bench::mini_epinions_graph(40);
    let n = graph.num_nodes() as u32;
    let mut client = CachedClient::new(OsnService::with_defaults(&graph));
    for v in 0..n {
        client.query(NodeId(v)).unwrap();
    }
    let baseline: HashMap<NodeId, QueryResponse> =
        (0..n).map(|v| (NodeId(v), client.cached(NodeId(v)).unwrap().clone())).collect();

    group.bench_function("slotmap-cached-degree-4k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..4_096u32 {
                let v = NodeId((i.wrapping_mul(2_654_435_761)) % n);
                acc += client.known_degree(std::hint::black_box(v)).unwrap();
            }
            std::hint::black_box(acc)
        })
    });

    group.bench_function("hashmap-baseline-degree-4k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..4_096u32 {
                let v = NodeId((i.wrapping_mul(2_654_435_761)) % n);
                acc += baseline.get(&std::hint::black_box(v)).unwrap().neighbors.len();
            }
            std::hint::black_box(acc)
        })
    });

    group.finish();
}

fn bench_history_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/history-codec");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(2));

    let graph = mto_bench::mini_epinions_graph(40);
    let mut client = CachedClient::new(OsnService::with_defaults(&graph));
    for v in 0..graph.num_nodes() as u32 {
        client.query(NodeId(v)).unwrap();
    }
    let store = HistoryStore::from_client(&client);
    let encoded = store.encode();
    group.throughput(Throughput::Bytes(encoded.len() as u64));

    group.bench_function("encode-650-node-store", |b| {
        b.iter(|| std::hint::black_box(store.encode().len()))
    });
    group.bench_function("decode-650-node-store", |b| {
        b.iter(|| std::hint::black_box(HistoryStore::decode(&encoded).unwrap().num_responses()))
    });

    group.finish();
}

fn bench_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/merge");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(2));

    // Two overlapping crawls of the mini-Epinions stand-in: the shape
    // the fleet's epoch gossip folds at every barrier.
    let graph = mto_bench::mini_epinions_graph(40);
    let n = graph.num_nodes() as u32;
    let crawl = |lo: u32, hi: u32| {
        let mut client = CachedClient::new(OsnService::with_defaults(&graph));
        for v in lo..hi {
            client.query(NodeId(v)).unwrap();
        }
        HistoryStore::from_client(&client)
    };
    let a = crawl(0, 2 * n / 3);
    let b = crawl(n / 3, n);
    group.throughput(Throughput::Elements((a.num_responses() + b.num_responses()) as u64));

    group.bench_function("merge-two-overlapping-crawls", |bch| {
        bch.iter(|| {
            let mut acc = a.clone();
            let outcome = acc.merge(&b).unwrap();
            std::hint::black_box((acc.num_responses(), outcome.merged_responses))
        })
    });
    group.bench_function("fold-four-shard-gossip-round", |bch| {
        let shards: Vec<HistoryStore> =
            (0..4).map(|s| crawl(s * n / 6, s * n / 6 + n / 2)).collect();
        bch.iter(|| {
            let mut union = HistoryStore::default();
            let mut conflicts = 0u64;
            for shard in &shards {
                conflicts += union.merge(shard).unwrap().conflicts;
            }
            std::hint::black_box((union.num_responses(), conflicts))
        })
    });

    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    use mto_net::demand::{record_traces, PoolJob, WalkerSpec};
    use mto_net::driver::{replay_pool, DriverConfig, DriverMode};
    use mto_net::latency::LatencyModel;
    use mto_net::pipeline::{PipelineConfig, QueryPipeline};

    let mut group = c.benchmark_group("micro/pipeline");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));

    let graph = mto_bench::mini_epinions_graph(40);
    let n = graph.num_nodes() as u32;

    // Raw engine throughput: submit + drain one request per node.
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("submit-drain-650", |b| {
        b.iter(|| {
            let mut p = QueryPipeline::new(
                OsnService::with_defaults(&graph),
                PipelineConfig {
                    max_in_flight: 8,
                    latency: LatencyModel::LogNormal { median_secs: 0.28, sigma: 0.4 },
                    ..Default::default()
                },
            );
            for v in 0..n {
                p.submit(NodeId(v));
            }
            std::hint::black_box(p.drain().len())
        })
    });

    // The walk-not-wait replay over a 4-walker pool (traces recorded
    // once outside the measurement — recording is an oracle pass whose
    // cost is amortized across regimes in real use).
    group.throughput(Throughput::Elements(4 * 100));
    group.bench_function("walk-not-wait-replay-4x100", |b| {
        let jobs: Vec<PoolJob> = (0..4u64)
            .map(|i| PoolJob {
                spec: WalkerSpec::Mto(MtoConfig { seed: 20 + i, ..Default::default() }),
                start: NodeId((i as u32 * n) / 4),
                steps: 100,
            })
            .collect();
        let config = DriverConfig {
            mode: DriverMode::WalkNotWait,
            pipeline: PipelineConfig {
                max_in_flight: 8,
                latency: LatencyModel::LogNormal { median_secs: 0.28, sigma: 0.4 },
                ..Default::default()
            },
            unique_query_budget: None,
        };
        let service = OsnService::with_defaults(&graph);
        let traces = record_traces(&service, &jobs).unwrap();
        b.iter(|| {
            let report = replay_pool(&service, &traces, &config).unwrap();
            std::hint::black_box(report.virtual_secs)
        })
    });

    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/spectral");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let barbell = paper_barbell();

    group.bench_function("jacobi-full-spectrum-n22", |b| {
        let s = symmetrized_transition(&barbell);
        b.iter(|| std::hint::black_box(jacobi_eigen(&s, JacobiOptions::default()).slem()))
    });

    let graph = mto_bench::mini_epinions_graph(40);
    group.bench_function("power-iteration-slem-n650", |b| {
        b.iter(|| {
            std::hint::black_box(
                slem_power_iteration(&graph, PowerIterationOptions::default()).slem,
            )
        })
    });

    group.bench_function("sweep-conductance-n650", |b| {
        b.iter(|| std::hint::black_box(mto_spectral::conductance::sweep_conductance(&graph).0))
    });

    group.finish();
}

/// The QoS hot path: admission-time cost prediction over a warm store,
/// and a full ledger split → charge → rebalance barrier cycle — both run
/// at every fleet epoch, so they must stay cheap next to the walking.
fn bench_qos(c: &mut Criterion) {
    use mto_qos::{plan_epoch, BudgetLedger, CostPredictor, LiveJob, PlannerConfig};
    use mto_serve::scheduler::SchedulePolicy;
    use mto_serve::session::{AlgoSpec, JobSpec};

    let mut group = c.benchmark_group("micro/qos");
    group.sample_size(50);
    group.measurement_time(Duration::from_secs(2));

    // A warm store over the mini-Epinions graph for coverage lookups.
    let graph = mto_bench::mini_epinions_graph(40);
    let mut client = CachedClient::new(OsnService::with_defaults(&graph));
    for v in 0..(graph.num_nodes() as u32 / 2) {
        client.query(NodeId(v)).expect("node exists");
    }
    let store = HistoryStore::from_client(&client);
    let jobs: Vec<JobSpec> = (0..64)
        .map(|i: u32| JobSpec {
            id: format!("j{i}"),
            algo: AlgoSpec::Mto(MtoConfig { seed: i as u64 + 1, ..Default::default() }),
            start: NodeId(i % graph.num_nodes() as u32),
            step_budget: 1_000 + i as usize * 17,
            deadline: (i % 3 == 0).then_some(30.0 + i as f64),
            ess: None,
        })
        .collect();

    group.throughput(Throughput::Elements(jobs.len() as u64));
    group.bench_function("predict-64-jobs-warm", |b| {
        let predictor = CostPredictor::new(Some(graph.num_nodes()));
        b.iter(|| {
            let total: u64 = jobs.iter().map(|j| predictor.predict_queries(j, Some(&store))).sum();
            std::hint::black_box(total)
        })
    });

    let predictor = CostPredictor::new(Some(graph.num_nodes()));
    let predicted: Vec<u64> = jobs.iter().map(|j| predictor.predict_queries(j, None)).collect();
    group.bench_function("ledger-split-charge-rebalance-64", |b| {
        b.iter(|| {
            let mut ledger = BudgetLedger::split(50_000, &predicted);
            for (i, &p) in predicted.iter().enumerate() {
                ledger.charge(i, p / 2 + i as u64);
            }
            let claims: Vec<(usize, u64)> = (0..8).map(|i| (i * 7, 40)).collect();
            std::hint::black_box(ledger.rebalance(&[1, 3, 5], &claims))
        })
    });

    let live: Vec<LiveJob> = jobs
        .iter()
        .enumerate()
        .map(|(i, j)| LiveJob {
            remaining_steps: j.step_budget / 2,
            deadline: j.deadline,
            starved_epochs: (i % 6) as u32,
            suspended: i % 11 == 0,
        })
        .collect();
    group.bench_function("edf-plan-epoch-64", |b| {
        let config = PlannerConfig { quantum: 64, ..Default::default() };
        b.iter(|| {
            std::hint::black_box(plan_epoch(SchedulePolicy::EarliestDeadlineFirst, &config, &live))
        })
    });
    group.finish();
}

/// The observability primitives, one at a time: what a single counter
/// bump, histogram record, span enter/exit, and disabled-sink check
/// cost. These are the per-event prices behind the BENCH_7 claim that
/// instrumentation is hot-path-safe.
fn bench_obs(c: &mut Criterion) {
    use mto_obs::{Histogram, MetricsRegistry, TraceSink};

    let mut group = c.benchmark_group("micro/obs");
    group.sample_size(50);
    group.measurement_time(Duration::from_secs(2));
    const OPS: usize = 1_024;
    group.throughput(Throughput::Elements(OPS as u64));

    group.bench_function("counter-bump-1k", |b| {
        let mut reg = MetricsRegistry::new();
        b.iter(|| {
            for i in 0..OPS as u64 {
                reg.inc("steps", i & 7);
            }
            std::hint::black_box(reg.counter("steps"))
        })
    });

    group.bench_function("histogram-record-1k", |b| {
        let mut hist = Histogram::new();
        b.iter(|| {
            for i in 0..OPS as u64 {
                hist.record(i.wrapping_mul(2_654_435_761) & 0xFFFF);
            }
            std::hint::black_box(hist.count())
        })
    });

    // Span pairs on a fresh sink each iteration: the sink grows by one
    // record per event, so reuse across iterations would measure a
    // reallocating Vec, not the enter/exit path.
    group.bench_function("span-enter-exit-1k", |b| {
        b.iter(|| {
            let mut sink = TraceSink::new();
            for i in 0..(OPS as u64 / 2) {
                sink.enter(i, "span");
                sink.exit(i, 1);
            }
            std::hint::black_box(sink.len())
        })
    });

    // The disabled configuration every hot path actually runs: an
    // `Option<&mut TraceSink>` that is `None`, checked per event.
    group.bench_function("no-op-sink-1k", |b| {
        let mut sink: Option<TraceSink> = None;
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..OPS as u64 {
                if let Some(s) = sink.as_mut() {
                    s.point(i, "step", i);
                } else {
                    acc = acc.wrapping_add(i);
                }
            }
            std::hint::black_box(acc)
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_walk_steps,
    bench_kernels,
    bench_cache_lookup,
    bench_history_codec,
    bench_merge,
    bench_pipeline,
    bench_qos,
    bench_obs,
    bench_spectral
);
criterion_main!(benches);
