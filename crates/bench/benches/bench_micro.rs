//! Micro-benchmarks of the hot kernels: walker steps, the removal
//! criterion, common-neighbor intersection, overlay operations, and the
//! spectral solvers.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::rewire::{removal_criterion, OverlayDelta};
use mto_core::walk::{MetropolisHastingsWalk, MhrwConfig, SimpleRandomWalk, SrwConfig, Walker};
use mto_graph::generators::paper_barbell;
use mto_graph::{CsrGraph, NodeId};
use mto_osn::{CachedClient, OsnService};
use mto_spectral::jacobi::{jacobi_eigen, JacobiOptions};
use mto_spectral::power::{slem_power_iteration, PowerIterationOptions};
use mto_spectral::transition::symmetrized_transition;

fn bench_walk_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/walk-steps");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(1_000));

    let graph = mto_bench::mini_epinions_graph(40);

    group.bench_function("srw-1k-steps", |b| {
        b.iter(|| {
            let service = OsnService::with_defaults(&graph);
            let mut w = SimpleRandomWalk::new(
                CachedClient::new(service),
                NodeId(0),
                SrwConfig { seed: 1, lazy: false },
            )
            .unwrap();
            for _ in 0..1_000 {
                w.step().unwrap();
            }
            std::hint::black_box(w.current())
        })
    });

    group.bench_function("mhrw-1k-steps", |b| {
        b.iter(|| {
            let service = OsnService::with_defaults(&graph);
            let mut w = MetropolisHastingsWalk::new(
                CachedClient::new(service),
                NodeId(0),
                MhrwConfig { seed: 1 },
            )
            .unwrap();
            for _ in 0..1_000 {
                w.step().unwrap();
            }
            std::hint::black_box(w.current())
        })
    });

    group.bench_function("mto-1k-steps", |b| {
        b.iter(|| {
            let service = OsnService::with_defaults(&graph);
            let mut w =
                MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default())
                    .unwrap();
            for _ in 0..1_000 {
                w.step().unwrap();
            }
            std::hint::black_box(w.current())
        })
    });

    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/kernels");
    group.sample_size(50);
    group.measurement_time(Duration::from_secs(2));

    let graph = mto_bench::mini_epinions_graph(40);

    group.bench_function("removal-criterion-1k-calls", |b| {
        b.iter(|| {
            let mut fired = 0usize;
            for i in 0..1_000usize {
                if removal_criterion(i % 12, 3 + i % 9, 3 + (i * 7) % 11) {
                    fired += 1;
                }
            }
            std::hint::black_box(fired)
        })
    });

    group.bench_function("common-neighbors-all-edges", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for e in graph.edges() {
                total += graph.common_neighbor_count(e.small(), e.large());
            }
            std::hint::black_box(total)
        })
    });

    group.bench_function("csr-freeze", |b| {
        b.iter(|| std::hint::black_box(CsrGraph::from_graph(&graph).num_edges()))
    });

    group.bench_function("overlay-delta-1k-ops", |b| {
        b.iter(|| {
            let mut delta = OverlayDelta::new();
            for i in 0..1_000u32 {
                let (u, v) = (NodeId(i % 97), NodeId((i * 13 + 1) % 97));
                if u == v {
                    continue;
                }
                if i % 3 == 0 {
                    delta.add_edge(u, v);
                } else {
                    delta.remove_edge(u, v);
                }
            }
            std::hint::black_box(delta.num_removed() + delta.num_added())
        })
    });

    group.finish();
}

fn bench_spectral(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/spectral");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    let barbell = paper_barbell();

    group.bench_function("jacobi-full-spectrum-n22", |b| {
        let s = symmetrized_transition(&barbell);
        b.iter(|| std::hint::black_box(jacobi_eigen(&s, JacobiOptions::default()).slem()))
    });

    let graph = mto_bench::mini_epinions_graph(40);
    group.bench_function("power-iteration-slem-n650", |b| {
        b.iter(|| {
            std::hint::black_box(
                slem_power_iteration(&graph, PowerIterationOptions::default()).slem,
            )
        })
    });

    group.bench_function("sweep-conductance-n650", |b| {
        b.iter(|| std::hint::black_box(mto_spectral::conductance::sweep_conductance(&graph).0))
    });

    group.finish();
}

criterion_group!(benches, bench_walk_steps, bench_kernels, bench_spectral);
criterion_main!(benches);
