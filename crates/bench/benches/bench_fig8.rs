//! Bench for Fig 8: the KL-divergence measurement kernel (visit counting
//! plus symmetric KL) after a sampling run.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mto_core::diagnostics::kl::{symmetric_kl, VisitCounter, DEFAULT_SMOOTHING};
use mto_core::estimate::Aggregate;
use mto_experiments::driver::{run_converged, Algorithm, RunProtocol};
use mto_graph::NodeId;
use mto_osn::OsnService;
use mto_spectral::stationary_distribution;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    let graph =
        mto_experiments::build_dataset(&mto_experiments::DatasetSpec::epinions().scaled_down(40));
    let service = Arc::new(OsnService::with_defaults(&graph));
    let pi = stationary_distribution(&graph);

    // Pre-run the walk once; bench the bias measurement separately from
    // the sampling.
    let mut walker = Algorithm::Srw.build(service.clone(), NodeId(0), 3).unwrap();
    let run = run_converged(
        walker.as_mut(),
        &service,
        Aggregate::AverageDegree,
        RunProtocol { geweke_threshold: 0.2, max_burn_in_steps: 5_000, sample_steps: 4_000 },
    )
    .unwrap();

    group.bench_function("kl-measurement-4000-samples", |b| {
        b.iter(|| {
            let mut counter = VisitCounter::new(pi.len());
            for (s, _) in &run.samples {
                counter.record(s.node);
            }
            let sampled = counter.distribution();
            std::hint::black_box(symmetric_kl(&pi, &sampled, DEFAULT_SMOOTHING))
        })
    });

    group.bench_function("srw-sampling-run", |b| {
        b.iter(|| {
            let mut walker = Algorithm::Srw.build(service.clone(), NodeId(0), 3).unwrap();
            let run = run_converged(
                walker.as_mut(),
                &service,
                Aggregate::AverageDegree,
                RunProtocol {
                    geweke_threshold: 0.3,
                    max_burn_in_steps: 2_000,
                    sample_steps: 2_000,
                },
            )
            .unwrap();
            std::hint::black_box(run.total_cost)
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
