//! Bench for Fig 11: the Google-Plus-like estimation pipeline at reduced
//! scale — both the degree aggregate and the profile-attribute aggregate.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mto_core::estimate::Aggregate;
use mto_experiments::driver::{run_converged, Algorithm, RunProtocol};
use mto_graph::NodeId;
use mto_osn::OsnService;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    let graph = mto_experiments::build_dataset(
        &mto_experiments::DatasetSpec::google_plus().scaled_down(120),
    );
    let service = Arc::new(OsnService::with_defaults(&graph));
    let protocol =
        RunProtocol { geweke_threshold: 0.2, max_burn_in_steps: 5_000, sample_steps: 1_500 };

    for (label, aggregate) in [
        ("avg-degree", Aggregate::AverageDegree),
        ("avg-descr-len", Aggregate::AverageDescriptionLength),
    ] {
        for alg in [Algorithm::Srw, Algorithm::Mto] {
            group.bench_with_input(
                BenchmarkId::new(label, alg.label()),
                &(alg, aggregate),
                |b, &(alg, aggregate)| {
                    b.iter(|| {
                        let mut walker = alg.build(service.clone(), NodeId(0), 11).unwrap();
                        let run =
                            run_converged(walker.as_mut(), &service, aggregate, protocol).unwrap();
                        std::hint::black_box(run.final_estimate())
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
