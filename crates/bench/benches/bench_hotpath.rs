//! The hot-path ledger bench: warm-cache walker throughput.
//!
//! Unlike `bench_micro`'s cold-start `walk-steps` group (which bills
//! service construction and first-touch crawling into every iteration),
//! this target measures the regime ROADMAP item 4 cares about: a fully
//! warmed cache, where every step is pure replay — the paper's
//! "duplicate queries are free" limit, and the regime Walk-Not-Wait and
//! history reuse both assume is effectively free.

use std::collections::BTreeMap;
use std::path::Path;
use std::time::Duration;

use criterion::{criterion_group, Criterion, Throughput};
use mto_bench::ledger::{Ledger, LedgerEntry};
use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::walk::{
    MetropolisHastingsWalk, MhrwConfig, RandomJumpWalk, RjConfig, SimpleRandomWalk, SrwConfig,
    Walker,
};
use mto_core::{OverlayDelta, RngBlock};
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService, SharedClient};
use mto_serve::history::HistoryStore;
use mto_serve::session::{AlgoSpec, JobSpec, SamplerSession};

const STEPS: usize = 1_000;

/// A `CachedClient` with every node of the scale-40 Epinions stand-in
/// already queried: steps against it never touch the service.
fn warm_client(graph: &mto_graph::Graph) -> CachedClient<OsnService> {
    let mut client = CachedClient::new(OsnService::with_defaults(graph));
    for v in 0..graph.num_nodes() as u32 {
        client.query(NodeId(v)).expect("node exists");
    }
    client
}

fn bench_walker_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/walker-steps");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(STEPS as u64));

    let graph = mto_bench::mini_epinions_graph(40);

    // Walkers are constructed once against a warm cache and keep
    // stepping across iterations: the steady state a long crawl lives in.
    let mut srw =
        SimpleRandomWalk::new(warm_client(&graph), NodeId(0), SrwConfig { seed: 1, lazy: false })
            .unwrap();
    group.bench_function("srw-warm-1k", |b| {
        b.iter(|| {
            for _ in 0..STEPS {
                srw.step().unwrap();
            }
            std::hint::black_box(srw.current())
        })
    });

    let mut mhrw =
        MetropolisHastingsWalk::new(warm_client(&graph), NodeId(0), MhrwConfig { seed: 1 })
            .unwrap();
    group.bench_function("mhrw-warm-1k", |b| {
        b.iter(|| {
            for _ in 0..STEPS {
                mhrw.step().unwrap();
            }
            std::hint::black_box(mhrw.current())
        })
    });

    let mut rj = RandomJumpWalk::new(
        warm_client(&graph),
        NodeId(0),
        RjConfig { seed: 1, ..Default::default() },
    )
    .unwrap();
    group.bench_function("rj-warm-1k", |b| {
        b.iter(|| {
            for _ in 0..STEPS {
                rj.step().unwrap();
            }
            std::hint::black_box(rj.current())
        })
    });

    let mut mto = MtoSampler::new(warm_client(&graph), NodeId(0), MtoConfig::default()).unwrap();
    group.bench_function("mto-warm-1k", |b| {
        b.iter(|| {
            for _ in 0..STEPS {
                mto.step().unwrap();
            }
            std::hint::black_box(mto.current())
        })
    });

    // The serve path: the same MTO walk through `SessionWalker` over a
    // `SharedClient` (one mutex acquisition per fetch) — what `mto_serve
    // run` and the fleet shards actually execute.
    let shared = SharedClient::new(warm_client(&graph));
    let spec = JobSpec {
        id: "bench".into(),
        algo: AlgoSpec::Mto(MtoConfig::default()),
        start: NodeId(0),
        step_budget: usize::MAX / 2,
        deadline: None,
        ess: None,
    };
    let mut session = SamplerSession::create(shared, spec).unwrap();
    group.bench_function("session-mto-warm-1k", |b| {
        b.iter(|| {
            session.advance(STEPS).unwrap();
            std::hint::black_box(session.steps_taken())
        })
    });

    group.finish();
}

/// Arena lookup vs the pre-PR slot map: sum every cached neighborhood.
///
/// PR 2's `CachedClient` kept one heap `Vec<NodeId>` per cached node
/// behind an `Option` slot; the CSR arena stores all neighbor lists in
/// one contiguous buffer behind `(offset, len)` spans. Both sides below
/// do the identical scan, so the difference is pure representation cost
/// (pointer chase + scattered lines vs contiguous spans).
fn bench_arena(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/arena");
    group.sample_size(25);
    group.measurement_time(Duration::from_secs(2));

    let graph = mto_bench::mini_epinions_graph(40);
    let client = warm_client(&graph);
    let n = graph.num_nodes() as u32;
    let slots: Vec<Option<Vec<NodeId>>> =
        (0..n).map(|v| client.neighbors_of(NodeId(v)).map(<[NodeId]>::to_vec)).collect();

    group.bench_function("arena-borrowed-scan", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in 0..n {
                if let Some(nbrs) = client.neighbors_of(NodeId(v)) {
                    acc += nbrs.len() + nbrs.iter().map(|x| x.index()).sum::<usize>();
                }
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("slotmap-owned-scan", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for slot in slots.iter().flatten() {
                acc += slot.len() + slot.iter().map(|x| x.index()).sum::<usize>();
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

/// `adjust_neighbors_into` (reused scratch) vs the allocating
/// `adjust_neighbors`, over every node of the stand-in graph against a
/// delta that has rewired a sample of edges.
fn bench_overlay_adjust(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/overlay-adjust");
    group.sample_size(25);
    group.measurement_time(Duration::from_secs(2));

    let graph = mto_bench::mini_epinions_graph(40);
    let mut delta = OverlayDelta::new();
    // Rewire a deterministic sample so ~10% of nodes are delta-touched.
    for v in graph.nodes() {
        if v.index() % 10 != 0 {
            continue;
        }
        let nbrs = graph.neighbors(v);
        if let Some(&w) = nbrs.first() {
            delta.remove_edge(v, w);
        }
        delta.add_edge(v, NodeId((v.index() as u32).wrapping_add(1) % graph.num_nodes() as u32));
    }

    group.bench_function("adjust-into-all-nodes", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            let mut acc = 0usize;
            for v in graph.nodes() {
                delta.adjust_neighbors_into(v, graph.neighbors(v), &mut buf);
                acc += buf.len();
            }
            std::hint::black_box(acc)
        })
    });
    group.bench_function("adjust-alloc-all-nodes", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for v in graph.nodes() {
                acc += delta.adjust_neighbors(v, graph.neighbors(v)).len();
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

/// Batched [`RngBlock`] vs the shim's call-by-call `StdRng` — identical
/// draw stream (the regression tests prove bit-identity; this measures
/// the refill amortization).
fn bench_rng(c: &mut Criterion) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    let mut group = c.benchmark_group("hotpath/rng");
    group.sample_size(25);
    group.measurement_time(Duration::from_secs(2));
    const DRAWS: usize = 4096;
    group.throughput(Throughput::Elements(DRAWS as u64));

    let mut block = RngBlock::seed_from_u64(7);
    group.bench_function("block-4k-draws", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc = acc.wrapping_add(block.gen_range(0..1024u64));
            }
            std::hint::black_box(acc)
        })
    });
    let mut plain = StdRng::seed_from_u64(7);
    group.bench_function("call-by-call-4k-draws", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..DRAWS {
                acc = acc.wrapping_add(plain.gen_range(0..1024u64));
            }
            std::hint::black_box(acc)
        })
    });
    group.finish();
}

/// Wall-clock of the reduced fleet sweep (9 coordinator runs). The
/// *virtual* makespan is part of the determinism contract and is printed
/// for CI to grep: hot-path work may only move the wall-clock.
fn bench_fleet(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/fleet");
    group.sample_size(5);
    group.measurement_time(Duration::from_secs(10));

    let config = mto_experiments::FleetSweepConfig::reduced();
    let mut makespan = f64::NAN;
    group.bench_function("reduced-sweep", |b| {
        b.iter(|| {
            let (result, _) = mto_experiments::fleet::run(&config);
            makespan = result.rows.last().map_or(f64::NAN, |r| r.makespan_secs);
            std::hint::black_box(result.deterministic)
        })
    });
    group.finish();
    println!("fleet-makespan virtual-secs {makespan:.3} (deterministic: invariant under hot-path changes)");
}

fn bench_codec_10k(c: &mut Criterion) {
    let mut group = c.benchmark_group("hotpath/codec-10k");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(3));

    // A 10k-response store: the satellite bar for the encode fast path.
    let graph = mto_bench::mini_epinions_graph(2);
    let n = (graph.num_nodes() as u32).min(10_000);
    let mut client = CachedClient::new(OsnService::with_defaults(&graph));
    for v in 0..n {
        client.query(NodeId(v)).expect("node exists");
    }
    let store = HistoryStore::from_client(&client);
    let encoded = store.encode();
    group.throughput(Throughput::Bytes(encoded.len() as u64));

    group.bench_function("encode-10k-store", |b| {
        b.iter(|| std::hint::black_box(store.encode().len()))
    });
    group.bench_function("decode-10k-store", |b| {
        b.iter(|| std::hint::black_box(HistoryStore::decode(&encoded).unwrap().num_responses()))
    });

    group.finish();
}

/// The observability overhead claims, measured head-on. The same warm
/// MTO walk as `walker-steps/mto-warm-1k`, once recording each step
/// into an enabled histogram (with a span per batch — the granularity
/// the fleet actually instruments at), and once against the disabled
/// `Option` sink the serving stack checks when no `trace`/`metrics`
/// directive is present; plus the quality plane's enabled cost on the
/// serve path. The disabled numbers must sit within noise of their
/// PR-9 baselines — that comparison is what `BENCH_10.json` records
/// (the always-on `ScanProbe` is part of both sides).
fn bench_obs_overhead(c: &mut Criterion) {
    use mto_obs::{Histogram, TraceSink};

    let mut group = c.benchmark_group("hotpath/obs");
    group.sample_size(30);
    group.measurement_time(Duration::from_secs(3));
    group.throughput(Throughput::Elements(STEPS as u64));

    let graph = mto_bench::mini_epinions_graph(40);

    let mut off = MtoSampler::new(warm_client(&graph), NodeId(0), MtoConfig::default()).unwrap();
    let mut sink: Option<TraceSink> = None;
    group.bench_function("mto-warm-1k-disabled-sink", |b| {
        b.iter(|| {
            for i in 0..STEPS as u64 {
                off.step().unwrap();
                // black_box keeps the branch honest: the optimizer must
                // not fold away a provably-None local.
                if let Some(s) = std::hint::black_box(&mut sink).as_mut() {
                    s.point(i, "step", 1);
                }
            }
            std::hint::black_box(off.current())
        })
    });

    let mut on = MtoSampler::new(warm_client(&graph), NodeId(0), MtoConfig::default()).unwrap();
    let mut hist = Histogram::new();
    group.bench_function("mto-warm-1k-instrumented", |b| {
        b.iter(|| {
            let mut trace = TraceSink::new();
            trace.enter(0, "batch");
            for _ in 0..STEPS {
                on.step().unwrap();
                hist.record(1);
            }
            trace.exit(0, STEPS as u64);
            std::hint::black_box((on.current(), trace.len()))
        })
    });

    // The quality plane's enabled cost at the granularity the fleet pays
    // it: advance a serve-path session one quantum, drain the fresh
    // degree series through the cursor observer, and feed the streaming
    // estimators — head-to-head against `session-mto-warm-1k`, which is
    // the identical walk with the plane off.
    use mto_obs::quality::QualityAccumulator;
    use mto_serve::session::SampleObserver;
    let shared = SharedClient::new(warm_client(&graph));
    let spec = JobSpec {
        id: "bench".into(),
        algo: AlgoSpec::Mto(MtoConfig::default()),
        start: NodeId(0),
        step_budget: usize::MAX / 2,
        deadline: None,
        ess: None,
    };
    let mut session = SamplerSession::create(shared, spec).unwrap();
    let mut observer = SampleObserver::new();
    let mut accumulator = QualityAccumulator::new();
    accumulator.register("bench", Some(u64::MAX));
    group.bench_function("session-mto-warm-1k-quality", |b| {
        b.iter(|| {
            session.advance(STEPS).unwrap();
            let samples = observer.drain(&session);
            accumulator.observe("bench", &samples);
            // The scheduler polls ESS and the SLO latch at every barrier.
            let q = accumulator.job("bench").expect("registered above");
            std::hint::black_box((q.ess(), q.met()))
        })
    });

    group.finish();
}

criterion_group!(
    benches,
    bench_walker_steps,
    bench_arena,
    bench_overlay_adjust,
    bench_rng,
    bench_codec_10k,
    bench_obs_overhead,
    bench_fleet,
);

/// Pre-PR baseline: the `BENCH_9.json` measurements, taken on the same
/// container at the PR-9 commit (`cargo bench --bench bench_hotpath`).
/// The overhead gate this PR carries: the quality estimators are
/// compiled into the serving stack, so `session-mto-warm-1k` (quality
/// plane off — the default) staying within noise of this figure is the
/// evidence the quality plane costs nothing until a `quality` directive
/// enables it; `session-mto-warm-1k-quality` (new, no baseline) prices
/// the enabled plane at fleet granularity — one drain + estimator feed
/// per quantum.
fn baseline() -> BTreeMap<String, f64> {
    [
        ("hotpath/walker-steps/srw-warm-1k", 20_378.4),
        ("hotpath/walker-steps/mhrw-warm-1k", 28_506.56),
        ("hotpath/walker-steps/rj-warm-1k", 23_859.88),
        ("hotpath/walker-steps/mto-warm-1k", 127_461.56),
        ("hotpath/walker-steps/session-mto-warm-1k", 161_815.36),
        ("hotpath/arena/arena-borrowed-scan", 2_218.4),
        ("hotpath/arena/slotmap-owned-scan", 1_980.04),
        ("hotpath/overlay-adjust/adjust-into-all-nodes", 6_339.36),
        ("hotpath/overlay-adjust/adjust-alloc-all-nodes", 14_117.72),
        ("hotpath/rng/block-4k-draws", 10_773.2),
        ("hotpath/rng/call-by-call-4k-draws", 4_335.76),
        ("hotpath/codec-10k/encode-10k-store", 2_039_181.6),
        ("hotpath/codec-10k/decode-10k-store", 4_572_175.0),
        ("hotpath/fleet/reduced-sweep", 43_801_818.0),
        ("hotpath/obs/mto-warm-1k-disabled-sink", 137_909.44),
        ("hotpath/obs/mto-warm-1k-instrumented", 126_852.12),
    ]
    .into_iter()
    .map(|(k, v)| (k.to_owned(), v))
    .collect()
}

// Custom main (instead of `criterion_main!`): after the groups run, drain
// the shim's estimate registry and serialize the committed perf ledger.
fn main() {
    // `cargo test` may invoke bench binaries with `--test`; a test pass
    // must not pay for a full measurement run.
    if std::env::args().any(|a| a == "--test") {
        return;
    }
    benches();
    let current: Vec<LedgerEntry> = criterion::drain_estimates()
        .into_iter()
        .map(|e| LedgerEntry { id: e.id, ns_per_iter: e.ns_per_iter, iters: e.iters })
        .collect();
    let ledger = Ledger {
        pr: 10,
        note: "baseline = BENCH_9.json (pre-PR commit; measured on a \
               different container — this VM runs every bench, including \
               untouched pure-compute ones like rng/block-4k-draws, \
               ~15-25% slower, so cross-ledger ratios carry that offset); \
               ns_per_iter = latest `cargo bench --bench bench_hotpath` \
               run; the valid gate is the same-run pair: \
               session-mto-warm-1k-quality (enabled plane: one cursor \
               drain + O(1)-memory estimator feed per quantum, never per \
               step) vs session-mto-warm-1k (plane off, estimators \
               compiled in) — within 2% on average across repeated runs, \
               inside this VM's run-to-run wobble"
            .to_owned(),
        baseline: baseline(),
    };
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_10.json");
    ledger.write(&path, &current).expect("write perf ledger");
    println!("perf-ledger: wrote {}", path.display());
}
