//! Bench for Fig 9: one Geweke-threshold point of the sweep (burn-in to
//! convergence at a given threshold).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mto_core::estimate::Aggregate;
use mto_experiments::driver::{run_converged, Algorithm, RunProtocol};
use mto_graph::NodeId;
use mto_osn::OsnService;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    let graph =
        mto_experiments::build_dataset(&mto_experiments::DatasetSpec::slashdot_b().scaled_down(60));
    let service = Arc::new(OsnService::with_defaults(&graph));

    for threshold in [0.1f64, 0.4, 0.8] {
        group.bench_with_input(
            BenchmarkId::new("geweke-threshold", format!("{threshold}")),
            &threshold,
            |b, &threshold| {
                b.iter(|| {
                    let mut walker = Algorithm::Mto.build(service.clone(), NodeId(0), 5).unwrap();
                    let run = run_converged(
                        walker.as_mut(),
                        &service,
                        Aggregate::AverageDegree,
                        RunProtocol {
                            geweke_threshold: threshold,
                            max_burn_in_steps: 8_000,
                            sample_steps: 500,
                        },
                    )
                    .unwrap();
                    std::hint::black_box(run.burn_in_cost)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
