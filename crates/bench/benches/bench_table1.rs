//! Bench for Table I: dataset synthesis and effective-diameter
//! measurement at reduced scale.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use mto_experiments::{build_dataset, DatasetSpec};
use mto_graph::algo::{effective_diameter, EffectiveDiameterOptions};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    group.bench_function("build-epinions-1/20", |b| {
        b.iter(|| {
            let g = build_dataset(&DatasetSpec::epinions().scaled_down(20));
            std::hint::black_box(g.num_edges())
        })
    });

    let g = build_dataset(&DatasetSpec::slashdot_b().scaled_down(20));
    group.bench_function("effective-diameter-96-sources", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(effective_diameter(
                &g,
                EffectiveDiameterOptions { quantile: 0.9, num_sources: 96 },
                &mut rng,
            ))
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
