//! Bench for Fig 7: one converged estimation run per algorithm on the
//! reduced Epinions stand-in.

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mto_core::estimate::Aggregate;
use mto_experiments::driver::{run_converged, Algorithm, RunProtocol};
use mto_graph::NodeId;
use mto_osn::OsnService;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig7");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(5));

    let graph =
        mto_experiments::build_dataset(&mto_experiments::DatasetSpec::epinions().scaled_down(40));
    let service = Arc::new(OsnService::with_defaults(&graph));
    let protocol =
        RunProtocol { geweke_threshold: 0.2, max_burn_in_steps: 5_000, sample_steps: 1_000 };

    for alg in Algorithm::all() {
        group.bench_with_input(BenchmarkId::new("converged-run", alg.label()), &alg, |b, &alg| {
            b.iter(|| {
                let mut walker = alg.build(service.clone(), NodeId(0), 7).expect("valid start");
                let run =
                    run_converged(walker.as_mut(), &service, Aggregate::AverageDegree, protocol)
                        .expect("cannot fail");
                std::hint::black_box(run.total_cost)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
