//! # mto-serve — the session-based sampling service layer
//!
//! Every experiment below this crate is one-shot: build a client, walk,
//! estimate, throw the cache and overlay away. This crate turns the
//! samplers into a **long-lived service**, the deployment shape the
//! paper's cost model rewards (every unique query is precious, so crawl
//! history must outlive the job that paid for it — cf. "Leveraging
//! History for Faster Sampling of Online Social Networks",
//! arXiv:1505.00079, and the service framing of "Walk, Not Wait",
//! arXiv:1410.7833):
//!
//! * [`session::SamplerSession`] — a resumable lifecycle (create → step in
//!   increments → pause → snapshot → resume) around any sampler, with
//!   verified event-sourced resume;
//! * [`history::HistoryStore`] — a versioned, checksummed, hand-rolled
//!   text codec persisting the query cache, remembered degrees, and
//!   overlay deltas, so later runs **warm-start** and only pay for nodes
//!   nobody has visited;
//! * [`scheduler::JobScheduler`] — many heterogeneous jobs stepped in
//!   fair round-robin quanta on scoped worker threads over one shared
//!   client and budget;
//! * [`request`] — the request-file format the `mto_serve` binary serves.
//!
//! ## Example: pause, persist, resume
//!
//! ```
//! use mto_core::mto::MtoConfig;
//! use mto_core::walk::Walker;
//! use mto_graph::generators::paper_barbell;
//! use mto_graph::NodeId;
//! use mto_osn::{CachedClient, OsnService, SharedClient};
//! use mto_serve::session::{AlgoSpec, JobSpec, SamplerSession, SessionSnapshot};
//!
//! let client = || {
//!     SharedClient::new(CachedClient::new(OsnService::with_defaults(&paper_barbell())))
//! };
//! let job = JobSpec {
//!     id: "demo".into(),
//!     algo: AlgoSpec::Mto(MtoConfig::default()),
//!     start: NodeId(0),
//!     step_budget: 200,
//!     deadline: None,
//!     ess: None,
//! };
//! let mut session = SamplerSession::create(client(), job).unwrap();
//! session.advance(80).unwrap();
//! let frozen = session.snapshot().encode(); // → disk, another process…
//!
//! let thawed = SessionSnapshot::decode(&frozen).unwrap();
//! let mut resumed = SamplerSession::restore(client(), &thawed).unwrap();
//! resumed.run_to_completion().unwrap();
//! assert_eq!(resumed.walker().history().len(), 201);
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod history;
pub mod journal;
pub mod request;
pub mod scheduler;
pub mod session;

pub use error::{HistoryCodecError, Result, ServeError};
pub use history::{CrawlCounters, HistoryStore, MergeOutcome};
pub use journal::{HistoryJournal, JournalRecovery};
pub use request::{NetworkSpec, ServeRequest};
pub use scheduler::{
    finalize_session, JobOutcome, JobScheduler, SchedulePolicy, SchedulerConfig, ServeReport,
};
pub use session::{
    format_job_line, parse_job_line, AlgoSpec, JobSpec, SamplerSession, SessionSnapshot,
    SessionState, SessionWalker,
};
