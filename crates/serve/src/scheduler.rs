//! The multi-job scheduler: many sessions, one cache, one budget.
//!
//! Generalizes `mto_core::parallel::run_parallel_mto` — which runs `k`
//! *identical-length MTO walks* to completion — into a service-shaped
//! component: heterogeneous jobs (any algorithm, any per-job step budget),
//! **fair round-robin stepping** in fixed quanta so no job starves while a
//! long one burns in, an optional **global unique-query budget** that
//! stops admission when the provider's quota is spent, and aggregated
//! [`RewireStats`] across every rewiring job.
//!
//! Workers run on [`std::thread::scope`] threads over one
//! [`SharedClient`], so a neighborhood paid for by one job is free for
//! all. Results are deterministic regardless of thread interleaving for
//! the same reason `run_parallel_mto`'s are: walkers keep private
//! overlays and RNGs, and cached responses are identical no matter which
//! job paid for them first. (The one exception: *which* job a global
//! query budget interrupts first can vary with scheduling; per-job step
//! budgets are always deterministic.)

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};

use mto_core::mto::{RewireStats, ScanProbe};
use mto_core::walk::Walker;
use mto_graph::NodeId;
use mto_obs::{WallClockRegistry, WallClockScope, WallKey, WallStats};
use mto_osn::{CachedClient, QueryClient, SharedClient, SocialNetworkInterface, VirtualClock};
use parking_lot::Mutex;

use crate::error::{Result, ServeError};
use crate::history::HistoryStore;
use crate::session::{JobSpec, SamplerSession, SessionState};

/// How the scheduler divides stepping quanta among jobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Every job gets the same quantum per turn — strict fairness.
    #[default]
    RoundRobin,
    /// A job's quantum scales with its share of the total step budget:
    /// heavyweight jobs take proportionally longer turns, so all jobs
    /// need roughly the *same number of turns* and finish together
    /// instead of the light ones idling while the heavy one burns in
    /// alone. Results are identical to round-robin (walkers are
    /// deterministic regardless of stepping pattern); only turn
    /// granularity changes.
    BudgetProportional,
    /// Earliest-deadline-first with aging: the next quantum always goes
    /// to the queued job with the smallest [`JobSpec::deadline`]
    /// (best-effort jobs, with no deadline, run after every deadline
    /// job), ties broken by submission index. A job passed over
    /// [`EDF_AGING_TURNS`] times is promoted ahead of every deadline so
    /// best-effort work cannot starve. Results are identical to
    /// round-robin (walkers are deterministic regardless of stepping
    /// pattern); only *when* each job's steps happen — and therefore its
    /// virtual finish time — changes.
    EarliestDeadlineFirst,
}

/// How many times an EDF-queued job may be passed over before aging
/// promotes it ahead of every deadline (the starvation guard of
/// [`SchedulePolicy::EarliestDeadlineFirst`]).
pub const EDF_AGING_TURNS: u32 = 16;

impl SchedulePolicy {
    /// Wire name (`round-robin` / `budget-proportional` / `edf`).
    pub fn name(&self) -> &'static str {
        match self {
            SchedulePolicy::RoundRobin => "round-robin",
            SchedulePolicy::BudgetProportional => "budget-proportional",
            SchedulePolicy::EarliestDeadlineFirst => "edf",
        }
    }

    /// Parses the wire name (`edf` also answers to its long form).
    pub fn parse(text: &str) -> std::result::Result<Self, String> {
        match text {
            "round-robin" => Ok(SchedulePolicy::RoundRobin),
            "budget-proportional" => Ok(SchedulePolicy::BudgetProportional),
            "edf" | "earliest-deadline-first" => Ok(SchedulePolicy::EarliestDeadlineFirst),
            other => Err(format!("unknown schedule policy {other:?}")),
        }
    }
}

/// Scheduler tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SchedulerConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Steps one session takes before yielding its worker — the fairness
    /// quantum of the round-robin (the *base* quantum under
    /// [`SchedulePolicy::BudgetProportional`]).
    pub quantum: usize,
    /// Optional cap on total unique queries across all jobs; jobs caught
    /// over the cap are finalized early with `completed = false`.
    pub global_query_budget: Option<u64>,
    /// How quanta are apportioned among heterogeneous jobs.
    pub policy: SchedulePolicy,
}

impl Default for SchedulerConfig {
    fn default() -> Self {
        SchedulerConfig {
            workers: 4,
            quantum: 64,
            global_query_budget: None,
            policy: SchedulePolicy::RoundRobin,
        }
    }
}

/// The per-job quantum under a policy: the base quantum, scaled by the
/// job's share of the total step budget for
/// [`SchedulePolicy::BudgetProportional`] (never below 1 so every job
/// keeps making progress).
fn effective_quantum(
    policy: SchedulePolicy,
    base: usize,
    job_budget: usize,
    total_budget: usize,
    jobs: usize,
) -> usize {
    match policy {
        SchedulePolicy::RoundRobin | SchedulePolicy::EarliestDeadlineFirst => base.max(1),
        SchedulePolicy::BudgetProportional => {
            if total_budget == 0 {
                return base.max(1); // degenerate all-zero-budget pool
            }
            // Saturating u128 intermediates: step budgets come straight
            // from request files, so no product may be allowed to
            // overflow.
            let scaled =
                (base as u128).saturating_mul(job_budget as u128).saturating_mul(jobs as u128)
                    / (total_budget as u128);
            usize::try_from(scaled).unwrap_or(usize::MAX).max(1)
        }
    }
}

/// What one job produced.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// The job's identifier.
    pub id: String,
    /// Algorithm display name (`"MTO"`, `"SRW"`, …).
    pub algorithm: &'static str,
    /// Steps actually taken.
    pub steps: usize,
    /// Whether the full step budget ran (false = stopped by the global
    /// query budget).
    pub completed: bool,
    /// Final position.
    pub final_node: NodeId,
    /// Every visited position, seed first.
    pub history: Vec<NodeId>,
    /// Rewiring counters, for rewiring samplers.
    pub stats: Option<RewireStats>,
    /// Theorem-3 criterion-scan telemetry, for rewiring samplers
    /// (derived observability — not part of the results contract).
    pub scan: Option<ScanProbe>,
    /// `(proposals, rejections)` for Metropolis–Hastings jobs.
    pub mh: Option<(u64, u64)>,
    /// Self-normalized average-degree estimate over the visit history.
    pub avg_degree_estimate: Option<f64>,
    /// Virtual-clock instant (in the job's shard) at the barrier after
    /// its last step — the figure a [`JobSpec::deadline`] is judged
    /// against. Filled by the `mto-fleet` coordinator; `None` under the
    /// plain scheduler.
    pub finished_secs: Option<f64>,
}

impl JobOutcome {
    /// The one definition of "deadline met" (the CLI's `deadline-met=`
    /// flag and the `deadline` experiment's verdict counts both use it):
    /// the job completed, with a recorded finish instant at or before
    /// `deadline` virtual seconds.
    pub fn deadline_met(&self, deadline: f64) -> bool {
        self.completed && self.finished_secs.is_some_and(|t| t <= deadline)
    }
}

/// Aggregate result of one scheduler run.
#[derive(Clone, Debug)]
pub struct ServeReport {
    /// Per-job outcomes, in submission order.
    pub outcomes: Vec<JobOutcome>,
    /// Unique queries charged to the shared client, total.
    pub total_unique_queries: u64,
    /// Virtual wall-clock seconds elapsed on the scheduler's
    /// [`VirtualClock`] (when one is attached — i.e. the interface
    /// simulates latency/rate limits through `mto-net` or
    /// [`mto_osn::RateLimitedInterface`]): the run's *time* bill
    /// alongside its unique-query bill.
    pub virtual_secs: Option<f64>,
    /// Sum of the rewiring counters across all rewiring jobs.
    pub aggregate_stats: RewireStats,
}

/// Runs many [`SamplerSession`]s concurrently over one shared client.
pub struct JobScheduler<I: SocialNetworkInterface> {
    client: SharedClient<I>,
    config: SchedulerConfig,
    clock: Option<VirtualClock>,
}

impl<I: SocialNetworkInterface + Send + Sync> JobScheduler<I> {
    /// A scheduler over a fresh (cold) client wrapping `interface`.
    pub fn new(interface: I, config: SchedulerConfig) -> Self {
        Self::with_client(SharedClient::new(CachedClient::new(interface)), config)
    }

    /// A scheduler over an existing client (e.g. one that already served
    /// earlier jobs this process).
    pub fn with_client(client: SharedClient<I>, config: SchedulerConfig) -> Self {
        JobScheduler { client, config, clock: None }
    }

    /// Attaches the [`VirtualClock`] the wrapped interface advances, so
    /// reports carry virtual wall-clock alongside unique queries.
    pub fn with_virtual_clock(mut self, clock: VirtualClock) -> Self {
        self.clock = Some(clock);
        self
    }

    /// A scheduler warm-started from a persisted [`HistoryStore`]: jobs
    /// only pay for nodes the history has never seen. Fails when the
    /// history does not belong to this network (see
    /// [`HistoryStore::validate_against`]).
    pub fn warm_start(interface: I, store: &HistoryStore, config: SchedulerConfig) -> Result<Self> {
        Ok(Self::with_client(SharedClient::new(store.warm_start(interface)?), config))
    }

    /// The shared client (e.g. to export history after a run).
    pub fn client(&self) -> &SharedClient<I> {
        &self.client
    }

    /// The per-job quantum this scheduler's policy would assign each of
    /// `jobs` — the same figures [`JobScheduler::run`] uses, exposed so
    /// observability layers can report them without re-deriving policy
    /// math.
    pub fn planned_quanta(&self, jobs: &[JobSpec]) -> Vec<usize> {
        let total_budget: usize =
            jobs.iter().fold(0usize, |acc, j| acc.saturating_add(j.step_budget));
        jobs.iter()
            .map(|j| {
                effective_quantum(
                    self.config.policy,
                    self.config.quantum,
                    j.step_budget,
                    total_budget,
                    jobs.len(),
                )
            })
            .collect()
    }

    /// Runs `jobs` to completion (or to the global query budget) and
    /// collects their outcomes in submission order.
    pub fn run(&self, jobs: Vec<JobSpec>) -> Result<ServeReport> {
        self.run_instrumented(jobs, None)
    }

    /// [`JobScheduler::run`] with the wall-clock telemetry plane: when
    /// `wall` is given, each worker times its `session.advance` calls
    /// and the totals land in the registry as `worker-service` keyed by
    /// worker index. Results are identical to an uninstrumented run —
    /// scopes only observe time around work that runs either way — and
    /// workers accumulate locally, merging once at exit, so the hot loop
    /// takes no extra locks.
    pub fn run_instrumented(
        &self,
        jobs: Vec<JobSpec>,
        wall: Option<&mut WallClockRegistry>,
    ) -> Result<ServeReport> {
        let total = jobs.len();
        // Saturating: step budgets are user input and may sum past usize.
        let total_budget: usize =
            jobs.iter().fold(0usize, |acc, j| acc.saturating_add(j.step_budget));
        // Create sessions up front, in submission order, so start-node
        // queries are charged deterministically. Each job carries its
        // policy-assigned quantum through the queue.
        let mut sessions = Vec::with_capacity(total);
        for (index, spec) in jobs.into_iter().enumerate() {
            let quantum = effective_quantum(
                self.config.policy,
                self.config.quantum,
                spec.step_budget,
                total_budget,
                total,
            );
            let deadline = spec.deadline;
            sessions.push(QueueEntry {
                index,
                quantum,
                deadline,
                skips: 0,
                session: SamplerSession::create(self.client.clone(), spec)?,
            });
        }

        let queue: Mutex<VecDeque<QueueEntry<I>>> = Mutex::new(sessions.into_iter().collect());
        let policy = self.config.policy;
        let done: Mutex<Vec<(usize, JobOutcome)>> = Mutex::new(Vec::with_capacity(total));
        let first_error: Mutex<Option<ServeError>> = Mutex::new(None);
        let finished = AtomicUsize::new(0);
        let budget = self.config.global_query_budget;
        // Wall plane: workers accumulate into private `WallStats` and
        // fold them in here once, after their loop exits.
        let collected: Option<Mutex<WallClockRegistry>> =
            wall.as_ref().map(|_| Mutex::new(WallClockRegistry::new()));

        std::thread::scope(|scope| {
            let (queue, done, first_error, finished, collected) =
                (&queue, &done, &first_error, &finished, &collected);
            for worker in 0..self.config.workers.max(1) {
                scope.spawn(move || {
                    let mut service = WallStats::default();
                    loop {
                        if first_error.lock().is_some() {
                            break;
                        }
                        let item = pop_next(&mut queue.lock(), policy);
                        let QueueEntry { index, quantum, deadline, skips: _, mut session } =
                            match item {
                                Some(s) => s,
                                None => {
                                    if finished.load(Ordering::Acquire) >= total {
                                        break;
                                    }
                                    // Jobs are in flight on other workers
                                    // and may be re-enqueued; don't exit,
                                    // but also don't spin against the
                                    // queue lock while we wait.
                                    std::thread::sleep(std::time::Duration::from_micros(200));
                                    continue;
                                }
                            };
                        let over_budget = budget.is_some_and(|b| self.client.unique_queries() >= b);
                        if !over_budget {
                            let timer = collected.is_some().then(WallClockScope::start);
                            let advanced = session.advance(quantum);
                            if let Some(timer) = timer {
                                service.absorb(timer.stop());
                            }
                            if let Err(e) = advanced {
                                *first_error.lock() = Some(e);
                                finished.fetch_add(1, Ordering::Release);
                                continue;
                            }
                        }
                        if over_budget || session.state() == SessionState::Completed {
                            match finalize_session(&mut session, !over_budget) {
                                Ok(outcome) => done.lock().push((index, outcome)),
                                Err(e) => *first_error.lock() = Some(e),
                            }
                            finished.fetch_add(1, Ordering::Release);
                        } else {
                            // A job that just ran re-enters the queue
                            // un-aged.
                            queue.lock().push_back(QueueEntry {
                                index,
                                quantum,
                                deadline,
                                skips: 0,
                                session,
                            });
                        }
                    }
                    if let Some(sink) = collected {
                        if service.count > 0 {
                            let key = WallKey::phase("worker-service").on_shard(worker as u64);
                            sink.lock().record(key, service);
                        }
                    }
                });
            }
        });

        if let (Some(wall), Some(collected)) = (wall, collected) {
            wall.merge(&collected.into_inner());
        }
        if let Some(e) = first_error.lock().take() {
            return Err(e);
        }
        let mut outcomes = done.into_inner();
        outcomes.sort_unstable_by_key(|(index, _)| *index);
        let outcomes: Vec<JobOutcome> = outcomes.into_iter().map(|(_, o)| o).collect();
        let mut aggregate_stats = RewireStats::default();
        for o in &outcomes {
            if let Some(s) = o.stats {
                aggregate_stats += s;
            }
        }
        Ok(ServeReport {
            outcomes,
            total_unique_queries: self.client.unique_queries(),
            virtual_secs: self.clock.as_ref().map(|c| c.now()),
            aggregate_stats,
        })
    }
}

/// One queued job between turns: its session plus the state the pop
/// policy keys on.
struct QueueEntry<I: SocialNetworkInterface> {
    index: usize,
    quantum: usize,
    deadline: Option<f64>,
    /// Turns this entry was passed over since it last ran (EDF aging).
    skips: u32,
    session: SamplerSession<I>,
}

/// Takes the next job off the queue under `policy`. FIFO for the fair
/// policies; for [`SchedulePolicy::EarliestDeadlineFirst`] the entry
/// with the smallest deadline wins (best-effort last, ties by
/// submission index), except that entries passed over
/// [`EDF_AGING_TURNS`] times are promoted ahead of every deadline.
/// Every entry passed over by an EDF pop ages by one turn.
fn pop_next<I: SocialNetworkInterface>(
    queue: &mut VecDeque<QueueEntry<I>>,
    policy: SchedulePolicy,
) -> Option<QueueEntry<I>> {
    if policy != SchedulePolicy::EarliestDeadlineFirst {
        return queue.pop_front();
    }
    // (aged?, deadline with None last, submission index): a total order
    // (f64::total_cmp — even a NaN deadline, rejected by JobSpec
    // validation but representable via the pub fields, cannot panic the
    // pick), so the choice is deterministic for any queue content.
    let best = (0..queue.len()).min_by(|&a, &b| {
        let (ea, eb) = (&queue[a], &queue[b]);
        (ea.skips < EDF_AGING_TURNS)
            .cmp(&(eb.skips < EDF_AGING_TURNS))
            .then(
                ea.deadline
                    .unwrap_or(f64::INFINITY)
                    .total_cmp(&eb.deadline.unwrap_or(f64::INFINITY)),
            )
            .then(ea.index.cmp(&eb.index))
    })?;
    for (i, e) in queue.iter_mut().enumerate() {
        if i != best {
            e.skips = e.skips.saturating_add(1);
        }
    }
    queue.remove(best)
}

/// Collapses a finished (or budget-interrupted) session into its
/// [`JobOutcome`] — shared by this scheduler and the `mto-fleet`
/// coordinator so both report jobs identically.
pub fn finalize_session<I: SocialNetworkInterface>(
    session: &mut SamplerSession<I>,
    completed: bool,
) -> Result<JobOutcome> {
    let estimate = session.average_degree_estimate()?;
    let walker = session.walker();
    Ok(JobOutcome {
        id: session.spec().id.clone(),
        algorithm: walker.name(),
        steps: session.steps_taken(),
        completed: completed && session.state() == SessionState::Completed,
        final_node: walker.current(),
        history: walker.history().to_vec(),
        stats: walker.rewire_stats(),
        scan: walker.scan_probe(),
        mh: walker.mh_counters(),
        avg_degree_estimate: estimate,
        finished_secs: None,
    })
}

/// Folds the estimator-quality accumulator for a finished run: each
/// outcome's full degree series (via the shared client's cache — every
/// visited node is cached by the walk that visited it), with SLO targets
/// taken from the matching [`JobSpec`]. Both the single-client scheduler
/// path and tests use this; the fleet coordinator folds incrementally at
/// epoch barriers instead, and the two agree because the series is a
/// pure function of the walk.
pub fn fold_quality<I: SocialNetworkInterface>(
    client: &SharedClient<I>,
    jobs: &[JobSpec],
    outcomes: &[JobOutcome],
) -> mto_obs::quality::QualityAccumulator {
    let mut acc = mto_obs::quality::QualityAccumulator::new();
    for outcome in outcomes {
        let target = jobs.iter().find(|j| j.id == outcome.id).and_then(|j| j.ess);
        acc.register(&outcome.id, target);
        let samples: Vec<u64> = client.with(|c| {
            outcome
                .history
                .iter()
                .map(|&v| {
                    c.known_degree(v).unwrap_or_else(|| {
                        panic!("visited node {v} is not cached — outcome/client mismatch")
                    }) as u64
                })
                .collect()
        });
        acc.observe(&outcome.id, &samples);
    }
    acc
}

#[cfg(test)]
mod quality_tests {
    use super::*;
    use crate::session::AlgoSpec;
    use mto_core::mto::MtoConfig;
    use mto_core::walk::SrwConfig;
    use mto_graph::generators::paper_barbell;
    use mto_osn::OsnService;

    #[test]
    fn quality_fold_is_worker_count_invariant() {
        let jobs = vec![
            JobSpec {
                id: "m".into(),
                algo: AlgoSpec::Mto(MtoConfig { seed: 5, ..Default::default() }),
                start: NodeId(0),
                step_budget: 400,
                deadline: None,
                ess: Some(30),
            },
            JobSpec {
                id: "s".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 6, lazy: false }),
                start: NodeId(3),
                step_budget: 300,
                deadline: None,
                ess: None,
            },
        ];
        let reports: Vec<_> = [1usize, 4]
            .into_iter()
            .map(|workers| {
                let sched = JobScheduler::new(
                    OsnService::with_defaults(&paper_barbell()),
                    SchedulerConfig { workers, ..Default::default() },
                );
                let report = sched.run(jobs.clone()).unwrap();
                fold_quality(sched.client(), &jobs, &report.outcomes).report()
            })
            .collect();
        assert_eq!(reports[0], reports[1], "quality figures are worker-count invariant");
        assert_eq!(reports[0].jobs["m"].samples, 401, "seed position + every step");
        assert_eq!(reports[0].jobs["m"].target_ess, Some(30));
        assert!(reports[0].rhat.is_some(), "two jobs give a cross-chain R-hat");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AlgoSpec;
    use mto_core::mto::MtoConfig;
    use mto_core::walk::{MhrwConfig, SrwConfig};
    use mto_graph::generators::paper_barbell;
    use mto_osn::OsnService;

    fn mixed_jobs() -> Vec<JobSpec> {
        vec![
            JobSpec {
                id: "mto-a".into(),
                algo: AlgoSpec::Mto(MtoConfig { seed: 1, ..Default::default() }),
                start: NodeId(0),
                step_budget: 400,
                deadline: None,
                ess: None,
            },
            JobSpec {
                id: "mto-b".into(),
                algo: AlgoSpec::Mto(MtoConfig { seed: 2, ..Default::default() }),
                start: NodeId(11),
                step_budget: 300,
                deadline: Some(30.0),
                ess: None,
            },
            JobSpec {
                id: "srw".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 3, lazy: false }),
                start: NodeId(5),
                step_budget: 250,
                deadline: None,
                ess: None,
            },
            JobSpec {
                id: "mhrw".into(),
                algo: AlgoSpec::Mhrw(MhrwConfig { seed: 4 }),
                start: NodeId(16),
                step_budget: 200,
                deadline: Some(10.0),
                ess: None,
            },
        ]
    }

    #[test]
    fn scheduler_runs_heterogeneous_jobs_to_their_budgets() {
        let scheduler = JobScheduler::new(
            OsnService::with_defaults(&paper_barbell()),
            SchedulerConfig { workers: 3, quantum: 32, ..Default::default() },
        );
        let report = scheduler.run(mixed_jobs()).unwrap();
        assert_eq!(report.outcomes.len(), 4);
        let by_id: Vec<(&str, usize, bool)> =
            report.outcomes.iter().map(|o| (o.id.as_str(), o.steps, o.completed)).collect();
        assert_eq!(
            by_id,
            vec![
                ("mto-a", 400, true),
                ("mto-b", 300, true),
                ("srw", 250, true),
                ("mhrw", 200, true)
            ]
        );
        assert!(report.total_unique_queries <= 22, "shared cache bounds cost at |V|");
        let sum: u64 = report.outcomes.iter().filter_map(|o| o.stats.map(|s| s.removals)).sum();
        assert_eq!(report.aggregate_stats.removals, sum);
        assert!(report.aggregate_stats.removals > 0, "MTO jobs rewire");
    }

    #[test]
    fn scheduler_results_are_deterministic_across_interleavings() {
        let run = |workers| {
            let scheduler = JobScheduler::new(
                OsnService::with_defaults(&paper_barbell()),
                SchedulerConfig { workers, quantum: 16, ..Default::default() },
            );
            scheduler.run(mixed_jobs()).unwrap()
        };
        let a = run(1);
        let b = run(4);
        assert_eq!(a.total_unique_queries, b.total_unique_queries);
        for (oa, ob) in a.outcomes.iter().zip(&b.outcomes) {
            assert_eq!(oa.id, ob.id);
            assert_eq!(oa.history, ob.history, "job {} diverged across worker counts", oa.id);
            assert_eq!(oa.stats, ob.stats);
            assert_eq!(oa.avg_degree_estimate, ob.avg_degree_estimate);
        }
    }

    #[test]
    fn wall_instrumented_runs_reproduce_plain_results() {
        let run = |wall: Option<&mut WallClockRegistry>| {
            let scheduler = JobScheduler::new(
                OsnService::with_defaults(&paper_barbell()),
                SchedulerConfig { workers: 2, quantum: 16, ..Default::default() },
            );
            scheduler.run_instrumented(mixed_jobs(), wall).unwrap()
        };
        let plain = run(None);
        let mut wall = WallClockRegistry::new();
        let timed = run(Some(&mut wall));
        assert_eq!(plain.total_unique_queries, timed.total_unique_queries);
        for (a, b) in plain.outcomes.iter().zip(&timed.outcomes) {
            assert_eq!(a.history, b.history, "wall plane perturbed job {}", a.id);
            assert_eq!(a.stats, b.stats);
            assert_eq!((a.steps, a.completed), (b.steps, b.completed));
        }
        assert!(!wall.is_empty(), "instrumented workers must report service time");
        let total = wall.total();
        assert!(total.count > 0 && total.nanos > 0, "{total:?}");
        for (key, _) in wall.iter() {
            assert_eq!(key.phase, "worker-service");
            assert!(key.shard.is_some(), "worker attribution required");
            assert_eq!(key.epoch, None, "the plain scheduler has no epochs");
        }
    }

    #[test]
    fn global_query_budget_stops_jobs_early() {
        // Budget of 3 unique queries on a 22-node graph: jobs cannot all
        // finish their walks' discovery phase.
        let scheduler = JobScheduler::new(
            OsnService::with_defaults(&paper_barbell()),
            SchedulerConfig {
                workers: 2,
                quantum: 8,
                global_query_budget: Some(3),
                ..Default::default()
            },
        );
        let report = scheduler.run(mixed_jobs()).unwrap();
        assert!(
            report.outcomes.iter().any(|o| !o.completed),
            "some job must be cut off by the query budget"
        );
    }

    #[test]
    fn effective_quantum_scales_with_budget_share() {
        use SchedulePolicy::*;
        assert_eq!(effective_quantum(RoundRobin, 64, 10, 1000, 4), 64);
        assert_eq!(effective_quantum(RoundRobin, 0, 10, 1000, 4), 1, "clamped");
        // Equal budgets → the base quantum.
        assert_eq!(effective_quantum(BudgetProportional, 64, 250, 1000, 4), 64);
        // A job holding half the total budget of 4 jobs gets 2× base.
        assert_eq!(effective_quantum(BudgetProportional, 64, 500, 1000, 4), 128);
        // Tiny jobs never stall out entirely.
        assert_eq!(effective_quantum(BudgetProportional, 64, 1, 1_000_000, 4), 1);
        // Degenerate all-zero-budget pool falls back to the base.
        assert_eq!(effective_quantum(BudgetProportional, 64, 0, 0, 4), 64);
        // Request files can carry absurd step budgets; the quantum math
        // must saturate, not overflow.
        assert_eq!(effective_quantum(BudgetProportional, 64, usize::MAX, usize::MAX, 4), 256);
        assert_eq!(
            effective_quantum(BudgetProportional, usize::MAX, usize::MAX, usize::MAX, 2),
            usize::MAX
        );
    }

    #[test]
    fn budget_proportional_policy_reproduces_round_robin_results() {
        let run = |policy| {
            let scheduler = JobScheduler::new(
                OsnService::with_defaults(&paper_barbell()),
                SchedulerConfig { workers: 3, quantum: 16, policy, ..Default::default() },
            );
            scheduler.run(mixed_jobs()).unwrap()
        };
        let rr = run(SchedulePolicy::RoundRobin);
        let bp = run(SchedulePolicy::BudgetProportional);
        assert_eq!(rr.total_unique_queries, bp.total_unique_queries);
        for (a, b) in rr.outcomes.iter().zip(&bp.outcomes) {
            assert_eq!(a.history, b.history, "policy changed job {}", a.id);
            assert_eq!(a.stats, b.stats);
            assert_eq!((a.steps, a.completed), (b.steps, b.completed));
        }
    }

    #[test]
    fn schedule_policy_round_trips_its_wire_name() {
        for p in [
            SchedulePolicy::RoundRobin,
            SchedulePolicy::BudgetProportional,
            SchedulePolicy::EarliestDeadlineFirst,
        ] {
            assert_eq!(SchedulePolicy::parse(p.name()), Ok(p));
        }
        assert_eq!(
            SchedulePolicy::parse("earliest-deadline-first"),
            Ok(SchedulePolicy::EarliestDeadlineFirst),
            "the long form is an accepted alias"
        );
        assert!(SchedulePolicy::parse("lottery").is_err());
    }

    #[test]
    fn edf_policy_reproduces_round_robin_results_across_worker_counts() {
        let run = |policy, workers| {
            let scheduler = JobScheduler::new(
                OsnService::with_defaults(&paper_barbell()),
                SchedulerConfig { workers, quantum: 16, policy, ..Default::default() },
            );
            scheduler.run(mixed_jobs()).unwrap()
        };
        let rr = run(SchedulePolicy::RoundRobin, 3);
        for workers in [1, 4] {
            let edf = run(SchedulePolicy::EarliestDeadlineFirst, workers);
            assert_eq!(rr.total_unique_queries, edf.total_unique_queries);
            for (a, b) in rr.outcomes.iter().zip(&edf.outcomes) {
                assert_eq!(a.history, b.history, "EDF changed job {} at W={workers}", a.id);
                assert_eq!(a.stats, b.stats);
                assert_eq!((a.steps, a.completed), (b.steps, b.completed));
            }
        }
    }

    #[test]
    fn edf_pop_orders_by_deadline_with_aging_and_index_ties() {
        let client =
            SharedClient::new(CachedClient::new(OsnService::with_defaults(&paper_barbell())));
        let entry = |index: usize, deadline: Option<f64>, skips: u32| QueueEntry {
            index,
            quantum: 8,
            deadline,
            skips,
            session: SamplerSession::create(
                client.clone(),
                JobSpec {
                    id: format!("j{index}"),
                    algo: AlgoSpec::Srw(SrwConfig { seed: index as u64 + 1, lazy: false }),
                    start: NodeId(0),
                    step_budget: 10,
                    deadline,
                    ess: None,
                },
            )
            .unwrap(),
        };
        // Deadlines first (smallest wins), best-effort last, index ties.
        let mut q: VecDeque<_> =
            vec![entry(0, None, 0), entry(1, Some(9.0), 0), entry(2, Some(4.0), 0)].into();
        let popped = pop_next(&mut q, SchedulePolicy::EarliestDeadlineFirst).unwrap();
        assert_eq!(popped.index, 2, "earliest deadline wins");
        assert!(q.iter().all(|e| e.skips == 1), "passed-over entries age");
        assert_eq!(pop_next(&mut q, SchedulePolicy::EarliestDeadlineFirst).unwrap().index, 1);
        assert_eq!(pop_next(&mut q, SchedulePolicy::EarliestDeadlineFirst).unwrap().index, 0);

        // A starved best-effort entry is promoted ahead of every deadline.
        let mut q: VecDeque<_> =
            vec![entry(0, Some(1.0), 0), entry(1, None, EDF_AGING_TURNS)].into();
        assert_eq!(
            pop_next(&mut q, SchedulePolicy::EarliestDeadlineFirst).unwrap().index,
            1,
            "aging beats deadlines"
        );

        // Equal deadlines: the smaller submission index wins.
        let mut q: VecDeque<_> = vec![entry(1, Some(2.0), 0), entry(0, Some(2.0), 0)].into();
        assert_eq!(pop_next(&mut q, SchedulePolicy::EarliestDeadlineFirst).unwrap().index, 0);

        // The fair policies stay strictly FIFO.
        let mut q: VecDeque<_> = vec![entry(1, Some(2.0), 0), entry(0, Some(1.0), 0)].into();
        assert_eq!(pop_next(&mut q, SchedulePolicy::RoundRobin).unwrap().index, 1);
    }

    #[test]
    fn attached_clock_reports_virtual_wall_time() {
        use mto_osn::{RateLimitPolicy, RateLimitedInterface};
        let limited = RateLimitedInterface::new(
            OsnService::with_defaults(&paper_barbell()),
            RateLimitPolicy::facebook(),
        );
        let clock = limited.clock().clone();
        let scheduler = JobScheduler::new(limited, Default::default()).with_virtual_clock(clock);
        let report = scheduler.run(mixed_jobs()).unwrap();
        let secs = report.virtual_secs.expect("clock attached");
        // 22 unique queries at 50 ms each, serially accounted.
        assert!(secs > 0.0, "latency must show up in the report");
        assert!(
            (secs - 0.05 * report.total_unique_queries as f64).abs() < 1e-6,
            "virtual {secs} vs {} unique queries",
            report.total_unique_queries
        );
    }

    #[test]
    fn reports_without_a_clock_carry_no_virtual_time() {
        let scheduler =
            JobScheduler::new(OsnService::with_defaults(&paper_barbell()), Default::default());
        let report = scheduler.run(mixed_jobs()).unwrap();
        assert_eq!(report.virtual_secs, None);
    }

    #[test]
    fn empty_job_list_is_a_noop() {
        let scheduler =
            JobScheduler::new(OsnService::with_defaults(&paper_barbell()), Default::default());
        let report = scheduler.run(Vec::new()).unwrap();
        assert!(report.outcomes.is_empty());
        assert_eq!(report.total_unique_queries, 0);
    }

    #[test]
    fn warm_started_scheduler_reuses_history() {
        let g = paper_barbell();
        let cold = JobScheduler::new(OsnService::with_defaults(&g), Default::default());
        let cold_report = cold.run(mixed_jobs()).unwrap();
        let store = cold.client().with(|c| HistoryStore::from_client(c));

        let warm =
            JobScheduler::warm_start(OsnService::with_defaults(&g), &store, Default::default())
                .unwrap();
        let warm_report = warm.run(mixed_jobs()).unwrap();
        assert!(
            warm_report.total_unique_queries < cold_report.total_unique_queries,
            "warm {} vs cold {}",
            warm_report.total_unique_queries,
            cold_report.total_unique_queries
        );
        // Same seeds, same responses → identical walks either way.
        for (c, w) in cold_report.outcomes.iter().zip(&warm_report.outcomes) {
            assert_eq!(c.history, w.history);
        }
    }
}
