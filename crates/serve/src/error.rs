//! Error type for the sampling service layer.

use std::fmt;

use mto_osn::OsnError;

/// Everything the service layer can fail with.
#[derive(Debug)]
pub enum ServeError {
    /// A query against the underlying interface failed.
    Osn(OsnError),
    /// A history/session file could not be decoded.
    Codec(HistoryCodecError),
    /// A filesystem operation on a store or snapshot failed.
    Io(std::io::Error),
    /// A request file is malformed.
    Request {
        /// 1-based line number of the offending directive (0 = file-level).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A restored session replayed to a state that contradicts its
    /// snapshot — the history store and the network disagree.
    SnapshotMismatch(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Osn(e) => write!(f, "interface error: {e}"),
            ServeError::Codec(e) => write!(f, "codec error: {e}"),
            ServeError::Io(e) => write!(f, "io error: {e}"),
            ServeError::Request { line, message } => {
                write!(f, "request error at line {line}: {message}")
            }
            ServeError::SnapshotMismatch(msg) => write!(f, "snapshot mismatch: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<OsnError> for ServeError {
    fn from(e: OsnError) -> Self {
        ServeError::Osn(e)
    }
}

impl From<HistoryCodecError> for ServeError {
    fn from(e: HistoryCodecError) -> Self {
        ServeError::Codec(e)
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Result alias for service operations.
pub type Result<T> = std::result::Result<T, ServeError>;

/// Decode failures of the history/session codec. Every malformed input —
/// truncated, bit-flipped, or plain garbage — maps to one of these; the
/// decoder never panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HistoryCodecError {
    /// The first line is not the expected `<magic> v<version>` header.
    BadHeader(String),
    /// The header names a format version this build cannot read.
    UnsupportedVersion(u32),
    /// A record line failed to parse.
    BadRecord {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The trailing `checksum` line is missing — truncated input.
    Truncated,
    /// The checksum does not match the body — corrupted input.
    ChecksumMismatch {
        /// Checksum recomputed over the received body.
        computed: u64,
        /// Checksum the trailer claims.
        stored: u64,
    },
}

impl fmt::Display for HistoryCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistoryCodecError::BadHeader(h) => write!(f, "unrecognized header {h:?}"),
            HistoryCodecError::UnsupportedVersion(v) => {
                write!(f, "unsupported format version {v}")
            }
            HistoryCodecError::BadRecord { line, message } => {
                write!(f, "bad record at line {line}: {message}")
            }
            HistoryCodecError::Truncated => write!(f, "input truncated (no checksum trailer)"),
            HistoryCodecError::ChecksumMismatch { computed, stored } => {
                write!(f, "checksum mismatch: computed {computed:016x}, stored {stored:016x}")
            }
        }
    }
}

impl std::error::Error for HistoryCodecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::NodeId;

    #[test]
    fn display_messages_are_informative() {
        assert!(ServeError::Osn(OsnError::UnknownUser(NodeId(3))).to_string().contains("3"));
        assert!(ServeError::Request { line: 4, message: "nope".into() }
            .to_string()
            .contains("line 4"));
        assert!(ServeError::SnapshotMismatch("overlay".into()).to_string().contains("overlay"));
        assert!(HistoryCodecError::Truncated.to_string().contains("truncated"));
        let mismatch = HistoryCodecError::ChecksumMismatch { computed: 0xab, stored: 0xcd };
        assert!(mismatch.to_string().contains("00000000000000ab"));
        assert!(HistoryCodecError::UnsupportedVersion(9).to_string().contains("9"));
        assert!(HistoryCodecError::BadHeader("x".into()).to_string().contains("x"));
        let bad = HistoryCodecError::BadRecord { line: 7, message: "m".into() };
        assert!(bad.to_string().contains("line 7"));
    }
}
