//! Resumable sampler sessions.
//!
//! A [`SamplerSession`] wraps one walker behind a lifecycle the service
//! layer can drive: **create → step in increments → pause → snapshot →
//! resume**. Estimation jobs stop being one-shot batch runs: the scheduler
//! interleaves many sessions, a session can be frozen to disk mid-walk and
//! continued later (in another process), and its accounting continues as
//! if it had never stopped.
//!
//! Resume is **event-sourced** (see [`MtoSampler::resume`]): a snapshot
//! stores no RNG or overlay internals, only the job spec, the step count,
//! and the [`HistoryStore`]. Restoring replays the prefix against the
//! warmed cache — zero new unique queries — and then *verifies* that the
//! replay reached exactly the snapshotted position, stats, and overlay,
//! so a snapshot applied to the wrong network is rejected instead of
//! silently producing garbage.

use std::collections::HashMap;

use mto_core::mto::{CriterionView, MtoConfig, MtoSampler, RewireStats};
use mto_core::rewire::OverlayDelta;
use mto_core::walk::{
    MetropolisHastingsWalk, MhrwConfig, RandomJumpWalk, RjConfig, SimpleRandomWalk, SrwConfig,
    Walker,
};
use mto_graph::NodeId;
use mto_osn::{SharedClient, SocialNetworkInterface};

use crate::error::{HistoryCodecError, Result, ServeError};
use crate::history::{
    bad_record, expect_header, parse_num, seal, split_keyword, verify_checksum, HistoryAccumulator,
    HistoryStore, FORMAT_VERSION, SESSION_MAGIC,
};

/// Which sampler a job runs, with its full configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum AlgoSpec {
    /// The MTO-Sampler (Algorithm 1).
    Mto(MtoConfig),
    /// Simple random walk baseline.
    Srw(SrwConfig),
    /// Metropolis–Hastings baseline.
    Mhrw(MhrwConfig),
    /// Random Jump baseline (requires a published user count).
    Rj(RjConfig),
}

impl AlgoSpec {
    /// Wire name of the algorithm (`mto`, `srw`, `mhrw`, `rj`).
    pub fn name(&self) -> &'static str {
        match self {
            AlgoSpec::Mto(_) => "mto",
            AlgoSpec::Srw(_) => "srw",
            AlgoSpec::Mhrw(_) => "mhrw",
            AlgoSpec::Rj(_) => "rj",
        }
    }
}

/// One sampling job: which sampler, where it starts, how many steps it is
/// entitled to.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Caller-chosen identifier (no whitespace or `=`).
    pub id: String,
    /// Sampler and configuration.
    pub algo: AlgoSpec,
    /// Start node.
    pub start: NodeId,
    /// Per-job step budget.
    pub step_budget: usize,
    /// Optional completion deadline in *virtual seconds* (`deadline=`
    /// field). Deadlines drive the QoS layer: admission control rejects
    /// provably unmeetable ones, and
    /// [`crate::scheduler::SchedulePolicy::EarliestDeadlineFirst`]
    /// prioritizes quanta by them. `None` means best-effort.
    pub deadline: Option<f64>,
    /// Optional quality SLO: the target effective sample size (`ess=`
    /// field). Requires the request's `quality` directive — the quality
    /// plane computes the streaming ESS the SLO is judged against, and
    /// the fleet's epoch planner stops granting quanta once a job's ESS
    /// reaches the target (deterministic early stop; unspent budget goes
    /// back to the ledger). `None` means run the full step budget.
    pub ess: Option<u64>,
}

impl JobSpec {
    /// Checks the id is representable in the line format.
    pub fn validate(&self) -> std::result::Result<(), String> {
        if self.id.is_empty() {
            return Err("job id must be non-empty".into());
        }
        if self.id.chars().any(|c| c.is_whitespace() || c == '=') {
            return Err(format!("job id {:?} contains whitespace or '='", self.id));
        }
        if let Some(d) = self.deadline {
            if !d.is_finite() || d <= 0.0 {
                return Err(format!(
                    "job {:?} deadline {d} must be a positive number of virtual seconds",
                    self.id
                ));
            }
        }
        if self.ess == Some(0) {
            return Err(format!("job {:?} ess=0 is vacuous (already met at start)", self.id));
        }
        Ok(())
    }
}

/// Serializes a job spec as the single-line `key=value` form used by both
/// request files and session snapshots. Floats use Rust's shortest
/// round-trip formatting, so [`parse_job_line`] recovers them exactly.
pub fn format_job_line(spec: &JobSpec) -> String {
    let mut line = format!(
        "id={} algo={} start={} steps={}",
        spec.id,
        spec.algo.name(),
        spec.start.0,
        spec.step_budget
    );
    use std::fmt::Write;
    if let Some(d) = spec.deadline {
        write!(line, " deadline={d:?}").expect("string write");
    }
    if let Some(target) = spec.ess {
        write!(line, " ess={target}").expect("string write");
    }
    match &spec.algo {
        AlgoSpec::Mto(c) => {
            let view = match c.criterion_view {
                CriterionView::Original => "original",
                CriterionView::Overlay => "overlay",
            };
            write!(
                line,
                " seed={} removal={} replacement={} extension={} replace_prob={:?} lazy={} \
                 view={view} min_degree={}",
                c.seed,
                u8::from(c.removal),
                u8::from(c.replacement),
                u8::from(c.extension),
                c.replace_prob,
                u8::from(c.lazy),
                c.min_overlay_degree
            )
            .expect("string write");
        }
        AlgoSpec::Srw(c) => {
            write!(line, " seed={} lazy={}", c.seed, u8::from(c.lazy)).expect("string write");
        }
        AlgoSpec::Mhrw(c) => write!(line, " seed={}", c.seed).expect("string write"),
        AlgoSpec::Rj(c) => {
            write!(line, " seed={} jump={:?}", c.seed, c.jump_probability).expect("string write");
        }
    }
    line
}

/// Parses the `key=value` job line produced by [`format_job_line`] (also
/// the `job …` directive of request files). Unspecified algorithm
/// parameters take their `Default` values.
pub fn parse_job_line(line: &str) -> std::result::Result<JobSpec, String> {
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for token in line.split_whitespace() {
        let (k, v) =
            token.split_once('=').ok_or_else(|| format!("expected key=value, got {token:?}"))?;
        if fields.insert(k, v).is_some() {
            return Err(format!("duplicate field {k:?}"));
        }
    }
    let mut take = |k: &str| fields.remove(k);
    let id = take("id").ok_or("missing id=")?.to_string();
    let algo_name = take("algo").ok_or("missing algo=")?.to_string();
    let start = NodeId(parse_field(take("start").ok_or("missing start=")?, "start")?);
    let step_budget: usize = parse_field(take("steps").ok_or("missing steps=")?, "steps")?;
    let deadline: Option<f64> = match take("deadline") {
        Some(v) => Some(parse_field(v, "deadline")?),
        None => None,
    };
    let ess: Option<u64> = match take("ess") {
        Some(v) => Some(parse_field(v, "ess")?),
        None => None,
    };
    let seed: u64 = match take("seed") {
        Some(v) => parse_field(v, "seed")?,
        None => 1,
    };

    let algo = match algo_name.as_str() {
        "mto" => {
            let d = MtoConfig::default();
            AlgoSpec::Mto(MtoConfig {
                seed,
                removal: parse_flag_or(take("removal"), d.removal)?,
                replacement: parse_flag_or(take("replacement"), d.replacement)?,
                extension: parse_flag_or(take("extension"), d.extension)?,
                replace_prob: match take("replace_prob") {
                    Some(v) => parse_field(v, "replace_prob")?,
                    None => d.replace_prob,
                },
                lazy: parse_flag_or(take("lazy"), d.lazy)?,
                criterion_view: match take("view") {
                    None | Some("original") => CriterionView::Original,
                    Some("overlay") => CriterionView::Overlay,
                    Some(other) => return Err(format!("unknown criterion view {other:?}")),
                },
                min_overlay_degree: match take("min_degree") {
                    Some(v) => parse_field(v, "min_degree")?,
                    None => d.min_overlay_degree,
                },
            })
        }
        "srw" => AlgoSpec::Srw(SrwConfig {
            seed,
            lazy: parse_flag_or(take("lazy"), SrwConfig::default().lazy)?,
        }),
        "mhrw" => AlgoSpec::Mhrw(MhrwConfig { seed }),
        "rj" => AlgoSpec::Rj(RjConfig {
            seed,
            jump_probability: match take("jump") {
                Some(v) => parse_field(v, "jump")?,
                None => RjConfig::default().jump_probability,
            },
        }),
        other => return Err(format!("unknown algorithm {other:?}")),
    };
    if let Some(k) = fields.keys().next() {
        return Err(format!("unknown field {k:?} for algo {algo_name}"));
    }
    let spec = JobSpec { id, algo, start, step_budget, deadline, ess };
    spec.validate()?;
    Ok(spec)
}

fn parse_field<T: std::str::FromStr>(v: &str, what: &str) -> std::result::Result<T, String>
where
    T::Err: std::fmt::Display,
{
    v.parse().map_err(|e| format!("bad {what} {v:?}: {e}"))
}

fn parse_flag_or(v: Option<&str>, default: bool) -> std::result::Result<bool, String> {
    match v {
        None => Ok(default),
        Some("0") => Ok(false),
        Some("1") => Ok(true),
        Some(other) => Err(format!("bad flag {other:?} (use 0 or 1)")),
    }
}

/// The concrete walker a session drives — an enum (not `Box<dyn Walker>`)
/// so the session can reach algorithm-specific state: the MTO overlay for
/// snapshots and the rewiring counters for aggregation.
pub enum SessionWalker<I: SocialNetworkInterface> {
    /// MTO-Sampler. Boxed: the sampler carries its scratch buffers
    /// inline, dwarfing the other variants.
    Mto(Box<MtoSampler<SharedClient<I>>>),
    /// Simple random walk.
    Srw(SimpleRandomWalk<SharedClient<I>>),
    /// Metropolis–Hastings.
    Mhrw(MetropolisHastingsWalk<SharedClient<I>>),
    /// Random Jump.
    Rj(RandomJumpWalk<SharedClient<I>>),
}

impl<I: SocialNetworkInterface> SessionWalker<I> {
    fn build(client: SharedClient<I>, spec: &JobSpec) -> Result<Self> {
        Ok(match spec.algo {
            AlgoSpec::Mto(cfg) => {
                SessionWalker::Mto(Box::new(MtoSampler::new(client, spec.start, cfg)?))
            }
            AlgoSpec::Srw(cfg) => {
                SessionWalker::Srw(SimpleRandomWalk::new(client, spec.start, cfg)?)
            }
            AlgoSpec::Mhrw(cfg) => {
                SessionWalker::Mhrw(MetropolisHastingsWalk::new(client, spec.start, cfg)?)
            }
            AlgoSpec::Rj(cfg) => SessionWalker::Rj(RandomJumpWalk::new(client, spec.start, cfg)?),
        })
    }

    /// Rewiring counters, for samplers that rewire.
    pub fn rewire_stats(&self) -> Option<RewireStats> {
        match self {
            SessionWalker::Mto(s) => Some(s.stats()),
            _ => None,
        }
    }

    /// The overlay delta, for samplers that maintain one.
    pub fn overlay(&self) -> Option<&OverlayDelta> {
        match self {
            SessionWalker::Mto(s) => Some(s.overlay()),
            _ => None,
        }
    }

    /// Theorem-3 criterion-scan telemetry, for samplers that rewire.
    pub fn scan_probe(&self) -> Option<mto_core::mto::ScanProbe> {
        match self {
            SessionWalker::Mto(s) => Some(s.probe()),
            _ => None,
        }
    }

    /// `(proposals, rejections)` for Metropolis–Hastings walkers.
    pub fn mh_counters(&self) -> Option<(u64, u64)> {
        match self {
            SessionWalker::Mhrw(w) => Some((w.proposals(), w.rejections())),
            _ => None,
        }
    }
}

impl<I: SocialNetworkInterface> Walker for SessionWalker<I> {
    fn name(&self) -> &'static str {
        match self {
            SessionWalker::Mto(w) => w.name(),
            SessionWalker::Srw(w) => w.name(),
            SessionWalker::Mhrw(w) => w.name(),
            SessionWalker::Rj(w) => w.name(),
        }
    }

    fn current(&self) -> NodeId {
        match self {
            SessionWalker::Mto(w) => w.current(),
            SessionWalker::Srw(w) => w.current(),
            SessionWalker::Mhrw(w) => w.current(),
            SessionWalker::Rj(w) => w.current(),
        }
    }

    fn step(&mut self) -> mto_osn::Result<NodeId> {
        match self {
            SessionWalker::Mto(w) => w.step(),
            SessionWalker::Srw(w) => w.step(),
            SessionWalker::Mhrw(w) => w.step(),
            SessionWalker::Rj(w) => w.step(),
        }
    }

    fn history(&self) -> &[NodeId] {
        match self {
            SessionWalker::Mto(w) => w.history(),
            SessionWalker::Srw(w) => w.history(),
            SessionWalker::Mhrw(w) => w.history(),
            SessionWalker::Rj(w) => w.history(),
        }
    }

    fn query_cost(&self) -> u64 {
        match self {
            SessionWalker::Mto(w) => w.query_cost(),
            SessionWalker::Srw(w) => w.query_cost(),
            SessionWalker::Mhrw(w) => w.query_cost(),
            SessionWalker::Rj(w) => w.query_cost(),
        }
    }

    fn importance_weight(&mut self, v: NodeId) -> mto_osn::Result<f64> {
        match self {
            SessionWalker::Mto(w) => w.importance_weight(v),
            SessionWalker::Srw(w) => w.importance_weight(v),
            SessionWalker::Mhrw(w) => w.importance_weight(v),
            SessionWalker::Rj(w) => w.importance_weight(v),
        }
    }

    fn prefetch_candidates(&self) -> Vec<NodeId> {
        match self {
            SessionWalker::Mto(w) => w.prefetch_candidates(),
            SessionWalker::Srw(w) => w.prefetch_candidates(),
            SessionWalker::Mhrw(w) => w.prefetch_candidates(),
            SessionWalker::Rj(w) => w.prefetch_candidates(),
        }
    }
}

/// Where a session is in its lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SessionState {
    /// Stepping when asked to.
    Running,
    /// Frozen by [`SamplerSession::pause`]; `advance` is a no-op.
    Paused,
    /// The step budget is spent.
    Completed,
}

/// A resumable sampling session over a shared client.
pub struct SamplerSession<I: SocialNetworkInterface> {
    spec: JobSpec,
    client: SharedClient<I>,
    walker: SessionWalker<I>,
    steps_taken: usize,
    state: SessionState,
    meta: Vec<(String, String)>,
}

impl<I: SocialNetworkInterface> SamplerSession<I> {
    /// Creates a session (the start node is queried immediately, as for
    /// any walker).
    pub fn create(client: SharedClient<I>, spec: JobSpec) -> Result<Self> {
        spec.validate().map_err(|message| ServeError::Request { line: 0, message })?;
        let walker = SessionWalker::build(client.clone(), &spec)?;
        let state =
            if spec.step_budget == 0 { SessionState::Completed } else { SessionState::Running };
        Ok(SamplerSession { spec, client, walker, steps_taken: 0, state, meta: Vec::new() })
    }

    /// The job this session runs.
    pub fn spec(&self) -> &JobSpec {
        &self.spec
    }

    /// Lifecycle state.
    pub fn state(&self) -> SessionState {
        self.state
    }

    /// Steps taken so far (excluding the seed position).
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Steps left in the budget.
    pub fn steps_remaining(&self) -> usize {
        self.spec.step_budget - self.steps_taken
    }

    /// The wrapped walker.
    pub fn walker(&self) -> &SessionWalker<I> {
        &self.walker
    }

    /// Mutable access to the wrapped walker.
    pub fn walker_mut(&mut self) -> &mut SessionWalker<I> {
        &mut self.walker
    }

    /// Handle to the (shared) client this session charges.
    pub fn client(&self) -> &SharedClient<I> {
        &self.client
    }

    /// Unique queries charged to the shared client so far.
    pub fn unique_queries(&self) -> u64 {
        self.walker.query_cost()
    }

    /// Attaches a key/value pair carried through snapshots (e.g. which
    /// network the session ran against).
    ///
    /// # Panics
    /// Panics when the key contains whitespace or when either part
    /// contains a line break — such pairs are unrepresentable in the
    /// line-oriented snapshot format, and silently encoding them would
    /// let a value inject snapshot records.
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        let key = key.into();
        let value = value.into();
        assert!(
            !key.is_empty() && !key.contains(char::is_whitespace),
            "meta key {key:?} must be non-empty and whitespace-free"
        );
        assert!(
            !value.contains('\n') && !value.contains('\r'),
            "meta value for {key:?} must not contain line breaks"
        );
        self.meta.retain(|(k, _)| *k != key);
        self.meta.push((key, value));
    }

    /// Snapshot metadata.
    pub fn meta(&self) -> &[(String, String)] {
        &self.meta
    }

    /// Freezes the session: `advance` becomes a no-op until
    /// [`SamplerSession::resume_stepping`].
    pub fn pause(&mut self) {
        if self.state == SessionState::Running {
            self.state = SessionState::Paused;
        }
    }

    /// Unfreezes a paused session.
    pub fn resume_stepping(&mut self) {
        if self.state == SessionState::Paused {
            self.state = SessionState::Running;
        }
    }

    /// Advances up to `max_steps` steps (bounded by the remaining budget),
    /// returning how many were actually taken. Paused and completed
    /// sessions take none.
    pub fn advance(&mut self, max_steps: usize) -> Result<usize> {
        if self.state != SessionState::Running {
            return Ok(0);
        }
        let n = self.steps_remaining().min(max_steps);
        for _ in 0..n {
            self.walker.step()?;
        }
        self.steps_taken += n;
        if self.steps_remaining() == 0 {
            self.state = SessionState::Completed;
        }
        Ok(n)
    }

    /// Runs the rest of the budget (resuming a paused session first).
    pub fn run_to_completion(&mut self) -> Result<usize> {
        self.resume_stepping();
        self.advance(self.steps_remaining())
    }

    /// Self-normalized importance estimate of the average degree over the
    /// visited history — the standing deliverable of an estimation job.
    /// Free: every visited node is cached, and weights come from the
    /// walker's own stationary distribution.
    pub fn average_degree_estimate(&mut self) -> Result<Option<f64>> {
        let history: Vec<NodeId> = self.walker.history().to_vec();
        let mut weight_of: HashMap<NodeId, f64> = HashMap::new();
        let (mut num, mut den) = (0.0f64, 0.0f64);
        for v in history {
            let weight = match weight_of.entry(v) {
                std::collections::hash_map::Entry::Occupied(e) => *e.get(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    *e.insert(self.walker.importance_weight(v)?)
                }
            };
            let degree = self.client.with(|c| c.known_degree(v)).ok_or_else(|| {
                ServeError::SnapshotMismatch(format!("visited node {v} is not cached"))
            })?;
            num += weight * degree as f64;
            den += weight;
        }
        Ok((den > 0.0).then(|| num / den))
    }

    /// Captures the session as a portable snapshot: job spec, step count,
    /// position, stats, metadata, and the full history store.
    pub fn snapshot(&self) -> SessionSnapshot {
        let history = self.client.with(|c| HistoryStore::from_parts(c, self.walker.overlay()));
        SessionSnapshot {
            spec: self.spec.clone(),
            steps_taken: self.steps_taken,
            current: self.walker.current(),
            stats: self.walker.rewire_stats().unwrap_or_default(),
            meta: self.meta.clone(),
            history,
        }
    }

    /// Restores a snapshotted session against `client` (wrapping the same
    /// network): imports the history store (cache **and** counters),
    /// replays the walked prefix — all cache hits, zero new unique
    /// queries — and verifies the replay reached exactly the snapshotted
    /// position, stats, and overlay.
    pub fn restore(client: SharedClient<I>, snapshot: &SessionSnapshot) -> Result<Self> {
        // First line of defense against restoring onto the wrong network:
        // the imported cache shadows the provider during replay, so replay
        // divergence alone cannot catch a swapped backend. The recorded
        // user count (and id-space bounds) can.
        snapshot
            .history
            .validate_against(client.with(|c| c.num_users_hint()))
            .map_err(ServeError::SnapshotMismatch)?;
        client.with(|c| c.import_entries(&snapshot.history.cache));
        let mut session = Self::create(client, snapshot.spec.clone())?;
        session.meta = snapshot.meta.clone();
        for _ in 0..snapshot.steps_taken {
            session.walker.step()?;
        }
        session.steps_taken = snapshot.steps_taken;
        if session.steps_remaining() == 0 {
            session.state = SessionState::Completed;
        }
        // Counters are restored *after* the replay so the free cache hits
        // of the prefix (and the creation fetch) are not double-counted:
        // the resumed session accounts exactly as if it had never stopped.
        session.client.with(|c| c.restore_counters(&snapshot.history.cache));

        if session.walker.current() != snapshot.current {
            return Err(ServeError::SnapshotMismatch(format!(
                "replay ended at {}, snapshot says {} — wrong network or tampered snapshot",
                session.walker.current(),
                snapshot.current
            )));
        }
        let stats = session.walker.rewire_stats().unwrap_or_default();
        if stats != snapshot.stats {
            return Err(ServeError::SnapshotMismatch(format!(
                "replayed rewire stats {stats:?} disagree with snapshot {:?}",
                snapshot.stats
            )));
        }
        if let Some(delta) = session.walker.overlay() {
            if *delta != snapshot.history.overlay_delta() {
                return Err(ServeError::SnapshotMismatch(
                    "replayed overlay delta disagrees with snapshot".into(),
                ));
            }
        }
        Ok(session)
    }
}

/// Cursor-based extractor of the quality plane's sample series: the
/// **degree of every visited node**, in visit order. Degree is the
/// paper's own convergence indicator ("applies to every graph"), and it
/// is a pure function of the walk — every visited node is cached by the
/// walker's own queries — so the drained series is byte-identical across
/// shard counts and scheduler interleavings.
///
/// The observer batches: each [`SampleObserver::drain`] returns only the
/// suffix of the history the cursor has not seen yet, so callers can
/// feed an accumulator at quantum or epoch granularity without
/// re-walking the whole history.
#[derive(Clone, Copy, Debug, Default)]
pub struct SampleObserver {
    cursor: usize,
}

impl SampleObserver {
    /// A fresh observer (cursor at the start of the history).
    pub fn new() -> Self {
        Self::default()
    }

    /// Positions visited so far that have already been drained.
    pub fn drained(&self) -> usize {
        self.cursor
    }

    /// Drains the degrees of the nodes visited since the last drain.
    ///
    /// # Panics
    /// Panics when a visited node is not cached — impossible for any
    /// walker in this crate (stepping queries the node it stands on),
    /// so a miss means the session and client were mismatched.
    pub fn drain<I: SocialNetworkInterface>(&mut self, session: &SamplerSession<I>) -> Vec<u64> {
        let history = session.walker().history();
        let fresh = &history[self.cursor.min(history.len())..];
        let samples = session.client().with(|c| {
            fresh
                .iter()
                .map(|&v| {
                    c.known_degree(v).unwrap_or_else(|| {
                        panic!("visited node {v} is not cached — session/client mismatch")
                    }) as u64
                })
                .collect()
        });
        self.cursor = history.len();
        samples
    }
}

/// A frozen session: everything needed to continue it later, in another
/// process, against a fresh instance of the same network.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSnapshot {
    /// The job being run.
    pub spec: JobSpec,
    /// Steps taken when the snapshot was cut.
    pub steps_taken: usize,
    /// Position when the snapshot was cut (verified on restore).
    pub current: NodeId,
    /// Rewiring counters when the snapshot was cut (verified on restore).
    /// The network's published user count travels inside
    /// [`HistoryStore::num_users`] and is verified on restore.
    pub stats: RewireStats,
    /// Caller metadata (e.g. the network spec), carried verbatim.
    pub meta: Vec<(String, String)>,
    /// The persistent crawl history.
    pub history: HistoryStore,
}

impl SessionSnapshot {
    /// Serializes to the versioned session file format.
    pub fn encode(&self) -> String {
        use std::fmt::Write;
        let mut body = format!("{SESSION_MAGIC} v{FORMAT_VERSION}\n");
        for (k, v) in &self.meta {
            writeln!(body, "meta {k} {v}").expect("string write");
        }
        writeln!(body, "job {}", format_job_line(&self.spec)).expect("string write");
        writeln!(body, "steps {}", self.steps_taken).expect("string write");
        writeln!(body, "current {}", self.current.0).expect("string write");
        writeln!(
            body,
            "stats {} {} {}",
            self.stats.removals, self.stats.replacements, self.stats.replacement_rejections
        )
        .expect("string write");
        crate::history::write_history_body(&self.history, &mut body);
        seal(body)
    }

    /// Parses the session file format. Malformed input — truncated,
    /// corrupted, or from a different format version — yields a clean
    /// [`HistoryCodecError`].
    pub fn decode(text: &str) -> std::result::Result<Self, HistoryCodecError> {
        let body = verify_checksum(text)?;
        let mut lines = body.lines().enumerate();
        expect_header(lines.next(), SESSION_MAGIC)?;
        let mut acc = HistoryAccumulator::default();
        let mut meta = Vec::new();
        let mut spec: Option<JobSpec> = None;
        let mut steps_taken = None;
        let mut current = None;
        let mut stats = None;
        for (idx, line) in lines {
            let lineno = idx + 1;
            let (keyword, rest) = split_keyword(line, lineno)?;
            match keyword {
                "meta" => {
                    let (k, v) = rest.split_once(' ').ok_or_else(|| {
                        bad_record(lineno, "meta needs `meta <key> <value>`".to_string())
                    })?;
                    meta.push((k.to_string(), v.to_string()));
                }
                "job" => {
                    if spec.is_some() {
                        return Err(bad_record(lineno, "duplicate job record"));
                    }
                    spec = Some(parse_job_line(rest).map_err(|e| bad_record(lineno, e))?);
                }
                "steps" => steps_taken = Some(parse_num(rest, "step count", lineno)?),
                "current" => current = Some(NodeId(parse_num(rest, "node id", lineno)?)),
                "stats" => {
                    let parts: Vec<&str> = rest.split(' ').collect();
                    if parts.len() != 3 {
                        return Err(bad_record(lineno, "stats needs three counters"));
                    }
                    stats = Some(RewireStats {
                        removals: parse_num(parts[0], "removals", lineno)?,
                        replacements: parse_num(parts[1], "replacements", lineno)?,
                        replacement_rejections: parse_num(parts[2], "rejections", lineno)?,
                    });
                }
                _ => {
                    if !acc.consume(keyword, rest, lineno)? {
                        return Err(bad_record(
                            lineno,
                            format!("unknown record keyword {keyword:?}"),
                        ));
                    }
                }
            }
        }
        let spec = spec.ok_or_else(|| bad_record(0, "missing job record"))?;
        let steps_taken = steps_taken.ok_or_else(|| bad_record(0, "missing steps record"))?;
        if steps_taken > spec.step_budget {
            return Err(bad_record(0, "steps taken exceed the job budget"));
        }
        Ok(SessionSnapshot {
            spec,
            steps_taken,
            current: current.ok_or_else(|| bad_record(0, "missing current record"))?,
            stats: stats.unwrap_or_default(),
            meta,
            history: acc.store,
        })
    }

    /// Writes the encoded snapshot to `path`.
    pub fn save(&self, path: &std::path::Path) -> Result<()> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes a snapshot from `path`.
    pub fn load(path: &std::path::Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::decode(&text)?)
    }

    /// Looks up a metadata value.
    pub fn meta_value(&self, key: &str) -> Option<&str> {
        self.meta.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;
    use mto_osn::{CachedClient, OsnService, QueryClient};

    fn shared_client() -> SharedClient<OsnService> {
        SharedClient::new(CachedClient::new(OsnService::with_defaults(&paper_barbell())))
    }

    fn mto_job(id: &str, steps: usize, seed: u64) -> JobSpec {
        JobSpec {
            id: id.into(),
            algo: AlgoSpec::Mto(MtoConfig { seed, ..Default::default() }),
            start: NodeId(0),
            step_budget: steps,
            deadline: None,
            ess: None,
        }
    }

    #[test]
    fn session_lifecycle_create_step_pause_complete() {
        let mut s = SamplerSession::create(shared_client(), mto_job("a", 100, 3)).unwrap();
        assert_eq!(s.state(), SessionState::Running);
        assert_eq!(s.advance(30).unwrap(), 30);
        s.pause();
        assert_eq!(s.advance(30).unwrap(), 0, "paused sessions do not step");
        s.resume_stepping();
        assert_eq!(s.advance(1000).unwrap(), 70, "clamped to the budget");
        assert_eq!(s.state(), SessionState::Completed);
        assert_eq!(s.advance(10).unwrap(), 0);
        assert_eq!(s.walker().history().len(), 101);
    }

    #[test]
    fn zero_budget_session_is_born_completed() {
        let s = SamplerSession::create(shared_client(), mto_job("z", 0, 1)).unwrap();
        assert_eq!(s.state(), SessionState::Completed);
    }

    #[test]
    fn job_line_round_trips_for_every_algorithm() {
        let specs = vec![
            mto_job("m", 500, 9),
            JobSpec {
                id: "m2".into(),
                algo: AlgoSpec::Mto(MtoConfig {
                    seed: 3,
                    removal: false,
                    replace_prob: 0.125,
                    criterion_view: CriterionView::Overlay,
                    min_overlay_degree: 5,
                    ..Default::default()
                }),
                start: NodeId(7),
                step_budget: 10,
                deadline: None,
                ess: None,
            },
            JobSpec {
                id: "s".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 4, lazy: true }),
                start: NodeId(1),
                step_budget: 20,
                deadline: Some(12.5),
                ess: Some(250),
            },
            JobSpec {
                id: "h".into(),
                algo: AlgoSpec::Mhrw(MhrwConfig { seed: 5 }),
                start: NodeId(2),
                step_budget: 30,
                deadline: Some(0.125),
                ess: None,
            },
            JobSpec {
                id: "r".into(),
                algo: AlgoSpec::Rj(RjConfig { seed: 6, jump_probability: 0.25 }),
                start: NodeId(3),
                step_budget: 40,
                deadline: None,
                ess: None,
            },
        ];
        for spec in specs {
            let line = format_job_line(&spec);
            assert_eq!(parse_job_line(&line).unwrap(), spec, "line {line:?}");
        }
    }

    #[test]
    fn job_line_rejects_malformed_input() {
        for bad in [
            "",
            "id=a",
            "id=a algo=warp start=0 steps=1",
            "id=a algo=mto start=0 steps=1 bogus=1",
            "id=a algo=mto start=x steps=1",
            "id=a algo=mto start=0 steps=1 lazy=maybe",
            "id=a id=b algo=mto start=0 steps=1",
            "id=a algo=mto start=0 steps=1 deadline=soon",
            "id=a algo=mto start=0 steps=1 deadline=-4.0",
            "id=a algo=mto start=0 steps=1 deadline=0",
            "id=a algo=mto start=0 steps=1 deadline=inf",
            "id=a algo=mto start=0 steps=1 ess=0",
            "id=a algo=mto start=0 steps=1 ess=-3",
            "id=a algo=mto start=0 steps=1 ess=soon",
        ] {
            assert!(parse_job_line(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn sample_observer_drains_the_degree_series_in_batches() {
        let mut s = SamplerSession::create(shared_client(), mto_job("q", 200, 3)).unwrap();
        let mut obs = SampleObserver::new();
        let first = obs.drain(&s);
        assert_eq!(first.len(), 1, "the seed position is a sample too");
        s.advance(80).unwrap();
        let mid = obs.drain(&s);
        assert_eq!(mid.len(), 80);
        assert!(obs.drain(&s).is_empty(), "nothing new since the cursor");
        s.run_to_completion().unwrap();
        let rest = obs.drain(&s);
        assert_eq!(obs.drained(), 201);

        // Batched drains see exactly the full-history degree series.
        let all: Vec<u64> = [first, mid, rest].concat();
        let whole: Vec<u64> = s.client().with(|c| {
            s.walker().history().iter().map(|&v| c.known_degree(v).unwrap() as u64).collect()
        });
        assert_eq!(all, whole);
    }

    #[test]
    fn snapshot_encode_decode_round_trips() {
        let mut s = SamplerSession::create(shared_client(), mto_job("snap", 300, 11)).unwrap();
        s.advance(120).unwrap();
        s.set_meta("network", "barbell");
        let snap = s.snapshot();
        let decoded = SessionSnapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.meta_value("network"), Some("barbell"));
    }

    #[test]
    fn restore_replays_to_the_snapshotted_state() {
        let mut original = SamplerSession::create(shared_client(), mto_job("r", 400, 17)).unwrap();
        original.advance(150).unwrap();
        let snap = original.snapshot();
        let unique_at_snap = original.unique_queries();

        let restored = SamplerSession::restore(shared_client(), &snap).unwrap();
        assert_eq!(restored.steps_taken(), 150);
        assert_eq!(restored.unique_queries(), unique_at_snap, "replay is free");
        assert_eq!(restored.walker().history(), original.walker().history());
        assert_eq!(restored.walker().rewire_stats(), original.walker().rewire_stats());
        // Counter fidelity: the replayed prefix's lookups are not
        // double-counted — the resumed client accounts exactly as the
        // original did at snapshot time.
        assert_eq!(
            restored.client().with(|c| c.total_lookups()),
            snap.history.cache.total_lookups,
            "snapshot → restore must be idempotent on every counter"
        );
    }

    #[test]
    #[should_panic(expected = "line breaks")]
    fn meta_values_cannot_inject_records() {
        let mut s = SamplerSession::create(shared_client(), mto_job("m", 10, 1)).unwrap();
        s.set_meta("note", "x\nsteps 0");
    }

    #[test]
    fn restore_rejects_a_snapshot_of_a_different_network() {
        let mut s = SamplerSession::create(shared_client(), mto_job("x", 300, 23)).unwrap();
        s.advance(200).unwrap();
        let mut snap = s.snapshot();
        // Sabotage: claim the walk ended somewhere else.
        snap.current = NodeId((snap.current.0 + 1) % 22);
        let err = match SamplerSession::restore(shared_client(), &snap) {
            Err(e) => e,
            Ok(_) => panic!("restore accepted a sabotaged snapshot"),
        };
        assert!(matches!(err, ServeError::SnapshotMismatch(_)), "{err:?}");
    }

    #[test]
    fn average_degree_estimate_lands_near_truth() {
        let client = shared_client();
        let mut s = SamplerSession::create(client, mto_job("est", 4000, 5)).unwrap();
        s.run_to_completion().unwrap();
        let est = s.average_degree_estimate().unwrap().unwrap();
        let truth = 2.0 * 111.0 / 22.0;
        assert!(
            (est - truth).abs() / truth < 0.35,
            "estimate {est:.2} too far from truth {truth:.2}"
        );
    }

    #[test]
    fn sessions_share_one_budget_through_one_client() {
        let client = shared_client();
        let mut a = SamplerSession::create(client.clone(), mto_job("a", 200, 1)).unwrap();
        let mut b = SamplerSession::create(client.clone(), mto_job("b", 200, 2)).unwrap();
        a.run_to_completion().unwrap();
        b.run_to_completion().unwrap();
        assert!(client.unique_queries() <= 22, "shared cache bounds cost at |V|");
        assert_eq!(a.unique_queries(), b.unique_queries(), "one shared bill");
    }
}
