//! Request files: the `mto_serve` binary's input format.
//!
//! A request file is line-oriented: blank lines and `#` comments are
//! ignored, every other line is a directive.
//!
//! ```text
//! # which simulated network to build (mto-graph generators)
//! network barbell
//! # optional provider simulation: rate limit + latency on the virtual
//! # clock (mto-net presets: facebook / twitter / google-plus)
//! provider facebook
//! # optional persistent history
//! warm-start crawl.hist
//! save-history crawl.hist
//! # scheduler knobs
//! workers 4
//! quantum 32
//! budget 5000
//! policy budget-proportional
//! # crash-safe append-only history (mto-serve journal format; replays
//! # on open, tolerates a torn tail)
//! journal crawl.journal
//! # observability: write the run's deterministic `mto-trace/v1` trace
//! # to a file, and append the metrics summary to the report (`metrics`
//! # is the one directive with no payload)
//! trace run.trace
//! metrics
//! # estimator-quality plane (payload-free, like `metrics`): streaming
//! # ESS / Geweke z per job and the cross-chain R-hat, folded at epoch
//! # barriers. Pure observation — results and trace spans are
//! # byte-identical with or without it. Jobs may then declare a
//! # `quality ess=N` SLO via `ess=` for deterministic early stop.
//! quality
//! # wall-clock plane: write a Prometheus text-exposition snapshot of
//! # the run's metrics and wall-phase timings here. The snapshot is a
//! # side channel — report bodies, traces, and `metric` lines stay
//! # byte-identical whether or not `prom` is present.
//! prom metrics.prom
//! # fleet mode (mto-fleet): shard the jobs across W workers and gossip
//! # history at N epoch barriers. Replaces the scheduler: `workers` /
//! # `quantum` are rejected together with `shards`; `budget` becomes the
//! # fleet-wide unique-query budget split by the mto-qos ledger, and
//! # `policy edf` schedules quanta earliest-deadline-first.
//! #shards 4
//! #epochs 8
//! # one line per job (same syntax as session snapshots); `deadline=` is
//! # an optional per-job completion deadline in virtual seconds
//! job id=a algo=mto start=0 steps=500 seed=7 deadline=45.0
//! job id=b algo=srw start=3 steps=500 seed=9
//! ```

use std::path::PathBuf;

use mto_graph::{generators, Graph};
use mto_net::ProviderProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::error::ServeError;
use crate::scheduler::{SchedulePolicy, SchedulerConfig};
use crate::session::{parse_job_line, JobSpec};

/// A buildable simulated-network description. Every variant maps to an
/// `mto_graph::generators` call, so the service layer stays below
/// `mto-experiments` in the crate DAG.
#[derive(Clone, Debug, PartialEq)]
pub enum NetworkSpec {
    /// The paper's 22-node barbell running example.
    Barbell,
    /// Complete graph `K_n`.
    Complete {
        /// Node count.
        n: usize,
    },
    /// Cycle graph `C_n`.
    Cycle {
        /// Node count (≥ 3).
        n: usize,
    },
    /// Erdős–Rényi `G(n, p)`.
    Gnp {
        /// Node count.
        n: usize,
        /// Edge probability.
        p: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Planted-partition stochastic block model.
    Sbm {
        /// Number of blocks.
        blocks: usize,
        /// Nodes per block.
        block_size: usize,
        /// Intra-block edge probability.
        p_in: f64,
        /// Inter-block edge probability.
        p_out: f64,
        /// Generator seed.
        seed: u64,
    },
    /// Watts–Strogatz small world.
    WattsStrogatz {
        /// Node count.
        n: usize,
        /// Ring degree (even).
        k: usize,
        /// Rewiring probability.
        beta: f64,
        /// Generator seed.
        seed: u64,
    },
}

impl NetworkSpec {
    /// Parses the payload of a `network` directive.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut tokens = text.split_whitespace();
        let name = tokens.next().ok_or("empty network spec")?;
        let mut fields = std::collections::HashMap::new();
        for token in tokens {
            let (k, v) = token
                .split_once('=')
                .ok_or_else(|| format!("expected key=value, got {token:?}"))?;
            if fields.insert(k, v).is_some() {
                return Err(format!("duplicate field {k:?}"));
            }
        }
        fn field<T: std::str::FromStr>(
            fields: &mut std::collections::HashMap<&str, &str>,
            key: &str,
        ) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            let v = fields.remove(key).ok_or_else(|| format!("missing {key}="))?;
            v.parse().map_err(|e| format!("bad {key} {v:?}: {e}"))
        }
        let spec = match name {
            "barbell" => NetworkSpec::Barbell,
            "complete" => NetworkSpec::Complete { n: field(&mut fields, "n")? },
            "cycle" => NetworkSpec::Cycle { n: field(&mut fields, "n")? },
            "gnp" => NetworkSpec::Gnp {
                n: field(&mut fields, "n")?,
                p: field(&mut fields, "p")?,
                seed: field(&mut fields, "seed")?,
            },
            "sbm" => NetworkSpec::Sbm {
                blocks: field(&mut fields, "blocks")?,
                block_size: field(&mut fields, "block-size")?,
                p_in: field(&mut fields, "p-in")?,
                p_out: field(&mut fields, "p-out")?,
                seed: field(&mut fields, "seed")?,
            },
            "ws" => NetworkSpec::WattsStrogatz {
                n: field(&mut fields, "n")?,
                k: field(&mut fields, "k")?,
                beta: field(&mut fields, "beta")?,
                seed: field(&mut fields, "seed")?,
            },
            other => return Err(format!("unknown network kind {other:?}")),
        };
        if let Some(k) = fields.keys().next() {
            return Err(format!("unknown field {k:?} for network {name}"));
        }
        Ok(spec)
    }

    /// The directive payload [`NetworkSpec::parse`] accepts back.
    pub fn to_line(&self) -> String {
        match self {
            NetworkSpec::Barbell => "barbell".to_string(),
            NetworkSpec::Complete { n } => format!("complete n={n}"),
            NetworkSpec::Cycle { n } => format!("cycle n={n}"),
            NetworkSpec::Gnp { n, p, seed } => format!("gnp n={n} p={p:?} seed={seed}"),
            NetworkSpec::Sbm { blocks, block_size, p_in, p_out, seed } => format!(
                "sbm blocks={blocks} block-size={block_size} p-in={p_in:?} p-out={p_out:?} \
                 seed={seed}"
            ),
            NetworkSpec::WattsStrogatz { n, k, beta, seed } => {
                format!("ws n={n} k={k} beta={beta:?} seed={seed}")
            }
        }
    }

    /// Node count of the network this spec builds — derivable without
    /// constructing the (possibly large random) graph, so request
    /// validation stays O(1).
    pub fn num_nodes(&self) -> usize {
        match *self {
            NetworkSpec::Barbell => generators::BarbellSpec::paper().num_nodes(),
            NetworkSpec::Complete { n }
            | NetworkSpec::Cycle { n }
            | NetworkSpec::Gnp { n, .. }
            | NetworkSpec::WattsStrogatz { n, .. } => n,
            NetworkSpec::Sbm { blocks, block_size, .. } => blocks * block_size,
        }
    }

    /// Builds the topology (deterministic given the spec).
    pub fn build(&self) -> Graph {
        match *self {
            NetworkSpec::Barbell => generators::paper_barbell(),
            NetworkSpec::Complete { n } => generators::complete_graph(n),
            NetworkSpec::Cycle { n } => generators::cycle_graph(n),
            NetworkSpec::Gnp { n, p, seed } => {
                generators::gnp_graph(n, p, &mut StdRng::seed_from_u64(seed))
            }
            NetworkSpec::Sbm { blocks, block_size, p_in, p_out, seed } => generators::sbm_graph(
                &generators::SbmSpec { block_sizes: vec![block_size; blocks], p_in, p_out },
                &mut StdRng::seed_from_u64(seed),
            ),
            NetworkSpec::WattsStrogatz { n, k, beta, seed } => {
                generators::watts_strogatz_graph(n, k, beta, &mut StdRng::seed_from_u64(seed))
            }
        }
    }
}

/// A parsed request file.
#[derive(Clone, Debug, PartialEq)]
pub struct ServeRequest {
    /// The network every job samples.
    pub network: NetworkSpec,
    /// Simulate this provider's rate limit and latency on the virtual
    /// clock (`provider` directive; reports then carry `virtual-secs`).
    pub provider: Option<ProviderProfile>,
    /// Warm-start the shared client from this history file.
    pub warm_start: Option<PathBuf>,
    /// After the run, persist the shared client's history here.
    pub save_history: Option<PathBuf>,
    /// Crash-safe append-only history journal (`journal` directive):
    /// warm-start from it when it exists, append the run's new knowledge
    /// afterwards. Mutually exclusive with `warm-start` (one source of
    /// prior truth per run).
    pub journal: Option<PathBuf>,
    /// Shard the jobs across this many fleet workers (`shards`
    /// directive); `None` runs the plain single-client scheduler. The
    /// fleet path lives in `mto-fleet`.
    pub shards: Option<usize>,
    /// Target number of epoch barriers for the fleet's history gossip
    /// (`epochs` directive; only meaningful with `shards`).
    pub epochs: Option<usize>,
    /// Scheduler knobs (`workers`, `quantum`, `budget`, `policy`
    /// directives).
    pub scheduler: SchedulerConfig,
    /// Write the run's deterministic `mto-trace/v1` trace here (`trace`
    /// directive). Trace contents cover only the deterministic plane —
    /// virtual-time span/point events that are byte-identical across
    /// shard and worker counts.
    pub trace: Option<PathBuf>,
    /// Append the metrics summary to the report (`metrics` directive,
    /// no payload).
    pub metrics: bool,
    /// Enable the estimator-quality plane (`quality` directive, no
    /// payload): per-job streaming ESS and windowed Geweke z, the
    /// cross-chain R-hat, `metric quality-*` report lines, and per-epoch
    /// quality trace points. Purely observational unless a job also
    /// declares an `ess=` SLO (which requires this directive).
    pub quality: bool,
    /// Write a Prometheus text-exposition snapshot here (`prom`
    /// directive). Enables the wall-clock telemetry plane for the run;
    /// the snapshot carries both the deterministic metrics and the
    /// wall-phase timings, and is the *only* output that varies run to
    /// run — reports, traces, and `metric` lines are unaffected.
    pub prom: Option<PathBuf>,
    /// The jobs, in file order.
    pub jobs: Vec<JobSpec>,
}

impl ServeRequest {
    /// Parses a request file.
    pub fn parse(text: &str) -> Result<Self, ServeError> {
        let mut network = None;
        let mut provider = None;
        let mut policy_seen = false;
        let mut warm_start = None;
        let mut save_history = None;
        let mut journal = None;
        let mut shards = None;
        let mut epochs = None;
        let mut workers_seen = false;
        let mut quantum_seen = false;
        let mut scheduler = SchedulerConfig::default();
        let mut trace = None;
        let mut metrics = false;
        let mut quality = false;
        let mut prom = None;
        let mut jobs: Vec<JobSpec> = Vec::new();
        let err = |line: usize, message: String| ServeError::Request { line, message };

        for (idx, raw) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // `metrics` and `quality` are the flag directives: no
            // payload to parse.
            if line == "metrics" {
                if metrics {
                    return Err(err(lineno, "duplicate metrics directive".into()));
                }
                metrics = true;
                continue;
            }
            if line == "quality" {
                if quality {
                    return Err(err(lineno, "duplicate quality directive".into()));
                }
                quality = true;
                continue;
            }
            let (keyword, rest) = match line.split_once(char::is_whitespace) {
                Some((k, r)) => (k, r.trim()),
                None => return Err(err(lineno, format!("directive {line:?} has no payload"))),
            };
            match keyword {
                "network" => {
                    if network.is_some() {
                        return Err(err(lineno, "duplicate network directive".into()));
                    }
                    network = Some(NetworkSpec::parse(rest).map_err(|m| err(lineno, m))?);
                }
                "provider" => {
                    if provider.is_some() {
                        return Err(err(lineno, "duplicate provider directive".into()));
                    }
                    provider =
                        Some(ProviderProfile::by_name(rest).ok_or_else(|| {
                            err(lineno, format!("unknown provider preset {rest:?}"))
                        })?);
                }
                "policy" => {
                    if policy_seen {
                        return Err(err(lineno, "duplicate policy directive".into()));
                    }
                    policy_seen = true;
                    scheduler.policy = SchedulePolicy::parse(rest).map_err(|m| err(lineno, m))?;
                }
                "trace" => {
                    if trace.is_some() {
                        return Err(err(lineno, "duplicate trace directive".into()));
                    }
                    trace = Some(PathBuf::from(rest));
                }
                "prom" => {
                    if prom.is_some() {
                        return Err(err(lineno, "duplicate prom directive".into()));
                    }
                    prom = Some(PathBuf::from(rest));
                }
                "warm-start" => warm_start = Some(PathBuf::from(rest)),
                "save-history" => save_history = Some(PathBuf::from(rest)),
                "journal" => journal = Some(PathBuf::from(rest)),
                "shards" => {
                    if shards.is_some() {
                        return Err(err(lineno, "duplicate shards directive".into()));
                    }
                    let n: usize =
                        rest.parse().map_err(|e| err(lineno, format!("bad shards: {e}")))?;
                    if n == 0 {
                        return Err(err(lineno, "shards must be at least 1".into()));
                    }
                    shards = Some(n);
                }
                "epochs" => {
                    if epochs.is_some() {
                        return Err(err(lineno, "duplicate epochs directive".into()));
                    }
                    let n: usize =
                        rest.parse().map_err(|e| err(lineno, format!("bad epochs: {e}")))?;
                    if n == 0 {
                        return Err(err(lineno, "epochs must be at least 1".into()));
                    }
                    epochs = Some(n);
                }
                "workers" => {
                    workers_seen = true;
                    scheduler.workers =
                        rest.parse().map_err(|e| err(lineno, format!("bad workers: {e}")))?;
                }
                "quantum" => {
                    quantum_seen = true;
                    scheduler.quantum =
                        rest.parse().map_err(|e| err(lineno, format!("bad quantum: {e}")))?;
                }
                "budget" => {
                    scheduler.global_query_budget =
                        Some(rest.parse().map_err(|e| err(lineno, format!("bad budget: {e}")))?);
                }
                "job" => {
                    let job = parse_job_line(rest).map_err(|m| err(lineno, m))?;
                    if jobs.iter().any(|j| j.id == job.id) {
                        return Err(err(lineno, format!("duplicate job id {:?}", job.id)));
                    }
                    jobs.push(job);
                }
                other => return Err(err(lineno, format!("unknown directive {other:?}"))),
            }
        }

        let network = network.ok_or_else(|| err(0, "missing `network` directive".into()))?;
        if jobs.is_empty() {
            return Err(err(0, "request names no jobs".into()));
        }
        if epochs.is_some() && shards.is_none() {
            return Err(err(0, "`epochs` requires a `shards` directive".into()));
        }
        // `budget` + `shards` is legal since the mto-qos ledger: the
        // fleet-wide budget is split per job at admission and rebalanced
        // at epoch barriers, so cuts no longer depend on shard placement.
        if shards.is_some() && scheduler.policy == SchedulePolicy::BudgetProportional {
            // The fleet's epoch planner implements round-robin and EDF;
            // silently running the proportional policy as round-robin
            // would drop a directive the user asked for.
            return Err(err(
                0,
                "`policy budget-proportional` tunes the single-client scheduler and is \
                 not implemented by the fleet planner; use `round-robin` or `edf` with \
                 `shards`"
                    .into(),
            ));
        }
        if shards.is_some() && (workers_seen || quantum_seen) {
            // Fleet parallelism is `shards`, fleet stepping granularity
            // is `epochs` — silently dropping the scheduler knobs would
            // let a request claim tuning it never gets.
            return Err(err(
                0,
                "`workers`/`quantum` tune the single-client scheduler and have no effect \
                 with `shards`; use `shards`/`epochs` instead"
                    .into(),
            ));
        }
        if journal.is_some() && warm_start.is_some() {
            return Err(err(
                0,
                "`journal` and `warm-start` are mutually exclusive (one source of prior \
                 history per run)"
                    .into(),
            ));
        }
        if !quality {
            if let Some(job) = jobs.iter().find(|j| j.ess.is_some()) {
                // An `ess=` SLO is judged against the quality plane's
                // streaming ESS; without the plane the target could
                // never latch and the job would silently run its full
                // budget — reject instead.
                return Err(err(
                    0,
                    format!(
                        "job {:?} declares an ess= SLO but the request has no `quality` \
                         directive (the quality plane computes the ESS the SLO is judged \
                         against)",
                        job.id
                    ),
                ));
            }
        }
        let num_nodes = network.num_nodes();
        for job in &jobs {
            if job.start.index() >= num_nodes {
                return Err(err(
                    0,
                    format!(
                        "job {:?} starts at {} but the network has {num_nodes} nodes",
                        job.id, job.start,
                    ),
                ));
            }
        }
        Ok(ServeRequest {
            network,
            provider,
            warm_start,
            save_history,
            journal,
            shards,
            epochs,
            scheduler,
            trace,
            metrics,
            quality,
            prom,
            jobs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::AlgoSpec;

    const SMOKE: &str = "\
# a comment
network barbell
provider facebook

workers 2
quantum 32
budget 100
policy budget-proportional
warm-start in.hist
save-history out.hist
job id=a algo=mto start=0 steps=400 seed=7
job id=b algo=srw start=3 steps=400 seed=9
";

    #[test]
    fn request_file_parses() {
        let req = ServeRequest::parse(SMOKE).unwrap();
        assert_eq!(req.network, NetworkSpec::Barbell);
        assert_eq!(req.provider, Some(ProviderProfile::facebook()));
        assert_eq!(req.scheduler.workers, 2);
        assert_eq!(req.scheduler.quantum, 32);
        assert_eq!(req.scheduler.global_query_budget, Some(100));
        assert_eq!(req.scheduler.policy, crate::scheduler::SchedulePolicy::BudgetProportional);
        assert_eq!(req.warm_start, Some(PathBuf::from("in.hist")));
        assert_eq!(req.save_history, Some(PathBuf::from("out.hist")));
        assert_eq!(req.jobs.len(), 2);
        assert!(matches!(req.jobs[0].algo, AlgoSpec::Mto(_)));
        assert_eq!(req.jobs[1].id, "b");
    }

    #[test]
    fn provider_and_policy_directives_default_off_and_reject_garbage() {
        let plain = "network barbell\njob id=a algo=mto start=0 steps=1";
        let req = ServeRequest::parse(plain).unwrap();
        assert_eq!(req.provider, None);
        assert_eq!(req.scheduler.policy, crate::scheduler::SchedulePolicy::RoundRobin);
        for (text, needle) in [
            ("network barbell\nprovider myspace\njob id=a algo=mto start=0 steps=1", "myspace"),
            (
                "network barbell\nprovider facebook\nprovider twitter\n\
                 job id=a algo=mto start=0 steps=1",
                "duplicate provider",
            ),
            ("network barbell\npolicy lottery\njob id=a algo=mto start=0 steps=1", "lottery"),
            (
                "network barbell\npolicy round-robin\npolicy budget-proportional\n\
                 job id=a algo=mto start=0 steps=1",
                "duplicate policy",
            ),
        ] {
            let e = ServeRequest::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} → {e}");
        }
    }

    #[test]
    fn fleet_and_journal_directives_parse_and_validate() {
        let req = ServeRequest::parse(
            "network barbell\nshards 4\nepochs 8\njournal crawl.journal\n\
             job id=a algo=mto start=0 steps=100",
        )
        .unwrap();
        assert_eq!(req.shards, Some(4));
        assert_eq!(req.epochs, Some(8));
        assert_eq!(req.journal, Some(PathBuf::from("crawl.journal")));

        let plain = ServeRequest::parse("network barbell\njob id=a algo=mto start=0 steps=1");
        let plain = plain.unwrap();
        assert_eq!(plain.shards, None);
        assert_eq!(plain.epochs, None);
        assert_eq!(plain.journal, None);

        for (text, needle) in [
            ("network barbell\nshards 0\njob id=a algo=mto start=0 steps=1", "at least 1"),
            ("network barbell\nepochs 0\nshards 2\njob id=a algo=mto start=0 steps=1", "at least"),
            ("network barbell\nshards 2\nshards 4\njob id=a algo=mto start=0 steps=1", "duplicate"),
            ("network barbell\nepochs 3\njob id=a algo=mto start=0 steps=1", "requires"),
            (
                "network barbell\nshards 2\npolicy budget-proportional\n\
                 job id=a algo=mto start=0 steps=1",
                "not implemented by the fleet planner",
            ),
            (
                "network barbell\nshards 2\nworkers 8\njob id=a algo=mto start=0 steps=1",
                "no effect",
            ),
            (
                "network barbell\nshards 2\nquantum 16\njob id=a algo=mto start=0 steps=1",
                "no effect",
            ),
            (
                "network barbell\njournal a.j\nwarm-start b.hist\n\
                 job id=a algo=mto start=0 steps=1",
                "mutually exclusive",
            ),
        ] {
            let e = ServeRequest::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} → {e}");
        }
    }

    #[test]
    fn budgeted_fleet_requests_with_deadlines_parse() {
        // `budget` + `shards` is legal since the QoS ledger (ROADMAP open
        // item resolved): the fleet budget is split per job at admission.
        let req = ServeRequest::parse(
            "network barbell\nshards 4\nepochs 6\nbudget 500\npolicy edf\n\
             job id=a algo=mto start=0 steps=100 deadline=12.5\n\
             job id=b algo=srw start=3 steps=100",
        )
        .unwrap();
        assert_eq!(req.shards, Some(4));
        assert_eq!(req.scheduler.global_query_budget, Some(500));
        assert_eq!(req.scheduler.policy, crate::scheduler::SchedulePolicy::EarliestDeadlineFirst);
        assert_eq!(req.jobs[0].deadline, Some(12.5));
        assert_eq!(req.jobs[1].deadline, None);
    }

    #[test]
    fn trace_and_metrics_directives_parse_and_reject_duplicates() {
        let req = ServeRequest::parse(
            "network barbell\ntrace run.trace\nmetrics\nprom run.prom\n\
             job id=a algo=mto start=0 steps=1",
        )
        .unwrap();
        assert_eq!(req.trace, Some(PathBuf::from("run.trace")));
        assert!(req.metrics);
        assert_eq!(req.prom, Some(PathBuf::from("run.prom")));

        let plain = ServeRequest::parse("network barbell\njob id=a algo=mto start=0 steps=1");
        let plain = plain.unwrap();
        assert_eq!(plain.trace, None);
        assert!(!plain.metrics, "observability defaults off");
        assert_eq!(plain.prom, None, "the wall-clock plane defaults off");

        for (text, needle) in [
            (
                "network barbell\ntrace a.t\ntrace b.t\njob id=a algo=mto start=0 steps=1",
                "duplicate trace",
            ),
            (
                "network barbell\nmetrics\nmetrics\njob id=a algo=mto start=0 steps=1",
                "duplicate metrics",
            ),
            (
                "network barbell\nprom a.prom\nprom b.prom\njob id=a algo=mto start=0 steps=1",
                "duplicate prom",
            ),
            ("network barbell\ntrace\njob id=a algo=mto start=0 steps=1", "no payload"),
            ("network barbell\nprom\njob id=a algo=mto start=0 steps=1", "no payload"),
        ] {
            let e = ServeRequest::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} → {e}");
        }
    }

    #[test]
    fn quality_directive_parses_and_gates_ess_slos() {
        let req = ServeRequest::parse(
            "network barbell\nquality\nshards 2\nepochs 4\n\
             job id=a algo=mto start=0 steps=100 ess=40\n\
             job id=b algo=srw start=3 steps=100",
        )
        .unwrap();
        assert!(req.quality);
        assert_eq!(req.jobs[0].ess, Some(40));
        assert_eq!(req.jobs[1].ess, None);

        let plain = ServeRequest::parse("network barbell\njob id=a algo=mto start=0 steps=1");
        assert!(!plain.unwrap().quality, "the quality plane defaults off");

        for (text, needle) in [
            (
                "network barbell\nquality\nquality\njob id=a algo=mto start=0 steps=1",
                "duplicate quality",
            ),
            (
                "network barbell\njob id=a algo=mto start=0 steps=100 ess=40",
                "no `quality` directive",
            ),
        ] {
            let e = ServeRequest::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} → {e}");
        }
    }

    #[test]
    fn request_file_rejections_carry_line_numbers() {
        for (text, needle) in [
            ("job id=a algo=mto start=0 steps=1", "missing `network`"),
            ("network barbell\n", "no jobs"),
            ("network barbell\nnetwork barbell\njob id=a algo=mto start=0 steps=1", "duplicate"),
            ("network barbell\nfrobnicate 3\njob id=a algo=mto start=0 steps=1", "frobnicate"),
            (
                "network barbell\njob id=a algo=mto start=0 steps=1\n\
                 job id=a algo=srw start=0 steps=1",
                "duplicate job id",
            ),
            ("network barbell\njob id=a algo=mto start=999 steps=1", "999"),
            ("network nope\njob id=a algo=mto start=0 steps=1", "unknown network"),
        ] {
            let e = ServeRequest::parse(text).unwrap_err();
            assert!(e.to_string().contains(needle), "{text:?} → {e}");
        }
    }

    #[test]
    fn network_specs_round_trip_and_build() {
        let specs = vec![
            NetworkSpec::Barbell,
            NetworkSpec::Complete { n: 6 },
            NetworkSpec::Cycle { n: 9 },
            NetworkSpec::Gnp { n: 30, p: 0.2, seed: 5 },
            NetworkSpec::Sbm { blocks: 3, block_size: 10, p_in: 0.5, p_out: 0.05, seed: 7 },
            NetworkSpec::WattsStrogatz { n: 24, k: 4, beta: 0.1, seed: 3 },
        ];
        for spec in specs {
            let line = spec.to_line();
            assert_eq!(NetworkSpec::parse(&line).unwrap(), spec, "line {line:?}");
            let g = spec.build();
            assert!(g.num_nodes() > 0);
            assert_eq!(g.num_nodes(), spec.num_nodes(), "cheap node count must match the build");
            // Deterministic rebuild.
            assert_eq!(g.num_edges(), spec.build().num_edges());
        }
    }

    #[test]
    fn job_start_bounds_are_checked_against_the_network() {
        let ok = "network complete n=5\njob id=a algo=mto start=4 steps=10";
        assert!(ServeRequest::parse(ok).is_ok());
        let bad = "network complete n=5\njob id=a algo=mto start=5 steps=10";
        assert!(ServeRequest::parse(bad).is_err());
    }
}
