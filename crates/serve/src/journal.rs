//! Crash-safe append-only journaling for the crawl history.
//!
//! [`crate::history::HistoryStore`]'s snapshot codec seals a whole file
//! under one trailing checksum — perfect integrity, but a process that
//! dies mid-save loses *everything* since the last save. The
//! [`HistoryJournal`] is the incremental complement: knowledge is
//! **appended as it arrives**, one self-sealed record per line, so a
//! crash costs at most the torn tail of the final record. Opening a
//! journal replays it; a damaged tail decodes to a *clean recovery*
//! (the valid prefix survives, the torn bytes are dropped), while damage
//! *before* intact records — which no crash can produce — is rejected as
//! corruption. [`HistoryJournal::compact`] rewrites the accumulated
//! store into the existing checksummed snapshot format, and
//! [`HistoryJournal::open`] accepts either format (a snapshot is
//! converted back to journal form so appends can continue), closing the
//! journal → compact → journal cycle.
//!
//! ## On-disk format
//!
//! ```text
//! mto-journal v1
//! users 22 ~<fnv64>
//! node 3 34 120 7 1 1,2,5 ~<fnv64>
//! degree 9 14 ~<fnv64>
//! crawl 5 12 0 ~<fnv64>
//! ```
//!
//! Records reuse the snapshot vocabulary (`users`, `node`, `degree`,
//! `removed`, `added`). Cost accounting is **per crawl**: every
//! absorbing run appends one `crawl <unique> <lookups> <retries>` record
//! with the counters *that run* contributed, and replay *sums* the crawl
//! records — so several distinct crawls absorbing into one journal bill
//! correctly instead of collapsing max-wise (the pre-ledger undercount).
//! Legacy journals' `unique`/`lookups`/`retries` records still replay
//! last-write-wins as the pre-ledger base, and new crawl records add on
//! top of it. Each line carries a trailing ` ~<hex>` FNV-1a 64 seal over
//! the record text; a torn write fails its seal and marks the damaged
//! tail.

use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};

use mto_graph::NodeId;

use crate::error::{HistoryCodecError, Result, ServeError};
use crate::history::{
    crawl_record, degree_record, expect_header, fnv1a64, node_record, overlay_record,
    parse_crawl_record, split_keyword, CrawlCounters, HistoryAccumulator, HistoryStore,
    FORMAT_VERSION, HISTORY_MAGIC,
};

/// Magic of append-only journal files.
pub const JOURNAL_MAGIC: &str = "mto-journal";

/// What [`HistoryJournal::open`] found on disk.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalRecovery {
    /// Records successfully replayed from the valid prefix.
    pub replayed_records: u64,
    /// Whether a damaged tail (a torn final write) was dropped. The file
    /// is truncated back to the valid prefix before any new append.
    pub recovered: bool,
    /// Bytes of damaged tail dropped (0 when `recovered` is false).
    pub dropped_bytes: usize,
}

/// An open append-only history journal: the replayed [`HistoryStore`]
/// plus an append handle positioned at the end of the valid prefix.
#[derive(Debug)]
pub struct HistoryJournal {
    path: PathBuf,
    file: std::fs::File,
    store: HistoryStore,
    seen_nodes: HashSet<u32>,
    seen_hints: HashSet<u32>,
    seen_removed: HashSet<(NodeId, NodeId)>,
    seen_added: HashSet<(NodeId, NodeId)>,
    /// The highest counters this *instance* has absorbed so far — the
    /// baseline its next `crawl` delta record is computed against. A
    /// fresh instance starts at zero, so each journal session (one
    /// absorbing run) bills as its own crawl; repeated absorbs of one
    /// growing client within a session append only the growth.
    absorbed: CrawlCounters,
    records: u64,
}

/// Seals one record line: `<record> ~<fnv64 hex>`.
fn seal_record(record: &str) -> String {
    format!("{record} ~{:016x}\n", fnv1a64(record.as_bytes()))
}

/// Splits and verifies a sealed line, returning the record text.
fn unseal(line: &str) -> Option<&str> {
    let (record, hex) = line.rsplit_once(" ~")?;
    let stored = u64::from_str_radix(hex, 16).ok()?;
    (fnv1a64(record.as_bytes()) == stored).then_some(record)
}

impl HistoryJournal {
    /// Creates a fresh journal at `path` (truncating anything there).
    pub fn create(path: &Path) -> Result<Self> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(format!("{JOURNAL_MAGIC} v{FORMAT_VERSION}\n").as_bytes())?;
        file.sync_all()?;
        Ok(HistoryJournal {
            path: path.to_path_buf(),
            file,
            store: HistoryStore::default(),
            seen_nodes: HashSet::new(),
            seen_hints: HashSet::new(),
            seen_removed: HashSet::new(),
            seen_added: HashSet::new(),
            absorbed: CrawlCounters::default(),
            records: 0,
        })
    }

    /// Opens `path`, replaying whatever is there:
    ///
    /// * a **journal** file replays record by record — a torn tail is
    ///   dropped and reported as a recovery, damage *before* intact
    ///   records is corruption and rejected;
    /// * a **snapshot** file ([`HistoryStore`] format, e.g. the output of
    ///   [`HistoryJournal::compact`]) is decoded under its checksum and
    ///   rewritten in journal form so appends can continue.
    pub fn open(path: &Path) -> Result<(Self, JournalRecovery)> {
        let bytes = std::fs::read(path)?;
        // Torn writes can only truncate ASCII records, but be defensive:
        // non-UTF-8 bytes become U+FFFD, fail their seal, and land in the
        // damaged-tail path like any other torn data.
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let header = text.lines().next().unwrap_or("");
        if header.starts_with(HISTORY_MAGIC) {
            let store = HistoryStore::decode(&text)?;
            let records = count_records(&store);
            // Convert snapshot → journal *atomically* (build the journal
            // form beside the snapshot, then rename over it): a crash
            // mid-conversion must leave either the old snapshot or the
            // new journal on disk, never a truncated file. The rename
            // keeps the open handle valid (same inode, new name).
            let tmp = path.with_extension("journal-tmp");
            let mut journal = Self::create(&tmp)?;
            journal.absorb_preserving_ledger(&store)?;
            journal.sync()?;
            std::fs::rename(&tmp, path)?;
            journal.path = path.to_path_buf();
            // The converted journal starts a *new* crawl session: its
            // next absorb must bill from zero, not from the snapshot's
            // historical totals.
            journal.absorbed = CrawlCounters::default();
            return Ok((
                journal,
                JournalRecovery { replayed_records: records, ..Default::default() },
            ));
        }

        // Only newline-terminated lines are *complete* writes; trailing
        // bytes without a final newline are a torn tail even when they
        // happen to seal (the record's own newline never landed).
        let body_end = text.rfind('\n').map(|i| i + 1).unwrap_or(0);
        let mut lines = text[..body_end].lines().enumerate();
        expect_header(lines.next(), JOURNAL_MAGIC)?;
        let mut acc = HistoryAccumulator::default();
        let mut replayed = 0u64;
        let mut valid_bytes = header.len() + 1; // header + its newline
        let mut lineno = 1;
        let mut damaged_at: Option<(usize, usize)> = None; // (lineno, byte offset)
        for (idx, line) in lines {
            lineno = idx + 1;
            let parsed = unseal(line).and_then(|record| {
                let (keyword, rest) = split_keyword(record, lineno).ok()?;
                if keyword == "crawl" {
                    // Journal semantics: every crawl record is one run's
                    // *increment*, so the totals are the ledger's sum
                    // (plus any legacy last-write-wins base records).
                    let c = parse_crawl_record(rest, lineno).ok()?;
                    acc.store.crawls.push(c);
                    acc.store.cache.unique_queries += c.unique_queries;
                    acc.store.cache.total_lookups += c.total_lookups;
                    acc.store.cache.transient_retries += c.transient_retries;
                    return Some(());
                }
                acc.consume(keyword, rest, lineno).ok().filter(|&known| known).map(|_| ())
            });
            if parsed.is_none() {
                damaged_at = Some((lineno, valid_bytes));
                break;
            }
            replayed += 1;
            valid_bytes += line.len() + 1;
        }
        if damaged_at.is_none() && body_end < text.len() {
            damaged_at = Some((lineno + 1, body_end));
        }

        let mut recovery =
            JournalRecovery { replayed_records: replayed, recovered: false, dropped_bytes: 0 };
        if let Some((lineno, offset)) = damaged_at {
            // A crash tears only the *final* write. If any later line
            // still verifies its seal, the damage is mid-file corruption,
            // not a torn tail — refuse to silently drop good records.
            if text[offset..].lines().skip(1).any(|l| unseal(l).is_some()) {
                return Err(ServeError::Codec(HistoryCodecError::BadRecord {
                    line: lineno,
                    message: "damaged record with intact records after it (corruption, \
                              not a torn tail)"
                        .into(),
                }));
            }
            recovery.recovered = true;
            recovery.dropped_bytes = bytes.len() - offset;
            let file = std::fs::OpenOptions::new().write(true).open(path)?;
            file.set_len(offset as u64)?;
            file.sync_all()?;
        }

        let store = std::mem::take(&mut acc.store);
        let file = std::fs::OpenOptions::new().append(true).open(path)?;
        let mut journal = HistoryJournal {
            path: path.to_path_buf(),
            file,
            seen_nodes: store.cache.responses.iter().map(|r| r.user.0).collect(),
            seen_hints: store.cache.degree_hints.iter().map(|&(v, _)| v.0).collect(),
            seen_removed: store.removed.iter().copied().collect(),
            seen_added: store.added.iter().copied().collect(),
            // A reopened journal is a *new* crawl: its first absorb
            // starts billing from zero, summing onto the replayed ledger.
            absorbed: CrawlCounters::default(),
            records: replayed,
            store,
        };
        // Canonical in-memory order, matching what absorb() maintains —
        // a reopened journal's store must compare equal to the store the
        // writing process held (records land on disk in arrival order).
        journal.store.cache.responses.sort_unstable_by_key(|r| r.user);
        journal.store.cache.degree_hints.sort_unstable_by_key(|&(v, _)| v);
        journal.store.removed.sort_unstable();
        journal.store.added.sort_unstable();
        Ok((journal, recovery))
    }

    /// The journal's on-disk location.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The replayed-plus-appended store (content records and the last
    /// appended counters).
    pub fn store(&self) -> &HistoryStore {
        &self.store
    }

    /// Records in the journal (replayed + appended this session).
    pub fn records(&self) -> u64 {
        self.records
    }

    fn append_record(&mut self, record: &str) -> Result<()> {
        self.file.write_all(seal_record(record).as_bytes())?;
        self.records += 1;
        Ok(())
    }

    /// Appends everything `other` knows that the journal does not:
    /// responses, degree hints, overlay edges, the user count — plus one
    /// `crawl` ledger record carrying the counters this absorbing run
    /// contributed, so distinct crawls **sum** into the journal's bill.
    /// Repeated absorbs of one *growing* crawl (counters field-wise ≥
    /// the previous absorb's) append only their growth; a store whose
    /// counters regressed cannot be the same crawl and bills in full.
    /// (A distinct crawl whose counters happen to dominate the previous
    /// absorb's is indistinguishable from growth — reopen the journal,
    /// or use one instance per crawl as the `mto_serve` binary does, to
    /// bill it exactly.) Returns how many records were appended.
    /// Refuses stores from a different network.
    pub fn absorb(&mut self, other: &HistoryStore) -> Result<u64> {
        let before = self.records;
        self.absorb_content(other)?;
        let counters = CrawlCounters::of(&other.cache);
        let grown = counters.max(&self.absorbed) == counters;
        let delta = if grown {
            // The same crawl, further along: bill the growth.
            counters.saturating_sub(&self.absorbed)
        } else {
            // Counters regressed somewhere: a distinct crawl, billed in
            // full (the fix for the max-wise undercount).
            counters
        };
        if !delta.is_zero() {
            self.append_crawl(delta)?;
        }
        self.absorbed = counters;
        self.sort_store();
        Ok(self.records - before)
    }

    /// The snapshot → journal conversion path: absorbs `other`'s content
    /// and re-appends its **existing per-crawl ledger** entry by entry
    /// (plus one entry for any pre-ledger remainder), so compaction does
    /// not collapse the breakdown.
    fn absorb_preserving_ledger(&mut self, other: &HistoryStore) -> Result<u64> {
        let before = self.records;
        self.absorb_content(other)?;
        let mut carried = CrawlCounters::default();
        for &c in &other.crawls {
            self.append_crawl(c)?;
            carried.unique_queries += c.unique_queries;
            carried.total_lookups += c.total_lookups;
            carried.transient_retries += c.transient_retries;
        }
        // Counters beyond the ledger sum (a plain snapshot with no
        // ledger, or a legacy base) become one more crawl entry.
        let remainder = CrawlCounters::of(&other.cache).saturating_sub(&carried);
        if !remainder.is_zero() {
            self.append_crawl(remainder)?;
        }
        self.absorbed = self.absorbed.max(&CrawlCounters::of(&other.cache));
        self.sort_store();
        Ok(self.records - before)
    }

    /// Appends the content records (everything except the cost ledger).
    fn absorb_content(&mut self, other: &HistoryStore) -> Result<()> {
        if let (Some(mine), Some(theirs)) = (self.store.num_users, other.num_users) {
            if mine != theirs {
                return Err(ServeError::SnapshotMismatch(format!(
                    "journal was crawled from a {mine}-user network, \
                     the absorbed store from a {theirs}-user network"
                )));
            }
        }
        if self.store.num_users.is_none() {
            if let Some(n) = other.num_users {
                self.append_record(&format!("users {n}"))?;
                self.store.num_users = Some(n);
            }
        }
        for r in &other.cache.responses {
            if self.seen_nodes.insert(r.user.0) {
                self.append_record(&node_record(r))?;
                self.store.cache.responses.push(r.clone());
            }
        }
        for &(v, d) in &other.cache.degree_hints {
            if !self.seen_nodes.contains(&v.0) && self.seen_hints.insert(v.0) {
                self.append_record(&degree_record(v, d))?;
                self.store.cache.degree_hints.push((v, d));
            }
        }
        for &(u, v) in &other.removed {
            if self.seen_removed.insert((u, v)) {
                self.append_record(&overlay_record("removed", u, v))?;
                self.store.removed.push((u, v));
            }
        }
        for &(u, v) in &other.added {
            if self.seen_added.insert((u, v)) {
                self.append_record(&overlay_record("added", u, v))?;
                self.store.added.push((u, v));
            }
        }
        Ok(())
    }

    /// Appends one per-crawl ledger record and folds it into the totals.
    fn append_crawl(&mut self, c: CrawlCounters) -> Result<()> {
        self.append_record(&crawl_record(&c))?;
        self.store.crawls.push(c);
        self.store.cache.unique_queries += c.unique_queries;
        self.store.cache.total_lookups += c.total_lookups;
        self.store.cache.transient_retries += c.transient_retries;
        Ok(())
    }

    /// Canonical in-memory order (crawl ledger entries keep arrival
    /// order — they are a log, not a set).
    fn sort_store(&mut self) {
        self.store.cache.responses.sort_unstable_by_key(|r| r.user);
        self.store.cache.degree_hints.sort_unstable_by_key(|&(v, _)| v);
        self.store.removed.sort_unstable();
        self.store.added.sort_unstable();
    }

    /// Flushes appended records to stable storage.
    pub fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Rewrites the journal as a checksummed [`HistoryStore`] snapshot
    /// (atomically: temp file + rename) and returns the store. Reopening
    /// the compacted file with [`HistoryJournal::open`] converts it back
    /// to journal form, so the journal → compact → journal cycle is
    /// closed.
    pub fn compact(mut self) -> Result<HistoryStore> {
        self.sync()?;
        let tmp = self.path.with_extension("compact-tmp");
        std::fs::write(&tmp, self.store.encode())?;
        std::fs::rename(&tmp, &self.path)?;
        Ok(self.store)
    }
}

fn count_records(store: &HistoryStore) -> u64 {
    (store.cache.responses.len()
        + store.cache.degree_hints.len()
        + store.removed.len()
        + store.added.len()
        + store.crawls.len()
        + usize::from(store.num_users.is_some())) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_core::rewire::OverlayDelta;
    use mto_graph::generators::paper_barbell;
    use mto_osn::{CachedClient, OsnService};

    fn temp(name: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("mto-journal-{name}-{}-{n}.journal", std::process::id()))
    }

    fn crawl_store(nodes: &[u32]) -> HistoryStore {
        let mut client = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        for &v in nodes {
            client.query(NodeId(v)).unwrap();
        }
        client.remember_degree(NodeId(20), 11);
        let mut delta = OverlayDelta::new();
        delta.remove_edge(NodeId(0), NodeId(5));
        HistoryStore::from_parts(&client, Some(&delta))
    }

    #[test]
    fn append_then_open_replays_the_same_store() {
        let path = temp("roundtrip");
        let store = crawl_store(&[0, 1, 5, 11]);
        let mut j = HistoryJournal::create(&path).unwrap();
        let appended = j.absorb(&store).unwrap();
        assert!(appended >= 6, "4 nodes + hint + overlay + users + counters");
        j.sync().unwrap();

        let (reopened, recovery) = HistoryJournal::open(&path).unwrap();
        assert!(!recovery.recovered);
        assert_eq!(recovery.replayed_records, j.records());
        assert_eq!(reopened.store(), j.store());
        assert_eq!(reopened.store(), &{
            let mut expect = store.clone();
            expect.cache.responses.sort_unstable_by_key(|r| r.user);
            // One absorbing run = one per-crawl ledger entry.
            expect.crawls = vec![CrawlCounters::of(&store.cache)];
            expect
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absorbing_the_same_store_twice_appends_nothing() {
        let path = temp("dedup");
        let store = crawl_store(&[0, 3]);
        let mut j = HistoryJournal::create(&path).unwrap();
        j.absorb(&store).unwrap();
        let records = j.records();
        assert_eq!(j.absorb(&store).unwrap(), 0, "idempotent absorb");
        assert_eq!(j.records(), records);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_order_absorbs_reopen_to_the_same_store() {
        // Overlay edges (and responses) arrive on disk in append order;
        // reopening must canonicalize to exactly the in-memory order the
        // writing process held, or round-trip equality silently breaks.
        let path = temp("unordered");
        let mut j = HistoryJournal::create(&path).unwrap();
        let mut late = HistoryStore::default();
        late.removed.push((NodeId(5), NodeId(9)));
        late.added.push((NodeId(7), NodeId(8)));
        j.absorb(&late).unwrap();
        let mut early = HistoryStore::default();
        early.removed.push((NodeId(0), NodeId(2)));
        early.added.push((NodeId(1), NodeId(3)));
        j.absorb(&early).unwrap();
        j.absorb(&crawl_store(&[11, 0])).unwrap();
        j.sync().unwrap();
        let in_memory = j.store().clone();
        drop(j);
        let (reopened, recovery) = HistoryJournal::open(&path).unwrap();
        assert!(!recovery.recovered);
        assert_eq!(reopened.store(), &in_memory, "reopen must match the pre-crash store");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn incremental_absorbs_keep_counters_un_double_counted() {
        let path = temp("counters");
        let mut client = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        let mut j = HistoryJournal::create(&path).unwrap();
        client.query(NodeId(0)).unwrap();
        j.absorb(&HistoryStore::from_client(&client)).unwrap();
        client.query(NodeId(1)).unwrap();
        client.query(NodeId(2)).unwrap();
        j.absorb(&HistoryStore::from_client(&client)).unwrap();
        assert_eq!(
            j.store().cache.unique_queries,
            3,
            "one growing crawl bills only its growth, never double"
        );
        let (reopened, _) = HistoryJournal::open(&path).unwrap();
        assert_eq!(reopened.store().cache.unique_queries, 3, "ledger entries sum to the bill");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn distinct_crawls_sum_within_one_instance_too() {
        // Two distinct stores absorbed through ONE journal instance: the
        // second store's smaller counters prove it is not the first
        // crawl grown further, so it must bill in full (3 + 2 = 5), not
        // delta-against-a-max (which would bill 0).
        let path = temp("oneinstance");
        let mut j = HistoryJournal::create(&path).unwrap();
        let mut a = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        for v in [0u32, 1, 2] {
            a.query(NodeId(v)).unwrap();
        }
        let mut b = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        for v in [11u32, 12] {
            b.query(NodeId(v)).unwrap();
        }
        j.absorb(&HistoryStore::from_client(&a)).unwrap();
        j.absorb(&HistoryStore::from_client(&b)).unwrap();
        assert_eq!(j.store().cache.unique_queries, 5, "3 + 2 within one instance");
        // And crawl B growing afterwards bills only its growth.
        b.query(NodeId(13)).unwrap();
        j.absorb(&HistoryStore::from_client(&b)).unwrap();
        assert_eq!(j.store().cache.unique_queries, 6, "B's growth is 1, not re-billed");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn distinct_crawls_sum_into_the_ledger_instead_of_collapsing_max_wise() {
        // The pre-ledger undercount (ROADMAP open item): two *distinct*
        // runs paying 3 and 2 unique queries used to collapse to
        // max(3, 2) = 3. With per-crawl records they must sum to 5.
        let path = temp("percrawl");
        let mut j = HistoryJournal::create(&path).unwrap();
        let mut first = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        for v in [0u32, 1, 2] {
            first.query(NodeId(v)).unwrap();
        }
        j.absorb(&HistoryStore::from_client(&first)).unwrap();
        j.sync().unwrap();
        drop(j);

        // A second run in a fresh process: its client was warm-started,
        // so its final store carries only its own (smaller) bill.
        let (mut j2, _) = HistoryJournal::open(&path).unwrap();
        let mut second = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        for v in [11u32, 12] {
            second.query(NodeId(v)).unwrap();
        }
        j2.absorb(&HistoryStore::from_client(&second)).unwrap();
        assert_eq!(j2.store().cache.unique_queries, 5, "3 + 2, not max(3, 2)");
        assert_eq!(
            j2.store().crawls.iter().map(|c| c.unique_queries).collect::<Vec<_>>(),
            vec![3, 2],
            "one ledger entry per absorbing run"
        );
        j2.sync().unwrap();
        drop(j2);
        let (reopened, _) = HistoryJournal::open(&path).unwrap();
        assert_eq!(reopened.store().cache.unique_queries, 5, "the sum survives replay");
        assert_eq!(reopened.store().crawls.len(), 2);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_recovers_the_prefix() {
        let path = temp("torn");
        let mut j = HistoryJournal::create(&path).unwrap();
        j.absorb(&crawl_store(&[0, 1, 5, 11, 16])).unwrap();
        j.sync().unwrap();
        let full = std::fs::read(&path).unwrap();
        let full_records = j.records();
        drop(j);
        // Tear the final record mid-line, as a crash during a write would.
        std::fs::write(&path, &full[..full.len() - 9]).unwrap();

        let (recovered, recovery) = HistoryJournal::open(&path).unwrap();
        assert!(recovery.recovered, "torn tail must be reported");
        assert!(recovery.dropped_bytes > 0);
        assert_eq!(recovery.replayed_records, full_records - 1, "only the torn record is lost");
        // The file was truncated to the valid prefix: a second open is
        // clean, and appends continue from there.
        drop(recovered);
        let (again, recovery2) = HistoryJournal::open(&path).unwrap();
        assert!(!recovery2.recovered);
        assert_eq!(recovery2.replayed_records, full_records - 1);
        drop(again);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mid_file_corruption_is_rejected_not_recovered() {
        let path = temp("corrupt");
        let mut j = HistoryJournal::create(&path).unwrap();
        j.absorb(&crawl_store(&[0, 1, 5, 11])).unwrap();
        j.sync().unwrap();
        drop(j);
        let mut bytes = std::fs::read(&path).unwrap();
        // Flip a byte in the middle of the file, leaving valid sealed
        // records after it — no crash produces this shape.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&path, &bytes).unwrap();
        let err = HistoryJournal::open(&path).unwrap_err();
        assert!(err.to_string().contains("corruption"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn compact_seals_a_snapshot_and_open_converts_it_back() {
        let path = temp("compact");
        let store = crawl_store(&[0, 1, 2, 5]);
        let mut j = HistoryJournal::create(&path).unwrap();
        j.absorb(&store).unwrap();
        let expected = j.store().clone();
        let compacted = j.compact().unwrap();
        assert_eq!(compacted, expected);

        // The file is now a plain checksummed snapshot…
        let loaded = HistoryStore::load(&path).unwrap();
        assert_eq!(loaded, expected);
        // …and open() converts it back to an appendable journal.
        let (mut j2, recovery) = HistoryJournal::open(&path).unwrap();
        assert!(!recovery.recovered);
        assert_eq!(j2.store(), &expected);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.starts_with("mto-journal v1\n"), "rewritten as a journal");
        // The counters and the per-crawl ledger survive the cycle…
        assert_eq!(j2.store().cache.unique_queries, expected.cache.unique_queries);
        assert_eq!(j2.store().crawls, expected.crawls, "compact preserves the ledger");
        // …and a further absorb bills as its own crawl on top.
        let before = j2.store().cache.unique_queries;
        j2.absorb(&crawl_store(&[7])).unwrap();
        assert!(j2.store().cache.responses.iter().any(|r| r.user == NodeId(7)));
        assert!(
            j2.store().cache.unique_queries > before,
            "a distinct run after compaction must add to the bill"
        );
        assert_eq!(j2.store().crawls.len(), expected.crawls.len() + 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn absorb_refuses_a_store_from_another_network() {
        let path = temp("crossnet");
        let mut j = HistoryJournal::create(&path).unwrap();
        j.absorb(&crawl_store(&[0])).unwrap();
        let mut client =
            CachedClient::new(OsnService::with_defaults(&mto_graph::generators::complete_graph(5)));
        client.query(NodeId(0)).unwrap();
        let err = j.absorb(&HistoryStore::from_client(&client)).unwrap_err();
        assert!(err.to_string().contains("22") && err.to_string().contains("5"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn garbage_files_are_rejected_cleanly() {
        for garbage in ["", "mto-nonsense v1\n", "mto-journal v99\nnode 1 ~00"] {
            let path = temp("garbage");
            std::fs::write(&path, garbage).unwrap();
            assert!(HistoryJournal::open(&path).is_err(), "accepted {garbage:?}");
            std::fs::remove_file(&path).ok();
        }
    }

    #[test]
    fn journal_store_warm_starts_a_client() {
        let path = temp("warm");
        let mut j = HistoryJournal::create(&path).unwrap();
        j.absorb(&crawl_store(&[0, 1, 5])).unwrap();
        j.sync().unwrap();
        drop(j);
        let (j, _) = HistoryJournal::open(&path).unwrap();
        let warm = j.store().warm_start(OsnService::with_defaults(&paper_barbell())).unwrap();
        assert_eq!(warm.num_cached(), 3);
        assert_eq!(warm.unique_queries(), 0, "journal knowledge is free on warm start");
        std::fs::remove_file(&path).ok();
    }
}
