//! The persistent crawl-history store and its hand-rolled codec.
//!
//! The paper's cost model makes every *unique* query precious, and its
//! Section III-D "local database" of remembered degrees is the seed of
//! this module: a [`HistoryStore`] persists everything a sampling run
//! learned — the full query cache, the degree hints, and the overlay
//! delta — so a *later* run against the same network can warm-start from
//! it and pay only for nodes nobody has visited before (the dominant cost
//! lever identified by "Leveraging History for Faster Sampling of Online
//! Social Networks", arXiv:1505.00079).
//!
//! ## On-disk format
//!
//! The build environment is offline (no serde), so the codec is a
//! hand-rolled, versioned, line-oriented text format — debuggable with
//! `cat`, strict to parse, and integrity-checked end to end:
//!
//! ```text
//! mto-history v1
//! users 22
//! unique 5
//! lookups 12
//! retries 0
//! node 3 34 120 7 1 1,2,5
//! degree 9 14
//! removed 1 2
//! added 0 12
//! checksum 91b0f3e86e6f35e6
//! ```
//!
//! * `users <n>` — the provider-published user count (when available;
//!   verified before any import);
//! * `node <id> <age> <desc-len> <posts> <public> <neighbors>` — one cached
//!   [`QueryResponse`] (`-` encodes an empty neighbor list);
//! * `degree <id> <k>` — a remembered degree without a neighborhood;
//! * `removed` / `added <u> <v>` — one overlay-delta edge;
//! * `crawl <unique> <lookups> <retries>` — one entry of the per-crawl
//!   accounting ledger (see [`CrawlCounters`]): how much of the store's
//!   total bill one distinct absorbing run contributed;
//! * the trailing `checksum` line is an FNV-1a 64 hash of every preceding
//!   byte. Truncated input loses the trailer and decodes to
//!   [`HistoryCodecError::Truncated`]; a flipped byte decodes to
//!   [`HistoryCodecError::ChecksumMismatch`]. The decoder never panics.

use std::path::Path;

use mto_core::rewire::OverlayDelta;
use mto_graph::NodeId;
use mto_osn::{CacheSnapshot, CachedClient, QueryResponse, SocialNetworkInterface, UserProfile};

use crate::error::{HistoryCodecError, Result};

/// Magic of standalone history files.
pub const HISTORY_MAGIC: &str = "mto-history";
/// Magic of session-snapshot files (see [`crate::session::SessionSnapshot`]).
pub const SESSION_MAGIC: &str = "mto-session";
/// The format version this build reads and writes.
pub const FORMAT_VERSION: u32 = 1;

/// Everything a sampling run learned about one network, in persistable
/// form: the query cache, the remembered degrees, and the overlay delta.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistoryStore {
    /// The client cache: responses, degree hints, and cost counters.
    pub cache: CacheSnapshot,
    /// Overlay edges removed by rewiring, as `(u, v)` pairs.
    pub removed: Vec<(NodeId, NodeId)>,
    /// Overlay edges added by rewiring, as `(u, v)` pairs.
    pub added: Vec<(NodeId, NodeId)>,
    /// The provider-published user count of the network the history was
    /// crawled from, when available. Checked on import so a history is
    /// never silently applied to the wrong network.
    pub num_users: Option<usize>,
    /// The per-crawl accounting ledger: one [`CrawlCounters`] entry per
    /// distinct absorbing run (maintained by
    /// [`crate::journal::HistoryJournal`]; empty for stores captured
    /// straight from a client). When non-empty, the entries sum to the
    /// cache counters minus any legacy pre-ledger base — the breakdown
    /// that lets counters *sum* per crawl instead of collapsing max-wise.
    pub crawls: Vec<CrawlCounters>,
}

/// The cost counters one distinct crawl contributed to a shared journal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CrawlCounters {
    /// Unique queries the crawl paid.
    pub unique_queries: u64,
    /// Total lookups (cache hits included) the crawl performed.
    pub total_lookups: u64,
    /// Transient failures the crawl retried.
    pub transient_retries: u64,
}

impl CrawlCounters {
    /// Captures a cache snapshot's counters.
    pub fn of(cache: &CacheSnapshot) -> Self {
        CrawlCounters {
            unique_queries: cache.unique_queries,
            total_lookups: cache.total_lookups,
            transient_retries: cache.transient_retries,
        }
    }

    /// Whether every counter is zero.
    pub fn is_zero(&self) -> bool {
        *self == CrawlCounters::default()
    }

    /// Field-wise saturating difference (`self − other`).
    pub fn saturating_sub(&self, other: &CrawlCounters) -> CrawlCounters {
        CrawlCounters {
            unique_queries: self.unique_queries.saturating_sub(other.unique_queries),
            total_lookups: self.total_lookups.saturating_sub(other.total_lookups),
            transient_retries: self.transient_retries.saturating_sub(other.transient_retries),
        }
    }

    /// Field-wise maximum.
    pub fn max(&self, other: &CrawlCounters) -> CrawlCounters {
        CrawlCounters {
            unique_queries: self.unique_queries.max(other.unique_queries),
            total_lookups: self.total_lookups.max(other.total_lookups),
            transient_retries: self.transient_retries.max(other.transient_retries),
        }
    }
}

impl HistoryStore {
    /// Captures a client's cache, with no overlay.
    pub fn from_client<I: SocialNetworkInterface>(client: &CachedClient<I>) -> Self {
        HistoryStore {
            cache: client.export_snapshot(),
            removed: Vec::new(),
            added: Vec::new(),
            num_users: client.num_users_hint(),
            crawls: Vec::new(),
        }
    }

    /// Captures a client's cache plus a walker's overlay delta.
    pub fn from_parts<I: SocialNetworkInterface>(
        client: &CachedClient<I>,
        overlay: Option<&OverlayDelta>,
    ) -> Self {
        let mut store = Self::from_client(client);
        if let Some(delta) = overlay {
            store.removed = delta.removed_edges().map(|e| (e.small(), e.large())).collect();
            store.added = delta.added_edges().map(|e| (e.small(), e.large())).collect();
        }
        store
    }

    /// Rebuilds the overlay delta recorded in this store.
    pub fn overlay_delta(&self) -> OverlayDelta {
        let mut delta = OverlayDelta::new();
        for &(u, v) in &self.removed {
            delta.remove_edge(u, v);
        }
        for &(u, v) in &self.added {
            delta.add_edge(u, v);
        }
        delta
    }

    /// Checks that this history is plausibly a crawl of the network behind
    /// `inner_hint` (its published user count, when available): recorded
    /// and published counts must agree, and every recorded node id must be
    /// in range. Imported responses *shadow* the backing interface, so a
    /// mismatched history would silently poison every later walk — and an
    /// out-of-range id in a hand-edited file would make the dense slot map
    /// attempt an enormous allocation. `Err` carries a description.
    pub fn validate_against(&self, inner_hint: Option<usize>) -> std::result::Result<(), String> {
        if let (Some(recorded), Some(published)) = (self.num_users, inner_hint) {
            if recorded != published {
                return Err(format!(
                    "history was crawled from a {recorded}-user network, \
                     this provider publishes {published}"
                ));
            }
        }
        if let Some(n) = inner_hint.or(self.num_users) {
            for r in &self.cache.responses {
                if r.user.index() >= n {
                    return Err(format!(
                        "cached response for node {} outside the {n}-user id space",
                        r.user
                    ));
                }
            }
            if let Some(&(v, _)) = self.cache.degree_hints.iter().find(|&&(v, _)| v.index() >= n) {
                return Err(format!("degree hint for node {v} outside the {n}-user id space"));
            }
        }
        Ok(())
    }

    /// Builds a **warm-started** client over `inner`: all cached knowledge
    /// imported, cost counters at zero — the cross-run reuse path, where
    /// the new job only pays for nodes the history has never seen. Fails
    /// with [`ServeError::SnapshotMismatch`] when the history does not
    /// belong to this network (see [`HistoryStore::validate_against`]).
    pub fn warm_start<I: SocialNetworkInterface>(&self, inner: I) -> Result<CachedClient<I>> {
        self.validate_against(inner.num_users_hint())
            .map_err(crate::error::ServeError::SnapshotMismatch)?;
        let mut client = CachedClient::new(inner);
        client.import_entries(&self.cache);
        Ok(client)
    }

    /// Builds a **restored** client over `inner`: cached knowledge *and*
    /// cost counters imported — the session-resume path, accounting as if
    /// the original run had never stopped.
    pub fn restore_client<I: SocialNetworkInterface>(&self, inner: I) -> Result<CachedClient<I>> {
        let mut client = self.warm_start(inner)?;
        client.restore_counters(&self.cache);
        Ok(client)
    }

    /// Number of cached responses.
    pub fn num_responses(&self) -> usize {
        self.cache.responses.len()
    }

    /// Merges `other` into `self`: the **union of two persisted crawls**
    /// of the same network (the compaction path — many incremental crawl
    /// stores folded into one master store). Policy:
    ///
    /// * cache entries and degree hints: union, **keep-first** on
    ///   conflict (an entry present in both with *different* content
    ///   keeps `self`'s version and bumps the conflict count; identical
    ///   duplicates are not conflicts);
    /// * a degree hint shadowed by a full response (either side) is
    ///   dropped — the response supersedes it, hint mismatches against a
    ///   response's true degree count as conflicts;
    /// * overlay deltas: union of removed/added edge sets; an edge
    ///   `removed` on one side and `added` on the other keeps `self`'s
    ///   disposition and counts as a conflict;
    /// * cost counters: summed — the merged store documents the combined
    ///   bill both crawls paid;
    /// * `num_users`: must agree when both sides recorded it (`Err`
    ///   otherwise — unions across different networks would poison every
    ///   later warm start).
    ///
    /// Returns how much was merged and how many conflicts were resolved
    /// keep-first.
    pub fn merge(&mut self, other: &HistoryStore) -> std::result::Result<MergeOutcome, String> {
        if let (Some(a), Some(b)) = (self.num_users, other.num_users) {
            if a != b {
                return Err(format!(
                    "cannot merge: this store was crawled from a {a}-user network, \
                     the other from a {b}-user network"
                ));
            }
        }
        self.num_users = self.num_users.or(other.num_users);
        let mut outcome = MergeOutcome::default();

        // Responses: keep-first union by node id.
        let known: std::collections::HashMap<NodeId, &QueryResponse> =
            self.cache.responses.iter().map(|r| (r.user, r)).collect();
        let mut adopted: Vec<QueryResponse> = Vec::new();
        for r in &other.cache.responses {
            match known.get(&r.user) {
                Some(mine) => {
                    if *mine != r {
                        outcome.conflicts += 1;
                    }
                }
                None => adopted.push(r.clone()),
            }
        }
        outcome.merged_responses = adopted.len();
        self.cache.responses.extend(adopted);
        self.cache.responses.sort_unstable_by_key(|r| r.user);

        // Degree hints: keep-first union; responses supersede hints.
        let degrees: std::collections::HashMap<NodeId, usize> =
            self.cache.responses.iter().map(|r| (r.user, r.neighbors.len())).collect();
        let mine: std::collections::HashMap<NodeId, usize> =
            self.cache.degree_hints.iter().copied().collect();
        self.cache.degree_hints.retain(|(v, d)| {
            // A response adopted from `other` may shadow one of our hints.
            match degrees.get(v) {
                Some(&true_degree) => {
                    if *d != true_degree {
                        outcome.conflicts += 1;
                    }
                    false
                }
                None => true,
            }
        });
        for &(v, d) in &other.cache.degree_hints {
            match (degrees.get(&v), mine.get(&v)) {
                (Some(&true_degree), _) => {
                    if d != true_degree {
                        outcome.conflicts += 1;
                    }
                }
                (None, Some(&have)) => {
                    if have != d {
                        outcome.conflicts += 1;
                    }
                }
                (None, None) => {
                    outcome.merged_hints += 1;
                    self.cache.degree_hints.push((v, d));
                }
            }
        }
        self.cache.degree_hints.sort_unstable_by_key(|&(v, _)| v);

        // Overlay deltas: union of edge sets; keep-first on a
        // removed-vs-added disagreement.
        let my_removed: std::collections::HashSet<(NodeId, NodeId)> =
            self.removed.iter().copied().collect();
        let my_added: std::collections::HashSet<(NodeId, NodeId)> =
            self.added.iter().copied().collect();
        for &e in &other.removed {
            if my_added.contains(&e) {
                outcome.conflicts += 1;
            } else if !my_removed.contains(&e) {
                outcome.merged_overlay_edges += 1;
                self.removed.push(e);
            }
        }
        for &e in &other.added {
            if my_removed.contains(&e) {
                outcome.conflicts += 1;
            } else if !my_added.contains(&e) {
                outcome.merged_overlay_edges += 1;
                self.added.push(e);
            }
        }
        self.removed.sort_unstable();
        self.added.sort_unstable();

        // Counters: the combined bill of both crawls. The per-crawl
        // ledgers concatenate — each entry still describes one run.
        self.cache.unique_queries += other.cache.unique_queries;
        self.cache.total_lookups += other.cache.total_lookups;
        self.cache.transient_retries += other.cache.transient_retries;
        self.crawls.extend(other.crawls.iter().copied());
        Ok(outcome)
    }

    /// Serializes to the versioned text format, checksum trailer included.
    ///
    /// The buffer is pre-sized from a computed capacity and every record
    /// is written straight into it — no per-record intermediate strings
    /// (a 10k-response store encodes through this loop in the perf
    /// ledger's `hotpath/codec-10k` bench).
    pub fn encode(&self) -> String {
        let mut body = String::with_capacity(self.estimated_encoded_len());
        body.push_str(HISTORY_MAGIC);
        body.push_str(" v");
        push_u64(&mut body, u64::from(FORMAT_VERSION));
        body.push('\n');
        write_history_body(self, &mut body);
        seal(body)
    }

    /// Upper-ish estimate of [`HistoryStore::encode`]'s output size: node
    /// ids on the networks we crawl are short, so budgeting 8 bytes per
    /// numeric field lands within a few percent of the real length
    /// without a counting pre-pass.
    fn estimated_encoded_len(&self) -> usize {
        let c = &self.cache;
        let mut len = 128; // header, counters, checksum trailer
        for r in &c.responses {
            len += 40 + 8 * r.neighbors.len();
        }
        len += 24 * (c.degree_hints.len() + self.removed.len() + self.added.len());
        len += 32 * self.crawls.len();
        len
    }

    /// Parses the text format produced by [`HistoryStore::encode`].
    pub fn decode(text: &str) -> std::result::Result<Self, HistoryCodecError> {
        let body = verify_checksum(text)?;
        let mut lines = body.lines().enumerate();
        expect_header(lines.next(), HISTORY_MAGIC)?;
        let mut acc = HistoryAccumulator::default();
        for (idx, line) in lines {
            let lineno = idx + 1;
            let (keyword, rest) = split_keyword(line, lineno)?;
            if !acc.consume(keyword, rest, lineno)? {
                return Err(HistoryCodecError::BadRecord {
                    line: lineno,
                    message: format!("unknown record keyword {keyword:?}"),
                });
            }
        }
        Ok(acc.store)
    }

    /// Writes the encoded store to `path`.
    pub fn save(&self, path: &Path) -> Result<()> {
        std::fs::write(path, self.encode())?;
        Ok(())
    }

    /// Reads and decodes a store from `path`.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::decode(&text)?)
    }
}

/// What a [`HistoryStore::merge`] accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MergeOutcome {
    /// Entries present in both stores with *different* content, resolved
    /// keep-first (a warning count — a nonzero value means the two
    /// crawls disagreed about the network).
    pub conflicts: u64,
    /// Responses adopted from the other store.
    pub merged_responses: usize,
    /// Degree hints adopted from the other store.
    pub merged_hints: usize,
    /// Overlay edges (removed + added) adopted from the other store.
    pub merged_overlay_edges: usize,
}

/// FNV-1a 64-bit hash — the integrity check of the history codec, the
/// per-record seal of [`crate::journal::HistoryJournal`], and the digest
/// primitive fleet determinism checks build on.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Appends the checksum trailer (no trailing newline, so *any* strict
/// prefix of the output is detectably damaged).
pub(crate) fn seal(mut body: String) -> String {
    use std::fmt::Write;
    let checksum = fnv1a64(body.as_bytes());
    write!(body, "checksum {checksum:016x}").expect("string write");
    body
}

/// Splits off and verifies the checksum trailer, returning the body.
pub(crate) fn verify_checksum(text: &str) -> std::result::Result<&str, HistoryCodecError> {
    let pos = text.rfind("\nchecksum ").ok_or(HistoryCodecError::Truncated)?;
    let body = &text[..pos + 1];
    let trailer = text[pos + 1..].trim_end_matches('\n');
    let lineno = body.lines().count() + 1;
    if trailer.contains('\n') {
        return Err(HistoryCodecError::BadRecord {
            line: lineno,
            message: "data after the checksum trailer".into(),
        });
    }
    let hex = trailer.strip_prefix("checksum ").expect("rfind matched this prefix");
    let stored = u64::from_str_radix(hex, 16).map_err(|e| HistoryCodecError::BadRecord {
        line: lineno,
        message: format!("bad checksum literal {hex:?}: {e}"),
    })?;
    let computed = fnv1a64(body.as_bytes());
    if computed != stored {
        return Err(HistoryCodecError::ChecksumMismatch { computed, stored });
    }
    Ok(body)
}

/// Validates the `<magic> v<version>` header line.
pub(crate) fn expect_header(
    first: Option<(usize, &str)>,
    magic: &str,
) -> std::result::Result<(), HistoryCodecError> {
    let (_, line) = first.ok_or_else(|| HistoryCodecError::BadHeader(String::new()))?;
    let version = line
        .strip_prefix(magic)
        .and_then(|rest| rest.strip_prefix(" v"))
        .ok_or_else(|| HistoryCodecError::BadHeader(line.to_string()))?;
    let version: u32 =
        version.parse().map_err(|_| HistoryCodecError::BadHeader(line.to_string()))?;
    if version != FORMAT_VERSION {
        return Err(HistoryCodecError::UnsupportedVersion(version));
    }
    Ok(())
}

/// Splits a record line into its keyword and payload.
pub(crate) fn split_keyword(
    line: &str,
    lineno: usize,
) -> std::result::Result<(&str, &str), HistoryCodecError> {
    let line = line.trim_end_matches('\r');
    match line.split_once(' ') {
        Some((k, rest)) if !k.is_empty() => Ok((k, rest)),
        _ => Err(HistoryCodecError::BadRecord {
            line: lineno,
            message: format!("expected `<keyword> <payload>`, got {line:?}"),
        }),
    }
}

pub(crate) fn bad_record(lineno: usize, message: impl Into<String>) -> HistoryCodecError {
    HistoryCodecError::BadRecord { line: lineno, message: message.into() }
}

pub(crate) fn parse_num<T: std::str::FromStr>(
    token: &str,
    what: &str,
    lineno: usize,
) -> std::result::Result<T, HistoryCodecError>
where
    T::Err: std::fmt::Display,
{
    token.parse().map_err(|e| bad_record(lineno, format!("bad {what} {token:?}: {e}")))
}

/// Appends a decimal integer without going through `core::fmt`. The
/// encode hot loop emits hundreds of thousands of small integers, and
/// formatter machinery — not byte copying — is where the naive
/// `format!`-per-record codec spent its time.
fn push_u64(out: &mut String, mut v: u64) {
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("decimal digits are ASCII"));
}

/// Appends one `node` record (no newline) straight into `out`.
pub(crate) fn write_node_record(out: &mut String, r: &QueryResponse) {
    out.push_str("node ");
    push_u64(out, u64::from(r.user.0));
    out.push(' ');
    push_u64(out, u64::from(r.profile.age));
    out.push(' ');
    push_u64(out, u64::from(r.profile.self_description_len));
    out.push(' ');
    push_u64(out, u64::from(r.profile.num_posts));
    out.push(' ');
    push_u64(out, u64::from(u8::from(r.profile.is_public)));
    if r.neighbors.is_empty() {
        out.push_str(" -");
    } else {
        let mut sep = ' ';
        for n in &r.neighbors {
            out.push(sep);
            push_u64(out, u64::from(n.0));
            sep = ',';
        }
    }
}

/// One `node` record line (no newline) — the owned-string form the
/// append-only journal writes record-at-a-time.
pub(crate) fn node_record(r: &QueryResponse) -> String {
    let mut out = String::with_capacity(40 + 8 * r.neighbors.len());
    write_node_record(&mut out, r);
    out
}

/// One `degree` record line (no newline).
pub(crate) fn degree_record(v: NodeId, d: usize) -> String {
    format!("degree {} {}", v.0, d)
}

/// One overlay-edge record line (no newline); `keyword` is `removed` or
/// `added`.
pub(crate) fn overlay_record(keyword: &str, u: NodeId, v: NodeId) -> String {
    format!("{keyword} {} {}", u.0, v.0)
}

/// One per-crawl ledger record line (no newline).
pub(crate) fn crawl_record(c: &CrawlCounters) -> String {
    format!("crawl {} {} {}", c.unique_queries, c.total_lookups, c.transient_retries)
}

/// Parses the payload of a `crawl` record.
pub(crate) fn parse_crawl_record(
    rest: &str,
    lineno: usize,
) -> std::result::Result<CrawlCounters, HistoryCodecError> {
    let parts: Vec<&str> = rest.split(' ').collect();
    if parts.len() != 3 {
        return Err(bad_record(lineno, "crawl record needs three counters"));
    }
    Ok(CrawlCounters {
        unique_queries: parse_num(parts[0], "unique counter", lineno)?,
        total_lookups: parse_num(parts[1], "lookup counter", lineno)?,
        transient_retries: parse_num(parts[2], "retry counter", lineno)?,
    })
}

/// Serializes the record body shared by history and session files. Every
/// record is pushed straight into `out` — no intermediate strings, no
/// `core::fmt` in the per-record loops.
pub(crate) fn write_history_body(store: &HistoryStore, out: &mut String) {
    let c = &store.cache;
    if let Some(n) = store.num_users {
        out.push_str("users ");
        push_u64(out, n as u64);
        out.push('\n');
    }
    out.push_str("unique ");
    push_u64(out, c.unique_queries);
    out.push_str("\nlookups ");
    push_u64(out, c.total_lookups);
    out.push_str("\nretries ");
    push_u64(out, c.transient_retries);
    out.push('\n');
    for r in &c.responses {
        write_node_record(out, r);
        out.push('\n');
    }
    for &(v, d) in &c.degree_hints {
        out.push_str("degree ");
        push_u64(out, u64::from(v.0));
        out.push(' ');
        push_u64(out, d as u64);
        out.push('\n');
    }
    for &(u, v) in &store.removed {
        push_edge_record(out, "removed", u, v);
    }
    for &(u, v) in &store.added {
        push_edge_record(out, "added", u, v);
    }
    for c in &store.crawls {
        out.push_str("crawl ");
        push_u64(out, c.unique_queries);
        out.push(' ');
        push_u64(out, c.total_lookups);
        out.push(' ');
        push_u64(out, c.transient_retries);
        out.push('\n');
    }
}

fn push_edge_record(out: &mut String, keyword: &str, u: NodeId, v: NodeId) {
    out.push_str(keyword);
    out.push(' ');
    push_u64(out, u64::from(u.0));
    out.push(' ');
    push_u64(out, u64::from(v.0));
    out.push('\n');
}

/// Incremental parser for the shared history records; session decoding
/// feeds it the lines its own vocabulary does not claim.
#[derive(Default)]
pub(crate) struct HistoryAccumulator {
    pub(crate) store: HistoryStore,
    seen_nodes: std::collections::HashSet<u32>,
    seen_hints: std::collections::HashSet<u32>,
}

impl HistoryAccumulator {
    /// Tries to consume one record line; `Ok(false)` means the keyword is
    /// not part of the history vocabulary.
    pub(crate) fn consume(
        &mut self,
        keyword: &str,
        rest: &str,
        lineno: usize,
    ) -> std::result::Result<bool, HistoryCodecError> {
        match keyword {
            "users" => self.store.num_users = Some(parse_num(rest, "user count", lineno)?),
            "unique" => self.store.cache.unique_queries = parse_num(rest, "counter", lineno)?,
            "lookups" => self.store.cache.total_lookups = parse_num(rest, "counter", lineno)?,
            "retries" => self.store.cache.transient_retries = parse_num(rest, "counter", lineno)?,
            "node" => {
                let mut tok = rest.split(' ');
                let mut next = |what: &str| {
                    tok.next().ok_or_else(|| bad_record(lineno, format!("missing {what}")))
                };
                let user: u32 = parse_num(next("user id")?, "user id", lineno)?;
                let age: u32 = parse_num(next("age")?, "age", lineno)?;
                let desc: u32 = parse_num(next("description length")?, "length", lineno)?;
                let posts: u32 = parse_num(next("post count")?, "count", lineno)?;
                let is_public = match next("public flag")? {
                    "0" => false,
                    "1" => true,
                    other => return Err(bad_record(lineno, format!("bad public flag {other:?}"))),
                };
                let nbr_field = next("neighbor list")?;
                if tok.next().is_some() {
                    return Err(bad_record(lineno, "trailing tokens on node record"));
                }
                let neighbors = if nbr_field == "-" {
                    Vec::new()
                } else {
                    nbr_field
                        .split(',')
                        .map(|t| parse_num::<u32>(t, "neighbor id", lineno).map(NodeId))
                        .collect::<std::result::Result<Vec<_>, _>>()?
                };
                if !self.seen_nodes.insert(user) {
                    return Err(bad_record(lineno, format!("duplicate node record for {user}")));
                }
                self.store.cache.responses.push(QueryResponse {
                    user: NodeId(user),
                    neighbors,
                    profile: UserProfile {
                        age,
                        self_description_len: desc,
                        num_posts: posts,
                        is_public,
                    },
                });
            }
            "degree" => {
                let (v, d) = parse_pair::<usize>(rest, lineno)?;
                if !self.seen_hints.insert(v) {
                    return Err(bad_record(lineno, format!("duplicate degree hint for {v}")));
                }
                self.store.cache.degree_hints.push((NodeId(v), d));
            }
            "removed" => {
                let (u, v) = parse_pair::<u32>(rest, lineno)?;
                self.store.removed.push((NodeId(u), NodeId(v)));
            }
            "added" => {
                let (u, v) = parse_pair::<u32>(rest, lineno)?;
                self.store.added.push((NodeId(u), NodeId(v)));
            }
            "crawl" => {
                // Snapshot semantics: the `unique`/`lookups`/`retries`
                // records already carry the totals, so a crawl line only
                // records the breakdown. (The journal replay path adds to
                // the totals itself — see `HistoryJournal::open`.)
                self.store.crawls.push(parse_crawl_record(rest, lineno)?);
            }
            _ => return Ok(false),
        }
        Ok(true)
    }
}

fn parse_pair<B: std::str::FromStr>(
    rest: &str,
    lineno: usize,
) -> std::result::Result<(u32, B), HistoryCodecError>
where
    B::Err: std::fmt::Display,
{
    let (a, b) = rest
        .split_once(' ')
        .ok_or_else(|| bad_record(lineno, format!("expected two fields, got {rest:?}")))?;
    if b.contains(' ') {
        return Err(bad_record(lineno, "trailing tokens on record"));
    }
    Ok((parse_num(a, "id", lineno)?, parse_num(b, "value", lineno)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;
    use mto_osn::OsnService;

    fn sample_store() -> HistoryStore {
        let mut client = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        for v in [0u32, 5, 11, 21] {
            client.query(NodeId(v)).unwrap();
        }
        client.remember_degree(NodeId(7), 10);
        let mut delta = OverlayDelta::new();
        delta.remove_edge(NodeId(0), NodeId(5));
        delta.add_edge(NodeId(0), NodeId(12));
        HistoryStore::from_parts(&client, Some(&delta))
    }

    #[test]
    fn encode_decode_round_trips() {
        let store = sample_store();
        let text = store.encode();
        assert!(text.starts_with("mto-history v1\n"));
        assert_eq!(HistoryStore::decode(&text).unwrap(), store);
    }

    #[test]
    fn fast_encode_matches_the_naive_rendering() {
        // The pre-sized push-based encoder must be byte-identical to the
        // original one-`format!`-per-record codec: persisted histories,
        // journals, and every digest built on them depend on the bytes.
        let mut store = sample_store();
        store.crawls.push(CrawlCounters {
            unique_queries: 4,
            total_lookups: 17,
            transient_retries: 1,
        });
        let mut body = format!("{HISTORY_MAGIC} v{FORMAT_VERSION}\n");
        if let Some(n) = store.num_users {
            body.push_str(&format!("users {n}\n"));
        }
        body.push_str(&format!("unique {}\n", store.cache.unique_queries));
        body.push_str(&format!("lookups {}\n", store.cache.total_lookups));
        body.push_str(&format!("retries {}\n", store.cache.transient_retries));
        for r in &store.cache.responses {
            let nbrs = if r.neighbors.is_empty() {
                "-".to_string()
            } else {
                r.neighbors.iter().map(|n| n.0.to_string()).collect::<Vec<_>>().join(",")
            };
            body.push_str(&format!(
                "node {} {} {} {} {} {nbrs}\n",
                r.user.0,
                r.profile.age,
                r.profile.self_description_len,
                r.profile.num_posts,
                u8::from(r.profile.is_public)
            ));
        }
        for &(v, d) in &store.cache.degree_hints {
            body.push_str(&format!("degree {} {d}\n", v.0));
        }
        for &(u, v) in &store.removed {
            body.push_str(&format!("removed {} {}\n", u.0, v.0));
        }
        for &(u, v) in &store.added {
            body.push_str(&format!("added {} {}\n", u.0, v.0));
        }
        for c in &store.crawls {
            body.push_str(&format!(
                "crawl {} {} {}\n",
                c.unique_queries, c.total_lookups, c.transient_retries
            ));
        }
        assert_eq!(store.encode(), seal(body));
    }

    #[test]
    fn empty_store_round_trips() {
        let store = HistoryStore::default();
        assert_eq!(HistoryStore::decode(&store.encode()).unwrap(), store);
    }

    #[test]
    fn save_load_round_trips_through_disk() {
        let store = sample_store();
        let path = std::env::temp_dir()
            .join(format!("mto-serve-history-test-{}.hist", std::process::id()));
        store.save(&path).unwrap();
        let loaded = HistoryStore::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded, store);
    }

    #[test]
    fn truncated_input_is_a_clean_error() {
        let text = sample_store().encode();
        for cut in [0, 1, 14, text.len() / 2, text.len() - 1] {
            let err = HistoryStore::decode(&text[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    HistoryCodecError::Truncated
                        | HistoryCodecError::ChecksumMismatch { .. }
                        | HistoryCodecError::BadRecord { .. }
                ),
                "cut at {cut}: unexpected {err:?}"
            );
        }
    }

    #[test]
    fn flipped_byte_is_detected() {
        let text = sample_store().encode();
        let mut bytes = text.clone().into_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        let corrupt = String::from_utf8(bytes).unwrap();
        assert!(HistoryStore::decode(&corrupt).is_err());
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let other = seal("mto-nonsense v1\n".to_string());
        assert!(matches!(
            HistoryStore::decode(&other).unwrap_err(),
            HistoryCodecError::BadHeader(_)
        ));
        let future = seal(format!("{HISTORY_MAGIC} v99\n"));
        assert_eq!(
            HistoryStore::decode(&future).unwrap_err(),
            HistoryCodecError::UnsupportedVersion(99)
        );
    }

    #[test]
    fn garbage_inputs_never_panic() {
        for garbage in ["", "\n\n\n", "checksum zz", "mto-history v1", "node", "\u{1F980}"] {
            assert!(HistoryStore::decode(garbage).is_err(), "accepted {garbage:?}");
        }
    }

    #[test]
    fn duplicate_node_records_are_rejected() {
        let body =
            format!("{HISTORY_MAGIC} v{FORMAT_VERSION}\nnode 1 20 0 0 1 -\nnode 1 20 0 0 1 -\n");
        let err = HistoryStore::decode(&seal(body)).unwrap_err();
        assert!(matches!(err, HistoryCodecError::BadRecord { line: 3, .. }), "{err:?}");
    }

    #[test]
    fn overlay_delta_round_trips() {
        let store = sample_store();
        let delta = store.overlay_delta();
        assert!(delta.is_removed(NodeId(0), NodeId(5)));
        assert!(delta.is_added(NodeId(0), NodeId(12)));
        let again = HistoryStore::from_parts(
            &store.restore_client(OsnService::with_defaults(&paper_barbell())).unwrap(),
            Some(&delta),
        );
        assert_eq!(again, store);
    }

    /// A store from a crawl of `nodes`, with one degree hint and a small
    /// overlay delta.
    fn crawl(nodes: &[u32], hint: (u32, usize), removed: (u32, u32)) -> HistoryStore {
        let mut client = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        for &v in nodes {
            client.query(NodeId(v)).unwrap();
        }
        client.remember_degree(NodeId(hint.0), hint.1);
        let mut delta = OverlayDelta::new();
        delta.remove_edge(NodeId(removed.0), NodeId(removed.1));
        HistoryStore::from_parts(&client, Some(&delta))
    }

    #[test]
    fn merge_unions_two_crawls_and_round_trips() {
        // Two crawls of the same barbell touching overlapping node sets.
        let mut a = crawl(&[0, 1, 2, 5], (20, 11), (0, 5));
        let b = crawl(&[2, 3, 11], (19, 10), (1, 2));
        let (ua, ub) = (a.cache.unique_queries, b.cache.unique_queries);

        let outcome = a.merge(&b).unwrap();
        assert_eq!(outcome.conflicts, 0, "honest crawls of one network never conflict");
        assert_eq!(outcome.merged_responses, 2, "nodes 3 and 11 adopted");
        assert_eq!(outcome.merged_hints, 1);
        assert_eq!(outcome.merged_overlay_edges, 1);
        let ids: Vec<u32> = a.cache.responses.iter().map(|r| r.user.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 5, 11], "union, ascending");
        assert_eq!(a.cache.unique_queries, ua + ub, "combined bill");
        assert!(a.overlay_delta().is_removed(NodeId(0), NodeId(5)));
        assert!(a.overlay_delta().is_removed(NodeId(1), NodeId(2)));

        // The merged store round-trips through the codec…
        let decoded = HistoryStore::decode(&a.encode()).unwrap();
        assert_eq!(decoded, a);
        // …and warm-starts a client that knows the union for free.
        let warm = decoded.warm_start(OsnService::with_defaults(&paper_barbell())).unwrap();
        assert_eq!(warm.num_cached(), 6);
        assert_eq!(warm.known_degree(NodeId(19)), Some(10), "hint adopted from b");
        assert_eq!(warm.known_degree(NodeId(20)), Some(11), "own hint kept");
    }

    #[test]
    fn merge_conflicts_keep_first_and_are_counted() {
        let mut a = crawl(&[0, 1], (20, 9), (0, 5));
        let mut b = crawl(&[1], (20, 7), (0, 3));
        // Sabotage b: same node id, different content; and an overlay
        // disagreement (a removed (0,5), b *added* it).
        b.cache.responses[0].profile.age += 1;
        b.removed.clear();
        b.added = vec![(NodeId(0), NodeId(5))];

        let outcome = a.merge(&b).unwrap();
        assert_eq!(
            outcome.conflicts, 3,
            "response content, degree hint, and overlay disposition all disagreed"
        );
        assert_eq!(outcome.merged_responses, 0);
        // Keep-first: a's versions survive everywhere.
        let node1 = a.cache.responses.iter().find(|r| r.user == NodeId(1)).unwrap();
        assert_eq!(node1.profile, crawl(&[1], (0, 0), (2, 3)).cache.responses[0].profile);
        assert_eq!(a.cache.degree_hints, vec![(NodeId(20), 9)]);
        assert!(a.overlay_delta().is_removed(NodeId(0), NodeId(5)));
        assert!(!a.overlay_delta().is_added(NodeId(0), NodeId(5)));
    }

    #[test]
    fn merge_drops_hints_shadowed_by_responses() {
        // a knows node 5's degree only as a (wrong) hint; b cached the
        // full response. The response wins, the wrong hint is a conflict.
        let mut a = crawl(&[0], (5, 3), (0, 1));
        let b = crawl(&[5], (20, 11), (0, 1));
        let outcome = a.merge(&b).unwrap();
        assert_eq!(outcome.conflicts, 1, "hint 3 contradicts true degree 10");
        assert!(a.cache.degree_hints.iter().all(|&(v, _)| v != NodeId(5)));
        let warm = a.warm_start(OsnService::with_defaults(&paper_barbell())).unwrap();
        assert_eq!(warm.known_degree(NodeId(5)), Some(10), "true degree from the response");
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = crawl(&[0, 1, 7], (20, 11), (0, 5));
        let snapshot = a.clone();
        let outcome = a.merge(&snapshot).unwrap();
        assert_eq!(outcome, MergeOutcome::default(), "self-merge adopts nothing");
        // Counters double (both "crawls" paid), content is unchanged.
        assert_eq!(a.cache.unique_queries, 2 * snapshot.cache.unique_queries);
        assert_eq!(a.cache.responses, snapshot.cache.responses);
        assert_eq!(a.removed, snapshot.removed);
    }

    #[test]
    fn merge_refuses_stores_from_different_networks() {
        let mut a = crawl(&[0], (20, 11), (0, 5));
        let mut client =
            CachedClient::new(OsnService::with_defaults(&mto_graph::generators::complete_graph(5)));
        client.query(NodeId(0)).unwrap();
        let b = HistoryStore::from_client(&client);
        let err = a.merge(&b).unwrap_err();
        assert!(err.contains("22") && err.contains("5"), "{err}");
    }

    #[test]
    fn warm_start_rejects_history_from_another_network() {
        let store = sample_store(); // crawled from the 22-user barbell
        let other = OsnService::with_defaults(&mto_graph::generators::complete_graph(5));
        assert!(store.warm_start(other).is_err(), "user counts 22 vs 5 must not mix");
    }

    #[test]
    fn warm_start_rejects_out_of_range_ids() {
        // A hand-edited store claiming a node outside the id space would
        // make the dense slot map allocate past the network size.
        let mut store = sample_store();
        store.cache.degree_hints.push((NodeId(400), 3));
        assert!(store.warm_start(OsnService::with_defaults(&paper_barbell())).is_err());
        store.cache.degree_hints.clear();
        store.cache.responses[0].user = NodeId(4_000_000);
        assert!(store.warm_start(OsnService::with_defaults(&paper_barbell())).is_err());
    }

    #[test]
    fn warm_start_zeroes_the_bill_and_restore_resumes_it() {
        let store = sample_store();
        let g = paper_barbell();
        let warm = store.warm_start(OsnService::with_defaults(&g)).unwrap();
        assert_eq!(warm.unique_queries(), 0);
        assert_eq!(warm.num_cached(), 4);
        assert_eq!(warm.known_degree(NodeId(7)), Some(10), "degree hint survived");
        let restored = store.restore_client(OsnService::with_defaults(&g)).unwrap();
        assert_eq!(restored.unique_queries(), store.cache.unique_queries);
    }
}
