//! Property suite for the `mto-serve` history/session codec.
//!
//! The contract under test (ISSUE 2, satellite 3):
//!
//! * encode → decode is the identity for cache contents, remembered
//!   degrees, and overlay deltas — for arbitrary stores, not just ones a
//!   real crawl produced;
//! * corrupt or truncated input decodes to a clean error — never a panic,
//!   never a silently wrong store.

use std::collections::BTreeMap;

use proptest::collection::vec;
use proptest::prelude::*;
use proptest::strategy::BoxedStrategy;

use mto_core::mto::{CriterionView, MtoConfig, RewireStats};
use mto_core::walk::{MhrwConfig, RjConfig, SrwConfig};
use mto_graph::NodeId;
use mto_osn::{CacheSnapshot, QueryResponse, UserProfile};
use mto_serve::history::{CrawlCounters, HistoryStore};
use mto_serve::session::{format_job_line, parse_job_line, AlgoSpec, JobSpec, SessionSnapshot};

/// Raw material for one cached response.
type RawResponse = (u32, (u32, u32, u32, bool), Vec<u32>);

fn response_strategy() -> BoxedStrategy<RawResponse> {
    (0u32..400, (13u32..91, 0u32..5000, 0u32..1000, any::<bool>()), vec(0u32..400, 0..8)).boxed()
}

/// Builds a canonical store (unique node ids ascending, unique hint ids
/// ascending) from raw generated parts — the invariant `export_snapshot`
/// guarantees and the codec round-trips.
fn build_store(
    responses: Vec<RawResponse>,
    hints: Vec<(u32, u16)>,
    removed: Vec<(u32, u32)>,
    added: Vec<(u32, u32)>,
    counters: (u64, u64, u64),
) -> HistoryStore {
    let responses: BTreeMap<u32, RawResponse> = responses.into_iter().map(|r| (r.0, r)).collect();
    let hints: BTreeMap<u32, u16> = hints.into_iter().collect();
    HistoryStore {
        cache: CacheSnapshot {
            responses: responses
                .into_values()
                .map(|(user, (age, desc, posts, is_public), nbrs)| QueryResponse {
                    user: NodeId(user),
                    neighbors: nbrs.into_iter().map(NodeId).collect(),
                    profile: UserProfile {
                        age,
                        self_description_len: desc,
                        num_posts: posts,
                        is_public,
                    },
                })
                .collect(),
            degree_hints: hints.into_iter().map(|(v, d)| (NodeId(v), d as usize)).collect(),
            unique_queries: counters.0,
            total_lookups: counters.1,
            transient_retries: counters.2,
        },
        removed: removed.into_iter().map(|(u, v)| (NodeId(u), NodeId(v))).collect(),
        added: added.into_iter().map(|(u, v)| (NodeId(u), NodeId(v))).collect(),
        // Present on roughly half the stores, so both the `users` record
        // and its absence round-trip.
        num_users: (counters.0 % 2 == 0).then_some((counters.1 % 100_000) as usize),
        // A small per-crawl ledger on roughly a third of the stores, so
        // `crawl` records round-trip alongside their absence.
        crawls: if counters.2 % 3 == 0 {
            vec![CrawlCounters {
                unique_queries: counters.0 / 2,
                total_lookups: counters.1 / 2,
                transient_retries: counters.2 / 2,
            }]
        } else {
            Vec::new()
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn history_round_trips(
        responses in vec(response_strategy(), 0..14),
        hints in vec((0u32..400, any::<u16>()), 0..8),
        removed in vec((0u32..200, 0u32..200), 0..10),
        added in vec((0u32..200, 0u32..200), 0..10),
        counters in (any::<u64>(), any::<u64>(), any::<u64>()),
    ) {
        let store = build_store(responses, hints, removed, added, counters);
        let decoded = HistoryStore::decode(&store.encode());
        prop_assert_eq!(decoded.as_ref(), Ok(&store));
    }

    #[test]
    fn corrupted_history_is_rejected_without_panicking(
        responses in vec(response_strategy(), 1..10),
        removed in vec((0u32..200, 0u32..200), 0..6),
        position in any::<usize>(),
        flip in 1u8..=255,
    ) {
        let store = build_store(responses, Vec::new(), removed, Vec::new(), (7, 9, 0));
        let mut bytes = store.encode().into_bytes();
        let at = position % bytes.len();
        bytes[at] ^= flip;
        // The mutated byte stream may no longer be UTF-8 (then it is
        // unrepresentable as input and trivially rejected upstream).
        if let Ok(text) = String::from_utf8(bytes) {
            prop_assert!(
                HistoryStore::decode(&text).is_err(),
                "accepted input with byte {} xored by {}", at, flip
            );
        }
    }

    #[test]
    fn truncated_history_is_rejected_without_panicking(
        responses in vec(response_strategy(), 1..10),
        hints in vec((0u32..400, any::<u16>()), 0..5),
        cut in any::<usize>(),
    ) {
        let store = build_store(responses, hints, Vec::new(), Vec::new(), (1, 2, 3));
        let text = store.encode();
        let cut = cut % text.len(); // strict prefix
        let prefix: String = text.chars().take(cut).collect();
        prop_assert!(
            HistoryStore::decode(&prefix).is_err(),
            "accepted a {}-char prefix of a {}-char store", prefix.chars().count(), text.len()
        );
    }

    #[test]
    fn arbitrary_byte_soup_never_panics(bytes in vec(any::<u8>(), 0..300)) {
        if let Ok(text) = String::from_utf8(bytes) {
            // Any outcome is fine except a panic; genuine random soup
            // essentially never carries a valid checksum trailer.
            let _ = HistoryStore::decode(&text);
            let _ = SessionSnapshot::decode(&text);
        }
    }

    #[test]
    fn job_lines_round_trip(
        algo_pick in 0u8..4,
        seed in any::<u64>(),
        start in 0u32..10_000,
        steps in 0usize..1_000_000,
        probs in (any::<f64>(), any::<f64>()),
        mto_bits in (any::<bool>(), any::<bool>(), any::<bool>(), any::<bool>(), 0usize..9),
    ) {
        let (replace_prob, jump_probability) = probs;
        let (removal, replacement, extension, lazy, min_overlay_degree) = mto_bits;
        let algo = match algo_pick {
            0 => AlgoSpec::Mto(MtoConfig {
                seed,
                removal,
                replacement,
                extension,
                replace_prob,
                lazy,
                criterion_view: if removal {
                    CriterionView::Original
                } else {
                    CriterionView::Overlay
                },
                min_overlay_degree,
            }),
            1 => AlgoSpec::Srw(SrwConfig { seed, lazy }),
            2 => AlgoSpec::Mhrw(MhrwConfig { seed }),
            _ => AlgoSpec::Rj(RjConfig { seed, jump_probability }),
        };
        let spec = JobSpec {
            id: format!("job-{seed}"),
            algo,
            start: NodeId(start),
            step_budget: steps,
            deadline: None,
            ess: None,
        };
        let line = format_job_line(&spec);
        let parsed = parse_job_line(&line);
        prop_assert_eq!(parsed.as_ref(), Ok(&spec), "line {}", line);
    }

    #[test]
    fn session_snapshots_round_trip(
        responses in vec(response_strategy(), 0..10),
        removed in vec((0u32..200, 0u32..200), 0..8),
        steps in (0usize..5_000, 0usize..5_000),
        current in 0u32..400,
        stats in (any::<u64>(), any::<u64>(), any::<u64>()),
        seed in any::<u64>(),
    ) {
        let (a, b) = steps;
        let (steps_taken, step_budget) = (a.min(b), a.max(b));
        let snapshot = SessionSnapshot {
            spec: JobSpec {
                id: format!("s{seed}"),
                algo: AlgoSpec::Mto(MtoConfig { seed, ..Default::default() }),
                start: NodeId(current % 10),
                step_budget,
                deadline: (seed % 2 == 0).then_some((seed % 977 + 1) as f64 / 8.0),
                ess: (seed % 3 == 0).then_some(seed % 501 + 1),
            },
            steps_taken,
            current: NodeId(current),
            stats: RewireStats {
                removals: stats.0,
                replacements: stats.1,
                replacement_rejections: stats.2,
            },
            meta: vec![
                ("network".to_string(), "sbm blocks=2 block-size=30".to_string()),
                ("note".to_string(), "value with spaces".to_string()),
            ],
            history: build_store(responses, Vec::new(), removed, Vec::new(), (5, 6, 7)),
        };
        let decoded = SessionSnapshot::decode(&snapshot.encode());
        prop_assert_eq!(decoded.as_ref(), Ok(&snapshot));
    }
}
