//! Sample-quality sweep: does MTO hit a target effective sample size
//! with fewer unique queries than SRW at an equal budget — with the
//! quality plane's early stop returning the unspent budget?
//!
//! The paper's whole argument is that rewiring buys *mixing*: an MTO
//! walk decorrelates faster, so a target estimator quality (ESS over
//! the degree series — the figure the quality plane streams) is reached
//! in fewer steps, and therefore fewer unique queries, than the simple
//! random walk pays for the same quality. This experiment measures that
//! claim end to end through the fleet's `quality ess=N` SLO machinery
//! on the Epinions stand-in:
//!
//! 1. two arms — MTO walkers and SRW walkers, same spread start nodes,
//!    same generous step cap, every job declaring the same `ess=N` SLO
//!    — run as budgeted quality fleets; the epoch planner stops each
//!    job at the first barrier where its streaming ESS crosses the
//!    target, and the ledger reclaims the unspent slice;
//! 2. `mto-fewer-queries-at-ess: PASS` requires every MTO job to hit
//!    the target within its cap with the arm's unique-query bill
//!    (per-walk unique demand, a shard-invariant figure) ≥ 30% below
//!    SRW's — whose walkers either latch late or burn their entire
//!    equal budget without converging, exactly the paper's claim;
//! 3. `early-stop-releases-budget: PASS` requires a nonzero ledger
//!    reclaim, no cut jobs, and the conservation invariant
//!    `spent + pool == total` (every account released);
//! 4. every arm × every shard count must produce byte-identical
//!    results digests *and* equal quality reports:
//!    `quality-deterministic: PASS`.
//!
//! Verdict lines are grepped by CI's `quality-smoke` job.

use std::collections::HashSet;
use std::sync::Arc;

use mto_core::mto::MtoConfig;
use mto_core::walk::SrwConfig;
use mto_fleet::{FleetConfig, FleetCoordinator, FleetReport};
use mto_graph::NodeId;
use mto_osn::OsnService;
use mto_serve::session::{AlgoSpec, JobSpec};

use crate::datasets::{build_dataset, DatasetSpec};
use crate::report::{ExperimentReport, Table};

/// Parameters of the sample-quality sweep.
#[derive(Clone, Debug)]
pub struct QualityConfig {
    /// Scale-down divisor for the Epinions stand-in.
    pub scale: usize,
    /// Walkers per arm.
    pub walkers: usize,
    /// Step cap per job — generous, so the SLO (not the cap) ends jobs.
    pub step_cap: usize,
    /// The `ess=N` target every job declares.
    pub target_ess: u64,
    /// Steps per epoch grant — the early-stop granularity.
    pub epoch_quantum: usize,
    /// The shard count both arms are compared at.
    pub verdict_shards: usize,
    /// Shard counts the determinism check sweeps.
    pub shard_counts: Vec<usize>,
    /// Fleet budget per arm: this multiple of the *cap*'s predicted
    /// demand, so the ledger constrains without ever cutting.
    pub budget_headroom: f64,
    /// Base seed of the job pools.
    pub seed: u64,
}

impl QualityConfig {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        QualityConfig {
            scale: 1,
            walkers: 4,
            step_cap: 100_000,
            target_ess: 400,
            epoch_quantum: 200,
            verdict_shards: 4,
            shard_counts: vec![1, 2, 4],
            budget_headroom: 2.0,
            seed: 0x0E55,
        }
    }

    /// Reduced (CI-scale) configuration.
    pub fn reduced() -> Self {
        QualityConfig {
            scale: 10,
            step_cap: 30_000,
            target_ess: 200,
            epoch_quantum: 50,
            ..QualityConfig::full()
        }
    }
}

/// One arm's measurements at the verdict shard count.
#[derive(Clone, Debug)]
pub struct QualityArm {
    /// Arm label (`"mto"` / `"srw"`).
    pub algo: &'static str,
    /// Steps each walker took before its SLO latched (or its cap).
    pub steps: Vec<usize>,
    /// Streaming ESS each walker reported at its stop.
    pub ess: Vec<f64>,
    /// Whether every walker met the target within its cap.
    pub all_met: bool,
    /// The arm's unique-query bill: per-walk unique demand, summed.
    pub unique_queries: u64,
    /// Ledger units reclaimed by early stops.
    pub ledger_reclaimed: u64,
    /// Conservation held: `spent + pool == total` with no cut jobs.
    pub ledger_conserves: bool,
}

/// Everything the sweep measured.
#[derive(Clone, Debug)]
pub struct QualityResult {
    /// Both arms at the verdict shard count.
    pub arms: Vec<QualityArm>,
    /// `1 − mto_unique / srw_unique`.
    pub query_saving: f64,
    /// Whether every arm × shard count produced identical digests and
    /// quality reports.
    pub deterministic: bool,
    /// The acceptance verdict: every MTO walker hit the target, the
    /// arm ≥ 30% cheaper than SRW's equal-budget bill, determinism held.
    pub mto_fewer_queries: bool,
    /// Early stop reclaimed budget and conservation held in both arms.
    pub early_stop_releases_budget: bool,
}

/// Start nodes: the highest-degree hubs (ties by id), one per walker.
/// Real crawls start from *discoverable* accounts, and a hub start also
/// keeps the quality plane honest — a walker born inside a whisker
/// would stream a near-constant (locally-iid) degree series whose ESS
/// counts at face value until the first escape.
fn hub_starts(graph: &mto_graph::Graph, walkers: usize) -> Vec<NodeId> {
    let mut by_degree: Vec<NodeId> = graph.nodes().collect();
    by_degree.sort_by_key(|&v| (std::cmp::Reverse(graph.degree(v)), v.0));
    by_degree.truncate(walkers);
    by_degree
}

fn job_pool(config: &QualityConfig, algo: &'static str, starts: &[NodeId]) -> Vec<JobSpec> {
    (0..config.walkers)
        .map(|i| JobSpec {
            id: format!("{algo}-{i}"),
            algo: match algo {
                // The estimation-grade MTO configuration (non-lazy,
                // bounded overlay floor) — the ½ self-loop of the lazy
                // default repeats degrees back to back, which halves the
                // sample rate *and* doubles the series' autocorrelation:
                // a pure handicap against the non-lazy SRW baseline.
                "mto" => AlgoSpec::Mto(MtoConfig {
                    seed: config.seed + i as u64,
                    lazy: false,
                    ..Default::default()
                }),
                _ => AlgoSpec::Srw(SrwConfig { seed: config.seed + i as u64, lazy: false }),
            },
            start: starts[i],
            step_budget: config.step_cap,
            deadline: None,
            ess: Some(config.target_ess),
        })
        .collect()
}

fn unique_demand(report: &FleetReport) -> u64 {
    report.outcomes.iter().map(|o| o.history.iter().collect::<HashSet<_>>().len() as u64).sum()
}

/// Runs the sweep, returning measurements and a report.
pub fn run(config: &QualityConfig) -> (QualityResult, ExperimentReport) {
    // The slow-mixing regime the paper targets: a whisker-heavy,
    // community-bound Epinions variant (§II: whisker cuts dominate real
    // snapshots' conductance). SRW dwells inside each whisker — a long
    // stretch of near-constant degrees that buys almost no effective
    // samples — while MTO's removals dissolve exactly those cuts.
    // Whiskers stay *smaller* than the ESS target's batch span: a walker
    // parked inside a near-clique sees a locally-iid degree series (ESS
    // ≈ n, the single-chain blind spot), so traps larger than the
    // target would let SRW latch spuriously before ever leaving its
    // first whisker. At this size the pathology is the honest one — SRW
    // pays hundreds of trap-dwell steps per effective sample.
    let spec = DatasetSpec {
        mixing: 0.03,
        whisker_fraction: 0.95,
        circle_size: (8, 14),
        ..DatasetSpec::epinions()
    };
    let graph = build_dataset(&spec.scaled_down(config.scale));
    let service = Arc::new(OsnService::with_defaults(&graph));

    let run_arm = |jobs: &[JobSpec], shards: usize, fleet_budget: u64| -> FleetReport {
        let service = service.clone();
        FleetCoordinator::new(
            move |_| service.clone(),
            FleetConfig {
                shards,
                epoch_quantum: config.epoch_quantum,
                fleet_budget: Some(fleet_budget),
                quality: true,
                ..Default::default()
            },
        )
        .run(jobs.to_vec())
        .expect("fleet run")
    };

    // A generous shared budget, from the cap's own admission predictions:
    // the SLO — never the ledger — is what ends jobs.
    let predictor = mto_qos::CostPredictor::new(Some(graph.num_nodes()));
    let starts = hub_starts(&graph, config.walkers);
    let arms_jobs: Vec<(&'static str, Vec<JobSpec>)> =
        vec![("mto", job_pool(config, "mto", &starts)), ("srw", job_pool(config, "srw", &starts))];
    let fleet_budget = arms_jobs
        .iter()
        .flat_map(|(_, jobs)| jobs.iter())
        .map(|j| predictor.predict_queries(j, None))
        .sum::<u64>() as f64
        * config.budget_headroom;
    let fleet_budget = fleet_budget.ceil() as u64;

    let mut arms = Vec::new();
    let mut deterministic = true;
    for (algo, jobs) in &arms_jobs {
        // Determinism sweep: identical digests and quality reports at
        // every shard count.
        let mut verdict_report = None;
        let mut reference = None;
        for &w in &config.shard_counts {
            let report = run_arm(jobs, w, fleet_budget);
            let key = (report.results_digest(), report.quality.clone());
            match &reference {
                None => reference = Some(key),
                Some(r) => deterministic &= *r == key,
            }
            if w == config.verdict_shards {
                verdict_report = Some(report);
            }
        }
        let report = verdict_report.expect("verdict_shards must be in shard_counts");
        let quality = report.quality.as_ref().expect("quality was requested");
        let ledger = report.ledger.as_ref().expect("the run was budgeted");
        arms.push(QualityArm {
            algo,
            steps: report.outcomes.iter().map(|o| o.steps).collect(),
            ess: jobs.iter().map(|j| quality.jobs[&j.id].ess).collect(),
            all_met: report.outcomes.iter().all(|o| o.completed)
                && jobs.iter().all(|j| quality.jobs[&j.id].met),
            unique_queries: unique_demand(&report),
            ledger_reclaimed: ledger.reclaimed,
            ledger_conserves: ledger.cut_jobs == 0 && ledger.spent + ledger.pool == ledger.total,
        });
    }

    let (mto, srw) = (&arms[0], &arms[1]);
    let query_saving = 1.0 - mto.unique_queries as f64 / srw.unique_queries.max(1) as f64;
    // SRW is *not* required to converge: at an equal budget the baseline
    // either latches (late) or spends its whole slice — both are the
    // fair bill to hold MTO's against.
    let mto_fewer_queries = deterministic && mto.all_met && query_saving >= 0.30;
    let early_stop_releases_budget =
        arms.iter().all(|a| a.ledger_reclaimed > 0 && a.ledger_conserves);
    let result = QualityResult {
        query_saving,
        deterministic,
        mto_fewer_queries,
        early_stop_releases_budget,
        arms,
    };

    let mut report = ExperimentReport::new("quality");
    report.note(format!(
        "Epinions stand-in /{} ({} nodes); {} walkers per arm, `quality ess={}` SLO, step cap \
         {}, epoch quantum {} (the early-stop granularity), shared fleet budget {} \
         ({:.1}x predicted cap demand), W={} verdict arm.",
        config.scale,
        graph.num_nodes(),
        config.walkers,
        config.target_ess,
        config.step_cap,
        config.epoch_quantum,
        fleet_budget,
        config.budget_headroom,
        config.verdict_shards,
    ));
    let mut table = Table::new(
        "Unique queries to the target ESS, MTO vs SRW (early-stopped at epoch barriers)",
        &["arm", "steps (per walker)", "ESS at stop", "all met", "unique queries", "reclaimed"],
    );
    for arm in &result.arms {
        table.push_row(vec![
            arm.algo.to_string(),
            arm.steps.iter().map(usize::to_string).collect::<Vec<_>>().join("/"),
            arm.ess.iter().map(|e| format!("{e:.0}")).collect::<Vec<_>>().join("/"),
            u8::from(arm.all_met).to_string(),
            arm.unique_queries.to_string(),
            arm.ledger_reclaimed.to_string(),
        ]);
    }
    report.tables.push(table);
    report.note(format!(
        "MTO hits ESS {} with {} unique queries vs SRW's {} — a {:.0}% saving at equal budget.",
        config.target_ess,
        result.arms[0].unique_queries,
        result.arms[1].unique_queries,
        100.0 * result.query_saving,
    ));
    report.note(format!(
        "Results digest and quality report identical across W in {:?}: {}.",
        config.shard_counts, result.deterministic
    ));
    report.note(format!(
        "mto-fewer-queries-at-ess: {}",
        if result.mto_fewer_queries { "PASS" } else { "FAIL" }
    ));
    report.note(format!(
        "early-stop-releases-budget: {}",
        if result.early_stop_releases_budget { "PASS" } else { "FAIL" }
    ));
    report.note(format!(
        "quality-deterministic: {}",
        if result.deterministic { "PASS" } else { "FAIL" }
    ));
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mto_hits_target_ess_cheaper_than_srw_at_reduced_scale() {
        // The acceptance criterion of ISSUE 10: MTO reaches the target
        // ESS within its cap with ≥ 30% fewer unique queries than the
        // SRW baseline's equal-budget bill; early stops reclaim budget
        // with conservation intact; byte-identical results and quality
        // reports across W.
        let (result, report) = run(&QualityConfig::reduced());
        assert!(result.deterministic, "results or quality diverged across shard counts");
        let mto = &result.arms[0];
        assert!(mto.all_met, "every MTO walker must hit the target within the cap");
        assert!(
            mto.steps.iter().all(|&s| s < QualityConfig::reduced().step_cap),
            "the SLO, not the cap, must end MTO jobs ({:?})",
            mto.steps
        );
        assert!(
            result.query_saving >= 0.30,
            "MTO must save >=30% of SRW's queries (saved {:.0}%)",
            100.0 * result.query_saving
        );
        assert!(result.early_stop_releases_budget, "early stop must reclaim budget");
        assert!(result.mto_fewer_queries);
        let text = report.to_markdown();
        assert!(text.contains("mto-fewer-queries-at-ess: PASS"), "{text}");
        assert!(text.contains("early-stop-releases-budget: PASS"), "{text}");
        assert!(text.contains("quality-deterministic: PASS"), "{text}");
    }
}
