//! Dataset stand-ins for the paper's Table I snapshots and the Google Plus
//! online graph.
//!
//! The SNAP archives the paper downloads (Epinions, Slashdot Feb/Nov 2009)
//! are not available offline, so each dataset is *synthesized* to match
//! the properties the experiments actually exercise:
//!
//! * node/edge scale (Table I: 26,588/100,120 … 70,999/436,453),
//! * a heavy-tailed degree distribution (Chung–Lu with power-law weights),
//! * pronounced community structure — the cause of the low conductance
//!   that motivates the whole paper — planted by splitting each node's
//!   expected degree into an intra-community and a global share,
//! * a small 90% effective diameter (~4.5, Table I).
//!
//! * near-clique **social circles** — trust/friendship snapshots like
//!   Epinions are triangle-dense (clustering ≈ 0.2–0.3), and those
//!   almost-complete ego neighborhoods are exactly what the Theorem 3
//!   removal criterion (`|N(u)∩N(v)| ≳ max(k)−2`) consumes. Without them
//!   MTO degenerates to replacement-only.
//!
//! The construction: community sizes follow a power law; within each
//! community, members are grouped into dense circles (size 4–9, ~95%
//! internal edge probability) whose edges dominate a typical node's
//! degree; the node's *residual* expected degree is realized by Chung–Lu
//! passes — `(1 − mixing)` of it inside the community, `mixing` globally.
//! Everything is merged, deduplicated, reduced to the largest connected
//! component, and served behind the `mto-osn` interface.

use mto_graph::algo::largest_component;
use mto_graph::generators::{chung_lu_graph, power_law_weights, ChungLuSpec};
use mto_graph::{Graph, GraphBuilder, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Recipe for one synthetic social network.
#[derive(Clone, Debug)]
pub struct DatasetSpec {
    /// Dataset label (matches the paper's).
    pub name: &'static str,
    /// Target node count (before largest-component extraction).
    pub nodes: usize,
    /// Target *average degree* (calibrates edge count).
    pub target_avg_degree: f64,
    /// Power-law exponent of the degree distribution.
    pub exponent: f64,
    /// Fraction of each node's degree spent on global (inter-community)
    /// edges. Smaller = stronger communities = lower conductance.
    pub mixing: f64,
    /// Number of communities.
    pub communities: usize,
    /// Social-circle size range (near-cliques dominating typical nodes'
    /// degree; drives the triangle density Theorem 3 feeds on).
    pub circle_size: (usize, usize),
    /// Probability of each within-circle edge.
    pub circle_edge_prob: f64,
    /// Fraction of circles that are **whiskers**: dense attachments whose
    /// members reach the rest of the graph only through one gateway
    /// member. Whiskers are the low-conductance structure Leskovec et
    /// al. (\[16\] in the paper) measured in real social networks and the
    /// main reason their mixing times are so long (\[18\]) — and they are
    /// near-cliques, so Theorem 3 can dissolve them.
    pub whisker_fraction: f64,
    /// RNG seed (datasets are fully deterministic).
    pub seed: u64,
    /// Paper-reported statistics for side-by-side reporting:
    /// `(nodes, edges, diameter90)`.
    pub paper_reference: (usize, usize, f64),
}

impl DatasetSpec {
    /// Epinions-like: 26,588 nodes / 100,120 edges / 4.8 diameter.
    pub fn epinions() -> Self {
        DatasetSpec {
            name: "Epinions",
            nodes: 26_588,
            target_avg_degree: 2.0 * 100_120.0 / 26_588.0,
            exponent: 2.3,
            mixing: 0.22,
            communities: 60,
            circle_size: (4, 8),
            circle_edge_prob: 0.95,
            whisker_fraction: 0.6,
            seed: 0xE91,
            paper_reference: (26_588, 100_120, 4.8),
        }
    }

    /// Slashdot-A-like: 70,068 nodes / 428,714 edges / 4.5 diameter.
    pub fn slashdot_a() -> Self {
        DatasetSpec {
            name: "Slashdot A",
            nodes: 70_068,
            target_avg_degree: 2.0 * 428_714.0 / 70_068.0,
            exponent: 2.4,
            mixing: 0.25,
            communities: 90,
            circle_size: (5, 9),
            circle_edge_prob: 0.95,
            whisker_fraction: 0.55,
            seed: 0x51A,
            paper_reference: (70_068, 428_714, 4.5),
        }
    }

    /// Slashdot-B-like: 70,999 nodes / 436,453 edges / 4.5 diameter.
    pub fn slashdot_b() -> Self {
        DatasetSpec {
            name: "Slashdot B",
            nodes: 70_999,
            target_avg_degree: 2.0 * 436_453.0 / 70_999.0,
            exponent: 2.4,
            mixing: 0.25,
            communities: 90,
            circle_size: (5, 9),
            circle_edge_prob: 0.95,
            whisker_fraction: 0.55,
            seed: 0x51B,
            paper_reference: (70_999, 436_453, 4.5),
        }
    }

    /// Google-Plus-like: the paper accessed 240,276 users through the live
    /// API (no ground truth existed for the full 85M-user network; like
    /// the paper we treat the converged estimate as the reference).
    pub fn google_plus() -> Self {
        DatasetSpec {
            name: "Google Plus",
            nodes: 240_276,
            target_avg_degree: 12.0,
            exponent: 2.2,
            mixing: 0.2,
            communities: 250,
            circle_size: (4, 9),
            circle_edge_prob: 0.95,
            whisker_fraction: 0.55,
            seed: 0x6006,
            paper_reference: (240_276, 0, 0.0),
        }
    }

    /// A `1/scale` miniature preserving density and structure — used by
    /// unit tests and reduced experiment runs.
    pub fn scaled_down(&self, scale: usize) -> DatasetSpec {
        assert!(scale >= 1, "scale must be positive");
        DatasetSpec {
            nodes: (self.nodes / scale).max(200),
            communities: (self.communities / scale).max(4),
            ..self.clone()
        }
    }

    /// All three Table I datasets.
    pub fn table1() -> Vec<DatasetSpec> {
        vec![DatasetSpec::slashdot_a(), DatasetSpec::slashdot_b(), DatasetSpec::epinions()]
    }
}

/// Builds the dataset: returns the largest connected component, densely
/// relabelled.
pub fn build_dataset(spec: &DatasetSpec) -> Graph {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let n = spec.nodes;

    // Power-law expected degrees, rescaled to the target mean. The cap is
    // the Chung–Lu feasibility limit √W = √(n·k̄): real snapshots carry
    // hubs of thousands of friends, and a lighter cap would flatten the
    // tail and flatter the uniform-target samplers (MHRW/RJ) unfairly.
    let weight_cap = (n as f64 * spec.target_avg_degree).sqrt();
    let cl = ChungLuSpec::new(n, spec.exponent, 1.0, weight_cap);
    let mut weights = power_law_weights(&cl, &mut rng);
    let mean_w: f64 = weights.iter().sum::<f64>() / n as f64;
    let scale = spec.target_avg_degree / mean_w;
    for w in &mut weights {
        *w = (*w * scale).min(weight_cap);
    }

    // Power-law community sizes.
    let membership = assign_communities(n, spec.communities, &mut rng);
    let mut members: Vec<Vec<u32>> = vec![Vec::new(); spec.communities];
    for (node, &c) in membership.iter().enumerate() {
        members[c].push(node as u32);
    }

    let mut builder = GraphBuilder::with_nodes(n);
    // Mirrors the builder's connectivity so whisker gateways can be
    // steered into the largest realized component below.
    let mut dsu = UnionFind::new(n);

    // Social circles: chop each community into dense near-cliques. A
    // typical (low-weight) node's degree is dominated by its circle, which
    // creates the `common ≈ k − 2` neighborhoods the removal criterion
    // needs. Each circle edge consumes expected degree, tracked per node
    // so the Chung–Lu passes only realize the residual.
    let (lo, hi) = spec.circle_size;
    assert!(2 <= lo && lo <= hi, "invalid circle size range {lo}..={hi}");
    assert!((0.0..=1.0).contains(&spec.whisker_fraction), "whisker fraction outside [0,1]");
    let mut circle_degree = vec![0.0f64; n];
    // Whisker members (gateway included) get no external residual; each
    // whisker is re-attached by exactly one gateway edge after the
    // Chung–Lu passes.
    let mut external_blocked = vec![false; n];
    let mut whisker_gateways: Vec<(u32, usize)> = Vec::new();
    for (community_index, community) in members.iter().enumerate() {
        let mut pool: Vec<u32> = community.clone();
        // Shuffle so circles don't correlate with node weight.
        for i in (1..pool.len()).rev() {
            let j = rng.gen_range(0..=i);
            pool.swap(i, j);
        }
        let mut idx = 0usize;
        while pool.len() - idx >= lo {
            let size = rng.gen_range(lo..=hi).min(pool.len() - idx);
            let circle = &pool[idx..idx + size];
            for a in 0..size {
                for b in (a + 1)..size {
                    if rng.gen::<f64>() < spec.circle_edge_prob {
                        builder.add_edge_u32(circle[a], circle[b]);
                        dsu.union(circle[a], circle[b]);
                        circle_degree[circle[a] as usize] += 1.0;
                        circle_degree[circle[b] as usize] += 1.0;
                    }
                }
            }
            if rng.gen::<f64>() < spec.whisker_fraction {
                // Whisker: the whole circle is sealed off from the
                // Chung–Lu passes and re-attached to the core by exactly
                // one gateway edge below — the canonical single-edge
                // whisker of Leskovec et al., whose cut conductance
                // (1 / circle volume) is strictly deeper than any
                // chance-attached circle.
                let gateway = circle[rng.gen_range(0..size)];
                for &member in circle {
                    external_blocked[member as usize] = true;
                }
                whisker_gateways.push((gateway, community_index));
            }
            idx += size;
        }
    }

    // Residual expected degree feeds the Chung–Lu passes. Sealed whisker
    // members get nothing (their gateway edge is added explicitly below);
    // everyone else keeps what the circles did not consume.
    let mut residual: Vec<f64> = weights
        .iter()
        .zip(&circle_degree)
        .enumerate()
        .map(|(v, (w, c))| if external_blocked[v] { 0.0 } else { (w - c).max(0.2) })
        .collect();

    // Rescale the residual pool so the realized mean degree still tracks
    // the Table I target despite the sealed whisker members.
    let circle_mean = circle_degree.iter().sum::<f64>() / n as f64;
    let residual_mean = residual.iter().sum::<f64>() / n as f64;
    let needed_mean = (spec.target_avg_degree - circle_mean).max(0.1);
    if residual_mean > 0.0 {
        let boost = needed_mean / residual_mean;
        for r in &mut residual {
            *r = (*r * boost).min(weight_cap);
        }
    }

    // Intra-community share of the residual.
    for community in &members {
        if community.len() < 2 {
            continue;
        }
        let local_weights: Vec<f64> =
            community.iter().map(|&v| residual[v as usize] * (1.0 - spec.mixing)).collect();
        if local_weights.iter().sum::<f64>() <= 0.0 {
            // Every member sealed into whiskers: nothing to realize (a
            // high `whisker_fraction` can consume a small community
            // entirely; its circles are attached by gateway edges below).
            continue;
        }
        let local = chung_lu_graph(&local_weights, &mut rng);
        for e in local.edges() {
            builder.add_edge_u32(community[e.small().index()], community[e.large().index()]);
            dsu.union(community[e.small().index()], community[e.large().index()]);
        }
    }

    // Global share of the residual.
    let global_weights: Vec<f64> = residual.iter().map(|w| w * spec.mixing).collect();
    let global = chung_lu_graph(&global_weights, &mut rng);
    for e in global.edges() {
        builder.add_edge_u32(e.small().0, e.large().0);
        dsu.union(e.small().0, e.large().0);
    }

    // Attach each whisker to the core by exactly one gateway edge —
    // preferably inside its own community, falling back to any core node
    // when the community was chopped into whiskers entirely. Targets are
    // restricted to the *largest realized component* (tracked by the
    // union-find above), so the whisker provably survives the
    // largest-component extraction and its cut is the Φ ≈ 1/volume
    // structure the spec promises — an unsealed node with zero realized
    // Chung–Lu edges would otherwise drag the whisker out of the LCC.
    let open_roots: Vec<u32> =
        (0..n as u32).filter(|&v| !external_blocked[v as usize]).map(|v| dsu.find(v)).collect();
    let core_root = open_roots.into_iter().max_by_key(|&r| dsu.component_size(r));
    let open: Vec<u32> = match core_root {
        Some(root) => (0..n as u32)
            .filter(|&v| !external_blocked[v as usize] && dsu.find(v) == root)
            .collect(),
        None => Vec::new(),
    };
    for &(gateway, community) in &whisker_gateways {
        let candidates: Vec<u32> = members[community]
            .iter()
            .copied()
            .filter(|&v| !external_blocked[v as usize] && Some(dsu.find(v)) == core_root)
            .collect();
        let target = if !candidates.is_empty() {
            candidates[rng.gen_range(0..candidates.len())]
        } else if !open.is_empty() {
            open[rng.gen_range(0..open.len())]
        } else if gateway != 0 {
            // Degenerate spec (every node whiskered): chain to node 0.
            NodeId(0).0
        } else {
            continue;
        };
        builder.add_edge_u32(gateway, target);
    }

    let merged = builder.build();
    largest_component(&merged).0
}

/// Size-tracking union-find over node ids, mirroring realized edges so
/// whisker gateways can target the largest component deterministically.
struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind { parent: (0..n as u32).collect(), size: vec![1; n] }
    }

    fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            // Path halving.
            self.parent[x as usize] = self.parent[self.parent[x as usize] as usize];
            x = self.parent[x as usize];
        }
        x
    }

    fn union(&mut self, a: u32, b: u32) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
    }

    /// Size of the component rooted at `root` (callers pass `find(v)`).
    fn component_size(&self, root: u32) -> u32 {
        self.size[root as usize]
    }
}

/// Assigns nodes to communities with power-law sizes (Zipf-ish weights).
fn assign_communities<R: Rng + ?Sized>(n: usize, communities: usize, rng: &mut R) -> Vec<usize> {
    assert!(communities >= 1);
    // Community attraction ∝ rank^{-0.8}: a few big, many small.
    let attractions: Vec<f64> = (1..=communities).map(|r| (r as f64).powf(-0.8)).collect();
    let total: f64 = attractions.iter().sum();
    let mut cumulative = Vec::with_capacity(communities);
    let mut acc = 0.0;
    for a in &attractions {
        acc += a / total;
        cumulative.push(acc);
    }
    (0..n)
        .map(|_| {
            let u: f64 = rng.gen();
            cumulative.iter().position(|&c| u <= c).unwrap_or(communities - 1)
        })
        .collect()
}

/// Picks a random start node, weighted like a "publicly known" account
/// (walks in practice start from some discoverable user).
pub fn random_start<R: Rng + ?Sized>(g: &Graph, rng: &mut R) -> NodeId {
    NodeId(rng.gen_range(0..g.num_nodes() as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::algo::{connected_components, DegreeStats};

    fn mini(spec: DatasetSpec) -> (DatasetSpec, Graph) {
        let s = spec.scaled_down(20);
        let g = build_dataset(&s);
        (s, g)
    }

    #[test]
    fn mini_epinions_has_expected_shape() {
        let (s, g) = mini(DatasetSpec::epinions());
        assert!(g.num_nodes() > s.nodes / 2, "LCC keeps most nodes: {}", g.num_nodes());
        let avg = g.average_degree();
        assert!(
            (avg - s.target_avg_degree).abs() / s.target_avg_degree < 0.35,
            "avg degree {avg} vs target {}",
            s.target_avg_degree
        );
        assert_eq!(connected_components(&g).num_components(), 1);
        g.validate().unwrap();
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let (_, g) = mini(DatasetSpec::slashdot_a());
        let stats = DegreeStats::of(&g);
        assert!(stats.max as f64 > 6.0 * stats.mean, "hub {} vs mean {}", stats.max, stats.mean);
        assert!(stats.min >= 1);
    }

    #[test]
    fn communities_lower_conductance() {
        // Compare the sweep-cut conductance of the community graph against
        // a degree-matched Chung–Lu graph without communities. Whiskers
        // are disabled so the community mixing knob is what's isolated
        // (whisker cuts otherwise dominate both graphs equally).
        use mto_spectral::conductance::sweep_conductance;
        let spec = DatasetSpec { mixing: 0.08, whisker_fraction: 0.0, ..DatasetSpec::epinions() }
            .scaled_down(40);
        let clustered = build_dataset(&spec);
        let flat_spec = DatasetSpec { mixing: 0.999, ..spec.clone() };
        let flat = build_dataset(&flat_spec);
        let (phi_clustered, _) = sweep_conductance(&clustered);
        let (phi_flat, _) = sweep_conductance(&flat);
        assert!(
            phi_clustered < phi_flat,
            "communities must hurt conductance: {phi_clustered} vs {phi_flat}"
        );
    }

    #[test]
    fn whiskers_lower_conductance_further() {
        use mto_spectral::conductance::sweep_conductance;
        let base = DatasetSpec { whisker_fraction: 0.0, ..DatasetSpec::epinions() }.scaled_down(40);
        let whiskered =
            DatasetSpec { whisker_fraction: 0.8, ..DatasetSpec::epinions() }.scaled_down(40);
        let (phi_base, _) = sweep_conductance(&build_dataset(&base));
        let (phi_whiskered, _) = sweep_conductance(&build_dataset(&whiskered));
        assert!(
            phi_whiskered < phi_base,
            "whiskers are the low-conductance structure: {phi_whiskered} vs {phi_base}"
        );
    }

    #[test]
    fn datasets_are_deterministic() {
        let spec = DatasetSpec::epinions().scaled_down(40);
        let a = build_dataset(&spec);
        let b = build_dataset(&spec);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn distinct_seeds_give_distinct_graphs() {
        let a = build_dataset(&DatasetSpec::epinions().scaled_down(40));
        let b =
            build_dataset(&DatasetSpec { seed: 123, ..DatasetSpec::epinions() }.scaled_down(40));
        assert_ne!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn community_assignment_is_skewed() {
        let mut rng = StdRng::seed_from_u64(1);
        let m = assign_communities(10_000, 20, &mut rng);
        let mut sizes = [0usize; 20];
        for &c in &m {
            sizes[c] += 1;
        }
        assert!(sizes[0] > sizes[19], "rank-1 community should dominate rank-20");
        assert!(sizes.iter().all(|&s| s > 0));
    }

    #[test]
    fn table1_lists_three_datasets() {
        let specs = DatasetSpec::table1();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[2].name, "Epinions");
    }

    #[test]
    fn scaled_down_shrinks() {
        let s = DatasetSpec::slashdot_b().scaled_down(10);
        assert_eq!(s.nodes, 7_099);
        assert_eq!(s.communities, 9);
        // Density target unchanged.
        assert_eq!(s.target_avg_degree, DatasetSpec::slashdot_b().target_avg_degree);
    }
}
