//! Fig 9: sweeping the Geweke threshold on Slashdot B.
//!
//! The paper varies the convergence threshold from 0.1 to 0.8 and plots,
//! for SRW and MTO, the resulting symmetric KL divergence and query cost:
//! tighter thresholds buy smaller bias with more queries, and MTO sits
//! below SRW across the sweep.

use std::sync::Arc;

use mto_core::diagnostics::kl::{symmetric_kl, VisitCounter, DEFAULT_SMOOTHING};
use mto_core::estimate::Aggregate;
use mto_graph::NodeId;
use mto_osn::OsnService;
use mto_spectral::stationary_distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets::{build_dataset, DatasetSpec};
use crate::driver::{run_converged, Algorithm, RunProtocol};
use crate::report::{fmt, ExperimentReport, Series, Table};

/// Parameters for the Fig 9 sweep.
#[derive(Clone, Debug)]
pub struct Fig9Config {
    /// Scale-down divisor.
    pub scale: usize,
    /// Thresholds to sweep (paper: 0.1–0.8).
    pub thresholds: Vec<f64>,
    /// Samples per point.
    pub samples: usize,
    /// Burn-in cap.
    pub max_burn_in_steps: usize,
    /// Base seed.
    pub seed: u64,
}

impl Fig9Config {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        Fig9Config {
            scale: 1,
            thresholds: vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8],
            samples: 20_000,
            max_burn_in_steps: 60_000,
            seed: 0xF19,
        }
    }

    /// Reduced configuration.
    pub fn reduced() -> Self {
        Fig9Config {
            scale: 40,
            thresholds: vec![0.1, 0.4, 0.8],
            samples: 4_000,
            max_burn_in_steps: 12_000,
            ..Fig9Config::full()
        }
    }
}

/// One sweep point.
#[derive(Clone, Debug)]
pub struct Fig9Point {
    /// Geweke threshold.
    pub threshold: f64,
    /// Symmetric KL at this threshold.
    pub kl: f64,
    /// Query cost at this threshold.
    pub cost: u64,
}

/// Runs the sweep for one algorithm on Slashdot B.
fn sweep(
    alg: Algorithm,
    graph: &mto_graph::Graph,
    service: &Arc<OsnService>,
    pi: &[f64],
    start: NodeId,
    config: &Fig9Config,
) -> Vec<Fig9Point> {
    config
        .thresholds
        .iter()
        .map(|&threshold| {
            let protocol = RunProtocol {
                geweke_threshold: threshold,
                max_burn_in_steps: config.max_burn_in_steps,
                sample_steps: config.samples,
            };
            let seed = config.seed ^ (threshold * 1000.0) as u64;
            // Each sampler is measured against its own stationary law
            // (see fig8): SRW vs pi(G), MTO vs pi(G*) of its final overlay.
            let (kl, cost) = if alg == Algorithm::Mto {
                let mut sampler = mto_core::mto::MtoSampler::new(
                    mto_osn::CachedClient::new(service.clone()),
                    start,
                    crate::driver::mto_config(seed),
                )
                .expect("valid start");
                let run = run_converged(&mut sampler, service, Aggregate::AverageDegree, protocol)
                    .expect("simulated interface cannot fail");
                let mut counter = VisitCounter::new(pi.len());
                for (s, _) in &run.samples {
                    counter.record(s.node);
                }
                let overlay = sampler.overlay().materialize(graph);
                let vol = overlay.volume() as f64;
                let pi_star: Vec<f64> =
                    overlay.nodes().map(|v| overlay.degree(v) as f64 / vol).collect();
                (symmetric_kl(&pi_star, &counter.distribution(), DEFAULT_SMOOTHING), run.total_cost)
            } else {
                let mut walker = alg.build(service.clone(), start, seed).expect("valid start");
                let run =
                    run_converged(walker.as_mut(), service, Aggregate::AverageDegree, protocol)
                        .expect("simulated interface cannot fail");
                let mut counter = VisitCounter::new(pi.len());
                for (s, _) in &run.samples {
                    counter.record(s.node);
                }
                (symmetric_kl(pi, &counter.distribution(), DEFAULT_SMOOTHING), run.total_cost)
            };
            Fig9Point { threshold, kl, cost }
        })
        .collect()
}

/// Runs Fig 9 (SRW and MTO on Slashdot B).
pub fn run(config: &Fig9Config) -> (Vec<Fig9Point>, Vec<Fig9Point>, ExperimentReport) {
    let spec = if config.scale > 1 {
        DatasetSpec::slashdot_b().scaled_down(config.scale)
    } else {
        DatasetSpec::slashdot_b()
    };
    let graph = build_dataset(&spec);
    let service = Arc::new(OsnService::with_defaults(&graph));
    let pi = stationary_distribution(&graph);
    let mut rng = StdRng::seed_from_u64(config.seed);
    let start = NodeId(rng.gen_range(0..graph.num_nodes() as u32));

    let srw = sweep(Algorithm::Srw, &graph, &service, &pi, start, config);
    let mto = sweep(Algorithm::Mto, &graph, &service, &pi, start, config);

    let mut report = ExperimentReport::new("fig9");
    report.note("Geweke threshold sweep on Slashdot B (paper Fig 9).");
    let mut table = Table::new(
        "Fig 9 — KL divergence and query cost vs Geweke threshold",
        &["threshold", "KL SRW", "KL MTO", "cost SRW", "cost MTO"],
    );
    for (s, m) in srw.iter().zip(&mto) {
        table.push_row(vec![
            fmt(s.threshold),
            fmt(s.kl),
            fmt(m.kl),
            s.cost.to_string(),
            m.cost.to_string(),
        ]);
    }
    report.tables.push(table);
    report.series.push(Series {
        label: "KL_SRW".into(),
        points: srw.iter().map(|p| (p.threshold, p.kl)).collect(),
    });
    report.series.push(Series {
        label: "KL_MTO".into(),
        points: mto.iter().map(|p| (p.threshold, p.kl)).collect(),
    });
    report.series.push(Series {
        label: "QC_SRW".into(),
        points: srw.iter().map(|p| (p.threshold, p.cost as f64)).collect(),
    });
    report.series.push(Series {
        label: "QC_MTO".into(),
        points: mto.iter().map(|p| (p.threshold, p.cost as f64)).collect(),
    });
    (srw, mto, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_sweep_produces_points_per_threshold() {
        let config = Fig9Config { samples: 2_000, ..Fig9Config::reduced() };
        let (srw, mto, report) = run(&config);
        assert_eq!(srw.len(), 3);
        assert_eq!(mto.len(), 3);
        for p in srw.iter().chain(&mto) {
            assert!(p.kl.is_finite() && p.kl > 0.0);
            assert!(p.cost > 0);
        }
        let md = report.to_markdown();
        assert!(md.contains("KL_SRW"));
        assert!(md.contains("QC_MTO"));
    }

    #[test]
    fn looser_thresholds_do_not_cost_more() {
        // Burn-in (and hence total cost at fixed sample count) shrinks as
        // the threshold loosens; sampling noise can wiggle it, so compare
        // the extremes with slack.
        let config = Fig9Config { samples: 2_000, ..Fig9Config::reduced() };
        let (srw, _, _) = run(&config);
        let tight = srw.first().unwrap();
        let loose = srw.last().unwrap();
        assert!(
            loose.cost <= tight.cost.saturating_add(tight.cost / 2),
            "loose {} vs tight {}",
            loose.cost,
            tight.cost
        );
    }
}
