//! Theorem 6 / Eq (13): the latent-space removal bound.
//!
//! For the hard-threshold latent-space model, Theorem 6 lower-bounds the
//! expected number of removable edges via the probability that two uniform
//! points fall within `√0.75 · r` of each other, and concludes (for the
//! paper's `r=0.7, [0,4]×[0,5], D=2` configuration) that
//! `E[Φ(G*)] ≥ 1.052 · Φ(G)` — a deliberately conservative bound the real
//! sampler beats comfortably (compare Fig 10).
//!
//! This experiment measures all three quantities: the Monte-Carlo bound
//! probability (the paper's 20,000-point experiment), the realized
//! removable-edge fraction on sampled graphs, and the realized conductance
//! uplift after removal.

use mto_core::materialize_removal_overlay;
use mto_graph::algo::largest_component;
use mto_graph::generators::{latent_space_graph, LatentSpaceModel};
use mto_spectral::conductance::{exact_conductance, sweep_conductance, MAX_EXACT_NODES};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::fig10::removal_probability_bound;
use crate::report::{fmt, ExperimentReport, Table};

/// Parameters of the Theorem 6 experiment.
#[derive(Clone, Debug)]
pub struct Theorem6Config {
    /// Monte-Carlo point pairs (paper: 20,000).
    pub mc_pairs: usize,
    /// Graph sizes to measure the realized uplift on.
    pub sizes: Vec<usize>,
    /// Graphs per size.
    pub graphs_per_size: usize,
    /// Base seed.
    pub seed: u64,
}

impl Theorem6Config {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        Theorem6Config { mc_pairs: 20_000, sizes: vec![24, 60, 90], graphs_per_size: 5, seed: 0x76 }
    }

    /// Reduced configuration.
    pub fn reduced() -> Self {
        Theorem6Config { mc_pairs: 8_000, sizes: vec![24, 60], graphs_per_size: 2, ..Self::full() }
    }
}

/// Measured quantities.
#[derive(Clone, Debug)]
pub struct Theorem6Result {
    /// Monte-Carlo `P(d ≤ √0.75·r)`.
    pub p_removable_bound: f64,
    /// Implied conductance uplift `1/(1−P)` (paper: 1.052).
    pub bound_uplift: f64,
    /// Realized removable-edge fraction per size.
    pub removable_fraction: Vec<(usize, f64)>,
    /// Realized conductance uplift per size.
    pub conductance_uplift: Vec<(usize, f64)>,
}

/// Runs the experiment.
pub fn run(config: &Theorem6Config) -> (Theorem6Result, ExperimentReport) {
    let model = LatentSpaceModel::paper_fig10();
    let p = removal_probability_bound(&model, config.mc_pairs, config.seed);
    let bound_uplift = 1.0 / (1.0 - p);

    let mut removable_fraction = Vec::new();
    let mut conductance_uplift = Vec::new();

    for &n in &config.sizes {
        let mut fracs = Vec::new();
        let mut uplifts = Vec::new();
        let mut produced = 0usize;
        let mut attempt = 0u64;
        while produced < config.graphs_per_size && attempt < 60 {
            attempt += 1;
            let mut rng = StdRng::seed_from_u64(config.seed ^ (n as u64) << 10 ^ attempt);
            let sample = latent_space_graph(&model, n, &mut rng);
            let (g, _) = largest_component(&sample.graph);
            if g.num_nodes() < n / 2 || g.num_edges() < 4 || g.min_degree() == 0 {
                continue;
            }
            produced += 1;
            let overlay = materialize_removal_overlay(&g);
            let removed = g.num_edges() - overlay.num_edges();
            fracs.push(removed as f64 / g.num_edges() as f64);
            let (phi_before, phi_after) = if g.num_nodes() <= MAX_EXACT_NODES {
                (exact_conductance(&g).phi, exact_conductance(&overlay).phi)
            } else {
                (sweep_conductance(&g).0, sweep_conductance(&overlay).0)
            };
            if phi_before > 0.0 {
                uplifts.push(phi_after / phi_before);
            }
        }
        assert!(produced > 0, "no usable latent-space graph of size {n}");
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len().max(1) as f64;
        removable_fraction.push((n, avg(&fracs)));
        conductance_uplift.push((n, avg(&uplifts)));
    }

    let mut report = ExperimentReport::new("theorem6");
    report.note(format!(
        "Monte-Carlo bound from {} point pairs; paper's Eq (13) constant is 1.052.",
        config.mc_pairs
    ));
    let mut t =
        Table::new("Theorem 6 — bound vs realized", &["quantity", "paper / bound", "measured"]);
    t.push_row(vec!["P(d <= sqrt(0.75) r)".into(), "~0.049".into(), fmt(p)]);
    t.push_row(vec!["E[Phi(G*)]/Phi(G) lower bound".into(), "1.052".into(), fmt(bound_uplift)]);
    report.tables.push(t);

    let mut t2 = Table::new(
        "Realized removal on sampled latent-space graphs",
        &["n", "removable edge fraction", "conductance uplift"],
    );
    for ((n, f), (_, u)) in removable_fraction.iter().zip(&conductance_uplift) {
        t2.push_row(vec![n.to_string(), fmt(*f), fmt(*u)]);
    }
    report.tables.push(t2);

    (
        Theorem6Result {
            p_removable_bound: p,
            bound_uplift,
            removable_fraction,
            conductance_uplift,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_constant_matches_paper() {
        let (r, report) = run(&Theorem6Config::reduced());
        assert!((r.bound_uplift - 1.052).abs() < 0.02, "uplift {}", r.bound_uplift);
        assert!(report.to_markdown().contains("1.052"));
    }

    #[test]
    fn realized_removal_beats_the_conservative_bound() {
        let (r, _) = run(&Theorem6Config::reduced());
        for &(n, frac) in &r.removable_fraction {
            // The bound says at least P ≈ 0.05 of *all pairs*; the realized
            // removable fraction of *edges* is far larger on these dense
            // geometric graphs.
            assert!(
                frac > r.p_removable_bound,
                "n={n}: removable fraction {frac} below bound {}",
                r.p_removable_bound
            );
        }
    }

    #[test]
    fn conductance_does_not_collapse() {
        let (r, _) = run(&Theorem6Config::reduced());
        for &(n, uplift) in &r.conductance_uplift {
            assert!(uplift > 0.8, "n={n}: uplift {uplift} collapsed");
        }
    }
}
