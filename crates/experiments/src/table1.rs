//! Table I: local dataset statistics.
//!
//! The paper reports `#nodes`, `#edges` and the 90% effective diameter of
//! the three local snapshots (after mutual-edge conversion). Our synthetic
//! stand-ins are calibrated to land near those numbers; this experiment
//! builds them and reports paper-vs-measured side by side, plus the
//! clustering statistics that explain how much material Theorem 3 has to
//! work with.

use mto_graph::algo::{
    average_clustering_coefficient, effective_diameter, DegreeStats, EffectiveDiameterOptions,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::datasets::{build_dataset, DatasetSpec};
use crate::report::{fmt, ExperimentReport, Table};

/// One measured dataset row.
#[derive(Clone, Debug)]
pub struct DatasetRow {
    /// Dataset label.
    pub name: &'static str,
    /// Measured node count (largest component).
    pub nodes: usize,
    /// Measured edge count.
    pub edges: usize,
    /// Sampled 90% effective diameter.
    pub diameter90: f64,
    /// Average clustering coefficient.
    pub clustering: f64,
    /// Degree summary.
    pub degrees: DegreeStats,
}

/// Builds all Table I datasets (optionally scaled down) and measures them.
pub fn run(scale: usize) -> (Vec<DatasetRow>, ExperimentReport) {
    let mut rows = Vec::new();
    let mut report = ExperimentReport::new("table1");
    report.note(
        "Datasets are synthetic stand-ins (Chung-Lu + planted communities) \
         calibrated to the paper's Table I; see DESIGN.md §3.",
    );
    if scale > 1 {
        report.note(format!("Reduced run: all datasets scaled down by {scale}x."));
    }

    let mut table = Table::new(
        "Table I — local datasets (paper vs measured)",
        &[
            "dataset",
            "#nodes paper",
            "#nodes",
            "#edges paper",
            "#edges",
            "90% diam paper",
            "90% diam",
            "avg clustering",
        ],
    );

    for spec in DatasetSpec::table1() {
        let spec = if scale > 1 { spec.scaled_down(scale) } else { spec };
        let g = build_dataset(&spec);
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xD1A);
        let diameter = effective_diameter(
            &g,
            EffectiveDiameterOptions { quantile: 0.9, num_sources: 96 },
            &mut rng,
        );
        let clustering = if g.num_nodes() <= 20_000 {
            average_clustering_coefficient(&g)
        } else {
            // Sampled clustering on big graphs: first 10k nodes is plenty
            // for a summary statistic.
            let sum: f64 = (0..10_000u32)
                .map(|v| mto_graph::algo::local_clustering_coefficient(&g, mto_graph::NodeId(v)))
                .sum();
            sum / 10_000.0
        };
        let row = DatasetRow {
            name: spec.name,
            nodes: g.num_nodes(),
            edges: g.num_edges(),
            diameter90: diameter,
            clustering,
            degrees: DegreeStats::of(&g),
        };
        let (pn, pe, pd) = spec.paper_reference;
        table.push_row(vec![
            row.name.into(),
            pn.to_string(),
            row.nodes.to_string(),
            pe.to_string(),
            row.edges.to_string(),
            fmt(pd),
            fmt(row.diameter90),
            fmt(row.clustering),
        ]);
        rows.push(row);
    }
    report.tables.push(table);
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_table1_has_three_rows_with_sane_stats() {
        let (rows, report) = run(40);
        assert_eq!(rows.len(), 3);
        for row in &rows {
            assert!(row.nodes > 300, "{}: {} nodes", row.name, row.nodes);
            assert!(row.edges > row.nodes, "{}: sparser than a tree?", row.name);
            assert!(
                row.diameter90 > 2.0 && row.diameter90 < 12.0,
                "{}: diameter {}",
                row.name,
                row.diameter90
            );
            assert!(row.clustering >= 0.0 && row.clustering <= 1.0);
            assert!(row.degrees.max > 3 * row.degrees.mean as usize);
        }
        let md = report.to_markdown();
        assert!(md.contains("Epinions"));
        assert!(md.contains("Slashdot A"));
    }

    #[test]
    fn density_tracks_paper_targets() {
        let (rows, _) = run(40);
        // Average degree within 35% of the paper's (2m/n).
        let targets = [12.24, 12.29, 7.53];
        for (row, target) in rows.iter().zip(targets) {
            let avg = 2.0 * row.edges as f64 / row.nodes as f64;
            assert!(
                (avg - target).abs() / target < 0.35,
                "{}: avg degree {avg} vs paper {target}",
                row.name
            );
        }
    }
}
