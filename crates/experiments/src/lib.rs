//! # mto-experiments — regenerating every table and figure of the paper
//!
//! One module per evaluation artifact of *"Faster Random Walks By Rewiring
//! Online Social Networks On-The-Fly"* (ICDE 2013):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`running_example`] | §II–III barbell: Φ 0.018 → 0.053 → 0.105, 97% mixing cut |
//! | [`table1`] | Table I dataset statistics |
//! | [`fig7`] | Fig 7(a–c): query cost vs relative error, 4 algorithms × 3 datasets |
//! | [`fig8`] | Fig 8: SRW vs MTO query cost + symmetric KL |
//! | [`fig9`] | Fig 9: Geweke threshold sweep on Slashdot B |
//! | [`fig10`] | Fig 10: latent-space mixing times with RM/RP ablation + Theorem 6 bound |
//! | [`fig11`] | Fig 11(a–c): Google-Plus-like online network |
//! | [`theorem6`] | §IV-B / Eq (13): latent-space removal bound |
//! | [`warm_start`] | service layer: cross-run history reuse (`mto-serve`) |
//! | [`latency`] | network layer: serial vs pipelined vs walk-not-wait (`mto-net`) |
//! | [`fleet`] | fleet layer: epoch gossip vs isolated shards (`mto-fleet`) |
//! | [`deadline`] | QoS layer: EDF vs round-robin deadline hits at equal budget (`mto-qos`) |
//! | [`quality`] | quality plane: unique queries to a target ESS, MTO vs SRW, SLO early stop |
//!
//! Each module exposes a `Config` with `full()` (paper-scale) and
//! `reduced()` (CI-scale) presets and returns structured results plus an
//! [`report::ExperimentReport`]. The `mto-lab` binary drives them; see
//! EXPERIMENTS.md for recorded paper-vs-measured numbers.

#![warn(missing_docs)]

pub mod datasets;
pub mod deadline;
pub mod driver;
pub mod fig10;
pub mod fig11;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod fleet;
pub mod latency;
pub mod quality;
pub mod report;
pub mod running_example;
pub mod table1;
pub mod theorem6;
pub mod warm_start;

pub use datasets::{build_dataset, DatasetSpec};
pub use deadline::{DeadlineConfig, DeadlineResult};
pub use driver::{run_converged, Algorithm, ConvergedRun, RunProtocol};
pub use fleet::{FleetSweepConfig, FleetSweepResult};
pub use latency::{LatencyConfig, LatencyResult};
pub use quality::{QualityConfig, QualityResult};
pub use report::{ExperimentReport, Series, Table};
pub use warm_start::{WarmStartConfig, WarmStartResult};
