//! Fig 11: the Google-Plus-like online network.
//!
//! The live Google Plus Social Graph API the paper used retired in April
//! 2012; the stand-in is a 240k-user synthetic network (matching the
//! 240,276 users the paper accessed) behind the same
//! individual-user-query-only interface. As in the paper there is no
//! external ground truth: each sampler runs to Geweke convergence, its
//! final estimate becomes the *converged value*, and the relative-error
//! curves are measured against it.
//!
//! * (a) estimated average degree vs query cost (trace for SRW and MTO);
//! * (b) query cost vs relative error for the average degree;
//! * (c) query cost vs relative error for the average self-description
//!   length.

use std::sync::Arc;

use mto_core::estimate::Aggregate;
use mto_graph::NodeId;
use mto_osn::OsnService;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets::{build_dataset, DatasetSpec};
use crate::driver::{run_converged, Algorithm, RunProtocol};
use crate::report::{fmt, mean, ExperimentReport, Series, Table};

/// Parameters of the Fig 11 experiment.
#[derive(Clone, Debug)]
pub struct Fig11Config {
    /// Scale-down divisor (1 = 240k users).
    pub scale: usize,
    /// Runs per algorithm for the error curves.
    pub runs: usize,
    /// Relative-error grid (paper: 0.1–0.5).
    pub error_grid: Vec<f64>,
    /// Geweke threshold.
    pub geweke_threshold: f64,
    /// Post-convergence samples.
    pub sample_steps: usize,
    /// Burn-in cap.
    pub max_burn_in_steps: usize,
    /// Base seed.
    pub seed: u64,
}

impl Fig11Config {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        Fig11Config {
            scale: 1,
            runs: 5,
            error_grid: vec![0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50],
            geweke_threshold: 0.1,
            sample_steps: 10_000,
            max_burn_in_steps: 80_000,
            seed: 0xF11,
        }
    }

    /// Reduced configuration.
    pub fn reduced() -> Self {
        Fig11Config {
            scale: 60,
            runs: 2,
            error_grid: vec![0.1, 0.3, 0.5],
            sample_steps: 2_500,
            max_burn_in_steps: 12_000,
            ..Fig11Config::full()
        }
    }
}

/// One algorithm's Fig 11 outputs.
#[derive(Clone, Debug)]
pub struct Fig11Curves {
    /// Algorithm.
    pub algorithm: Algorithm,
    /// `(query cost, running estimate)` trace for panel (a).
    pub degree_trace: Vec<(u64, f64)>,
    /// Converged value of the average degree.
    pub degree_converged: f64,
    /// `(epsilon, mean cost)` for panel (b).
    pub degree_cost: Vec<(f64, f64)>,
    /// Converged value of the description length.
    pub descr_converged: f64,
    /// `(epsilon, mean cost)` for panel (c).
    pub descr_cost: Vec<(f64, f64)>,
}

/// `(error grid curve, converged value, first-run trace)` for one
/// algorithm/aggregate pair.
type ErrorCurve = (Vec<(f64, f64)>, f64, Vec<(u64, f64)>);

fn error_curve(
    alg: Algorithm,
    service: &Arc<OsnService>,
    aggregate: Aggregate,
    config: &Fig11Config,
    n: usize,
) -> ErrorCurve {
    let mut rng = StdRng::seed_from_u64(config.seed ^ aggregate.label().len() as u64);
    let mut per_eps: Vec<Vec<f64>> = vec![Vec::new(); config.error_grid.len()];
    let mut converged_values = Vec::new();
    let mut first_trace: Vec<(u64, f64)> = Vec::new();
    for run_idx in 0..config.runs {
        let start = NodeId(rng.gen_range(0..n as u32));
        let mut walker = alg
            .build(service.clone(), start, config.seed + run_idx as u64 * 7919)
            .expect("valid start");
        let protocol = RunProtocol {
            geweke_threshold: config.geweke_threshold,
            max_burn_in_steps: config.max_burn_in_steps,
            sample_steps: config.sample_steps,
        };
        let run = run_converged(walker.as_mut(), service, aggregate, protocol)
            .expect("simulated interface cannot fail");
        // The paper's presumptive ground truth: the run's own converged
        // value.
        let converged = run.final_estimate().unwrap_or(0.0);
        converged_values.push(converged);
        if converged != 0.0 {
            for (i, &eps) in config.error_grid.iter().enumerate() {
                let cost = run.cost_to_reach(eps, converged).unwrap_or(run.total_cost);
                per_eps[i].push(cost as f64);
            }
        }
        if run_idx == 0 {
            first_trace = run.estimate_trace();
        }
    }
    let curve = config
        .error_grid
        .iter()
        .enumerate()
        .map(|(i, &eps)| (eps, if per_eps[i].is_empty() { 0.0 } else { mean(&per_eps[i]) }))
        .collect();
    (curve, mean(&converged_values), downsample(&first_trace, 200))
}

/// Keeps at most `max_points` evenly spaced points of a trace.
fn downsample(trace: &[(u64, f64)], max_points: usize) -> Vec<(u64, f64)> {
    if trace.len() <= max_points {
        return trace.to_vec();
    }
    let stride = trace.len() as f64 / max_points as f64;
    (0..max_points).map(|i| trace[(i as f64 * stride) as usize]).collect()
}

/// Runs Fig 11 (SRW vs MTO on the Google-Plus-like service).
pub fn run(config: &Fig11Config) -> (Vec<Fig11Curves>, ExperimentReport) {
    let spec = if config.scale > 1 {
        DatasetSpec::google_plus().scaled_down(config.scale)
    } else {
        DatasetSpec::google_plus()
    };
    let graph = build_dataset(&spec);
    let n = graph.num_nodes();
    let service = Arc::new(OsnService::with_defaults(&graph));

    let mut report = ExperimentReport::new("fig11");
    report.note(format!(
        "Google-Plus stand-in: {n} users (paper accessed 240,276 via the live API); \
         converged value used as presumptive ground truth, as in the paper."
    ));
    report.note(format!(
        "Simulation bonus — true values: avg degree {:.3}, avg description length {:.2}.",
        service.true_average_degree(),
        service.true_average_description_len()
    ));

    let mut curves = Vec::new();
    let mut table = Table::new(
        "Fig 11 — converged values and cost to reach 10% error",
        &[
            "algorithm",
            "avg degree (converged)",
            "cost@ε=0.1 degree",
            "avg descr len",
            "cost@ε=0.1 descr",
        ],
    );

    for alg in [Algorithm::Srw, Algorithm::Mto] {
        let (degree_cost, degree_converged, degree_trace) =
            error_curve(alg, &service, Aggregate::AverageDegree, config, n);
        let (descr_cost, descr_converged, _) =
            error_curve(alg, &service, Aggregate::AverageDescriptionLength, config, n);
        table.push_row(vec![
            alg.label().into(),
            fmt(degree_converged),
            fmt(degree_cost.first().map(|p| p.1).unwrap_or(0.0)),
            fmt(descr_converged),
            fmt(descr_cost.first().map(|p| p.1).unwrap_or(0.0)),
        ]);
        report.series.push(Series {
            label: format!("{} estimated avg degree vs cost", alg.label()),
            points: degree_trace.iter().map(|&(c, e)| (c as f64, e)).collect(),
        });
        report.series.push(Series {
            label: format!("{} cost vs rel err (degree)", alg.label()),
            points: degree_cost.clone(),
        });
        report.series.push(Series {
            label: format!("{} cost vs rel err (descr len)", alg.label()),
            points: descr_cost.clone(),
        });
        curves.push(Fig11Curves {
            algorithm: alg,
            degree_trace,
            degree_converged,
            degree_cost,
            descr_converged,
            descr_cost,
        });
    }
    report.tables.push(table);
    (curves, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig11_produces_both_algorithms() {
        let (curves, report) = run(&Fig11Config::reduced());
        assert_eq!(curves.len(), 2);
        for c in &curves {
            assert!(!c.degree_trace.is_empty(), "{} trace empty", c.algorithm.label());
            assert!(c.degree_converged > 0.0);
            assert!(c.descr_converged > 0.0);
            assert_eq!(c.degree_cost.len(), 3);
            assert_eq!(c.descr_cost.len(), 3);
        }
        let md = report.to_markdown();
        assert!(md.contains("Google-Plus"));
        assert!(md.contains("converged value"));
    }

    #[test]
    fn converged_degree_is_near_truth_at_reduced_scale() {
        // We *can* check against truth in simulation: importance-weighted
        // converged values should land in the truth's neighborhood.
        let (curves, _) = run(&Fig11Config::reduced());
        let spec = DatasetSpec::google_plus().scaled_down(60);
        let graph = build_dataset(&spec);
        let truth = 2.0 * graph.num_edges() as f64 / graph.num_nodes() as f64;
        for c in &curves {
            let err = (c.degree_converged - truth).abs() / truth;
            assert!(
                err < 0.4,
                "{}: converged {} vs truth {truth} (err {err:.3})",
                c.algorithm.label(),
                c.degree_converged
            );
        }
    }

    #[test]
    fn downsample_preserves_endpoints_and_bounds() {
        let trace: Vec<(u64, f64)> = (0..1000).map(|i| (i, i as f64)).collect();
        let d = downsample(&trace, 100);
        assert_eq!(d.len(), 100);
        assert_eq!(d[0], (0, 0.0));
        let short = vec![(1u64, 1.0), (2, 2.0)];
        assert_eq!(downsample(&short, 100), short);
    }
}
