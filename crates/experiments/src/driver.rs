//! Shared experiment driver: build a sampler, run it to Geweke
//! convergence, then collect post-convergence samples and estimate traces.
//!
//! This is the common protocol of Figs 7, 8, 9 and 11: all samplers use
//! the degree attribute for the Geweke indicator (the paper's choice: "a
//! commonly used one is degree that applies to every graph"), then keep
//! sampling to feed the estimator and the bias measurements.

use std::sync::Arc;

use mto_core::diagnostics::geweke::GewekeMonitor;
use mto_core::estimate::Aggregate;
use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::walk::{
    MetropolisHastingsWalk, MhrwConfig, RandomJumpWalk, RjConfig, SimpleRandomWalk, SrwConfig,
    StepSample, Walker,
};
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService, Result};

/// The four algorithms compared in Fig 7.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Simple random walk (baseline).
    Srw,
    /// MTO-Sampler (the paper's contribution).
    Mto,
    /// Metropolis–Hastings random walk.
    Mhrw,
    /// Random Jump (MHRW + uniform teleports at probability 0.5).
    Rj,
}

impl Algorithm {
    /// Figure label.
    pub fn label(&self) -> &'static str {
        match self {
            Algorithm::Srw => "SRW",
            Algorithm::Mto => "MTO",
            Algorithm::Mhrw => "MHRW",
            Algorithm::Rj => "RJ",
        }
    }

    /// All four, in the paper's legend order.
    pub fn all() -> [Algorithm; 4] {
        [Algorithm::Srw, Algorithm::Mto, Algorithm::Mhrw, Algorithm::Rj]
    }

    /// Constructs the sampler over a shared service.
    pub fn build(
        &self,
        service: Arc<OsnService>,
        start: NodeId,
        seed: u64,
    ) -> Result<Box<dyn Walker>> {
        let client = CachedClient::new(service);
        Ok(match self {
            Algorithm::Srw => {
                Box::new(SimpleRandomWalk::new(client, start, SrwConfig { seed, lazy: false })?)
            }
            Algorithm::Mto => Box::new(MtoSampler::new(client, start, mto_config(seed))?),
            Algorithm::Mhrw => {
                Box::new(MetropolisHastingsWalk::new(client, start, MhrwConfig { seed })?)
            }
            Algorithm::Rj => Box::new(RandomJumpWalk::new(
                client,
                start,
                RjConfig { seed, jump_probability: 0.5 },
            )?),
        })
    }
}

/// The MTO configuration the estimation experiments use.
///
/// Two deliberate deviations from `MtoConfig::default()` (both documented
/// in EXPERIMENTS.md):
/// * `lazy = false` — the ½ self-loop of Algorithm 1 exists for
///   aperiodicity in the analysis; at a fixed sample budget it halves the
///   effective sample rate, which is a pure handicap against the non-lazy
///   SRW baseline on non-bipartite graphs;
/// * `min_overlay_degree = 4` — caps `k/k*` so the importance-weight
///   spread (hence estimator variance) stays bounded, while keeping ~90%
///   of the removals. The conductance experiments (running example,
///   Fig 10) use the paper-faithful floor of 2.
pub fn mto_config(seed: u64) -> MtoConfig {
    MtoConfig { seed, lazy: false, min_overlay_degree: 4, ..Default::default() }
}

/// Protocol parameters for one converged run.
#[derive(Clone, Copy, Debug)]
pub struct RunProtocol {
    /// Geweke convergence threshold (paper default 0.1).
    pub geweke_threshold: f64,
    /// Hard cap on burn-in steps before giving up on convergence.
    pub max_burn_in_steps: usize,
    /// Post-convergence samples to collect.
    pub sample_steps: usize,
}

impl Default for RunProtocol {
    fn default() -> Self {
        RunProtocol { geweke_threshold: 0.1, max_burn_in_steps: 50_000, sample_steps: 2_000 }
    }
}

/// Everything one converged run produces.
#[derive(Clone, Debug)]
pub struct ConvergedRun {
    /// Step at which the Geweke monitor latched (`None` = cap reached; the
    /// run still reports whatever it collected).
    pub converged_at: Option<usize>,
    /// Unique-query cost when convergence latched.
    pub burn_in_cost: u64,
    /// Post-convergence samples with the unique-query cost after each.
    pub samples: Vec<(StepSample, u64)>,
    /// Total unique-query cost at the end.
    pub total_cost: u64,
}

impl ConvergedRun {
    /// Final self-normalized estimate over the post-convergence samples.
    pub fn final_estimate(&self) -> Option<f64> {
        let mut est = mto_core::estimate::ImportanceEstimator::new();
        for (s, _) in &self.samples {
            est.push_sample(s);
        }
        est.estimate()
    }

    /// Running-estimate trace: `(query cost, estimate)` after each sample.
    pub fn estimate_trace(&self) -> Vec<(u64, f64)> {
        let mut est = mto_core::estimate::ImportanceEstimator::new();
        let mut out = Vec::with_capacity(self.samples.len());
        for (s, cost) in &self.samples {
            est.push_sample(s);
            if let Some(e) = est.estimate() {
                out.push((*cost, e));
            }
        }
        out
    }

    /// The query cost after which the running estimate's relative error
    /// stays at or below `epsilon` forever (within this run) — the Fig 7
    /// y-axis. `None` when the run never settles under `epsilon`.
    pub fn cost_to_reach(&self, epsilon: f64, truth: f64) -> Option<u64> {
        let trace = self.estimate_trace();
        let mut last_bad_cost: Option<u64> = None;
        let mut seen_good = false;
        for &(cost, estimate) in &trace {
            let err = (estimate - truth).abs() / truth.abs();
            if err > epsilon {
                last_bad_cost = Some(cost);
                seen_good = false;
            } else {
                seen_good = true;
            }
        }
        if !seen_good {
            return None;
        }
        match last_bad_cost {
            // Settled under epsilon right away: the burn-in cost dominates.
            None => Some(self.burn_in_cost),
            Some(c) => Some(c),
        }
    }
}

/// Runs a sampler per the protocol: burn-in until Geweke latches on the
/// degree series, then collect `sample_steps` weighted samples of
/// `aggregate`.
///
/// The aggregate value of a visited node is read through the walker's own
/// importance weight plus the service's ground truth for `f(v)` — the
/// walker queried `v` on arrival, so the value is information the third
/// party already paid for; reading it from the service does not distort
/// the query accounting.
pub fn run_converged(
    walker: &mut dyn Walker,
    service: &OsnService,
    aggregate: Aggregate,
    protocol: RunProtocol,
) -> Result<ConvergedRun> {
    let mut monitor = GewekeMonitor::new(protocol.geweke_threshold)
        .with_min_samples(200)
        .with_check_interval(100);

    let mut converged_at = None;
    for step in 0..protocol.max_burn_in_steps {
        let v = walker.step()?;
        let degree = service.query_degree_free(v);
        if monitor.push(degree as f64) {
            converged_at = Some(step + 1);
            break;
        }
    }
    let burn_in_cost = walker.query_cost();

    let mut raw: Vec<(NodeId, f64, u64)> = Vec::with_capacity(protocol.sample_steps);
    for _ in 0..protocol.sample_steps {
        let v = walker.step()?;
        let value = aggregate_value(service, v, aggregate);
        raw.push((v, value, walker.query_cost()));
    }

    // Retrospective weighting, as the paper does ("After collecting
    // samples, we use Importance Sampling…"): weights are evaluated once
    // the run — and hence the MTO overlay — has settled. For the static
    // baselines this is identical to sample-time weighting; for MTO it
    // removes the bias of partially-discovered overlay degrees.
    let mut weight_of: std::collections::HashMap<NodeId, f64> = std::collections::HashMap::new();
    let mut samples = Vec::with_capacity(raw.len());
    for (v, value, cost) in raw {
        let weight = match weight_of.entry(v) {
            std::collections::hash_map::Entry::Occupied(e) => *e.get(),
            std::collections::hash_map::Entry::Vacant(e) => *e.insert(walker.importance_weight(v)?),
        };
        samples.push((StepSample { node: v, value, weight }, cost));
    }

    Ok(ConvergedRun { converged_at, burn_in_cost, samples, total_cost: walker.query_cost() })
}

/// Evaluates `f(v)` against ground truth (the walker has already queried
/// `v`; see [`run_converged`] for why this is accounting-neutral).
pub fn aggregate_value(service: &OsnService, v: NodeId, aggregate: Aggregate) -> f64 {
    match aggregate {
        Aggregate::AverageDegree => service.ground_truth().degree(v) as f64,
        _ => {
            let p = &service.ground_truth_profiles()[v.index()];
            match aggregate {
                Aggregate::AverageDescriptionLength => p.self_description_len as f64,
                Aggregate::AverageAge => p.age as f64,
                Aggregate::AveragePosts => p.num_posts as f64,
                Aggregate::PublicProportion => {
                    if p.is_public {
                        1.0
                    } else {
                        0.0
                    }
                }
                Aggregate::AverageDegree => unreachable!(),
            }
        }
    }
}

/// Free degree lookup used by the Geweke monitor (the walker just visited
/// the node, so its degree is cached client-side).
trait FreeDegree {
    fn query_degree_free(&self, v: NodeId) -> usize;
}

impl FreeDegree for OsnService {
    fn query_degree_free(&self, v: NodeId) -> usize {
        self.ground_truth().degree(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{build_dataset, DatasetSpec};

    fn mini_service() -> Arc<OsnService> {
        let g = build_dataset(&DatasetSpec::epinions().scaled_down(40));
        Arc::new(OsnService::with_defaults(&g))
    }

    #[test]
    fn all_four_algorithms_construct_and_run() {
        let service = mini_service();
        for alg in Algorithm::all() {
            let mut w = alg.build(service.clone(), NodeId(0), 7).unwrap();
            assert_eq!(w.name(), alg.label());
            w.run(20).unwrap();
            assert!(w.query_cost() > 0, "{} issued no queries", alg.label());
        }
    }

    #[test]
    fn converged_run_produces_samples_and_costs() {
        let service = mini_service();
        let mut w = Algorithm::Srw.build(service.clone(), NodeId(0), 1).unwrap();
        let protocol =
            RunProtocol { geweke_threshold: 0.3, max_burn_in_steps: 5_000, sample_steps: 500 };
        let run = run_converged(w.as_mut(), &service, Aggregate::AverageDegree, protocol).unwrap();
        assert_eq!(run.samples.len(), 500);
        assert!(run.total_cost >= run.burn_in_cost);
        // Costs are monotone along the run.
        for pair in run.samples.windows(2) {
            assert!(pair[0].1 <= pair[1].1);
        }
    }

    #[test]
    fn srw_estimate_approaches_true_average_degree() {
        let service = mini_service();
        let truth = service.true_average_degree();
        let mut w = Algorithm::Srw.build(service.clone(), NodeId(0), 3).unwrap();
        let protocol =
            RunProtocol { geweke_threshold: 0.2, max_burn_in_steps: 20_000, sample_steps: 8_000 };
        let run = run_converged(w.as_mut(), &service, Aggregate::AverageDegree, protocol).unwrap();
        let est = run.final_estimate().unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.25, "estimate {est} vs truth {truth} (err {err:.3})");
    }

    #[test]
    fn mto_estimate_also_converges() {
        let service = mini_service();
        let truth = service.true_average_degree();
        let mut w = Algorithm::Mto.build(service.clone(), NodeId(0), 3).unwrap();
        let protocol =
            RunProtocol { geweke_threshold: 0.2, max_burn_in_steps: 20_000, sample_steps: 8_000 };
        let run = run_converged(w.as_mut(), &service, Aggregate::AverageDegree, protocol).unwrap();
        let est = run.final_estimate().unwrap();
        let err = (est - truth).abs() / truth;
        assert!(err < 0.3, "estimate {est} vs truth {truth} (err {err:.3})");
    }

    #[test]
    fn cost_to_reach_semantics() {
        // Construct a synthetic run: estimates 5, 11, 10, 10 with truth 10.
        let samples = vec![
            (StepSample { node: NodeId(0), value: 5.0, weight: 1.0 }, 10),
            (StepSample { node: NodeId(0), value: 17.0, weight: 1.0 }, 20),
            (StepSample { node: NodeId(0), value: 8.0, weight: 1.0 }, 30),
            (StepSample { node: NodeId(0), value: 10.0, weight: 1.0 }, 40),
        ];
        // Running estimates: 5, 11, 10, 10 → errors 0.5, 0.1, 0, 0.
        let run = ConvergedRun { converged_at: Some(1), burn_in_cost: 5, samples, total_cost: 40 };
        assert_eq!(run.cost_to_reach(0.2, 10.0), Some(10));
        assert_eq!(run.cost_to_reach(0.05, 10.0), Some(20));
        assert_eq!(run.cost_to_reach(0.6, 10.0), Some(5), "never bad → burn-in cost");
        // Trace: last error is 0 ≤ any epsilon, so always Some here.
        assert!(run.cost_to_reach(0.001, 10.0).is_some());
    }

    #[test]
    fn estimate_trace_is_cumulative() {
        let samples = vec![
            (StepSample { node: NodeId(0), value: 2.0, weight: 1.0 }, 1),
            (StepSample { node: NodeId(0), value: 4.0, weight: 1.0 }, 2),
        ];
        let run = ConvergedRun { converged_at: None, burn_in_cost: 0, samples, total_cost: 2 };
        let trace = run.estimate_trace();
        assert_eq!(trace, vec![(1, 2.0), (2, 3.0)]);
    }
}
