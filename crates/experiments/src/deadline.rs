//! Deadline sweep: does EDF scheduling meet more deadlines than fair
//! round-robin at an equal fleet budget — without changing a single
//! sample?
//!
//! The QoS layer (`mto-qos`) argues that *when* a job's steps happen is
//! a degree of freedom the fleet can spend on deadlines: walkers are
//! pure functions of their configs and the network's responses, so
//! front-loading an urgent job changes its **virtual finish time** but
//! not its walk. This experiment measures exactly that claim on the
//! Epinions stand-in:
//!
//! 1. a **probe** run (fair round-robin, unbudgeted) measures each
//!    job's natural finish time and unique demand;
//! 2. a mixed fleet is derived from it: half the jobs carry deadlines —
//!    some *tight* (a fraction of their round-robin finish time, so
//!    fair scheduling must miss them) and some *loose* — and every arm
//!    runs under the **same fleet budget** (headroom over measured
//!    demand, so the budget constrains without cutting);
//! 3. both policies run at the verdict shard count:
//!    `edf-beats-round-robin: PASS` requires EDF to meet ≥ 30% more
//!    deadlines than round-robin;
//! 4. every arm — both policies × every shard count — must produce a
//!    byte-identical [`FleetReport::results_digest`] and identical
//!    ledger spend: `qos-deterministic: PASS`.
//!
//! Verdict lines are grepped by CI's `qos-smoke` job.

use std::collections::HashSet;
use std::sync::Arc;

use mto_core::mto::MtoConfig;
use mto_fleet::{FleetConfig, FleetCoordinator, FleetReport};
use mto_graph::NodeId;
use mto_osn::OsnService;
use mto_qos::CostPredictor;
use mto_serve::scheduler::SchedulePolicy;
use mto_serve::session::{AlgoSpec, JobSpec};

use crate::datasets::{build_dataset, DatasetSpec};
use crate::report::{ExperimentReport, Table};

/// Parameters of the deadline sweep.
#[derive(Clone, Debug)]
pub struct DeadlineConfig {
    /// Scale-down divisor for the Epinions stand-in.
    pub scale: usize,
    /// Jobs in the pool.
    pub jobs: usize,
    /// How many of them carry deadlines (the first `deadline_jobs`;
    /// half tight, half loose).
    pub deadline_jobs: usize,
    /// Steps per job.
    pub steps: usize,
    /// Target gossip barriers per run.
    pub epochs: usize,
    /// The shard count both policy arms are compared at.
    pub verdict_shards: usize,
    /// Shard counts the determinism check sweeps.
    pub shard_counts: Vec<usize>,
    /// Tight deadlines: this fraction of the job's probe finish time.
    pub tight_factor: f64,
    /// Loose deadlines: this multiple of the job's probe finish time.
    pub loose_factor: f64,
    /// Fleet budget: this multiple of the probe's measured total unique
    /// demand (constrains without cutting).
    pub budget_headroom: f64,
    /// Base seed of the job pool.
    pub seed: u64,
}

impl DeadlineConfig {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        DeadlineConfig {
            scale: 10,
            jobs: 8,
            deadline_jobs: 4,
            steps: 2_400,
            epochs: 8,
            verdict_shards: 4,
            shard_counts: vec![1, 2, 4],
            tight_factor: 0.8,
            loose_factor: 1.5,
            budget_headroom: 2.0,
            seed: 0xDEAD11,
        }
    }

    /// Reduced (CI-scale) configuration.
    pub fn reduced() -> Self {
        DeadlineConfig { scale: 40, steps: 800, ..DeadlineConfig::full() }
    }
}

/// One job's deadline outcome under one policy.
#[derive(Clone, Copy, Debug)]
pub struct DeadlineRow {
    /// Job index.
    pub job: usize,
    /// The deadline (virtual seconds), when the job carries one.
    pub deadline: Option<f64>,
    /// Finish time under round-robin.
    pub rr_finished: f64,
    /// Finish time under EDF.
    pub edf_finished: f64,
    /// Deadline met under round-robin.
    pub rr_met: bool,
    /// Deadline met under EDF.
    pub edf_met: bool,
}

/// Everything the sweep measured.
#[derive(Clone, Debug)]
pub struct DeadlineResult {
    /// Per-job rows at the verdict shard count.
    pub rows: Vec<DeadlineRow>,
    /// Deadlines met under round-robin / EDF at the verdict shard count.
    pub rr_met: usize,
    /// Deadlines met under EDF.
    pub edf_met: usize,
    /// `(edf_met − rr_met) / max(rr_met, 1)`.
    pub improvement: f64,
    /// The shared fleet budget both arms ran under.
    pub fleet_budget: u64,
    /// Ledger spend (identical across every arm when deterministic).
    pub ledger_spent: u64,
    /// Whether every arm (policies × shard counts) produced identical
    /// digests and ledger spend.
    pub deterministic: bool,
    /// The acceptance verdict: ≥ 30% more deadlines met **and**
    /// determinism held.
    pub edf_beats_round_robin: bool,
}

fn job_pool(config: &DeadlineConfig, num_nodes: usize) -> Vec<JobSpec> {
    // Starts are spread across the network (unlike the `fleet`
    // experiment's one-seed deployment): co-resident jobs then crawl
    // mostly-disjoint regions, so *when* a shard pays for whose frontier
    // is a real timing decision — exactly what EDF reorders.
    (0..config.jobs)
        .map(|i| JobSpec {
            id: format!("walker-{i}"),
            algo: AlgoSpec::Mto(MtoConfig { seed: config.seed + i as u64, ..Default::default() }),
            start: NodeId(((i * 83) % num_nodes) as u32),
            step_budget: config.steps,
            deadline: None,
            ess: None,
        })
        .collect()
}

fn unique_demand(report: &FleetReport) -> u64 {
    report.outcomes.iter().map(|o| o.history.iter().collect::<HashSet<_>>().len() as u64).sum()
}

/// "Deadline met" for one job — delegates to the one shared predicate
/// ([`mto_serve::scheduler::JobOutcome::deadline_met`]) so the per-job
/// table, the verdict counts, and the CLI flag all agree.
fn deadline_met(spec: &JobSpec, o: &mto_serve::scheduler::JobOutcome) -> bool {
    spec.deadline.is_some_and(|d| o.deadline_met(d))
}

fn deadlines_met(jobs: &[JobSpec], report: &FleetReport) -> usize {
    jobs.iter().zip(&report.outcomes).filter(|(spec, o)| deadline_met(spec, o)).count()
}

/// Runs the sweep, returning measurements and a report.
pub fn run(config: &DeadlineConfig) -> (DeadlineResult, ExperimentReport) {
    let graph = build_dataset(&DatasetSpec::epinions().scaled_down(config.scale));
    let service = Arc::new(OsnService::with_defaults(&graph));
    let epoch_quantum = config.steps.div_ceil(config.epochs).max(1);

    let run_one = |jobs: &[JobSpec],
                   shards: usize,
                   policy: SchedulePolicy,
                   fleet_budget: Option<u64>|
     -> FleetReport {
        let service = service.clone();
        FleetCoordinator::new(
            move |_| service.clone(),
            FleetConfig {
                shards,
                epoch_quantum,
                policy,
                fleet_budget,
                // Isolated shards (the fleet experiment's baseline arm):
                // each shard's clock prices exactly its own jobs'
                // discoveries, so the measurement isolates *scheduling*
                // — gossip pre-pays frontiers and would smear the very
                // finish times under comparison.
                gossip: false,
                ..Default::default()
            },
        )
        .run(jobs.to_vec())
        .expect("fleet run")
    };

    // ── 1. Probe: natural finish times and demand under fair scheduling.
    let base_jobs = job_pool(config, graph.num_nodes());
    let probe = run_one(&base_jobs, config.verdict_shards, SchedulePolicy::RoundRobin, None);
    let probe_finish: Vec<f64> =
        probe.outcomes.iter().map(|o| o.finished_secs.expect("probe finishes")).collect();

    // ── 2. Derive the mixed fleet: tight/loose deadlines + equal budget.
    let mut jobs = base_jobs;
    for (i, job) in jobs.iter_mut().enumerate().take(config.deadline_jobs) {
        let factor =
            if i < config.deadline_jobs / 2 { config.tight_factor } else { config.loose_factor };
        job.deadline = Some(factor * probe_finish[i]);
    }
    // Headroom over measured demand so the ledger constrains without
    // cutting; at least the sum of admission-time predictions so the
    // whole pool is admitted in both arms.
    let predictor = CostPredictor::new(Some(graph.num_nodes()));
    let predicted: u64 = jobs.iter().map(|j| predictor.predict_queries(j, None)).sum();
    let fleet_budget =
        ((config.budget_headroom * unique_demand(&probe) as f64).ceil() as u64).max(predicted + 1);

    // ── 3+4. Both policies at every shard count; verdicts at W=verdict.
    let mut digests: Vec<(String, String)> = Vec::new();
    let mut spends: Vec<u64> = Vec::new();
    let mut verdict_reports: Vec<(SchedulePolicy, FleetReport)> = Vec::new();
    for &w in &config.shard_counts {
        for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::EarliestDeadlineFirst] {
            let report = run_one(&jobs, w, policy, Some(fleet_budget));
            digests.push((format!("W={w} {}", policy.name()), report.results_digest()));
            spends.push(report.ledger.expect("budgeted run").spent);
            if w == config.verdict_shards {
                verdict_reports.push((policy, report));
            }
        }
    }
    let reference = &digests[0].1;
    let deterministic =
        digests.iter().all(|(_, d)| d == reference) && spends.iter().all(|&s| s == spends[0]);

    let rr = &verdict_reports.iter().find(|(p, _)| *p == SchedulePolicy::RoundRobin).unwrap().1;
    let edf = &verdict_reports
        .iter()
        .find(|(p, _)| *p == SchedulePolicy::EarliestDeadlineFirst)
        .unwrap()
        .1;
    let rr_met = deadlines_met(&jobs, rr);
    let edf_met = deadlines_met(&jobs, edf);
    let improvement = (edf_met as f64 - rr_met as f64) / rr_met.max(1) as f64;
    let rows: Vec<DeadlineRow> = jobs
        .iter()
        .enumerate()
        .map(|(i, spec)| DeadlineRow {
            job: i,
            deadline: spec.deadline,
            rr_finished: rr.outcomes[i].finished_secs.unwrap_or(f64::NAN),
            edf_finished: edf.outcomes[i].finished_secs.unwrap_or(f64::NAN),
            rr_met: deadline_met(spec, &rr.outcomes[i]),
            edf_met: deadline_met(spec, &edf.outcomes[i]),
        })
        .collect();

    let edf_beats_round_robin = deterministic && improvement >= 0.30;
    let result = DeadlineResult {
        rows,
        rr_met,
        edf_met,
        improvement,
        fleet_budget,
        ledger_spent: spends[0],
        deterministic,
        edf_beats_round_robin,
    };

    let mut report = ExperimentReport::new("deadline");
    report.note(format!(
        "Epinions stand-in /{} ({} nodes); {} MTO jobs x {} steps from spread start nodes \
         ({} with deadlines: {} tight at {:.0}% of their round-robin finish, {} loose at \
         {:.0}%), fleet budget {} ({}x measured demand), W={} verdict arm, epoch quantum {}.",
        config.scale,
        graph.num_nodes(),
        config.jobs,
        config.steps,
        config.deadline_jobs,
        config.deadline_jobs / 2,
        100.0 * config.tight_factor,
        config.deadline_jobs - config.deadline_jobs / 2,
        100.0 * config.loose_factor,
        fleet_budget,
        config.budget_headroom,
        config.verdict_shards,
        epoch_quantum,
    ));
    let mut table = Table::new(
        "Per-job virtual finish times and deadline outcomes, EDF vs round-robin",
        &["job", "deadline (s)", "rr finish (s)", "rr met", "edf finish (s)", "edf met"],
    );
    for r in &result.rows {
        table.push_row(vec![
            format!("walker-{}", r.job),
            r.deadline.map_or("-".into(), |d| format!("{d:.1}")),
            format!("{:.1}", r.rr_finished),
            r.deadline.map_or("-".into(), |_| u8::from(r.rr_met).to_string()),
            format!("{:.1}", r.edf_finished),
            r.deadline.map_or("-".into(), |_| u8::from(r.edf_met).to_string()),
        ]);
    }
    report.tables.push(table);
    report.note(format!(
        "At W={} and an equal fleet budget of {}, EDF meets {}/{} deadlines vs \
         round-robin's {}/{} (+{:.0}%); ledger spend {} identical across every arm.",
        config.verdict_shards,
        fleet_budget,
        result.edf_met,
        config.deadline_jobs,
        result.rr_met,
        config.deadline_jobs,
        100.0 * result.improvement,
        result.ledger_spent,
    ));
    report.note(format!(
        "Results digest and ledger spend identical across policies and W in {:?}: {}.",
        config.shard_counts, result.deterministic
    ));
    report.note(format!(
        "edf-beats-round-robin: {}",
        if result.edf_beats_round_robin { "PASS" } else { "FAIL" }
    ));
    report
        .note(format!("qos-deterministic: {}", if result.deterministic { "PASS" } else { "FAIL" }));
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edf_beats_round_robin_at_reduced_scale() {
        // The acceptance criterion of ISSUE 5: ≥ 30% more deadlines met
        // by EDF at an equal fleet budget, byte-identical results across
        // policies and shard counts.
        let (result, report) = run(&DeadlineConfig::reduced());
        assert!(result.deterministic, "results or spend diverged across arms");
        assert!(
            result.improvement >= 0.30,
            "EDF met {} vs round-robin {} (+{:.0}%)",
            result.edf_met,
            result.rr_met,
            100.0 * result.improvement
        );
        assert!(result.edf_beats_round_robin);
        let text = report.to_markdown();
        assert!(text.contains("edf-beats-round-robin: PASS"), "{text}");
        assert!(text.contains("qos-deterministic: PASS"), "{text}");
        // Sanity on the shape: tight deadlines are missed by round-robin
        // and met by EDF; loose deadlines are met by both.
        let tight: Vec<_> = result.rows.iter().take(2).collect();
        assert!(tight.iter().all(|r| !r.rr_met), "tight deadlines must defeat round-robin");
        assert!(tight.iter().all(|r| r.edf_met), "EDF must rescue the tight deadlines");
        assert!(result.rows.iter().skip(2).take(2).all(|r| r.rr_met && r.edf_met));
    }
}
