//! Fleet sweep: does epoch gossip pay, and is the fleet deterministic?
//!
//! The paper's cost model (Section II-B) bills *unique* queries, and
//! PR 2/3 taught one process to stop re-paying them (shared client,
//! persisted history). A sharded fleet re-opens the question: `W`
//! workers with private caches re-pay each other's queries unless the
//! epoch gossip of `mto-fleet` redistributes history at barriers. This
//! experiment measures exactly that, on the Epinions stand-in:
//!
//! 1. A fixed pool of MTO jobs (so per-shard sample counts are equal
//!    across arms) runs at `W ∈ {1, 2, 4, 8}` shards, once with gossip
//!    and once isolated;
//! 2. the **savings** is `1 − gossiped/isolated` fleet-wide unique
//!    queries — the acceptance bar is ≥ 30% at `W = 4`;
//! 3. every run's [`FleetReport::results_digest`] must be
//!    byte-identical — across `W`, across gossip on/off, and across
//!    both gossip merge orders — the fleet determinism contract.
//!
//! Verdict lines (grepped by CI's `fleet-smoke` job):
//! `gossip-beats-isolated: PASS` and `fleet-deterministic: PASS`.

use std::sync::Arc;

use mto_core::mto::MtoConfig;
use mto_fleet::{FleetConfig, FleetCoordinator, FleetReport, MergeOrder};
use mto_graph::NodeId;
use mto_osn::OsnService;
use mto_serve::session::{AlgoSpec, JobSpec};

use crate::datasets::{build_dataset, DatasetSpec};
use crate::report::{ExperimentReport, Table};

/// Parameters of the fleet sweep.
#[derive(Clone, Debug)]
pub struct FleetSweepConfig {
    /// Scale-down divisor for the Epinions stand-in.
    pub scale: usize,
    /// Jobs in the (fixed) pool.
    pub jobs: usize,
    /// Steps per job.
    pub steps: usize,
    /// Target gossip barriers per run.
    pub epochs: usize,
    /// Shard counts to sweep.
    pub shard_counts: Vec<usize>,
    /// The shard count the ≥ 30% acceptance bar applies to.
    pub verdict_shards: usize,
    /// Base seed of the job pool.
    pub seed: u64,
}

impl FleetSweepConfig {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        FleetSweepConfig {
            scale: 10,
            jobs: 8,
            steps: 4_000,
            epochs: 8,
            shard_counts: vec![1, 2, 4, 8],
            verdict_shards: 4,
            seed: 0xF1EE7,
        }
    }

    /// Reduced (CI-scale) configuration.
    pub fn reduced() -> Self {
        FleetSweepConfig { scale: 40, steps: 1_200, ..FleetSweepConfig::full() }
    }
}

/// One shard count's measurements.
#[derive(Clone, Copy, Debug)]
pub struct FleetSweepRow {
    /// Shards `W`.
    pub shards: usize,
    /// Fleet-wide unique queries with epoch gossip.
    pub gossiped_cost: u64,
    /// Fleet-wide unique queries with isolated shards.
    pub isolated_cost: u64,
    /// `1 − gossiped/isolated`.
    pub saved_fraction: f64,
    /// Responses shards adopted from each other (gossip arm).
    pub adopted: u64,
    /// Keep-first merge conflicts (must be 0 for honest shards).
    pub conflicts: u64,
    /// Makespan (max per-shard virtual seconds) of the gossip arm.
    pub makespan_secs: f64,
}

/// Everything the sweep measured.
#[derive(Clone, Debug)]
pub struct FleetSweepResult {
    /// One row per shard count.
    pub rows: Vec<FleetSweepRow>,
    /// The savings at [`FleetSweepConfig::verdict_shards`].
    pub verdict_savings: f64,
    /// Whether every run (every `W`, both arms, both merge orders)
    /// produced a byte-identical results digest.
    pub deterministic: bool,
    /// The acceptance verdict: ≥ 30% savings at the verdict shard count
    /// **and** determinism held.
    pub gossip_beats_isolated: bool,
}

fn job_pool(config: &FleetSweepConfig) -> Vec<JobSpec> {
    // All jobs start at node 0 — the deployment the history literature
    // studies (crawlers launched from one seed account), and the case
    // where isolated shards re-pay each other the most.
    (0..config.jobs)
        .map(|i| JobSpec {
            id: format!("walker-{i}"),
            algo: AlgoSpec::Mto(MtoConfig { seed: config.seed + i as u64, ..Default::default() }),
            start: NodeId(0),
            step_budget: config.steps,
            deadline: None,
            ess: None,
        })
        .collect()
}

/// Runs the sweep, returning measurements and a report.
pub fn run(config: &FleetSweepConfig) -> (FleetSweepResult, ExperimentReport) {
    let graph = build_dataset(&DatasetSpec::epinions().scaled_down(config.scale));
    let service = Arc::new(OsnService::with_defaults(&graph));
    let jobs = job_pool(config);
    let epoch_quantum = config.steps.div_ceil(config.epochs).max(1);

    let run_one = |shards: usize, gossip: bool, merge_order: MergeOrder| -> FleetReport {
        let service = service.clone();
        FleetCoordinator::new(
            move |_| service.clone(),
            FleetConfig { shards, epoch_quantum, gossip, merge_order, ..Default::default() },
        )
        .run(jobs.clone())
        .expect("fleet run")
    };

    let mut rows = Vec::new();
    let mut digests: Vec<(String, String)> = Vec::new();
    for &w in &config.shard_counts {
        let gossiped = run_one(w, true, MergeOrder::Forward);
        let isolated = run_one(w, false, MergeOrder::Forward);
        digests.push((format!("W={w} gossip"), gossiped.results_digest()));
        digests.push((format!("W={w} isolated"), isolated.results_digest()));
        rows.push(FleetSweepRow {
            shards: w,
            gossiped_cost: gossiped.total_unique_queries,
            isolated_cost: isolated.total_unique_queries,
            saved_fraction: if isolated.total_unique_queries > 0 {
                1.0 - gossiped.total_unique_queries as f64 / isolated.total_unique_queries as f64
            } else {
                0.0
            },
            adopted: gossiped.gossip_adopted_responses,
            conflicts: gossiped.merge_conflicts,
            makespan_secs: gossiped.makespan_secs,
        });
    }
    // Merge-order invariance, checked at the verdict shard count.
    let reversed = run_one(config.verdict_shards, true, MergeOrder::Reverse);
    digests.push((
        format!("W={} gossip reverse-merge", config.verdict_shards),
        reversed.results_digest(),
    ));

    let reference = &digests[0].1;
    let deterministic = digests.iter().all(|(_, d)| d == reference);
    let verdict_savings = rows
        .iter()
        .find(|r| r.shards == config.verdict_shards)
        .map(|r| r.saved_fraction)
        .unwrap_or(0.0);
    let gossip_beats_isolated = deterministic && verdict_savings >= 0.30;
    let result = FleetSweepResult { rows, verdict_savings, deterministic, gossip_beats_isolated };

    let mut report = ExperimentReport::new("fleet");
    report.note(format!(
        "Epinions stand-in /{} ({} nodes); {} MTO jobs x {} steps from one seed node, \
         {} gossip barriers per run (epoch quantum {}).",
        config.scale,
        graph.num_nodes(),
        config.jobs,
        config.steps,
        config.epochs,
        epoch_quantum
    ));
    let mut table = Table::new(
        "Fleet-wide unique-query bill, epoch gossip vs isolated shards",
        &["W", "isolated", "gossiped", "saved", "adopted", "conflicts", "makespan (s)"],
    );
    for r in &result.rows {
        table.push_row(vec![
            r.shards.to_string(),
            r.isolated_cost.to_string(),
            r.gossiped_cost.to_string(),
            format!("{:.1}%", 100.0 * r.saved_fraction),
            r.adopted.to_string(),
            r.conflicts.to_string(),
            format!("{:.1}", r.makespan_secs),
        ]);
    }
    report.tables.push(table);
    report.note(format!(
        "At W={} shards, epoch gossip cuts the fleet-wide unique-query bill by {:.1}% \
         versus isolated shards at equal per-shard sample counts.",
        config.verdict_shards,
        100.0 * result.verdict_savings
    ));
    report.note(format!(
        "Results digest byte-identical across W, gossip arms, and merge orders: {}.",
        result.deterministic
    ));
    report.note(format!(
        "gossip-beats-isolated: {}",
        if result.gossip_beats_isolated { "PASS" } else { "FAIL" }
    ));
    report.note(format!(
        "fleet-deterministic: {}",
        if result.deterministic { "PASS" } else { "FAIL" }
    ));
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gossip_beats_isolated_at_reduced_scale() {
        // The acceptance criterion of ISSUE 4: ≥ 30% fewer fleet-wide
        // unique queries at W=4 with gossip, byte-identical results
        // across W and merge orders.
        let (result, report) = run(&FleetSweepConfig::reduced());
        assert!(result.deterministic, "fleet results diverged");
        assert!(
            result.verdict_savings >= 0.30,
            "gossip saved only {:.1}%",
            100.0 * result.verdict_savings
        );
        assert!(result.gossip_beats_isolated);
        let text = report.to_markdown();
        assert!(text.contains("gossip-beats-isolated: PASS"), "{text}");
        assert!(text.contains("fleet-deterministic: PASS"), "{text}");
        // Sanity on the sweep shape: W=1 saves nothing; savings at the
        // verdict W comes with actual adoption and zero conflicts.
        let w1 = result.rows.iter().find(|r| r.shards == 1).unwrap();
        assert_eq!(w1.gossiped_cost, w1.isolated_cost, "one shard has nobody to gossip with");
        let w4 = result.rows.iter().find(|r| r.shards == 4).unwrap();
        assert!(w4.adopted > 0);
        assert_eq!(w4.conflicts, 0);
    }

    #[test]
    fn deeper_sharding_shrinks_the_makespan() {
        // More shards = more parallel pipelines: the gossip arm's
        // makespan must not grow with W (it should shrink markedly).
        let (result, _) = run(&FleetSweepConfig {
            steps: 600,
            shard_counts: vec![1, 4],
            ..FleetSweepConfig::reduced()
        });
        let w1 = result.rows.iter().find(|r| r.shards == 1).unwrap();
        let w4 = result.rows.iter().find(|r| r.shards == 4).unwrap();
        assert!(
            w4.makespan_secs < w1.makespan_secs,
            "W=4 makespan {} should beat W=1 {}",
            w4.makespan_secs,
            w1.makespan_secs
        );
    }
}
