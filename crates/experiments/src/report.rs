//! Report formatting: markdown tables, CSV series, and tiny ASCII charts.
//!
//! Every experiment produces an [`ExperimentReport`] — a set of labelled
//! tables and series — which the `mto-lab` binary prints and optionally
//! writes under `results/`.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A labelled markdown table.
#[derive(Clone, Debug)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row-major cells (already formatted).
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the arity differs from the header.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch in {:?}", self.title);
        self.rows.push(cells);
    }

    /// Renders as github-flavored markdown with padded columns.
    pub fn to_markdown(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> = cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:width$}", c, width = widths[i]))
                .collect();
            format!("| {} |", padded.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers));
        let sep: Vec<String> = (0..ncols).map(|i| "-".repeat(widths[i])).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row));
        }
        out
    }
}

/// A named numeric series (one figure curve).
#[derive(Clone, Debug)]
pub struct Series {
    /// Curve label.
    pub label: String,
    /// `(x, y)` points in plot order.
    pub points: Vec<(f64, f64)>,
}

/// Everything one experiment produces.
#[derive(Clone, Debug, Default)]
pub struct ExperimentReport {
    /// Experiment identifier (e.g. `fig7-epinions`).
    pub name: String,
    /// Narrative notes (assumptions, substitutions, paper references).
    pub notes: Vec<String>,
    /// Tables to print.
    pub tables: Vec<Table>,
    /// Curves to export as CSV.
    pub series: Vec<Series>,
}

impl ExperimentReport {
    /// Creates an empty report.
    pub fn new(name: impl Into<String>) -> Self {
        ExperimentReport { name: name.into(), ..Default::default() }
    }

    /// Adds a note line.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Renders the whole report as markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.name);
        for n in &self.notes {
            let _ = writeln!(out, "> {n}");
        }
        if !self.notes.is_empty() {
            let _ = writeln!(out);
        }
        for t in &self.tables {
            let _ = writeln!(out, "{}", t.to_markdown());
        }
        for s in &self.series {
            let _ = writeln!(out, "{}", ascii_chart(s, 60, 12));
        }
        out
    }

    /// Writes `name.md` plus one CSV per series into `dir`.
    pub fn write_to(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let md_path = dir.join(format!("{}.md", self.name));
        std::fs::write(&md_path, self.to_markdown())?;
        for s in &self.series {
            let safe: String = s
                .label
                .chars()
                .map(|c| if c.is_alphanumeric() { c.to_ascii_lowercase() } else { '_' })
                .collect();
            let path = dir.join(format!("{}-{safe}.csv", self.name));
            let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
            writeln!(f, "x,y")?;
            for (x, y) in &s.points {
                writeln!(f, "{x},{y}")?;
            }
            f.flush()?;
        }
        Ok(())
    }
}

/// Renders a series as a crude ASCII scatter — enough to see a trend in a
/// terminal without plotting dependencies.
pub fn ascii_chart(series: &Series, width: usize, height: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "``` {}", series.label);
    if series.points.is_empty() {
        let _ = writeln!(out, "(empty series)");
        let _ = writeln!(out, "```");
        return out;
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &series.points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    let xspan = (xmax - xmin).max(f64::MIN_POSITIVE);
    let yspan = (ymax - ymin).max(f64::MIN_POSITIVE);
    let mut grid = vec![vec![b' '; width]; height];
    for &(x, y) in &series.points {
        let col = (((x - xmin) / xspan) * (width - 1) as f64).round() as usize;
        let row = (((y - ymin) / yspan) * (height - 1) as f64).round() as usize;
        grid[height - 1 - row][col] = b'*';
    }
    let _ = writeln!(out, "y ∈ [{ymin:.3}, {ymax:.3}]");
    for row in grid {
        let _ = writeln!(out, "|{}|", String::from_utf8_lossy(&row));
    }
    let _ = writeln!(out, "x ∈ [{xmin:.3}, {xmax:.3}]");
    let _ = writeln!(out, "```");
    out
}

/// Formats a float compactly for table cells.
pub fn fmt(x: f64) -> String {
    if x == 0.0 {
        "0".into()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else if x.abs() >= 0.01 {
        format!("{x:.3}")
    } else {
        format!("{x:.2e}")
    }
}

/// Mean of a slice.
///
/// # Panics
/// Panics on empty input.
pub fn mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "mean of empty slice");
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1); zero for singletons.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_padded_markdown() {
        let mut t = Table::new("Demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "22.5".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| name  | value |"));
        assert!(md.contains("| alpha | 1     |"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn table_rejects_bad_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn report_markdown_contains_all_parts() {
        let mut r = ExperimentReport::new("fig-test");
        r.note("substitution: synthetic data");
        let mut t = Table::new("T", &["k"]);
        t.push_row(vec!["v".into()]);
        r.tables.push(t);
        r.series.push(Series { label: "curve".into(), points: vec![(0.0, 1.0), (1.0, 2.0)] });
        let md = r.to_markdown();
        assert!(md.contains("## fig-test"));
        assert!(md.contains("> substitution"));
        assert!(md.contains("### T"));
        assert!(md.contains("curve"));
    }

    #[test]
    fn report_writes_files() {
        let dir = std::env::temp_dir().join("mto_report_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut r = ExperimentReport::new("unit");
        r.series.push(Series { label: "A B".into(), points: vec![(1.0, 2.0)] });
        r.write_to(&dir).unwrap();
        assert!(dir.join("unit.md").exists());
        let csv = std::fs::read_to_string(dir.join("unit-a_b.csv")).unwrap();
        assert!(csv.contains("x,y"));
        assert!(csv.contains("1,2"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn ascii_chart_handles_empty_and_regular() {
        let empty = Series { label: "e".into(), points: vec![] };
        assert!(ascii_chart(&empty, 10, 4).contains("empty"));
        let s = Series {
            label: "s".into(),
            points: (0..10).map(|i| (i as f64, (i * i) as f64)).collect(),
        };
        let chart = ascii_chart(&s, 20, 8);
        assert!(chart.contains('*'));
        assert!(chart.contains("x ∈"));
    }

    #[test]
    fn fmt_ranges() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(12345.6), "12346");
        assert_eq!(fmt(42.42), "42.4");
        assert_eq!(fmt(0.1234), "0.123");
        assert_eq!(fmt(0.0001234), "1.23e-4");
    }

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138).abs() < 0.01);
    }
}
