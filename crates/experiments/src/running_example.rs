//! The running example of Sections II–III: the 22-node barbell.
//!
//! Reproduces every number the paper quotes for it:
//!
//! * `Φ(G) = 1/56 ≈ 0.018` and the mixing bound `14212.3 · log(c/ε)`;
//! * one extra bridge ⇒ `Φ = 0.035`, bound ratio `0.264`;
//! * removal overlay `G*`: `Φ(G*) ≈ 0.053`, bound ratio `≈ 0.115`;
//! * removal+replacement overlay `G**`: `Φ(G**) ≈ 0.105`, overall ratio
//!   `≈ 0.029` (97% reduction).
//!
//! `G*` is deterministic (Theorem 3 applied to every edge); `G**` is
//! walk-dependent — the experiment runs the full MTO-Sampler to coverage
//! and reports the realized conductance.

use mto_core::materialize_removal_overlay;
use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::walk::Walker;
use mto_graph::generators::paper_barbell;
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService};
use mto_spectral::conductance::exact_conductance;
use mto_spectral::mixing::mixing_bound_log10_coefficient;

use crate::report::{fmt, ExperimentReport, Table};

/// Result rows of the running example.
#[derive(Clone, Debug)]
pub struct RunningExampleResult {
    /// Conductance of the original barbell.
    pub phi_original: f64,
    /// Conductance after exhaustive Theorem 3 removal.
    pub phi_removal: f64,
    /// Conductance after a full MTO walk (removal + replacement).
    pub phi_both: f64,
    /// Bound-coefficient reduction of removal vs original.
    pub removal_reduction: f64,
    /// Bound-coefficient reduction of removal+replacement vs original.
    pub both_reduction: f64,
}

/// Runs the experiment.
pub fn run(seed: u64) -> (RunningExampleResult, ExperimentReport) {
    let g = paper_barbell();
    let phi_original = exact_conductance(&g).phi;

    // G*: Theorem 3 everywhere (paper-faithful original-counts view).
    let g_star = materialize_removal_overlay(&g);
    let phi_removal = exact_conductance(&g_star).phi;

    // G**: run the full sampler until every node has been visited, then
    // materialize its overlay (the paper does exactly this for Fig 10).
    let service = OsnService::with_defaults(&g);
    let mut sampler = MtoSampler::new(
        CachedClient::new(service),
        NodeId(0),
        MtoConfig { seed, ..Default::default() },
    )
    .expect("barbell start node exists");
    let mut seen = std::collections::HashSet::new();
    seen.insert(NodeId(0));
    let mut steps = 0usize;
    while seen.len() < g.num_nodes() && steps < 200_000 {
        seen.insert(sampler.step().expect("simulated interface cannot fail"));
        steps += 1;
    }
    // Let the sampler keep rewiring a while after coverage.
    for _ in 0..20_000 {
        sampler.step().expect("simulated interface cannot fail");
    }
    let g_both = sampler.overlay().materialize(&g);
    let phi_both = exact_conductance(&g_both).phi;

    let coeff = mixing_bound_log10_coefficient;
    let removal_reduction = coeff(phi_removal) / coeff(phi_original);
    let both_reduction = coeff(phi_both) / coeff(phi_original);

    let mut report = ExperimentReport::new("running-example");
    report.note("Paper §II-III running example: 22-node, 111-edge barbell.");
    report.note(
        "G* applies Theorem 3 to every edge (original-counts view, min-degree 2, \
         connectivity guard); G** is the realized MTO overlay after a full walk.",
    );

    let mut t = Table::new(
        "Conductance and mixing-bound reduction (paper vs measured)",
        &["stage", "Φ paper", "Φ measured", "bound ratio paper", "bound ratio measured"],
    );
    t.push_row(vec![
        "original G".into(),
        "0.018".into(),
        fmt(phi_original),
        "1.0".into(),
        "1.0".into(),
    ]);
    t.push_row(vec![
        "removal G*".into(),
        "0.053".into(),
        fmt(phi_removal),
        "0.115".into(),
        fmt(removal_reduction),
    ]);
    t.push_row(vec![
        "removal+replacement G**".into(),
        "0.105".into(),
        fmt(phi_both),
        "0.029".into(),
        fmt(both_reduction),
    ]);
    report.tables.push(t);

    let mut t2 =
        Table::new("Mixing bound coefficients (×log10(c/ε))", &["stage", "paper", "measured"]);
    t2.push_row(vec!["original".into(), "14212.3".into(), fmt(coeff(phi_original))]);
    t2.push_row(vec!["removal".into(), "1638.3".into(), fmt(coeff(phi_removal))]);
    t2.push_row(vec!["both".into(), "416.6".into(), fmt(coeff(phi_both))]);
    report.tables.push(t2);

    (
        RunningExampleResult {
            phi_original,
            phi_removal,
            phi_both,
            removal_reduction,
            both_reduction,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_shape() {
        let (r, report) = run(7);
        // Exact: Φ(G) = 1/56.
        assert!((r.phi_original - 1.0 / 56.0).abs() < 1e-12);
        // Removal overlay lands in the paper's neighborhood of 0.053
        // (we measure 1/18 ≈ 0.0556; the paper reports 1/19 ≈ 0.053).
        assert!(r.phi_removal > 0.04 && r.phi_removal < 0.07, "Φ(G*) = {}", r.phi_removal);
        // Replacement pushes further up, toward the paper's 0.105.
        assert!(
            r.phi_both > r.phi_removal * 0.9,
            "G** must not fall below G*: {} vs {}",
            r.phi_both,
            r.phi_removal
        );
        // Mixing-bound reduction: paper says 0.115 after removal, 0.029
        // after both. Same order of magnitude required.
        assert!(r.removal_reduction < 0.2, "removal reduction {}", r.removal_reduction);
        assert!(r.both_reduction < 0.2, "overall reduction {}", r.both_reduction);
        // Report sanity.
        let md = report.to_markdown();
        assert!(md.contains("running-example"));
        assert!(md.contains("0.018"));
    }

    #[test]
    fn walk_overlay_is_deterministic_per_seed() {
        let (a, _) = run(11);
        let (b, _) = run(11);
        assert_eq!(a.phi_both, b.phi_both);
    }
}
