//! Warm start: quantifying the cross-run history win of `mto-serve`.
//!
//! The paper's cost model counts only *unique* queries (Section II-B), and
//! its Section III-D local database already hints that crawl history is an
//! asset that should outlive a single run. This experiment measures
//! exactly that, end to end through the service layer:
//!
//! 1. **Job A** (an MTO estimation run) crawls the network; its client
//!    cache and overlay are exported as a [`HistoryStore`] and persisted
//!    to disk — the full codec round trip, not an in-memory shortcut.
//! 2. **Job B** (a different seed over the same network) runs twice: once
//!    **cold** (fresh client, every visited node billed) and once
//!    **warm** (client rebuilt from the persisted store, only
//!    never-visited nodes billed).
//!
//! Because a walker is a pure function of `(config, responses)`, the warm
//! and cold runs of job B take the *same path* — the warm start changes
//! only the bill. The win is `cold − warm` unique queries; it is strictly
//! positive whenever job B touches at least one node job A already paid
//! for (guaranteed here: both jobs start at the same node).

use std::path::PathBuf;

use mto_core::mto::MtoConfig;
use mto_core::walk::Walker;
use mto_graph::NodeId;
use mto_osn::{CachedClient, OsnService, SharedClient};
use mto_serve::history::HistoryStore;
use mto_serve::session::{AlgoSpec, JobSpec, SamplerSession};

use crate::datasets::{build_dataset, DatasetSpec};
use crate::report::{ExperimentReport, Table};

/// Parameters of the warm-start experiment.
#[derive(Clone, Debug)]
pub struct WarmStartConfig {
    /// Scale-down divisor for the Epinions stand-in.
    pub scale: usize,
    /// Steps per job.
    pub steps: usize,
    /// Seed of the history-producing job A.
    pub seed_first: u64,
    /// Seed of the measured job B.
    pub seed_second: u64,
    /// Where to persist the history store (`None` = a temp file).
    pub store_path: Option<PathBuf>,
}

impl WarmStartConfig {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        WarmStartConfig {
            scale: 10,
            steps: 20_000,
            seed_first: 0x11A7,
            seed_second: 0x22B8,
            store_path: None,
        }
    }

    /// Reduced (CI-scale) configuration.
    pub fn reduced() -> Self {
        WarmStartConfig { scale: 40, steps: 4_000, ..WarmStartConfig::full() }
    }
}

/// Measured costs of the warm-start protocol.
#[derive(Clone, Debug)]
pub struct WarmStartResult {
    /// Unique queries job A spent building the history.
    pub first_job_cost: u64,
    /// Unique queries of job B from a cold client.
    pub cold_cost: u64,
    /// Unique queries of job B warm-started from the persisted store.
    pub warm_cost: u64,
    /// Cached responses in the persisted store.
    pub store_responses: usize,
    /// Bytes of the persisted store on disk.
    pub store_bytes: usize,
    /// `1 − warm/cold`: the fraction of job B's bill the history paid.
    pub saved_fraction: f64,
    /// Whether warm and cold runs of job B walked the same path (they
    /// must — the warm start may only change the bill).
    pub paths_identical: bool,
}

fn job(id: &str, seed: u64, steps: usize) -> JobSpec {
    JobSpec {
        id: id.into(),
        algo: AlgoSpec::Mto(MtoConfig { seed, ..Default::default() }),
        start: NodeId(0),
        step_budget: steps,
        deadline: None,
        ess: None,
    }
}

fn run_session(
    client: SharedClient<std::sync::Arc<OsnService>>,
    spec: JobSpec,
) -> SamplerSession<std::sync::Arc<OsnService>> {
    let mut session = SamplerSession::create(client, spec).expect("session creation");
    session.run_to_completion().expect("session run");
    session
}

/// Runs the experiment, returning the measured costs and a report.
pub fn run(config: &WarmStartConfig) -> (WarmStartResult, ExperimentReport) {
    let graph = build_dataset(&DatasetSpec::epinions().scaled_down(config.scale));
    let service = std::sync::Arc::new(OsnService::with_defaults(&graph));
    let path = config.store_path.clone().unwrap_or_else(|| {
        // Unique per invocation: tests in one process run concurrently and
        // must not race on save/load/remove of a shared path.
        static INVOCATION: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let invocation = INVOCATION.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("mto-warm-start-{}-{invocation}.hist", std::process::id()))
    });

    // Job A: crawl and persist.
    let first = {
        let client = SharedClient::new(CachedClient::new(service.clone()));
        let session = run_session(client.clone(), job("first", config.seed_first, config.steps));
        let store = client.with(|c| HistoryStore::from_parts(c, session.walker().overlay()));
        store.save(&path).expect("persist history store");
        session.unique_queries()
    };
    let encoded_len = std::fs::metadata(&path).map(|m| m.len() as usize).unwrap_or(0);
    let store = HistoryStore::load(&path).expect("reload history store");
    if config.store_path.is_none() {
        std::fs::remove_file(&path).ok();
    }

    // Job B, cold: fresh client.
    let spec_b = job("second", config.seed_second, config.steps);
    let cold_client = SharedClient::new(CachedClient::new(service.clone()));
    let cold = run_session(cold_client, spec_b.clone());

    // Job B, warm: client rebuilt from the persisted store, bill at zero.
    let warm_client =
        SharedClient::new(store.warm_start(service.clone()).expect("history matches network"));
    let warm = run_session(warm_client, spec_b);

    let cold_cost = cold.unique_queries();
    let warm_cost = warm.unique_queries();
    let result = WarmStartResult {
        first_job_cost: first,
        cold_cost,
        warm_cost,
        store_responses: store.num_responses(),
        store_bytes: encoded_len,
        saved_fraction: if cold_cost > 0 { 1.0 - warm_cost as f64 / cold_cost as f64 } else { 0.0 },
        paths_identical: cold.walker().history() == warm.walker().history(),
    };

    let mut report = ExperimentReport::new("warm_start");
    report.note(format!(
        "Epinions stand-in /{} ({} nodes), MTO jobs of {} steps; history persisted through \
         the mto-serve HistoryStore codec ({} bytes on disk).",
        config.scale,
        graph.num_nodes(),
        config.steps,
        result.store_bytes
    ));
    report.note(format!(
        "Warm start saves {:.1}% of the second job's unique-query bill ({} cold → {} warm).",
        100.0 * result.saved_fraction,
        result.cold_cost,
        result.warm_cost
    ));
    let mut table = Table::new(
        "Second-job unique-query cost, cold vs warm-started",
        &["job", "unique queries", "notes"],
    );
    table.push_row(vec![
        "A (history producer)".into(),
        result.first_job_cost.to_string(),
        format!("{} responses persisted", result.store_responses),
    ]);
    table.push_row(vec!["B cold".into(), result.cold_cost.to_string(), "fresh client".into()]);
    table.push_row(vec![
        "B warm".into(),
        result.warm_cost.to_string(),
        format!("{:.1}% saved", 100.0 * result.saved_fraction),
    ]);
    report.tables.push(table);
    (result, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_start_strictly_reduces_unique_queries() {
        // The acceptance criterion of ISSUE 2: a second estimation job over
        // the same service, started from a *persisted* HistoryStore,
        // spends strictly fewer unique queries than a cold run.
        let (result, report) = run(&WarmStartConfig::reduced());
        assert!(
            result.warm_cost < result.cold_cost,
            "warm {} must be strictly below cold {}",
            result.warm_cost,
            result.cold_cost
        );
        assert!(result.paths_identical, "warm start may only change the bill, not the walk");
        assert!(result.store_responses > 0);
        assert!(result.store_bytes > 0, "store really went through disk");
        assert!(result.saved_fraction > 0.0 && result.saved_fraction <= 1.0);
        assert!(!report.tables.is_empty());
    }

    #[test]
    fn deeper_history_saves_more() {
        // A longer first job caches more of the graph, so the warm second
        // job gets (weakly) cheaper.
        let shallow = run(&WarmStartConfig { steps: 800, ..WarmStartConfig::reduced() }).0;
        let deep = run(&WarmStartConfig { steps: 6_000, ..WarmStartConfig::reduced() }).0;
        assert!(
            deep.store_responses >= shallow.store_responses,
            "deeper crawl must cache at least as many nodes"
        );
    }
}
