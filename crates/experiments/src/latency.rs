//! Latency: virtual wall-clock cost of sampling, serial vs pipelined vs
//! walk-not-wait.
//!
//! The paper's cost model counts unique queries, but against a live
//! provider the bill that hurts is *time*: per-request latency plus
//! rate-limit stalls, during which a blocking walker does nothing. "Walk,
//! Not Wait" (Nazi et al.) converts that dead time into progress by
//! keeping requests in flight and speculating. This experiment quantifies
//! the conversion end to end through `mto-net`'s deterministic
//! discrete-event engine:
//!
//! 1. A pool of MTO walkers over the Epinions stand-in, all three driver
//!    regimes ([`DriverMode::Serial`] / [`DriverMode::Pipelined`] /
//!    [`DriverMode::WalkNotWait`]), under the **same unique-query
//!    budget** — speculation is charged like demand and refused at the
//!    cap.
//! 2. Under the Facebook and Twitter provider presets (published rate
//!    limit + measured-shape latency distribution).
//!
//! Walker paths are timing-independent, so every regime produces the
//! *same samples*; only the virtual clock and the bill differ. The win
//! reported is `serial / walk-not-wait` virtual completion time.

use mto_core::mto::MtoConfig;
use mto_graph::NodeId;
use mto_net::demand::{record_traces, PoolJob, WalkerSpec};
use mto_net::driver::{replay_pool, DriverConfig, DriverMode, PoolReport};
use mto_net::pipeline::PipelineConfig;
use mto_net::ProviderProfile;
use mto_osn::OsnService;

use crate::datasets::{build_dataset, DatasetSpec};
use crate::report::{ExperimentReport, Table};

/// Parameters of the latency experiment.
#[derive(Clone, Debug)]
pub struct LatencyConfig {
    /// Scale-down divisor for the Epinions stand-in.
    pub scale: usize,
    /// Walkers in the pool.
    pub walkers: usize,
    /// Steps per walker.
    pub steps: usize,
    /// Requests in flight (pipeline connections) for the overlapped
    /// regimes.
    pub max_in_flight: usize,
    /// Unique-query budget shared by every regime (`None` = the network
    /// size — the natural cap).
    pub budget: Option<u64>,
    /// Engine seed (latency draws).
    pub seed: u64,
}

impl LatencyConfig {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        LatencyConfig {
            scale: 20,
            walkers: 8,
            steps: 220,
            max_in_flight: 8,
            budget: None,
            seed: 0x11FE,
        }
    }

    /// Reduced (CI-scale) configuration.
    pub fn reduced() -> Self {
        LatencyConfig { scale: 40, walkers: 6, steps: 110, max_in_flight: 6, ..Self::full() }
    }
}

/// Measured outcome of one provider sweep.
#[derive(Clone, Debug)]
pub struct ProviderOutcome {
    /// Preset name.
    pub provider: &'static str,
    /// The three regime reports, in `[serial, pipelined, walk-not-wait]`
    /// order.
    pub regimes: Vec<PoolReport>,
    /// `serial / pipelined` virtual-time ratio.
    pub pipelined_speedup: f64,
    /// `serial / walk-not-wait` virtual-time ratio.
    pub walk_not_wait_speedup: f64,
    /// Whether all regimes produced identical walker histories (they
    /// must — timing may not change the samples).
    pub paths_identical: bool,
}

/// Aggregate result across providers.
#[derive(Clone, Debug)]
pub struct LatencyResult {
    /// One outcome per provider preset.
    pub providers: Vec<ProviderOutcome>,
    /// The common unique-query budget every run observed.
    pub budget: u64,
}

fn pool(config: &LatencyConfig, num_nodes: usize) -> Vec<PoolJob> {
    (0..config.walkers as u64)
        .map(|i| PoolJob {
            spec: WalkerSpec::Mto(MtoConfig { seed: 0xA110 + i, ..Default::default() }),
            // Spread the seeds across the id space so walkers explore
            // different regions (the deployment the paper describes).
            start: NodeId(((i as usize * num_nodes) / config.walkers) as u32),
            steps: config.steps,
        })
        .collect()
}

/// Runs the experiment, returning measurements and a report.
pub fn run(config: &LatencyConfig) -> (LatencyResult, ExperimentReport) {
    let graph = build_dataset(&DatasetSpec::epinions().scaled_down(config.scale));
    let num_nodes = graph.num_nodes();
    let budget = config.budget.unwrap_or(num_nodes as u64);
    let jobs = pool(config, num_nodes);

    let mut report = ExperimentReport::new("latency");
    report.note(format!(
        "Epinions stand-in /{} ({num_nodes} nodes); pool of {} MTO walkers × {} steps; \
         unique-query budget {budget} shared by every regime (speculation is charged \
         and refused at the cap).",
        config.scale, config.walkers, config.steps,
    ));

    // Demand traces depend only on the walkers and the network — not on
    // latency, quota, or regime — so one oracle pass serves all six
    // replays below.
    let service = OsnService::with_defaults(&graph);
    let traces = record_traces(&service, &jobs).expect("trace recording");

    let mut providers = Vec::new();
    for profile in [ProviderProfile::facebook(), ProviderProfile::twitter()] {
        let mut regimes = Vec::new();
        for mode in [DriverMode::Serial, DriverMode::Pipelined, DriverMode::WalkNotWait] {
            let driver = DriverConfig {
                mode,
                pipeline: PipelineConfig {
                    max_in_flight: if mode == DriverMode::Serial {
                        1
                    } else {
                        config.max_in_flight
                    },
                    latency: profile.latency,
                    faults: profile.faults,
                    rate_limit: Some(profile.policy),
                    seed: config.seed,
                    ..Default::default()
                },
                unique_query_budget: Some(budget),
            };
            regimes.push(replay_pool(&service, &traces, &driver).expect("pool replay"));
        }
        let (serial, pipelined, wnw) = (&regimes[0], &regimes[1], &regimes[2]);
        let paths_identical = serial
            .walkers
            .iter()
            .zip(&wnw.walkers)
            .all(|(a, b)| a.history == b.history)
            && serial.walkers.iter().zip(&pipelined.walkers).all(|(a, b)| a.history == b.history);

        let mut table = Table::new(
            format!(
                "{}: virtual completion time at an equal unique-query budget of {budget}",
                profile.name
            ),
            &["regime", "virtual time", "unique queries", "prefetches (hits)", "stalls"],
        );
        for r in &regimes {
            table.push_row(vec![
                r.mode.name().into(),
                format!("{:.1} s", r.virtual_secs),
                r.unique_queries.to_string(),
                format!("{} ({})", r.prefetches_issued, r.prefetch_hits),
                r.pipeline.rate_limit_stalls.to_string(),
            ]);
        }
        report.tables.push(table);

        let outcome = ProviderOutcome {
            provider: profile.name,
            pipelined_speedup: serial.virtual_secs / pipelined.virtual_secs.max(1e-9),
            walk_not_wait_speedup: serial.virtual_secs / wnw.virtual_secs.max(1e-9),
            paths_identical,
            regimes,
        };
        report.note(format!(
            "{}: serial {:.1} s → pipelined {:.1} s ({:.2}×) → walk-not-wait {:.1} s \
             ({:.2}×); identical samples in every regime: {}.",
            outcome.provider,
            outcome.regimes[0].virtual_secs,
            outcome.regimes[1].virtual_secs,
            outcome.pipelined_speedup,
            outcome.regimes[2].virtual_secs,
            outcome.walk_not_wait_speedup,
            if outcome.paths_identical { "yes" } else { "NO" },
        ));
        providers.push(outcome);
    }

    // Grep-able verdicts for the CI smoke job. A *quota-bound* workload
    // (demand beyond the burst, refill the binding constraint — Twitter
    // at paper scale) ties every regime at the refill floor: overlap can
    // hide latency, never mint tokens. The verdicts therefore require a
    // strict win where latency is the constraint and tolerate floor ties
    // (within 5%) where quota is.
    let no_regressions =
        providers.iter().all(|p| p.pipelined_speedup >= 0.95 && p.walk_not_wait_speedup >= 0.95);
    let some_strict_win = providers.iter().any(|p| p.pipelined_speedup > 1.05);
    let wnw_2x = providers.iter().any(|p| p.walk_not_wait_speedup >= 2.0);
    report.note(format!(
        "pipelined-beats-serial: {}",
        if no_regressions && some_strict_win { "PASS" } else { "FAIL" }
    ));
    report.note(format!("walk-not-wait-2x-serial: {}", if wnw_2x { "PASS" } else { "FAIL" }));

    (LatencyResult { providers, budget }, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_not_wait_halves_serial_time_under_facebook() {
        // The acceptance criterion of ISSUE 3: ≥ 2× lower virtual
        // completion time for walk-not-wait vs serial at an equal
        // unique-query budget under the Facebook preset.
        let (result, report) = run(&LatencyConfig::reduced());
        let fb = &result.providers[0];
        assert_eq!(fb.provider, "facebook");
        assert!(
            fb.walk_not_wait_speedup >= 2.0,
            "walk-not-wait speedup {:.2}× below 2× (serial {:.1}s, wnw {:.1}s)",
            fb.walk_not_wait_speedup,
            fb.regimes[0].virtual_secs,
            fb.regimes[2].virtual_secs
        );
        assert!(fb.paths_identical, "overlap may not change the samples");
        for p in &result.providers {
            assert!(
                p.pipelined_speedup > 1.0,
                "{}: pipelined {:.1}s not below serial {:.1}s",
                p.provider,
                p.regimes[1].virtual_secs,
                p.regimes[0].virtual_secs
            );
            for r in &p.regimes {
                assert!(r.unique_queries <= result.budget, "{} burst the budget", r.mode.name());
            }
        }
        let text = report.to_markdown();
        assert!(text.contains("pipelined-beats-serial: PASS"), "{text}");
        assert!(text.contains("walk-not-wait-2x-serial: PASS"), "{text}");
    }

    #[test]
    fn experiment_is_deterministic() {
        let a = run(&LatencyConfig::reduced()).0;
        let b = run(&LatencyConfig::reduced()).0;
        for (pa, pb) in a.providers.iter().zip(&b.providers) {
            for (ra, rb) in pa.regimes.iter().zip(&pb.regimes) {
                assert_eq!(ra.virtual_secs, rb.virtual_secs);
                assert_eq!(ra.unique_queries, rb.unique_queries);
            }
        }
    }
}
