//! Fig 8: SRW vs MTO on query cost and symmetric KL divergence over the
//! three local datasets.
//!
//! Protocol (Section V-B): run each sampler long enough to collect a large
//! number of samples (paper: 20,000) after Geweke(0.1) convergence;
//! estimate the per-node sampling distribution from visit counts; report
//! `D_KL(P‖P_sam) + D_KL(P_sam‖P)` against the sampler's own ideal
//! stationary distribution `P` — the paper defines the ideal per sampler
//! ("p(v) = deg(v)/Σdeg(v) *for a simple random walk*"); for MTO it is
//! the overlay's degree distribution `τ*`. Query cost is reported
//! alongside.

use std::sync::Arc;

use mto_core::diagnostics::kl::{symmetric_kl, VisitCounter, DEFAULT_SMOOTHING};
use mto_core::estimate::Aggregate;
use mto_graph::NodeId;
use mto_osn::OsnService;
use mto_spectral::stationary_distribution;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets::{build_dataset, DatasetSpec};
use crate::driver::{run_converged, Algorithm, RunProtocol};
use crate::report::{fmt, ExperimentReport, Table};

/// Parameters of the Fig 8 experiment.
#[derive(Clone, Debug)]
pub struct Fig8Config {
    /// Scale-down divisor.
    pub scale: usize,
    /// Samples per sampler (paper: 20,000).
    pub samples: usize,
    /// Geweke threshold (paper: 0.1).
    pub geweke_threshold: f64,
    /// Burn-in cap.
    pub max_burn_in_steps: usize,
    /// Base seed.
    pub seed: u64,
}

impl Fig8Config {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        Fig8Config {
            scale: 1,
            samples: 20_000,
            geweke_threshold: 0.1,
            max_burn_in_steps: 60_000,
            seed: 0xF18,
        }
    }

    /// Reduced configuration.
    pub fn reduced() -> Self {
        Fig8Config { scale: 40, samples: 6_000, max_burn_in_steps: 10_000, ..Fig8Config::full() }
    }
}

/// One dataset's Fig 8 measurements.
#[derive(Clone, Debug)]
pub struct Fig8Row {
    /// Dataset label.
    pub dataset: &'static str,
    /// SRW symmetric KL.
    pub srw_kl: f64,
    /// MTO symmetric KL.
    pub mto_kl: f64,
    /// SRW query cost.
    pub srw_cost: u64,
    /// MTO query cost.
    pub mto_cost: u64,
}

/// Measures one sampler's convergence bias: the symmetric KL between its
/// empirical visit distribution and *its own* stationary law — the
/// paper's definition of bias ("the (ideal) stationary distribution,
/// i.e. p(v) = deg(v)/Σdeg(v) for a simple random walk"). For MTO the
/// ideal is the overlay's degree distribution `τ*(v) = k*_v / 2|E*|`,
/// evaluated against the walker's final overlay.
fn measure(
    alg: Algorithm,
    graph: &mto_graph::Graph,
    service: &Arc<OsnService>,
    pi: &[f64],
    start: NodeId,
    config: &Fig8Config,
) -> (f64, u64) {
    let protocol = RunProtocol {
        geweke_threshold: config.geweke_threshold,
        max_burn_in_steps: config.max_burn_in_steps,
        sample_steps: config.samples,
    };
    let seed = config.seed ^ alg.label().len() as u64;

    if alg == Algorithm::Mto {
        // Concrete sampler so the final overlay is accessible.
        let mut sampler = mto_core::mto::MtoSampler::new(
            mto_osn::CachedClient::new(service.clone()),
            start,
            crate::driver::mto_config(seed),
        )
        .expect("valid start node");
        let run = run_converged(&mut sampler, service, Aggregate::AverageDegree, protocol)
            .expect("simulated interface cannot fail");
        let mut counter = VisitCounter::new(pi.len());
        for (s, _) in &run.samples {
            counter.record(s.node);
        }
        let overlay = sampler.overlay().materialize(graph);
        let vol = overlay.volume() as f64;
        let pi_star: Vec<f64> = overlay.nodes().map(|v| overlay.degree(v) as f64 / vol).collect();
        return (
            symmetric_kl(&pi_star, &counter.distribution(), DEFAULT_SMOOTHING),
            run.total_cost,
        );
    }

    let mut walker = alg.build(service.clone(), start, seed).expect("valid start node");
    let run = run_converged(walker.as_mut(), service, Aggregate::AverageDegree, protocol)
        .expect("simulated interface cannot fail");
    let mut counter = VisitCounter::new(pi.len());
    for (s, _) in &run.samples {
        counter.record(s.node);
    }
    (symmetric_kl(pi, &counter.distribution(), DEFAULT_SMOOTHING), run.total_cost)
}

/// Runs Fig 8 over all three datasets.
pub fn run_all(config: &Fig8Config) -> (Vec<Fig8Row>, ExperimentReport) {
    let mut rows = Vec::new();
    let mut report = ExperimentReport::new("fig8");
    report.note(format!(
        "{} samples per sampler after Geweke({}) convergence; symmetric KL \
         of each sampler against its own stationary law (SRW vs pi(G), MTO vs pi(G*)).",
        config.samples, config.geweke_threshold
    ));
    let mut table = Table::new(
        "Fig 8 — SRW vs MTO: query cost and KL divergence",
        &["dataset", "KL SRW", "KL MTO", "cost SRW", "cost MTO"],
    );

    for spec in DatasetSpec::table1() {
        let spec = if config.scale > 1 { spec.scaled_down(config.scale) } else { spec };
        let graph = build_dataset(&spec);
        let service = Arc::new(OsnService::with_defaults(&graph));
        let pi = stationary_distribution(&graph);
        let mut rng = StdRng::seed_from_u64(config.seed ^ spec.seed);
        let start = NodeId(rng.gen_range(0..graph.num_nodes() as u32));

        let (srw_kl, srw_cost) = measure(Algorithm::Srw, &graph, &service, &pi, start, config);
        let (mto_kl, mto_cost) = measure(Algorithm::Mto, &graph, &service, &pi, start, config);
        table.push_row(vec![
            spec.name.into(),
            fmt(srw_kl),
            fmt(mto_kl),
            srw_cost.to_string(),
            mto_cost.to_string(),
        ]);
        rows.push(Fig8Row { dataset: spec.name, srw_kl, mto_kl, srw_cost, mto_cost });
    }
    report.tables.push(table);
    (rows, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig8_produces_finite_kl_for_all_datasets() {
        let (rows, report) = run_all(&Fig8Config { samples: 3_000, ..Fig8Config::reduced() });
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.srw_kl.is_finite() && r.srw_kl > 0.0, "{}: {}", r.dataset, r.srw_kl);
            assert!(r.mto_kl.is_finite() && r.mto_kl > 0.0, "{}: {}", r.dataset, r.mto_kl);
            assert!(r.srw_cost > 0 && r.mto_cost > 0);
        }
        assert!(report.to_markdown().contains("Fig 8"));
    }

    #[test]
    fn kl_shrinks_with_more_samples() {
        // Finite-sample KL against a continuous target decreases in the
        // sample count; verify on one dataset with SRW.
        let small = Fig8Config { samples: 800, ..Fig8Config::reduced() };
        let large = Fig8Config { samples: 8_000, ..Fig8Config::reduced() };
        let spec = DatasetSpec::epinions().scaled_down(small.scale);
        let graph = build_dataset(&spec);
        let service = Arc::new(OsnService::with_defaults(&graph));
        let pi = stationary_distribution(&graph);
        let (kl_small, _) = measure(Algorithm::Srw, &graph, &service, &pi, NodeId(0), &small);
        let (kl_large, _) = measure(Algorithm::Srw, &graph, &service, &pi, NodeId(0), &large);
        assert!(kl_large < kl_small, "more samples must shrink KL: {kl_small} → {kl_large}");
    }
}
