//! `mto-lab` — the experiment runner.
//!
//! ```text
//! mto-lab [--reduced] [--out DIR] <experiment>...
//! mto-lab all                 # everything, paper scale
//! mto-lab --reduced all       # everything, CI scale
//! mto-lab fig7 fig10          # a subset
//! ```
//!
//! Experiments: running-example, table1, fig7, fig8, fig9, fig10, fig11,
//! theorem6. Reports print to stdout and are written under `--out`
//! (default `results/`).

use std::path::PathBuf;

use mto_experiments::report::ExperimentReport;
use mto_experiments::{
    deadline, fig10, fig11, fig7, fig8, fig9, fleet, latency, quality, running_example, table1,
    theorem6, warm_start,
};

const EXPERIMENTS: &[&str] = &[
    "running-example",
    "table1",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "theorem6",
    "warm-start",
    "latency",
    "fleet",
    "deadline",
    "quality",
];

struct Options {
    reduced: bool,
    out_dir: PathBuf,
    chosen: Vec<String>,
}

fn parse_args() -> Result<Options, String> {
    let mut reduced = false;
    let mut out_dir = PathBuf::from("results");
    let mut chosen = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--reduced" => reduced = true,
            "--out" => {
                out_dir = PathBuf::from(
                    args.next().ok_or_else(|| "--out requires a directory".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err(format!(
                    "usage: mto-lab [--reduced] [--out DIR] <experiment|all>...\n\
                     experiments: {}",
                    EXPERIMENTS.join(", ")
                ));
            }
            "all" => chosen.extend(EXPERIMENTS.iter().map(|s| s.to_string())),
            name if EXPERIMENTS.contains(&name) => chosen.push(name.to_string()),
            other => return Err(format!("unknown argument {other:?}; try --help")),
        }
    }
    if chosen.is_empty() {
        return Err("no experiment named; try `mto-lab all` or --help".to_string());
    }
    chosen.dedup();
    Ok(Options { reduced, out_dir, chosen })
}

fn run_experiment(name: &str, reduced: bool) -> ExperimentReport {
    match name {
        "running-example" => running_example::run(7).1,
        "table1" => table1::run(if reduced { 40 } else { 1 }).1,
        "fig7" => {
            let config =
                if reduced { fig7::Fig7Config::reduced() } else { fig7::Fig7Config::full() };
            // fig7 yields one report per dataset; merge them.
            let mut merged = ExperimentReport::new("fig7");
            for (_, report) in fig7::run_all(&config) {
                merged.notes.extend(report.notes);
                merged.tables.extend(report.tables);
                merged.series.extend(report.series);
            }
            merged
        }
        "fig8" => {
            let config =
                if reduced { fig8::Fig8Config::reduced() } else { fig8::Fig8Config::full() };
            fig8::run_all(&config).1
        }
        "fig9" => {
            let config =
                if reduced { fig9::Fig9Config::reduced() } else { fig9::Fig9Config::full() };
            fig9::run(&config).2
        }
        "fig10" => {
            let config =
                if reduced { fig10::Fig10Config::reduced() } else { fig10::Fig10Config::full() };
            fig10::run(&config).1
        }
        "fig11" => {
            let config =
                if reduced { fig11::Fig11Config::reduced() } else { fig11::Fig11Config::full() };
            fig11::run(&config).1
        }
        "theorem6" => {
            let config = if reduced {
                theorem6::Theorem6Config::reduced()
            } else {
                theorem6::Theorem6Config::full()
            };
            theorem6::run(&config).1
        }
        "warm-start" => {
            let config = if reduced {
                warm_start::WarmStartConfig::reduced()
            } else {
                warm_start::WarmStartConfig::full()
            };
            warm_start::run(&config).1
        }
        "latency" => {
            let config = if reduced {
                latency::LatencyConfig::reduced()
            } else {
                latency::LatencyConfig::full()
            };
            latency::run(&config).1
        }
        "fleet" => {
            let config = if reduced {
                fleet::FleetSweepConfig::reduced()
            } else {
                fleet::FleetSweepConfig::full()
            };
            fleet::run(&config).1
        }
        "deadline" => {
            let config = if reduced {
                deadline::DeadlineConfig::reduced()
            } else {
                deadline::DeadlineConfig::full()
            };
            deadline::run(&config).1
        }
        "quality" => {
            let config = if reduced {
                quality::QualityConfig::reduced()
            } else {
                quality::QualityConfig::full()
            };
            quality::run(&config).1
        }
        other => unreachable!("experiment {other} validated during arg parsing"),
    }
}

fn main() {
    let options = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    for name in &options.chosen {
        let started = std::time::Instant::now();
        eprintln!("== running {name} ({}) ==", if options.reduced { "reduced" } else { "full" });
        let report = run_experiment(name, options.reduced);
        println!("{}", report.to_markdown());
        if let Err(e) = report.write_to(&options.out_dir) {
            eprintln!("warning: could not write report for {name}: {e}");
        }
        eprintln!("== {name} done in {:.1?} ==\n", started.elapsed());
    }
}
