//! Fig 10: theoretical mixing time on latent-space graphs, with the
//! removal/replacement ablation and the Theorem 6 bound.
//!
//! Protocol (Section V-B, "Synthetic Social Networks"): latent-space
//! graphs with `D = 2`, box `[0,4] × [0,5]`, `r = 0.7`, `α = ∞`, sizes
//! 50–75. For each size and each MTO variant the sampler runs until it has
//! visited every node ("continuously ran our MTO-Sampler until it hits
//! each node at least once"), the overlay is materialized, and the
//! theoretical mixing time is computed from the SLEM of the lazy walk
//! (footnote 12). Curves: Original, Theoretical Bound (Theorem 6),
//! MTO_Both, MTO_RM, MTO_RP.

use mto_core::mto::{MtoConfig, MtoSampler};
use mto_core::walk::Walker;
use mto_graph::algo::largest_component;
use mto_graph::generators::{latent_space_graph, LatentSpaceModel};
use mto_graph::{Graph, NodeId};
use mto_osn::{CachedClient, OsnService};
use mto_spectral::MixingAnalysis;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{fmt, ExperimentReport, Series, Table};

/// Parameters of the Fig 10 experiment.
#[derive(Clone, Debug)]
pub struct Fig10Config {
    /// Node counts to sweep (paper: 50–75).
    pub sizes: Vec<usize>,
    /// Independent graphs per size (curves average over them).
    pub graphs_per_size: usize,
    /// Walk budget multiplier: the sampler runs until coverage, capped at
    /// `budget_per_node × n` steps.
    pub budget_per_node: usize,
    /// Base seed.
    pub seed: u64,
}

impl Fig10Config {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        Fig10Config {
            sizes: vec![50, 55, 60, 65, 70, 75],
            graphs_per_size: 5,
            budget_per_node: 400,
            seed: 0xF10,
        }
    }

    /// Reduced configuration.
    pub fn reduced() -> Self {
        Fig10Config { sizes: vec![50, 65], graphs_per_size: 2, ..Fig10Config::full() }
    }
}

/// Mixing times per size, averaged over sampled graphs.
#[derive(Clone, Debug)]
pub struct Fig10Point {
    /// Number of nodes requested (pre-LCC).
    pub n: usize,
    /// Original-graph mixing time.
    pub original: f64,
    /// Theorem 6 bound on the post-removal mixing time.
    pub bound: f64,
    /// Removal-only overlay mixing time.
    pub removal_only: f64,
    /// Replacement-only overlay mixing time.
    pub replacement_only: f64,
    /// Full MTO overlay mixing time.
    pub both: f64,
}

/// Lazy-walk SLEM mixing time of a graph.
fn mixing_time(g: &Graph) -> f64 {
    MixingAnalysis::new(g, true).theoretical_mixing_time()
}

/// Runs one MTO variant to node coverage and returns the overlay's mixing
/// time.
fn overlay_mixing(g: &Graph, config: MtoConfig, budget: usize) -> f64 {
    let service = OsnService::with_defaults(g);
    let mut sampler =
        MtoSampler::new(CachedClient::new(service), NodeId(0), config).expect("node 0 exists");
    let mut seen = std::collections::HashSet::new();
    seen.insert(NodeId(0));
    let mut steps = 0usize;
    while seen.len() < g.num_nodes() && steps < budget {
        seen.insert(sampler.step().expect("simulated interface cannot fail"));
        steps += 1;
    }
    let overlay = sampler.overlay().materialize(g);
    // The overlay may have disconnected *nothing* by construction
    // (connectivity guard); materialization plus LCC is belt-and-braces.
    let (lcc, _) = largest_component(&overlay);
    mixing_time(&lcc)
}

/// Monte-Carlo estimate of the Theorem 6 removable-edge probability
/// `P(d ≤ √0.75 · r)` for uniform point pairs in the model's box (the
/// paper's 20,000-point experiment).
pub fn removal_probability_bound(model: &LatentSpaceModel, pairs: usize, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let threshold = 0.75f64.sqrt() * model.r;
    let mut hits = 0usize;
    for _ in 0..pairs {
        let a = model.sample_points(1, &mut rng).pop().expect("one point");
        let b = model.sample_points(1, &mut rng).pop().expect("one point");
        if a.distance(&b) <= threshold {
            hits += 1;
        }
    }
    hits as f64 / pairs as f64
}

/// Runs Fig 10.
pub fn run(config: &Fig10Config) -> (Vec<Fig10Point>, ExperimentReport) {
    let model = LatentSpaceModel::paper_fig10();
    // Theorem 6 (Eq 24): E[Φ(G*)] ≥ Φ(G) / (1 − P); mixing ∝ 1/Φ², so the
    // bound curve is the original mixing time scaled by (1 − P)².
    let p_removable = removal_probability_bound(&model, 20_000, config.seed);
    let bound_factor = (1.0 - p_removable) * (1.0 - p_removable);

    let mut points = Vec::new();
    for &n in &config.sizes {
        let mut orig = Vec::new();
        let mut rm = Vec::new();
        let mut rp = Vec::new();
        let mut both = Vec::new();
        let mut produced = 0usize;
        let mut attempt = 0u64;
        while produced < config.graphs_per_size && attempt < 50 {
            attempt += 1;
            let mut rng = StdRng::seed_from_u64(config.seed ^ (n as u64) << 8 ^ attempt);
            let sample = latent_space_graph(&model, n, &mut rng);
            let (g, _) = largest_component(&sample.graph);
            // Reject degenerate draws: too small a component distorts the
            // per-size average.
            if g.num_nodes() < (n * 3) / 4 || g.min_degree() == 0 {
                continue;
            }
            produced += 1;
            let budget = config.budget_per_node * g.num_nodes();
            orig.push(mixing_time(&g));
            rm.push(overlay_mixing(&g, MtoConfig::removal_only(), budget));
            rp.push(overlay_mixing(&g, MtoConfig::replacement_only(), budget));
            both.push(overlay_mixing(&g, MtoConfig::default(), budget));
        }
        assert!(
            !orig.is_empty(),
            "no usable latent-space graph of size {n} after {attempt} attempts"
        );
        let avg = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        points.push(Fig10Point {
            n,
            original: avg(&orig),
            bound: avg(&orig) * bound_factor,
            removal_only: avg(&rm),
            replacement_only: avg(&rp),
            both: avg(&both),
        });
    }

    let mut report = ExperimentReport::new("fig10");
    report.note(format!(
        "Latent space D=2, box 4x5, r=0.7, alpha=inf; removable-edge probability \
         P = {p_removable:.4} (paper's Eq 13 implies ~0.049); bound factor (1-P)^2 = {bound_factor:.4}."
    ));
    let mut table = Table::new(
        "Fig 10 — theoretical mixing time on latent-space graphs",
        &["n", "Original", "Theoretical Bound", "MTO_RM", "MTO_RP", "MTO_Both"],
    );
    for p in &points {
        table.push_row(vec![
            p.n.to_string(),
            fmt(p.original),
            fmt(p.bound),
            fmt(p.removal_only),
            fmt(p.replacement_only),
            fmt(p.both),
        ]);
    }
    report.tables.push(table);
    for (label, extract) in [
        ("Original", &(|p: &Fig10Point| p.original) as &dyn Fn(&Fig10Point) -> f64),
        ("Theoretical Bound", &|p| p.bound),
        ("MTO_RM", &|p| p.removal_only),
        ("MTO_RP", &|p| p.replacement_only),
        ("MTO_Both", &|p| p.both),
    ] {
        report.series.push(Series {
            label: label.into(),
            points: points.iter().map(|p| (p.n as f64, extract(p))).collect(),
        });
    }
    (points, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn removal_probability_matches_paper_constant() {
        // Paper Eq (13): E[Φ(G*)] ≥ 1.052 Φ(G) ⇒ P ≈ 0.0494.
        let model = LatentSpaceModel::paper_fig10();
        let p = removal_probability_bound(&model, 40_000, 9);
        assert!((p - 0.049).abs() < 0.01, "P = {p}");
        let uplift = 1.0 / (1.0 - p);
        assert!((uplift - 1.052).abs() < 0.012, "uplift {uplift}");
    }

    #[test]
    fn reduced_fig10_curves_have_expected_ordering() {
        let (points, report) = run(&Fig10Config::reduced());
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(p.original.is_finite() && p.original > 0.0);
            // The bound is a mild improvement on the original.
            assert!(p.bound < p.original);
            assert!(p.bound > 0.8 * p.original);
            // Full MTO at least matches the better single-move variant
            // (generous slack: these are stochastic small graphs).
            let best_single = p.removal_only.min(p.replacement_only);
            assert!(
                p.both <= best_single * 1.5,
                "n={}: both {} vs best single {best_single}",
                p.n,
                p.both
            );
            // And the headline: MTO_Both improves on the original.
            assert!(
                p.both < p.original,
                "n={}: MTO {} did not beat original {}",
                p.n,
                p.both,
                p.original
            );
        }
        assert!(report.to_markdown().contains("MTO_Both"));
    }
}
