//! Fig 7: query cost vs relative error for SRW / MTO / MHRW / RJ when
//! estimating the average degree of the three local datasets.
//!
//! Protocol (Section V-B): each point averages 20 runs; the y-axis is the
//! query cost a run needs before its estimate settles at or below the
//! x-axis relative error; the Geweke indicator (threshold 0.1) gates
//! sample collection; Random Jump uses jump probability 0.5.

use std::sync::Arc;

use mto_core::estimate::Aggregate;
use mto_graph::NodeId;
use mto_osn::OsnService;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::datasets::{build_dataset, DatasetSpec};
use crate::driver::{run_converged, Algorithm, RunProtocol};
use crate::report::{fmt, mean, ExperimentReport, Series, Table};

/// Parameters of the Fig 7 experiment.
#[derive(Clone, Debug)]
pub struct Fig7Config {
    /// Scale-down divisor (1 = paper-scale).
    pub scale: usize,
    /// Runs per algorithm (paper: 20).
    pub runs: usize,
    /// Relative-error grid (paper: 0.1–0.2 for Slashdot, 0.1–0.3 Epinions).
    pub error_grid: Vec<f64>,
    /// Geweke threshold.
    pub geweke_threshold: f64,
    /// Post-convergence samples per run.
    pub sample_steps: usize,
    /// Burn-in cap.
    pub max_burn_in_steps: usize,
    /// Base seed.
    pub seed: u64,
}

impl Fig7Config {
    /// Paper-scale configuration.
    pub fn full() -> Self {
        Fig7Config {
            scale: 1,
            runs: 20,
            error_grid: vec![0.10, 0.12, 0.14, 0.16, 0.18, 0.20],
            geweke_threshold: 0.1,
            sample_steps: 4_000,
            max_burn_in_steps: 60_000,
            seed: 0xF167,
        }
    }

    /// Reduced configuration for tests and quick runs.
    pub fn reduced() -> Self {
        Fig7Config {
            scale: 40,
            runs: 5,
            error_grid: vec![0.10, 0.15, 0.20],
            sample_steps: 1_500,
            max_burn_in_steps: 10_000,
            ..Fig7Config::full()
        }
    }
}

/// Mean query cost per (algorithm, epsilon); `None` entries (runs that
/// never settled) are counted at the run's total cost — the conservative
/// reading the paper's "maximum query cost" phrasing implies.
#[derive(Clone, Debug)]
pub struct Fig7Curve {
    /// Algorithm of this curve.
    pub algorithm: Algorithm,
    /// `(epsilon, mean query cost)` points.
    pub points: Vec<(f64, f64)>,
}

/// Runs Fig 7 for one dataset.
pub fn run_dataset(spec: &DatasetSpec, config: &Fig7Config) -> (Vec<Fig7Curve>, ExperimentReport) {
    let spec = if config.scale > 1 { spec.scaled_down(config.scale) } else { spec.clone() };
    let graph = build_dataset(&spec);
    let service = Arc::new(OsnService::with_defaults(&graph));
    let truth = service.true_average_degree();
    let mut seed_rng = StdRng::seed_from_u64(config.seed ^ spec.seed);

    let mut curves = Vec::new();
    let mut report =
        ExperimentReport::new(format!("fig7-{}", spec.name.to_lowercase().replace(' ', "-")));
    report.note(format!(
        "Aggregate: average degree (truth {truth:.3}); {} runs per algorithm; Geweke {}.",
        config.runs, config.geweke_threshold
    ));

    let mut table = Table::new(
        format!("Fig 7 ({}) — mean query cost to reach relative error", spec.name),
        &["algorithm", "ε=first", "ε=mid", "ε=last", "mean burn-in cost"],
    );

    for alg in Algorithm::all() {
        let mut per_eps: Vec<Vec<f64>> = vec![Vec::new(); config.error_grid.len()];
        let mut burn_costs = Vec::new();
        for run_idx in 0..config.runs {
            let start = NodeId(seed_rng.gen_range(0..graph.num_nodes() as u32));
            let seed = config
                .seed
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(run_idx as u64 * 101 + alg.label().len() as u64);
            let mut walker = alg
                .build(service.clone(), start, seed)
                .expect("walker construction cannot fail on a valid start");
            let protocol = RunProtocol {
                geweke_threshold: config.geweke_threshold,
                max_burn_in_steps: config.max_burn_in_steps,
                sample_steps: config.sample_steps,
            };
            let run = run_converged(walker.as_mut(), &service, Aggregate::AverageDegree, protocol)
                .expect("simulated interface cannot fail");
            burn_costs.push(run.burn_in_cost as f64);
            for (i, &eps) in config.error_grid.iter().enumerate() {
                let cost = run.cost_to_reach(eps, truth).unwrap_or(run.total_cost);
                per_eps[i].push(cost as f64);
            }
        }
        let points: Vec<(f64, f64)> = config
            .error_grid
            .iter()
            .enumerate()
            .map(|(i, &eps)| (eps, mean(&per_eps[i])))
            .collect();
        table.push_row(vec![
            alg.label().into(),
            fmt(points.first().map(|p| p.1).unwrap_or(0.0)),
            fmt(points[points.len() / 2].1),
            fmt(points.last().map(|p| p.1).unwrap_or(0.0)),
            fmt(mean(&burn_costs)),
        ]);
        report.series.push(Series {
            label: format!("{} query cost vs rel. error", alg.label()),
            points: points.clone(),
        });
        curves.push(Fig7Curve { algorithm: alg, points });
    }
    report.tables.push(table);
    (curves, report)
}

/// Runs Fig 7 over all three datasets.
pub fn run_all(config: &Fig7Config) -> Vec<(Vec<Fig7Curve>, ExperimentReport)> {
    DatasetSpec::table1().iter().map(|spec| run_dataset(spec, config)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduced_fig7_on_epinions_has_four_curves() {
        let config = Fig7Config { runs: 3, ..Fig7Config::reduced() };
        let (curves, report) = run_dataset(&DatasetSpec::epinions(), &config);
        assert_eq!(curves.len(), 4);
        for c in &curves {
            assert_eq!(c.points.len(), 3);
            for &(eps, cost) in &c.points {
                assert!(eps > 0.0 && cost > 0.0, "{}: ({eps}, {cost})", c.algorithm.label());
            }
        }
        assert!(report.to_markdown().contains("Fig 7"));
    }

    #[test]
    fn costs_decrease_as_error_tolerance_loosens() {
        // Within a curve, reaching ε=0.2 can never cost more than ε=0.1
        // on the same runs (cost_to_reach is monotone in ε per run, and
        // the mean preserves it).
        let config = Fig7Config { runs: 3, ..Fig7Config::reduced() };
        let (curves, _) = run_dataset(&DatasetSpec::epinions(), &config);
        for c in &curves {
            let first = c.points.first().unwrap().1;
            let last = c.points.last().unwrap().1;
            assert!(
                last <= first + 1e-9,
                "{}: cost at loose ε ({last}) above tight ε ({first})",
                c.algorithm.label()
            );
        }
    }

    #[test]
    fn mto_is_query_competitive_at_reduced_scale() {
        // Rankings at 1/40 scale with 4 runs are sampling noise (the
        // full-scale run in EXPERIMENTS.md is where MTO's advantage over
        // SRW shows); here we pin the structural claim that MTO's query
        // cost stays within a small factor of the best baseline.
        let config = Fig7Config { runs: 4, ..Fig7Config::reduced() };
        let (curves, _) = run_dataset(&DatasetSpec::epinions(), &config);
        let cost = |alg: Algorithm| -> f64 {
            curves.iter().find(|c| c.algorithm == alg).unwrap().points[0].1
        };
        let best_baseline =
            cost(Algorithm::Srw).min(cost(Algorithm::Mhrw)).min(cost(Algorithm::Rj));
        assert!(
            cost(Algorithm::Mto) < best_baseline * 4.0,
            "MTO {} vs best baseline {best_baseline}",
            cost(Algorithm::Mto)
        );
    }
}
