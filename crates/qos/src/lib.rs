//! # mto-qos — deadline-aware admission control and the fleet budget
//! ledger
//!
//! The stack below this crate knows how to *spend* well: one process
//! shares a cache (`mto-serve`), a fleet gossips history (`mto-fleet`
//! sits above), and the network layer prices every query in virtual
//! time (`mto-net`). What nothing decides is **which work deserves the
//! budget**. This crate is that brain — the QoS layer between sessions
//! and the fleet (DAG position: `mto-serve ← mto-qos ← mto-fleet`):
//!
//! * [`predictor::CostPredictor`] — predicts a job's remaining
//!   unique-query bill and virtual-time cost from its walker config and
//!   the warm [`mto_serve::HistoryStore`]'s coverage of its frontier
//!   (history predicts cost, arXiv:1505.00079; time is the real bill,
//!   arXiv:1410.7833), calibrated online as quanta complete, with a
//!   monotone guarantee: more warm history never raises a prediction;
//! * [`admission::AdmissionController`] + [`admission::DeadlinePolicy`]
//!   — deterministically admits / defers / rejects jobs against their
//!   deadlines and a fleet budget, claiming budget in deadline order;
//! * [`planner::plan_epoch`] — earliest-deadline-first-with-aging
//!   allocation of each lockstep epoch's step capacity, computed
//!   centrally from shard-invariant state (the fleet-side face of
//!   [`mto_serve::scheduler::SchedulePolicy::EarliestDeadlineFirst`]);
//! * [`ledger::BudgetLedger`] — the resolution of the `budget` +
//!   `shards` rejection: the fleet-wide unique-query budget is split at
//!   admission proportional to predicted cost, spent per job against
//!   shard-invariant unique demand, and rebalanced deterministically at
//!   epoch barriers (unspent returns to the pool, over-demand is cut
//!   proportionally), so global budgets compose with
//!   `FleetCoordinator` and results stay bit-identical across `W`.
//!
//! ## Example: review, split, rebalance
//!
//! ```
//! use mto_core::mto::MtoConfig;
//! use mto_graph::NodeId;
//! use mto_qos::{AdmissionController, BudgetLedger, CostPredictor, DeadlinePolicy};
//! use mto_serve::session::{AlgoSpec, JobSpec};
//!
//! let jobs: Vec<JobSpec> = (0..3)
//!     .map(|i: u32| JobSpec {
//!         id: format!("job-{i}"),
//!         algo: AlgoSpec::Mto(MtoConfig { seed: i as u64 + 1, ..Default::default() }),
//!         start: NodeId(0),
//!         step_budget: 200,
//!         deadline: (i == 0).then_some(30.0),
//!         ess: None,
//!     })
//!     .collect();
//! let predictor = CostPredictor::new(Some(1000));
//! let controller = AdmissionController::new(DeadlinePolicy::Optimistic);
//! let decisions = controller.review(&predictor, &jobs, None, Some(500));
//! let predicted: Vec<u64> = decisions.iter().map(|d| d.predicted_queries).collect();
//!
//! let mut ledger = BudgetLedger::split(500, &predicted);
//! assert!(ledger.conserves());
//! ledger.charge(0, 40);
//! let outcome = ledger.rebalance(&[0], &[(1, 25)]);
//! assert!(ledger.conserves(), "split + rebalance never mint or leak budget");
//! assert!(outcome.reclaimed > 0);
//! ```

#![warn(missing_docs)]

pub mod admission;
pub mod ledger;
pub mod planner;
pub mod predictor;

pub use admission::{AdmissionController, AdmissionDecision, AdmissionVerdict, DeadlinePolicy};
pub use ledger::{BudgetLedger, LedgerAccount, RebalanceOutcome};
pub use planner::{plan_epoch, LiveJob, PlannerConfig};
pub use predictor::CostPredictor;
