//! History-calibrated cost prediction.
//!
//! The paper bills unique queries and PR 3 priced them in virtual time;
//! this module predicts *both* before a job runs, which is what
//! admission control and the budget ledger key on. Two observations
//! drive the model:
//!
//! * crawl history predicts future cost ("Leveraging History for Faster
//!   Sampling of OSNs", arXiv:1505.00079): a job started over a warm
//!   [`HistoryStore`] only pays for nodes nobody has seen, so the
//!   predicted bill is discounted by the store's **coverage** of the
//!   job's frontier — and the discount is *monotone*: more warm history
//!   never raises a predicted bill;
//! * the real bill is time under quota ("Walk, Not Wait",
//!   arXiv:1410.7833): a predicted query count converts to virtual
//!   seconds at the provider's effective per-query rate — the larger of
//!   its mean service latency and its quota refill interval.
//!
//! Predictions start from per-algorithm priors (unique queries per
//! step) and are **calibrated online**: as quanta complete, callers feed
//! observed `(steps, unique demand)` pairs back through
//! [`CostPredictor::observe`], and the per-algorithm rate converges to
//! the measured discovery rate. Every input is deterministic, so equal
//! observation streams give equal predictions — the property the fleet's
//! cross-`W` determinism contract leans on.

use mto_net::ProviderProfile;
use mto_serve::history::HistoryStore;
use mto_serve::session::JobSpec;

/// Smoothing weight (in steps) of the per-algorithm prior: observations
/// dominate once a job has run a few quanta, but a handful of early
/// steps cannot whipsaw the rate.
const PRIOR_WEIGHT_STEPS: u64 = 64;

/// Per-query virtual seconds assumed when no provider profile is given
/// (the plain 50 ms constant-latency stand-in used across the stack).
const DEFAULT_SECS_PER_QUERY: f64 = 0.05;

/// The prior unique-demand rate (new distinct nodes requested per step)
/// of one walk algorithm on a cold cache. Rewiring and jumping walks
/// touch fresh nodes faster than the lazy baselines.
fn prior_rate(algo: &str) -> f64 {
    match algo {
        "mto" => 0.7,
        "rj" => 0.8,
        "srw" => 0.5,
        "mhrw" => 0.4,
        _ => 0.6,
    }
}

fn algo_slot(algo: &str) -> usize {
    match algo {
        "mto" => 0,
        "srw" => 1,
        "mhrw" => 2,
        "rj" => 3,
        _ => 4,
    }
}

/// Predicts a job's remaining unique-query bill and virtual-time cost
/// from its spec, the warm history, and online calibration.
#[derive(Clone, Debug, PartialEq)]
pub struct CostPredictor {
    /// Published user count of the network (caps every prediction).
    num_users: Option<usize>,
    /// Per-algorithm `(observed steps, observed unique demand)` totals,
    /// indexed by [`algo_slot`].
    observed: [(u64, u64); 5],
    /// Effective virtual seconds per unique query.
    secs_per_query: f64,
}

impl CostPredictor {
    /// A predictor for a network publishing `num_users` accounts (when
    /// known), assuming the default 50 ms provider.
    pub fn new(num_users: Option<usize>) -> Self {
        CostPredictor { num_users, observed: [(0, 0); 5], secs_per_query: DEFAULT_SECS_PER_QUERY }
    }

    /// Prices virtual time against `profile`: the effective per-query
    /// cost is the larger of the mean service latency and the quota
    /// refill interval (overlap hides latency, it cannot mint tokens).
    pub fn with_provider(mut self, profile: &ProviderProfile) -> Self {
        let refill_interval = if profile.policy.refill_per_sec > 0.0 {
            1.0 / profile.policy.refill_per_sec
        } else {
            0.0
        };
        self.secs_per_query = profile.latency.mean().max(refill_interval);
        self
    }

    /// Virtual seconds one unique query is assumed to cost.
    pub fn secs_per_query(&self) -> f64 {
        self.secs_per_query
    }

    /// Feeds back a completed quantum: `steps` walked, `unique_demand`
    /// distinct new nodes requested. Calibration is cumulative and
    /// deterministic — equal observation streams, equal predictions.
    pub fn observe(&mut self, algo: &str, steps: u64, unique_demand: u64) {
        let slot = &mut self.observed[algo_slot(algo)];
        slot.0 += steps;
        slot.1 += unique_demand;
    }

    /// The calibrated unique-demand rate of `algo`: the prior blended
    /// with every observation so far (prior-weighted so early quanta
    /// cannot whipsaw it), clamped to at most one distinct node per
    /// step plus the constant start-node query.
    pub fn rate(&self, algo: &str) -> f64 {
        let (steps, unique) = self.observed[algo_slot(algo)];
        let prior = prior_rate(algo);
        let blended = (prior * PRIOR_WEIGHT_STEPS as f64 + unique as f64)
            / (PRIOR_WEIGHT_STEPS + steps) as f64;
        blended.clamp(0.0, 1.0)
    }

    /// How much of `spec`'s cost the warm `store` already covers, in
    /// `[0, 1]`. The blend of global coverage (fraction of the network
    /// cached) and frontier coverage (the start node's neighborhood,
    /// when cached) — both monotone under adding history, so the
    /// discount never shrinks as the store grows.
    pub fn coverage(&self, spec: &JobSpec, store: Option<&HistoryStore>) -> f64 {
        let Some(store) = store else { return 0.0 };
        let global = match self.num_users.or(store.num_users) {
            Some(n) if n > 0 => (store.num_responses() as f64 / n as f64).min(1.0),
            _ => 0.0,
        };
        // Responses are sorted by node id (export_snapshot, merge, and
        // journal replay all guarantee it), so both lookups are binary.
        let frontier = store
            .cache
            .responses
            .binary_search_by_key(&spec.start, |r| r.user)
            .ok()
            .map(|i| &store.cache.responses[i])
            .map(|r| {
                let cached = r
                    .neighbors
                    .iter()
                    .filter(|v| store.cache.responses.binary_search_by_key(v, |x| &x.user).is_ok())
                    .count();
                (1 + cached) as f64 / (1 + r.neighbors.len()) as f64
            })
            .unwrap_or(0.0);
        global.max(frontier)
    }

    /// The predicted remaining unique-query bill of `steps` more walk
    /// steps of `algo` from `spec`'s position, over `store`.
    /// Monotone: more warm history never raises the prediction.
    pub fn predict_remaining_queries(
        &self,
        spec: &JobSpec,
        remaining_steps: usize,
        store: Option<&HistoryStore>,
    ) -> u64 {
        if remaining_steps == 0 {
            return 0;
        }
        let base = 1.0 + self.rate(spec.algo.name()) * remaining_steps as f64;
        let base = match self.num_users {
            Some(n) => base.min(n as f64),
            None => base,
        };
        (base * (1.0 - self.coverage(spec, store))).ceil() as u64
    }

    /// The predicted total unique-query bill of `spec` run to its full
    /// step budget.
    pub fn predict_queries(&self, spec: &JobSpec, store: Option<&HistoryStore>) -> u64 {
        self.predict_remaining_queries(spec, spec.step_budget, store)
    }

    /// Converts a predicted query count to predicted virtual seconds.
    pub fn predict_secs(&self, queries: u64) -> f64 {
        queries as f64 * self.secs_per_query
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_core::mto::MtoConfig;
    use mto_graph::generators::paper_barbell;
    use mto_graph::NodeId;
    use mto_osn::{CachedClient, OsnService};
    use mto_serve::session::AlgoSpec;

    fn job(steps: usize) -> JobSpec {
        JobSpec {
            id: "p".into(),
            algo: AlgoSpec::Mto(MtoConfig::default()),
            start: NodeId(0),
            step_budget: steps,
            deadline: None,
            ess: None,
        }
    }

    fn store_of(nodes: &[u32]) -> HistoryStore {
        let mut client = CachedClient::new(OsnService::with_defaults(&paper_barbell()));
        for &v in nodes {
            client.query(NodeId(v)).unwrap();
        }
        HistoryStore::from_client(&client)
    }

    #[test]
    fn cold_predictions_scale_with_steps_and_cap_at_the_network() {
        let p = CostPredictor::new(Some(22));
        let small = p.predict_queries(&job(10), None);
        let big = p.predict_queries(&job(100), None);
        assert!(small < big, "{small} vs {big}");
        assert_eq!(p.predict_queries(&job(1_000_000), None), 22, "capped at |V|");
        assert_eq!(p.predict_queries(&job(0), None), 0);
    }

    #[test]
    fn warm_history_discounts_and_never_raises_the_bill() {
        let p = CostPredictor::new(Some(22));
        let cold = p.predict_queries(&job(200), None);
        let half = p.predict_queries(&job(200), Some(&store_of(&[0, 1, 2, 3, 4])));
        let full = p.predict_queries(&job(200), Some(&store_of(&(0..22).collect::<Vec<_>>())));
        assert!(half < cold, "warm {half} must beat cold {cold}");
        assert!(full <= half);
        assert_eq!(full, 0, "a fully crawled network costs nothing new");
    }

    #[test]
    fn frontier_coverage_beats_global_coverage_near_the_start() {
        let p = CostPredictor::new(Some(22));
        // Node 0's full neighborhood cached vs the same *count* of
        // far-away nodes: the frontier job must be predicted cheaper.
        let near = store_of(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let far = store_of(&[11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21]);
        let at_frontier = p.predict_queries(&job(50), Some(&near));
        let elsewhere = p.predict_queries(&job(50), Some(&far));
        assert!(at_frontier < elsewhere, "{at_frontier} vs {elsewhere}");
    }

    #[test]
    fn observation_calibrates_the_rate_deterministically() {
        let mut a = CostPredictor::new(Some(1000));
        let mut b = CostPredictor::new(Some(1000));
        assert!((a.rate("mto") - 0.7).abs() < 1e-12, "prior before any observation");
        for _ in 0..10 {
            a.observe("mto", 100, 10);
            b.observe("mto", 100, 10);
        }
        assert!(a.rate("mto") < 0.2, "observed 0.1 demand/step must pull the rate down");
        assert_eq!(a, b, "equal observation streams, equal predictors");
        a.observe("mto", 10, 10);
        assert!(a.rate("mto") > b.rate("mto"), "high-demand quanta pull it back up");
    }

    #[test]
    fn provider_pricing_uses_the_quota_floor_when_it_dominates() {
        let p = CostPredictor::new(Some(22));
        assert_eq!(p.predict_secs(10), 0.5, "default 50 ms provider");
        let tw = CostPredictor::new(Some(22)).with_provider(&ProviderProfile::twitter());
        // Twitter's 350/hour refill interval (~10.3 s) dwarfs its
        // sub-second latency: quota is the real price of a query.
        assert!(tw.secs_per_query() > 5.0, "got {}", tw.secs_per_query());
        let fb = CostPredictor::new(Some(22)).with_provider(&ProviderProfile::facebook());
        assert!(fb.secs_per_query() < tw.secs_per_query());
    }
}
