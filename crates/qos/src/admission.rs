//! Deterministic admission control over predicted cost.
//!
//! Before a fleet spends a single query, the
//! [`AdmissionController`] reviews every job against two constraints:
//!
//! * **deadline feasibility** — a job asking to finish in `deadline`
//!   virtual seconds whose predicted completion time already exceeds it
//!   is hopeless; [`DeadlinePolicy::Strict`] rejects it outright (fail
//!   fast, spend nothing), [`DeadlinePolicy::Optimistic`] admits it
//!   flagged [`AdmissionVerdict::AtRisk`] (prediction is a model, the
//!   walk may beat it);
//! * **fleet budget** — jobs claim the shared unique-query budget in
//!   deadline order (earliest first, best-effort last, ties by
//!   submission index); jobs whose predicted cost no longer fits are
//!   deferred rather than admitted to be starved mid-walk.
//!
//! Every decision is a pure function of `(jobs, history, budget)` — no
//! clocks, no randomness — so admission commutes with sharding: the
//! fleet can compute it once, before placement, and every `W` sees the
//! same admitted set. That is the first half of how `budget` + `shards`
//! stays bit-identical across `W` (the [`crate::BudgetLedger`] is the
//! second).

use mto_serve::history::HistoryStore;
use mto_serve::session::JobSpec;

use crate::predictor::CostPredictor;

/// How admission treats a job whose predicted completion time already
/// exceeds its deadline.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DeadlinePolicy {
    /// Admit it anyway, flagged [`AdmissionVerdict::AtRisk`] — the
    /// prediction is a model and the walk may beat it.
    #[default]
    Optimistic,
    /// Reject it outright: fail fast and spend nothing on a hopeless
    /// deadline.
    Strict,
}

/// What admission decided for one job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AdmissionVerdict {
    /// Run it.
    Admit,
    /// Run it, but its deadline is predicted unmeetable.
    AtRisk,
    /// Do not run it this round: the fleet budget is already fully
    /// claimed by earlier-deadline work.
    Defer,
    /// Do not run it at all: its deadline is predicted unmeetable under
    /// [`DeadlinePolicy::Strict`].
    Reject,
}

impl AdmissionVerdict {
    /// Whether the job runs.
    pub fn admitted(&self) -> bool {
        matches!(self, AdmissionVerdict::Admit | AdmissionVerdict::AtRisk)
    }

    /// Wire name (`admit` / `at-risk` / `defer` / `reject`).
    pub fn name(&self) -> &'static str {
        match self {
            AdmissionVerdict::Admit => "admit",
            AdmissionVerdict::AtRisk => "at-risk",
            AdmissionVerdict::Defer => "defer",
            AdmissionVerdict::Reject => "reject",
        }
    }
}

/// One job's admission review.
#[derive(Clone, Debug, PartialEq)]
pub struct AdmissionDecision {
    /// Index of the job in the submitted list.
    pub job_index: usize,
    /// The job's id.
    pub id: String,
    /// Predicted unique-query bill at admission time.
    pub predicted_queries: u64,
    /// Predicted completion cost in virtual seconds.
    pub predicted_secs: f64,
    /// The verdict.
    pub verdict: AdmissionVerdict,
    /// Human-readable grounds for a non-`Admit` verdict.
    pub reason: Option<String>,
}

/// Reviews a job list against deadlines and a fleet budget.
#[derive(Clone, Debug)]
pub struct AdmissionController {
    policy: DeadlinePolicy,
}

impl AdmissionController {
    /// A controller under `policy`.
    pub fn new(policy: DeadlinePolicy) -> Self {
        AdmissionController { policy }
    }

    /// Reviews `jobs` (in submission order) over the warm history and an
    /// optional fleet-wide unique-query budget. Decisions come back in
    /// submission order; the review itself claims budget in deadline
    /// order (earliest deadline first, best-effort last, ties by
    /// submission index) so urgent work is never crowded out by
    /// best-effort jobs submitted earlier.
    pub fn review(
        &self,
        predictor: &CostPredictor,
        jobs: &[JobSpec],
        store: Option<&HistoryStore>,
        fleet_budget: Option<u64>,
    ) -> Vec<AdmissionDecision> {
        let mut decisions: Vec<AdmissionDecision> = jobs
            .iter()
            .enumerate()
            .map(|(job_index, spec)| {
                let predicted_queries = predictor.predict_queries(spec, store);
                let predicted_secs = predictor.predict_secs(predicted_queries);
                let (verdict, reason) = match spec.deadline {
                    Some(d) if predicted_secs > d => match self.policy {
                        DeadlinePolicy::Strict => (
                            AdmissionVerdict::Reject,
                            Some(format!(
                                "predicted completion {predicted_secs:.1}s exceeds the \
                                 {d:.1}s deadline"
                            )),
                        ),
                        DeadlinePolicy::Optimistic => (
                            AdmissionVerdict::AtRisk,
                            Some(format!(
                                "predicted completion {predicted_secs:.1}s exceeds the \
                                 {d:.1}s deadline"
                            )),
                        ),
                    },
                    _ => (AdmissionVerdict::Admit, None),
                };
                AdmissionDecision {
                    job_index,
                    id: spec.id.clone(),
                    predicted_queries,
                    predicted_secs,
                    verdict,
                    reason,
                }
            })
            .collect();

        if let Some(budget) = fleet_budget {
            // Budget is claimed in deadline order, ties by index.
            let mut order: Vec<usize> = (0..jobs.len()).collect();
            order.sort_by(|&a, &b| {
                // total_cmp: a NaN deadline (rejected by JobSpec
                // validation, but this is a pub API) must not panic the
                // sort — it orders after every finite deadline.
                let d = |i: usize| jobs[i].deadline.unwrap_or(f64::INFINITY);
                d(a).total_cmp(&d(b)).then(a.cmp(&b))
            });
            let mut claimed: u64 = 0;
            for i in order {
                if !decisions[i].verdict.admitted() {
                    continue;
                }
                if claimed >= budget {
                    decisions[i].verdict = AdmissionVerdict::Defer;
                    decisions[i].reason = Some(format!(
                        "fleet budget {budget} already claimed ({claimed} predicted by \
                         earlier-deadline jobs)"
                    ));
                } else {
                    // Jobs are admitted while predicted demand has not
                    // yet filled the budget; the last admit may claim
                    // past it — the ledger enforces the actual cap, and
                    // a nonzero budget never admits an empty set.
                    claimed = claimed.saturating_add(decisions[i].predicted_queries);
                }
            }
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_core::mto::MtoConfig;
    use mto_core::walk::SrwConfig;
    use mto_graph::NodeId;
    use mto_serve::session::AlgoSpec;

    fn job(id: &str, steps: usize, deadline: Option<f64>) -> JobSpec {
        JobSpec {
            id: id.into(),
            algo: AlgoSpec::Mto(MtoConfig::default()),
            start: NodeId(0),
            step_budget: steps,
            deadline,
            ess: None,
        }
    }

    #[test]
    fn unconstrained_jobs_are_admitted_with_predictions_attached() {
        let controller = AdmissionController::new(DeadlinePolicy::Optimistic);
        let predictor = CostPredictor::new(Some(1000));
        let decisions =
            controller.review(&predictor, &[job("a", 100, None), job("b", 50, None)], None, None);
        assert_eq!(decisions.len(), 2);
        assert!(decisions.iter().all(|d| d.verdict == AdmissionVerdict::Admit));
        assert!(decisions[0].predicted_queries > decisions[1].predicted_queries);
        assert!(decisions[0].predicted_secs > 0.0);
    }

    #[test]
    fn hopeless_deadlines_reject_strictly_or_flag_optimistically() {
        let predictor = CostPredictor::new(Some(100_000));
        // ~7000 predicted queries at 50 ms each ≈ 350 s — a 1 s deadline
        // is hopeless.
        let jobs = vec![job("tight", 10_000, Some(1.0)), job("loose", 10, Some(1e6))];
        let strict =
            AdmissionController::new(DeadlinePolicy::Strict).review(&predictor, &jobs, None, None);
        assert_eq!(strict[0].verdict, AdmissionVerdict::Reject);
        assert!(strict[0].reason.as_deref().unwrap().contains("deadline"));
        assert_eq!(strict[1].verdict, AdmissionVerdict::Admit);
        let optimistic = AdmissionController::new(DeadlinePolicy::Optimistic)
            .review(&predictor, &jobs, None, None);
        assert_eq!(optimistic[0].verdict, AdmissionVerdict::AtRisk);
        assert!(optimistic[0].verdict.admitted(), "at-risk jobs still run");
    }

    #[test]
    fn budget_is_claimed_in_deadline_order_not_submission_order() {
        let predictor = CostPredictor::new(None);
        // Submission order: a best-effort hog first, then a deadline job.
        // The deadline job must claim the budget first; the hog defers.
        let jobs = vec![
            JobSpec {
                id: "hog".into(),
                algo: AlgoSpec::Srw(SrwConfig { seed: 1, lazy: false }),
                start: NodeId(0),
                step_budget: 1000,
                deadline: None,
                ess: None,
            },
            job("urgent", 1000, Some(1e9)),
        ];
        let urgent_cost = predictor.predict_queries(&jobs[1], None);
        let decisions = AdmissionController::new(DeadlinePolicy::Optimistic).review(
            &predictor,
            &jobs,
            None,
            Some(urgent_cost),
        );
        assert_eq!(decisions[1].verdict, AdmissionVerdict::Admit, "deadline job claims first");
        assert_eq!(decisions[0].verdict, AdmissionVerdict::Defer);
        assert!(decisions[0].reason.as_deref().unwrap().contains("budget"));
    }

    #[test]
    fn the_first_claimant_is_admitted_even_over_budget() {
        let predictor = CostPredictor::new(None);
        let decisions = AdmissionController::new(DeadlinePolicy::Optimistic).review(
            &predictor,
            &[job("only", 1000, None)],
            None,
            Some(1),
        );
        assert_eq!(decisions[0].verdict, AdmissionVerdict::Admit, "never admit nothing");
        // …except under an explicit zero budget, which runs nothing.
        let decisions = AdmissionController::new(DeadlinePolicy::Optimistic).review(
            &predictor,
            &[job("only", 1000, None)],
            None,
            Some(0),
        );
        assert_eq!(decisions[0].verdict, AdmissionVerdict::Defer);
    }

    #[test]
    fn admission_fills_the_budget_before_deferring() {
        // Predicted ~22 per job on the 22-user network: a 30-unit budget
        // admits two claimants (0 < 30, 22 < 30) and defers the third
        // (44 ≥ 30) — the ledger, not admission, enforces the exact cap.
        let predictor = CostPredictor::new(Some(22));
        let jobs = vec![job("a", 400, None), job("b", 300, None), job("c", 250, None)];
        let decisions = AdmissionController::new(DeadlinePolicy::Optimistic).review(
            &predictor,
            &jobs,
            None,
            Some(30),
        );
        assert_eq!(decisions[0].verdict, AdmissionVerdict::Admit);
        assert_eq!(decisions[1].verdict, AdmissionVerdict::Admit);
        assert_eq!(decisions[2].verdict, AdmissionVerdict::Defer);
    }

    #[test]
    fn review_is_deterministic() {
        let predictor = CostPredictor::new(Some(500));
        let jobs = vec![job("a", 300, Some(20.0)), job("b", 300, None), job("c", 300, Some(5.0))];
        let controller = AdmissionController::new(DeadlinePolicy::Optimistic);
        let a = controller.review(&predictor, &jobs, None, Some(100));
        let b = controller.review(&predictor, &jobs, None, Some(100));
        assert_eq!(a, b);
    }
}
