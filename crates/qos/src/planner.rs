//! Central EDF-with-aging quantum planning for lockstep fleets.
//!
//! The fleet steps its shards in lockstep epochs. Under the fair
//! round-robin policy every live job advances one quantum per epoch —
//! simple, but a job due in 30 virtual seconds waits behind best-effort
//! bulk work. [`plan_epoch`] reallocates each epoch's *fleet-wide step
//! capacity* (one quantum per live job) by earliest-deadline-first:
//! urgent jobs draw up to [`PlannerConfig::burst_quanta`] quanta per
//! epoch and finish in earlier epochs — at earlier virtual times —
//! while best-effort jobs wait, protected from starvation by aging
//! (a job passed over [`PlannerConfig::aging_epochs`] epochs in a row
//! is served ahead of every deadline next epoch).
//!
//! The plan is computed **centrally from shard-invariant state** (step
//! counts, deadlines, starvation counters — never clocks or shard
//! composition) and ties break by job index, so the same job list gets
//! the same grants at every `W`: scheduling stays inside the fleet's
//! bit-identical determinism contract.

use mto_serve::scheduler::SchedulePolicy;

/// Planner tuning.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PlannerConfig {
    /// The per-job base quantum (steps per epoch under round-robin).
    pub quantum: usize,
    /// Most quanta one job may draw in a single epoch under EDF — the
    /// burst that lets urgent jobs finish early without one job
    /// swallowing a whole epoch.
    pub burst_quanta: usize,
    /// Epochs a runnable job may be passed over before aging promotes
    /// it ahead of every deadline.
    pub aging_epochs: u32,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { quantum: 64, burst_quanta: 2, aging_epochs: 4 }
    }
}

/// One live job as the planner sees it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LiveJob {
    /// Steps left in the job's budget.
    pub remaining_steps: usize,
    /// The job's deadline in virtual seconds (`None` = best-effort).
    pub deadline: Option<f64>,
    /// Consecutive epochs this job was runnable but granted nothing.
    pub starved_epochs: u32,
    /// Whether the job is suspended (ledger exhausted) and must not be
    /// granted steps this epoch.
    pub suspended: bool,
}

impl LiveJob {
    fn runnable(&self) -> bool {
        !self.suspended && self.remaining_steps > 0
    }
}

/// Grants per job (aligned with `jobs`) for one epoch under `policy`.
///
/// * Fair policies grant every runnable job one quantum (lockstep —
///   exactly the pre-QoS fleet behavior).
/// * [`SchedulePolicy::EarliestDeadlineFirst`] pools the same total
///   capacity (`quantum ×` runnable jobs) and deals it out in priority
///   order: aged jobs first (by index), then deadline jobs by
///   `(deadline, index)`, then best-effort jobs by index — each drawing
///   up to `burst_quanta × quantum` steps, bounded by its remaining
///   budget and the capacity left.
pub fn plan_epoch(policy: SchedulePolicy, config: &PlannerConfig, jobs: &[LiveJob]) -> Vec<usize> {
    let quantum = config.quantum.max(1);
    if policy != SchedulePolicy::EarliestDeadlineFirst {
        return jobs
            .iter()
            .map(|j| if j.runnable() { quantum.min(j.remaining_steps) } else { 0 })
            .collect();
    }
    let runnable: Vec<usize> = (0..jobs.len()).filter(|&i| jobs[i].runnable()).collect();
    let mut capacity = quantum.saturating_mul(runnable.len());
    let burst = quantum.saturating_mul(config.burst_quanta.max(1));

    // Priority order: (not aged, deadline with None last, index) — a
    // total order (f64::total_cmp, so even a NaN deadline cannot panic
    // a pub API; it sorts after every finite one), deterministic for
    // any job list.
    let mut order = runnable;
    order.sort_by(|&a, &b| {
        let aged = |i: usize| jobs[i].starved_epochs < config.aging_epochs;
        let d = |i: usize| jobs[i].deadline.unwrap_or(f64::INFINITY);
        aged(a).cmp(&aged(b)).then(d(a).total_cmp(&d(b))).then(a.cmp(&b))
    });

    let mut grants = vec![0usize; jobs.len()];
    for i in order {
        if capacity == 0 {
            break;
        }
        let grant = jobs[i].remaining_steps.min(burst).min(capacity);
        grants[i] = grant;
        capacity -= grant;
    }
    grants
}

#[cfg(test)]
mod tests {
    use super::*;

    fn live(remaining: usize, deadline: Option<f64>) -> LiveJob {
        LiveJob { remaining_steps: remaining, deadline, starved_epochs: 0, suspended: false }
    }

    #[test]
    fn fair_policies_grant_one_quantum_each() {
        let config = PlannerConfig { quantum: 50, ..Default::default() };
        let jobs = vec![live(200, None), live(30, Some(4.0)), live(0, None)];
        for policy in [SchedulePolicy::RoundRobin, SchedulePolicy::BudgetProportional] {
            assert_eq!(
                plan_epoch(policy, &config, &jobs),
                vec![50, 30, 0],
                "lockstep grants, clamped to remaining budgets"
            );
        }
    }

    #[test]
    fn edf_front_loads_deadline_jobs_within_the_same_capacity() {
        let config = PlannerConfig { quantum: 50, burst_quanta: 2, aging_epochs: 4 };
        let jobs =
            vec![live(500, None), live(500, Some(9.0)), live(500, Some(3.0)), live(500, None)];
        let grants = plan_epoch(SchedulePolicy::EarliestDeadlineFirst, &config, &jobs);
        // Capacity 4 × 50 = 200; the two deadline jobs burst to 100
        // each, the best-effort jobs wait.
        assert_eq!(grants, vec![0, 100, 100, 0]);
        assert_eq!(grants.iter().sum::<usize>(), 200, "EDF spends the same capacity");
    }

    #[test]
    fn aging_promotes_starved_best_effort_work() {
        let config = PlannerConfig { quantum: 10, burst_quanta: 2, aging_epochs: 3 };
        let mut jobs = vec![live(500, Some(1.0)), live(500, None)];
        jobs[1].starved_epochs = 3;
        let grants = plan_epoch(SchedulePolicy::EarliestDeadlineFirst, &config, &jobs);
        assert_eq!(grants[1], 20, "the aged job is served first");
        assert_eq!(grants[0], 0, "the deadline job waits one epoch");
    }

    #[test]
    fn suspended_jobs_draw_nothing_and_free_no_capacity() {
        let config = PlannerConfig { quantum: 10, burst_quanta: 4, aging_epochs: 4 };
        let mut jobs = vec![live(500, Some(1.0)), live(500, Some(2.0))];
        jobs[0].suspended = true;
        let grants = plan_epoch(SchedulePolicy::EarliestDeadlineFirst, &config, &jobs);
        assert_eq!(grants[0], 0);
        assert_eq!(grants[1], 10, "capacity is one quantum per *runnable* job");
    }

    #[test]
    fn ties_break_by_job_index_and_grants_clamp_to_remaining() {
        let config = PlannerConfig { quantum: 10, burst_quanta: 2, aging_epochs: 4 };
        let jobs = vec![live(5, Some(2.0)), live(500, Some(2.0))];
        let grants = plan_epoch(SchedulePolicy::EarliestDeadlineFirst, &config, &jobs);
        assert_eq!(grants[0], 5, "earlier index first, clamped to its budget");
        assert_eq!(grants[1], 15, "the rest of the capacity");
    }
}
