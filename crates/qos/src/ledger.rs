//! The fleet-wide unique-query budget ledger.
//!
//! `budget N` + `shards W` used to be rejected: with one live counter
//! shared across shards, *which* job a global budget cuts depends on
//! shard placement and thread timing, and the fleet's bit-identical
//! determinism contract dies. The ledger resolves that open item by
//! making every budget decision a function of **shard-invariant** state:
//!
//! * the budget is **split at admission** across jobs proportional to
//!   their predicted cost (largest-remainder rounding, ties to the
//!   earlier job) — a pure function of the admission-time predictions;
//! * each job **spends against its own slice**, where spend is the
//!   job's *unique demand* (distinct nodes its own walk has requested) —
//!   a pure function of the walk, identical no matter which shard runs
//!   it or who else shares the cache;
//! * at every epoch barrier the ledger **rebalances**: slices released
//!   by finished jobs return to the pool, and the pool is re-granted to
//!   jobs that ran dry, proportional to their predicted remaining
//!   demand (largest remainder again, ties to the earlier job). When
//!   demand exceeds the pool, every claim is cut by the same
//!   proportional rule — never first-come-first-served.
//!
//! Conservation is the load-bearing invariant: **no operation mints or
//! leaks budget** — the pool plus every account's allowance always sums
//! to the initial total (`debug_assert`ed on every mutation, and the
//! `proptest_qos` suite hammers it).

/// One job's slice of the fleet budget.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerAccount {
    /// Budget units currently allocated to the job.
    pub allowance: u64,
    /// Units the job has spent (its unique demand so far). May exceed
    /// the allowance by at most one quantum's discoveries — the
    /// overshoot of the quantum that exhausted it.
    pub spent: u64,
    /// Whether the job has finished and returned its unspent allowance.
    pub released: bool,
}

impl LedgerAccount {
    /// Unspent allowance.
    pub fn remaining(&self) -> u64 {
        self.allowance.saturating_sub(self.spent)
    }

    /// Whether the job has spent its whole slice.
    pub fn exhausted(&self) -> bool {
        self.spent >= self.allowance
    }
}

/// What one [`BudgetLedger::rebalance`] moved.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebalanceOutcome {
    /// Units returned to the pool by released accounts.
    pub reclaimed: u64,
    /// Units granted from the pool to dry accounts.
    pub granted: u64,
    /// Pool balance after the rebalance.
    pub pool: u64,
}

/// A fleet-wide budget split across per-job accounts plus a shared pool.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BudgetLedger {
    total: u64,
    pool: u64,
    accounts: Vec<LedgerAccount>,
}

/// Splits `amount` across `weights` proportionally with largest-remainder
/// rounding (ties to the earlier index), never exceeding `cap[i]` when
/// given. All-zero weights share equally. Returns exactly `amount` in
/// total unless the caps bind first.
fn apportion(amount: u64, weights: &[u64], caps: Option<&[u64]>) -> Vec<u64> {
    let n = weights.len();
    if n == 0 || amount == 0 {
        return vec![0; n];
    }
    let weight_sum: u128 = weights.iter().map(|&w| w as u128).sum();
    let weights: Vec<u128> = if weight_sum == 0 {
        vec![1; n] // equal shares for an all-zero demand vector
    } else {
        weights.iter().map(|&w| w as u128).collect()
    };
    let weight_sum: u128 = weights.iter().sum();
    let mut shares: Vec<u64> = Vec::with_capacity(n);
    let mut remainders: Vec<(u128, usize)> = Vec::with_capacity(n);
    let mut allotted: u64 = 0;
    for (i, &w) in weights.iter().enumerate() {
        let exact = amount as u128 * w;
        let floor = (exact / weight_sum) as u64;
        shares.push(floor);
        allotted += floor;
        remainders.push((exact % weight_sum, i));
    }
    // Largest remainder first; equal remainders go to the earlier job.
    remainders.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut leftover = amount - allotted;
    for &(_, i) in &remainders {
        if leftover == 0 {
            break;
        }
        shares[i] += 1;
        leftover -= 1;
    }
    // Enforce caps, returning the excess by another largest-remainder
    // pass over the uncapped accounts (iterated to a fixed point; each
    // round either places everything or caps at least one more account,
    // so it terminates).
    if let Some(caps) = caps {
        let mut excess: u64 = 0;
        for (s, &c) in shares.iter_mut().zip(caps) {
            if *s > c {
                excess += *s - c;
                *s = c;
            }
        }
        while excess > 0 {
            let open: Vec<usize> =
                (0..n).filter(|&i| shares[i] < caps[i] && weights[i] > 0).collect();
            if open.is_empty() {
                break; // caps bind: the rest stays unplaced
            }
            let mut placed_any = false;
            for &i in &open {
                if excess == 0 {
                    break;
                }
                let headroom = caps[i] - shares[i];
                let take = headroom.min(excess.div_ceil(open.len() as u64)).min(excess);
                if take > 0 {
                    shares[i] += take;
                    excess -= take;
                    placed_any = true;
                }
            }
            if !placed_any {
                break;
            }
        }
    }
    shares
}

impl BudgetLedger {
    /// Splits `total` budget units across jobs proportional to their
    /// `predicted` costs (largest remainder, ties to the earlier job;
    /// all-zero predictions share equally). The whole budget lands in
    /// accounts — the pool starts empty and only fills as jobs release.
    pub fn split(total: u64, predicted: &[u64]) -> Self {
        if predicted.is_empty() {
            // No jobs: the whole budget sits in the pool.
            return BudgetLedger { total, pool: total, accounts: Vec::new() };
        }
        let shares = apportion(total, predicted, None);
        let ledger = BudgetLedger {
            total,
            pool: 0,
            accounts: shares
                .into_iter()
                .map(|allowance| LedgerAccount { allowance, spent: 0, released: false })
                .collect(),
        };
        debug_assert!(ledger.conserves());
        ledger
    }

    /// The initial fleet-wide budget.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Units currently in the shared pool.
    pub fn pool(&self) -> u64 {
        self.pool
    }

    /// Number of accounts.
    pub fn len(&self) -> usize {
        self.accounts.len()
    }

    /// Whether the ledger tracks no accounts.
    pub fn is_empty(&self) -> bool {
        self.accounts.is_empty()
    }

    /// Account `i`'s state.
    pub fn account(&self, i: usize) -> &LedgerAccount {
        &self.accounts[i]
    }

    /// Total units spent across every account — the fleet's ledger bill.
    /// Shard-invariant by construction: spend is per-job unique demand.
    pub fn total_spent(&self) -> u64 {
        self.accounts.iter().map(|a| a.spent).sum()
    }

    /// Records job `i`'s cumulative spend (monotone — a stale lower
    /// reading never rolls an account back). Returns `true` when the
    /// account is now exhausted and the job must suspend until a
    /// rebalance re-grants it.
    pub fn charge(&mut self, i: usize, cumulative_spent: u64) -> bool {
        let account = &mut self.accounts[i];
        account.spent = account.spent.max(cumulative_spent);
        debug_assert!(self.conserves());
        self.accounts[i].exhausted()
    }

    /// Job `i` finished (or was cut): its unspent allowance returns to
    /// the pool. Idempotent. Returns the reclaimed units.
    pub fn release(&mut self, i: usize) -> u64 {
        let account = &mut self.accounts[i];
        if account.released {
            return 0;
        }
        account.released = true;
        let unspent = account.remaining();
        account.allowance -= unspent;
        self.pool += unspent;
        debug_assert!(self.conserves());
        unspent
    }

    /// Epoch-barrier rebalance: releases every account named in
    /// `finished`, then grants the pool to the `claims` —
    /// `(account, predicted additional demand)` pairs — proportional to
    /// their claims with largest-remainder rounding (ties to the earlier
    /// account). When the pool cannot cover the claims, every claim is
    /// cut by the same proportional rule (the fixed over-demand rule);
    /// no account receives more than it claimed.
    pub fn rebalance(&mut self, finished: &[usize], claims: &[(usize, u64)]) -> RebalanceOutcome {
        let mut outcome = RebalanceOutcome::default();
        for &i in finished {
            outcome.reclaimed += self.release(i);
        }
        // Released accounts take no further grants; drop their claims
        // before apportioning so they cannot eat anyone's pool share.
        let claims: Vec<(usize, u64)> =
            claims.iter().copied().filter(|&(i, _)| !self.accounts[i].released).collect();
        let weights: Vec<u64> = claims.iter().map(|&(_, want)| want).collect();
        let grantable = self.pool.min(weights.iter().sum());
        let grants = apportion(grantable, &weights, Some(&weights));
        for (&(i, _), &g) in claims.iter().zip(&grants) {
            if g > 0 {
                self.accounts[i].allowance += g;
                self.pool -= g;
                outcome.granted += g;
            }
        }
        outcome.pool = self.pool;
        debug_assert!(self.conserves());
        outcome
    }

    /// The conservation invariant: pool plus allowances equals the
    /// initial total. (Released accounts keep `allowance == spent`
    /// capped at what they were ever granted.)
    pub fn conserves(&self) -> bool {
        self.pool + self.accounts.iter().map(|a| a.allowance).sum::<u64>() == self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_proportional_exact_and_tie_broken_to_the_earlier_job() {
        let ledger = BudgetLedger::split(100, &[10, 10, 20]);
        assert_eq!(
            (0..3).map(|i| ledger.account(i).allowance).collect::<Vec<_>>(),
            vec![25, 25, 50]
        );
        assert!(ledger.conserves());

        // 10 into three equal claims: 4/3/3, the earlier jobs take the
        // remainder units.
        let ledger = BudgetLedger::split(10, &[5, 5, 5]);
        assert_eq!((0..3).map(|i| ledger.account(i).allowance).collect::<Vec<_>>(), vec![4, 3, 3]);
        assert!(ledger.conserves());

        // All-zero predictions share equally instead of dividing by zero.
        let ledger = BudgetLedger::split(9, &[0, 0, 0]);
        assert_eq!((0..3).map(|i| ledger.account(i).allowance).collect::<Vec<_>>(), vec![3, 3, 3]);
    }

    #[test]
    fn charge_is_monotone_and_flags_exhaustion() {
        let mut ledger = BudgetLedger::split(20, &[1, 1]);
        assert!(!ledger.charge(0, 5));
        assert!(!ledger.charge(0, 3), "stale lower reading cannot roll back");
        assert_eq!(ledger.account(0).spent, 5);
        assert!(ledger.charge(0, 10), "spent == allowance is exhausted");
        assert!(ledger.charge(0, 12), "overshoot stays exhausted");
        assert_eq!(ledger.total_spent(), 12);
        assert!(ledger.conserves());
    }

    #[test]
    fn release_returns_unspent_to_the_pool_idempotently() {
        let mut ledger = BudgetLedger::split(100, &[1, 1]);
        ledger.charge(0, 30);
        assert_eq!(ledger.release(0), 20);
        assert_eq!(ledger.release(0), 0, "idempotent");
        assert_eq!(ledger.pool(), 20);
        assert!(ledger.conserves());
    }

    #[test]
    fn rebalance_grants_claims_and_cuts_over_demand_proportionally() {
        let mut ledger = BudgetLedger::split(90, &[1, 1, 1]);
        // Job 0 finishes having spent 10 of its 30: the pool gets 20.
        ledger.charge(0, 10);
        ledger.charge(1, 30);
        ledger.charge(2, 30);
        let outcome = ledger.rebalance(&[0], &[(1, 30), (2, 10)]);
        assert_eq!(outcome.reclaimed, 20);
        assert_eq!(outcome.granted, 20, "over-demand (40 > 20) is cut, not queued");
        // Proportional cut: 30:10 of 20 → 15 and 5.
        assert_eq!(ledger.account(1).allowance, 45);
        assert_eq!(ledger.account(2).allowance, 35);
        assert_eq!(outcome.pool, 0);
        assert!(ledger.conserves());

        // A pool that covers the claims grants them exactly.
        let mut ledger = BudgetLedger::split(100, &[1, 1]);
        ledger.charge(0, 0);
        let outcome = ledger.rebalance(&[0], &[(1, 30)]);
        assert_eq!(outcome.reclaimed, 50);
        assert_eq!(outcome.granted, 30, "no account receives more than it claimed");
        assert_eq!(outcome.pool, 20);
        assert!(ledger.conserves());
    }

    #[test]
    fn released_accounts_never_receive_grants() {
        let mut ledger = BudgetLedger::split(40, &[1, 1]);
        ledger.release(0);
        let outcome = ledger.rebalance(&[], &[(0, 100), (1, 5)]);
        assert_eq!(ledger.account(0).allowance, 0, "released stays released");
        assert_eq!(outcome.granted, 5, "the live claim is served in full");
        assert!(ledger.conserves());
    }

    #[test]
    fn empty_and_degenerate_ledgers_stay_well_formed() {
        let mut ledger = BudgetLedger::split(0, &[3, 4]);
        assert!(ledger.account(0).exhausted(), "zero budget is born exhausted");
        assert!(ledger.conserves());
        let outcome = ledger.rebalance(&[], &[]);
        assert_eq!(outcome, RebalanceOutcome::default());
        let ledger = BudgetLedger::split(7, &[]);
        assert!(ledger.is_empty());
        assert_eq!(ledger.pool(), 7, "no jobs: the budget sits in the pool");
        assert!(ledger.conserves());
    }
}
