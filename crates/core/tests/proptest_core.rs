//! Property tests for the sampler core: overlay-delta coherence against a
//! shadow graph, criterion boundary behavior, and estimator algebra.

use mto_core::estimate::importance::{importance_estimate, ImportanceEstimator};
use mto_core::rewire::{removal_criterion, removal_criterion_extended, OverlayDelta};
use mto_core::walk::StepSample;
use mto_graph::generators::gnp_graph;
use mto_graph::NodeId;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Clone, Debug)]
enum DeltaOp {
    Remove(u32, u32),
    Add(u32, u32),
}

fn delta_ops(n: u32) -> impl Strategy<Value = DeltaOp> {
    (0..n, 0..n, any::<bool>()).prop_filter_map("no self loops", |(u, v, add)| {
        if u == v {
            None
        } else if add {
            Some(DeltaOp::Add(u, v))
        } else {
            Some(DeltaOp::Remove(u, v))
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The zero-alloc adjustment paths (`adjust_neighbors_into` and
    /// `adjust_neighbors_in_place`) produce exactly the allocating
    /// `adjust_neighbors` result for any (base, delta) pair — the hot
    /// walker loops use them interchangeably.
    #[test]
    fn adjust_into_and_in_place_match_adjust(
        seed in 0u64..500,
        ops in proptest::collection::vec(delta_ops(10), 0..80)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base_graph = gnp_graph(10, 0.4, &mut rng);
        let mut delta = OverlayDelta::new();
        for op in ops {
            match op {
                DeltaOp::Remove(u, v) => { delta.remove_edge(NodeId(u), NodeId(v)); }
                DeltaOp::Add(u, v) => { delta.add_edge(NodeId(u), NodeId(v)); }
            }
        }
        let mut buf = Vec::new();
        for v in base_graph.nodes() {
            let base = base_graph.neighbors(v);
            let reference = delta.adjust_neighbors(v, base);
            delta.adjust_neighbors_into(v, base, &mut buf);
            prop_assert_eq!(&buf, &reference, "adjust_neighbors_into diverged at {}", v);
            let mut in_place = base.to_vec();
            delta.adjust_neighbors_in_place(v, &mut in_place);
            prop_assert_eq!(&in_place, &reference, "adjust_neighbors_in_place diverged at {}", v);
        }
    }

    /// The overlay delta's derived views (adjusted neighbors, adjusted
    /// degree, has_edge) always match a shadow graph maintained by direct
    /// mutation.
    #[test]
    fn overlay_delta_matches_shadow_graph(
        seed in 0u64..500,
        ops in proptest::collection::vec(delta_ops(10), 0..80)
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let base = gnp_graph(10, 0.4, &mut rng);
        let mut shadow = base.clone();
        let mut delta = OverlayDelta::new();
        for op in ops {
            match op {
                DeltaOp::Remove(u, v) => {
                    let (u, v) = (NodeId(u), NodeId(v));
                    if shadow.has_edge(u, v) {
                        delta.remove_edge(u, v);
                        shadow.remove_edge(u, v).unwrap();
                    }
                }
                DeltaOp::Add(u, v) => {
                    let (u, v) = (NodeId(u), NodeId(v));
                    if !shadow.has_edge(u, v) {
                        delta.add_edge(u, v);
                        shadow.add_edge(u, v).unwrap();
                    }
                }
            }
        }
        for v in base.nodes() {
            prop_assert_eq!(
                delta.adjust_neighbors(v, base.neighbors(v)),
                shadow.neighbors(v).to_vec(),
                "neighborhood mismatch at {}", v
            );
            prop_assert_eq!(delta.adjust_degree(v, base.degree(v)), shadow.degree(v));
        }
        for u in base.nodes() {
            for v in base.nodes() {
                if u < v {
                    prop_assert_eq!(
                        delta.has_edge(base.has_edge(u, v), u, v),
                        shadow.has_edge(u, v)
                    );
                }
            }
        }
        // Materialization agrees with the shadow too.
        let materialized = delta.materialize(&base);
        prop_assert_eq!(materialized.num_edges(), shadow.num_edges());
    }

    /// The removal criterion is monotone: more common neighbors can never
    /// turn a removable edge unremovable; higher degrees can never turn
    /// an unremovable edge removable.
    #[test]
    fn criterion_monotonicity(common in 0usize..20, ku in 1usize..30, kv in 1usize..30) {
        if removal_criterion(common, ku, kv) {
            prop_assert!(removal_criterion(common + 1, ku, kv));
        } else {
            prop_assert!(!removal_criterion(common, ku + 1, kv));
            prop_assert!(!removal_criterion(common, ku, kv + 1));
        }
    }

    /// Theorem 5 with an empty N* is literally Theorem 3.
    #[test]
    fn extended_criterion_degenerates(common in 0usize..20, ku in 1usize..30, kv in 1usize..30) {
        prop_assert_eq!(
            removal_criterion_extended(common, &[], ku, kv),
            removal_criterion(common, ku, kv)
        );
    }

    /// Self-normalized importance estimates are invariant under weight
    /// scaling and bounded by the sample values' range.
    #[test]
    fn estimator_scale_invariance_and_bounds(
        data in proptest::collection::vec((0.0f64..100.0, 0.01f64..10.0), 1..50),
        scale in 0.01f64..100.0
    ) {
        let samples: Vec<StepSample> = data
            .iter()
            .map(|&(value, weight)| StepSample { node: NodeId(0), value, weight })
            .collect();
        let scaled: Vec<StepSample> = samples
            .iter()
            .map(|s| StepSample { weight: s.weight * scale, ..*s })
            .collect();
        let a = importance_estimate(&samples).unwrap();
        let b = importance_estimate(&scaled).unwrap();
        prop_assert!((a - b).abs() < 1e-9 * a.abs().max(1.0), "scale variance: {a} vs {b}");
        let min = data.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
        let max = data.iter().map(|p| p.0).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a >= min - 1e-9 && a <= max + 1e-9, "estimate {a} outside [{min}, {max}]");
    }

    /// Feeding the running estimator in any order yields the same result
    /// (it is a pair of sums).
    #[test]
    fn estimator_order_invariance(
        data in proptest::collection::vec((0.0f64..10.0, 0.01f64..5.0), 2..30),
        swap_seed in 0u64..1000
    ) {
        let mut forward = ImportanceEstimator::new();
        for &(v, w) in &data {
            forward.push(v, w);
        }
        let mut shuffled = data.clone();
        let mut rng = StdRng::seed_from_u64(swap_seed);
        use rand::seq::SliceRandom;
        shuffled.shuffle(&mut rng);
        let mut backward = ImportanceEstimator::new();
        for &(v, w) in &shuffled {
            backward.push(v, w);
        }
        let a = forward.estimate().unwrap();
        let b = backward.estimate().unwrap();
        prop_assert!((a - b).abs() < 1e-9);
    }
}

/// Deterministic MTO equivalence: the walk on the overlay is identical to
/// a direct walk whose graph is the materialized overlay, once the overlay
/// is frozen. (Pinned with a concrete case rather than proptest because
/// freezing must be established first.)
#[test]
fn frozen_overlay_walk_matches_direct_walk_distribution() {
    use mto_core::mto::{MtoConfig, MtoSampler};
    use mto_core::walk::Walker;
    use mto_osn::{CachedClient, OsnService};

    let g = mto_graph::generators::barbell_graph(mto_graph::generators::BarbellSpec {
        clique_size: 6,
        bridges: 1,
    });
    let service = OsnService::with_defaults(&g);
    let mut sampler = MtoSampler::new(
        CachedClient::new(service),
        NodeId(0),
        MtoConfig { seed: 42, ..Default::default() },
    )
    .unwrap();
    // Rewire until stable.
    for _ in 0..30_000 {
        sampler.step().unwrap();
    }
    let overlay_before = sampler.overlay().materialize(&g);
    // Count occupancy over a long window.
    let mut visits = vec![0u64; g.num_nodes()];
    let window = 200_000;
    for _ in 0..window {
        visits[sampler.step().unwrap().index()] += 1;
    }
    let overlay_after = sampler.overlay().materialize(&g);
    assert_eq!(
        overlay_before.num_edges(),
        overlay_after.num_edges(),
        "overlay kept changing; cannot compare"
    );
    // Occupancy ≈ overlay stationary distribution.
    let vol = overlay_after.volume() as f64;
    for v in overlay_after.nodes() {
        let expected = overlay_after.degree(v) as f64 / vol;
        let got = visits[v.index()] as f64 / window as f64;
        assert!(
            (got - expected).abs() < 0.3 * expected + 0.01,
            "node {v}: {got:.4} vs {expected:.4}"
        );
    }
}
