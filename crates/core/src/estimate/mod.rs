//! Aggregate estimation from walk samples: self-normalized importance
//! sampling (Section IV-A) over the paper's aggregate functions.

pub mod aggregates;
pub mod importance;

pub use aggregates::Aggregate;
pub use importance::{count_estimate, importance_estimate, relative_error, ImportanceEstimator};
