//! The aggregate functions the paper estimates.
//!
//! Fig 7 estimates the **average degree** of the local datasets; Fig 11
//! adds the **average self-description length** on the Google-Plus-like
//! network. [`Aggregate`] names the supported functions; `evaluate`
//! computes `f(v)` from the cached query response, so evaluating an
//! aggregate for a visited node never costs an extra query.

use mto_osn::QueryResponse;

/// An aggregate function over users.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Aggregate {
    /// `f(v) = k_v` — average degree (Fig 7, Fig 11a/b).
    AverageDegree,
    /// `f(v) = len(self description)` (Fig 11c).
    AverageDescriptionLength,
    /// `f(v) = age`.
    AverageAge,
    /// `f(v) = num posts`.
    AveragePosts,
    /// `f(v) = 1[account is public]` — a proportion, and with known `|V|` a
    /// COUNT.
    PublicProportion,
}

impl Aggregate {
    /// Evaluates the aggregate function on one query response.
    pub fn evaluate(&self, response: &QueryResponse) -> f64 {
        match self {
            Aggregate::AverageDegree => response.neighbors.len() as f64,
            Aggregate::AverageDescriptionLength => response.profile.self_description_len as f64,
            Aggregate::AverageAge => response.profile.age as f64,
            Aggregate::AveragePosts => response.profile.num_posts as f64,
            Aggregate::PublicProportion => {
                if response.profile.is_public {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Report label.
    pub fn label(&self) -> &'static str {
        match self {
            Aggregate::AverageDegree => "average degree",
            Aggregate::AverageDescriptionLength => "average self-description length",
            Aggregate::AverageAge => "average age",
            Aggregate::AveragePosts => "average posts",
            Aggregate::PublicProportion => "public-account proportion",
        }
    }

    /// Ground truth over a full service (evaluation only).
    pub fn ground_truth(&self, service: &mto_osn::OsnService) -> f64 {
        let g = service.ground_truth();
        let profiles = service.ground_truth_profiles();
        let n = g.num_nodes() as f64;
        match self {
            Aggregate::AverageDegree => g.volume() as f64 / n,
            Aggregate::AverageDescriptionLength => {
                profiles.iter().map(|p| p.self_description_len as f64).sum::<f64>() / n
            }
            Aggregate::AverageAge => profiles.iter().map(|p| p.age as f64).sum::<f64>() / n,
            Aggregate::AveragePosts => profiles.iter().map(|p| p.num_posts as f64).sum::<f64>() / n,
            Aggregate::PublicProportion => {
                profiles.iter().filter(|p| p.is_public).count() as f64 / n
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;
    use mto_graph::NodeId;
    use mto_osn::{OsnService, SocialNetworkInterface, UserProfile};

    fn response(deg: usize, profile: UserProfile) -> QueryResponse {
        QueryResponse {
            user: NodeId(0),
            neighbors: (1..=deg as u32).map(NodeId).collect(),
            profile,
        }
    }

    fn profile() -> UserProfile {
        UserProfile { age: 40, self_description_len: 120, num_posts: 7, is_public: false }
    }

    #[test]
    fn evaluate_each_aggregate() {
        let r = response(5, profile());
        assert_eq!(Aggregate::AverageDegree.evaluate(&r), 5.0);
        assert_eq!(Aggregate::AverageDescriptionLength.evaluate(&r), 120.0);
        assert_eq!(Aggregate::AverageAge.evaluate(&r), 40.0);
        assert_eq!(Aggregate::AveragePosts.evaluate(&r), 7.0);
        assert_eq!(Aggregate::PublicProportion.evaluate(&r), 0.0);
    }

    #[test]
    fn labels_are_distinct() {
        let labels = [
            Aggregate::AverageDegree.label(),
            Aggregate::AverageDescriptionLength.label(),
            Aggregate::AverageAge.label(),
            Aggregate::AveragePosts.label(),
            Aggregate::PublicProportion.label(),
        ];
        let unique: std::collections::HashSet<_> = labels.iter().collect();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn ground_truth_average_degree_matches_topology() {
        let service = OsnService::with_defaults(&paper_barbell());
        let truth = Aggregate::AverageDegree.ground_truth(&service);
        assert!((truth - 222.0 / 22.0).abs() < 1e-12);
    }

    #[test]
    fn ground_truth_matches_manual_scan() {
        let service = OsnService::with_defaults(&paper_barbell());
        let by_scan: f64 =
            (0..22u32).map(|v| service.query(NodeId(v)).unwrap().profile.age as f64).sum::<f64>()
                / 22.0;
        let truth = Aggregate::AverageAge.ground_truth(&service);
        assert!((truth - by_scan).abs() < 1e-12);
    }

    #[test]
    fn proportion_is_within_unit_interval() {
        let service = OsnService::with_defaults(&paper_barbell());
        let p = Aggregate::PublicProportion.ground_truth(&service);
        assert!((0.0..=1.0).contains(&p));
    }
}
