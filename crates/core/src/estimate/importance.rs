//! Self-normalized importance sampling (Section IV-A).
//!
//! Given samples `x_i` from a walk with stationary distribution `τ` and
//! importance weights `w(x_i) ∝ π(x_i)/τ(x_i)` (for the uniform target
//! `π`, `w ∝ 1/τ`), the aggregate estimate is
//!
//! ```text
//! Â(f) = Σ f(x_i) w(x_i) / Σ w(x_i)
//! ```
//!
//! Self-normalization means weights only need to be known up to a constant
//! — exactly what the walkers provide (`1/k_v`, `1/k*_v`, or `1`).

use crate::walk::walker::StepSample;

/// A running importance-sampling estimator: feed `(value, weight)` pairs,
/// read the estimate at any time. Constant memory, so million-step walks
/// can track a running estimate per query budget.
#[derive(Clone, Copy, Debug, Default)]
pub struct ImportanceEstimator {
    weighted_sum: f64,
    weight_sum: f64,
    count: u64,
}

impl ImportanceEstimator {
    /// Fresh estimator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one observation.
    ///
    /// # Panics
    /// Panics on non-finite or negative weights — these always indicate an
    /// upstream bug, and silently absorbing them poisons the estimate.
    pub fn push(&mut self, value: f64, weight: f64) {
        assert!(weight.is_finite() && weight >= 0.0, "invalid importance weight {weight}");
        assert!(value.is_finite(), "invalid sample value {value}");
        self.weighted_sum += value * weight;
        self.weight_sum += weight;
        self.count += 1;
    }

    /// Feeds a recorded step sample.
    pub fn push_sample(&mut self, s: &StepSample) {
        self.push(s.value, s.weight);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The self-normalized estimate, or `None` before any mass arrived.
    pub fn estimate(&self) -> Option<f64> {
        (self.weight_sum > 0.0).then(|| self.weighted_sum / self.weight_sum)
    }

    /// Effective sample size `(Σw)² / Σw²` is not computable from the two
    /// running sums alone; this returns the plain count. Kept for clarity
    /// at call sites that want "how much data".
    pub fn observations(&self) -> u64 {
        self.count
    }
}

/// One-shot estimate from a slice of samples.
pub fn importance_estimate(samples: &[StepSample]) -> Option<f64> {
    let mut est = ImportanceEstimator::new();
    for s in samples {
        est.push_sample(s);
    }
    est.estimate()
}

/// Estimate of a COUNT aggregate (`Σ_v 1[pred(v)]`) from uniform-target
/// samples plus the provider-published total `|V|` — the paper notes COUNT
/// and SUM become available exactly when `|V|` is public.
pub fn count_estimate(samples: &[StepSample], total_users: usize) -> Option<f64> {
    importance_estimate(samples).map(|mean| mean * total_users as f64)
}

/// Relative error `|estimate − truth| / |truth|`.
///
/// # Panics
/// Panics when `truth == 0`; callers must use absolute error there.
pub fn relative_error(estimate: f64, truth: f64) -> f64 {
    assert!(truth != 0.0, "relative error undefined for zero ground truth");
    (estimate - truth).abs() / truth.abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::NodeId;

    fn s(value: f64, weight: f64) -> StepSample {
        StepSample { node: NodeId(0), value, weight }
    }

    #[test]
    fn uniform_weights_reduce_to_plain_mean() {
        let samples = vec![s(1.0, 1.0), s(2.0, 1.0), s(6.0, 1.0)];
        assert!((importance_estimate(&samples).unwrap() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn weights_rebalance_biased_samples() {
        // Two nodes with degrees 1 and 9; degree-proportional sampling sees
        // the hub 9x as often. Values: hub=10, leaf=20; true mean = 15.
        // Simulate the stationary visit pattern: 9 hub visits, 1 leaf.
        let mut samples = Vec::new();
        for _ in 0..9 {
            samples.push(s(10.0, 1.0 / 9.0));
        }
        samples.push(s(20.0, 1.0 / 1.0));
        let est = importance_estimate(&samples).unwrap();
        assert!((est - 15.0).abs() < 1e-12, "got {est}");
    }

    #[test]
    fn unweighted_estimate_of_same_data_is_biased() {
        let mut samples = Vec::new();
        for _ in 0..9 {
            samples.push(s(10.0, 1.0));
        }
        samples.push(s(20.0, 1.0));
        let biased = importance_estimate(&samples).unwrap();
        assert!((biased - 11.0).abs() < 1e-12, "plain mean is degree-biased");
    }

    #[test]
    fn running_estimator_matches_one_shot() {
        let samples = vec![s(3.0, 0.5), s(7.0, 0.25), s(1.0, 2.0)];
        let mut run = ImportanceEstimator::new();
        for x in &samples {
            run.push_sample(x);
        }
        assert_eq!(run.estimate(), importance_estimate(&samples));
        assert_eq!(run.count(), 3);
    }

    #[test]
    fn empty_input_yields_none() {
        assert_eq!(importance_estimate(&[]), None);
        assert_eq!(ImportanceEstimator::new().estimate(), None);
    }

    #[test]
    fn zero_weights_only_yields_none() {
        let samples = vec![s(5.0, 0.0)];
        assert_eq!(importance_estimate(&samples), None);
    }

    #[test]
    fn count_estimate_scales_by_population() {
        // Indicator aggregate: 40% of uniform samples satisfy the predicate.
        let samples: Vec<StepSample> =
            (0..10).map(|i| s(if i < 4 { 1.0 } else { 0.0 }, 1.0)).collect();
        let c = count_estimate(&samples, 1000).unwrap();
        assert!((c - 400.0).abs() < 1e-9);
    }

    #[test]
    fn relative_error_basic() {
        assert!((relative_error(11.0, 10.0) - 0.1).abs() < 1e-12);
        assert!((relative_error(9.0, 10.0) - 0.1).abs() < 1e-12);
        assert_eq!(relative_error(10.0, 10.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid importance weight")]
    fn rejects_negative_weight() {
        ImportanceEstimator::new().push(1.0, -0.5);
    }

    #[test]
    #[should_panic(expected = "invalid importance weight")]
    fn rejects_nan_weight() {
        ImportanceEstimator::new().push(1.0, f64::NAN);
    }

    #[test]
    #[should_panic(expected = "zero ground truth")]
    fn relative_error_rejects_zero_truth() {
        let _ = relative_error(1.0, 0.0);
    }
}
