//! Batched RNG for the walker hot path.
//!
//! Every walker draw (`gen_range`, `gen_bool`, `gen::<f64>`) consumes
//! exactly one `next_u64` from the vendored generator, so the per-draw
//! cost is dominated by the xoshiro state update and the call overhead —
//! not by any buffering the generator could do internally. [`RngBlock`]
//! amortizes that overhead: it pre-draws a fixed block of raw `u64`s and
//! serves subsequent draws from the buffer, refilling only when the block
//! is exhausted.
//!
//! **Determinism contract:** the emitted stream is *bit-identical* to
//! calling the wrapped generator draw-by-draw. Refilling pulls words in
//! the exact order a call-by-call client would have drawn them, so every
//! walker remains a pure function of `(config, seed, responses)` and all
//! committed run digests are unchanged. The regression tests below pin
//! this equivalence.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Number of raw `u64` draws buffered per refill.
const BLOCK: usize = 64;

/// A block-buffered wrapper around [`StdRng`] that emits the identical
/// `u64` stream with fewer per-draw function calls.
#[derive(Clone, Debug)]
pub struct RngBlock {
    inner: StdRng,
    buf: [u64; BLOCK],
    pos: usize,
}

impl RngBlock {
    /// Seeds the underlying generator exactly like
    /// [`StdRng::seed_from_u64`]; the first refill happens lazily on the
    /// first draw.
    pub fn seed_from_u64(seed: u64) -> Self {
        RngBlock { inner: StdRng::seed_from_u64(seed), buf: [0; BLOCK], pos: BLOCK }
    }

    #[cold]
    fn refill(&mut self) {
        for word in &mut self.buf {
            *word = self.inner.next_u64();
        }
        self.pos = 0;
    }
}

impl RngCore for RngBlock {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        if self.pos == BLOCK {
            self.refill();
        }
        // Masked index: `pos < BLOCK` holds here, and the mask lets the
        // compiler drop the bounds check (BLOCK is a power of two).
        let word = self.buf[self.pos & (BLOCK - 1)];
        self.pos += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn raw_stream_is_bit_identical_to_call_by_call() {
        let mut direct = StdRng::seed_from_u64(0xD16E57);
        let mut block = RngBlock::seed_from_u64(0xD16E57);
        // Cross several refill boundaries.
        for i in 0..(BLOCK * 5 + 7) {
            assert_eq!(direct.next_u64(), block.next_u64(), "draw {i} diverged");
        }
    }

    #[test]
    fn high_level_draws_are_bit_identical() {
        let mut direct = StdRng::seed_from_u64(42);
        let mut block = RngBlock::seed_from_u64(42);
        for _ in 0..BLOCK * 3 {
            assert_eq!(direct.gen_range(0..97usize), block.gen_range(0..97usize));
            assert_eq!(direct.gen::<f64>().to_bits(), block.gen::<f64>().to_bits());
            assert_eq!(direct.gen_bool(0.5), block.gen_bool(0.5));
        }
    }

    #[test]
    fn interleaved_draw_shapes_stay_aligned() {
        // Mixing draw kinds must not desynchronize the buffered stream:
        // every shape consumes exactly one buffered word.
        let mut direct = StdRng::seed_from_u64(7);
        let mut block = RngBlock::seed_from_u64(7);
        for i in 0..BLOCK * 2 {
            match i % 3 {
                0 => assert_eq!(direct.gen_range(0..=i), block.gen_range(0..=i)),
                1 => assert_eq!(direct.gen_bool(0.25), block.gen_bool(0.25)),
                _ => assert_eq!(direct.next_u64(), block.next_u64()),
            }
        }
    }
}
