//! The Geweke convergence indicator (Section V-A.3, Eq. 14).
//!
//! Given the series of a node attribute `θ` along the walk (degree by
//! default), form window `A` = first 10% and window `B` = last 50%; the
//! statistic
//!
//! ```text
//! Z = |θ̄_A − θ̄_B| / sqrt(S_A + S_B)
//! ```
//!
//! tends to 0 as the walk converges. The paper declares convergence at
//! `Z ≤ 0.1` by default and sweeps the threshold in Fig 9.

/// Window fractions of the paper's Geweke variant.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GewekeConfig {
    /// Leading fraction forming window A (paper: 0.1).
    pub first_fraction: f64,
    /// Trailing fraction forming window B (paper: 0.5).
    pub last_fraction: f64,
}

impl Default for GewekeConfig {
    fn default() -> Self {
        GewekeConfig { first_fraction: 0.1, last_fraction: 0.5 }
    }
}

/// Computes the Geweke Z statistic of a series, or `None` when either
/// window would be empty or both windows are constant (zero variance with
/// equal means ⇒ converged trivially; zero variance with distinct means ⇒
/// `Some(f64::INFINITY)`).
pub fn geweke_z(series: &[f64], config: GewekeConfig) -> Option<f64> {
    assert!(
        config.first_fraction > 0.0
            && config.last_fraction > 0.0
            && config.first_fraction + config.last_fraction <= 1.0,
        "window fractions must be positive and sum to at most 1"
    );
    let n = series.len();
    let a_len = (n as f64 * config.first_fraction).floor() as usize;
    let b_len = (n as f64 * config.last_fraction).floor() as usize;
    if a_len == 0 || b_len == 0 {
        return None;
    }
    let a = &series[..a_len];
    let b = &series[n - b_len..];
    let (mean_a, var_a) = mean_and_variance(a);
    let (mean_b, var_b) = mean_and_variance(b);
    let denom = (var_a + var_b).sqrt();
    let num = (mean_a - mean_b).abs();
    if denom == 0.0 {
        return Some(if num == 0.0 { 0.0 } else { f64::INFINITY });
    }
    Some(num / denom)
}

fn mean_and_variance(xs: &[f64]) -> (f64, f64) {
    let n = xs.len() as f64;
    let mean = xs.iter().sum::<f64>() / n;
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

/// Whether the series passes the Geweke test at `threshold`.
pub fn geweke_converged(series: &[f64], threshold: f64, config: GewekeConfig) -> bool {
    matches!(geweke_z(series, config), Some(z) if z <= threshold)
}

/// Incremental convergence monitor: push attribute values step by step,
/// poll for convergence every `check_interval` pushes. Used by the
/// experiment drivers so a converged walk stops issuing queries.
///
/// Since the quality plane landed, the monitor no longer grows an
/// unbounded `Vec<f64>` with the walk: storage is a
/// [`mto_obs::quality::GewekeStream`] window (kept prefix + ring of the
/// most recent samples), so memory stays O(1) for arbitrarily long
/// walks. While the whole series fits the window — the case for every
/// experiment protocol in this repo — the statistic is **bit-identical**
/// to the historical full-series computation, because [`geweke_z`] is
/// evaluated with the same summation order on the retained window.
#[derive(Clone, Debug)]
pub struct GewekeMonitor {
    window: mto_obs::quality::GewekeStream,
    threshold: f64,
    config: GewekeConfig,
    check_interval: usize,
    min_samples: usize,
    converged_at: Option<usize>,
}

impl GewekeMonitor {
    /// Creates a monitor declaring convergence at `threshold`.
    pub fn new(threshold: f64) -> Self {
        GewekeMonitor {
            window: mto_obs::quality::GewekeStream::new(),
            threshold,
            config: GewekeConfig::default(),
            check_interval: 50,
            min_samples: 100,
            converged_at: None,
        }
    }

    /// Overrides the retained-window capacities (kept prefix, recent
    /// ring). Smaller windows bound memory tighter; results stay
    /// bit-identical to the full series as long as it fits.
    pub fn with_window(mut self, first_capacity: usize, last_capacity: usize) -> Self {
        self.window = mto_obs::quality::GewekeStream::with_capacity(first_capacity, last_capacity);
        self
    }

    /// Overrides the minimum series length before convergence may fire.
    pub fn with_min_samples(mut self, min: usize) -> Self {
        self.min_samples = min;
        self
    }

    /// Overrides how often the statistic is recomputed.
    pub fn with_check_interval(mut self, every: usize) -> Self {
        self.check_interval = every.max(1);
        self
    }

    /// Feeds one observation; returns `true` once converged (latched).
    pub fn push(&mut self, value: f64) -> bool {
        self.window.push(value);
        if self.converged_at.is_some() {
            return true;
        }
        let n = self.window.seen() as usize;
        if n >= self.min_samples
            && n % self.check_interval == 0
            && geweke_converged(&self.window.retained(), self.threshold, self.config)
        {
            self.converged_at = Some(n);
            return true;
        }
        false
    }

    /// The step index at which convergence latched, if it has.
    pub fn converged_at(&self) -> Option<usize> {
        self.converged_at
    }

    /// Observations fed so far (retained or windowed out).
    pub fn seen(&self) -> usize {
        self.window.seen() as usize
    }

    /// The retained window, in arrival order: the full series while it
    /// fits the window capacities, the kept ends of it afterwards.
    pub fn retained(&self) -> Vec<f64> {
        self.window.retained()
    }

    /// Current Z value (recomputed on demand over the retained window).
    pub fn current_z(&self) -> Option<f64> {
        geweke_z(&self.window.retained(), self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn stationary_series_converges() {
        let mut rng = StdRng::seed_from_u64(5);
        let series: Vec<f64> = (0..2000).map(|_| rng.gen_range(0.0..1.0)).collect();
        let z = geweke_z(&series, GewekeConfig::default()).unwrap();
        assert!(z < 0.1, "iid series must look converged, z = {z}");
    }

    #[test]
    fn drifting_series_does_not_converge() {
        // Strong upward trend: window means differ by far more than the
        // within-window spread.
        let series: Vec<f64> = (0..2000).map(|i| i as f64).collect();
        let z = geweke_z(&series, GewekeConfig::default()).unwrap();
        assert!(z > 1.0, "trending series must fail, z = {z}");
    }

    #[test]
    fn burn_in_prefix_raises_z() {
        // A walk stuck at value 100 for the first 10% then mixing around 0.
        let mut rng = StdRng::seed_from_u64(9);
        let mut series = vec![100.0; 150];
        series.extend((0..1350).map(|_| rng.gen_range(-1.0..1.0)));
        let z = geweke_z(&series, GewekeConfig::default()).unwrap();
        assert!(z > 0.5, "unforgotten initial state must be detected, z = {z}");
    }

    #[test]
    fn constant_series_is_trivially_converged() {
        let series = vec![3.0; 500];
        assert_eq!(geweke_z(&series, GewekeConfig::default()), Some(0.0));
        assert!(geweke_converged(&series, 0.01, GewekeConfig::default()));
    }

    #[test]
    fn constant_but_different_windows_diverge() {
        let mut series = vec![1.0; 100];
        series.extend(vec![2.0; 900]);
        assert_eq!(geweke_z(&series, GewekeConfig::default()), Some(f64::INFINITY));
    }

    #[test]
    fn short_series_yields_none() {
        assert_eq!(geweke_z(&[1.0, 2.0], GewekeConfig::default()), None);
        assert_eq!(geweke_z(&[], GewekeConfig::default()), None);
    }

    #[test]
    fn monitor_latches_on_convergence() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = GewekeMonitor::new(0.1).with_min_samples(200).with_check_interval(10);
        let mut converged = false;
        for _ in 0..2000 {
            converged = m.push(rng.gen_range(0.0..1.0));
            if converged {
                break;
            }
        }
        assert!(converged);
        let at = m.converged_at().unwrap();
        assert!(at >= 200, "must respect min_samples, got {at}");
        // Latched: pushing garbage keeps it converged.
        assert!(m.push(1e9));
    }

    #[test]
    fn monitor_does_not_converge_on_trend() {
        let mut m = GewekeMonitor::new(0.1).with_min_samples(100);
        let mut converged = false;
        for i in 0..3000 {
            converged = m.push(i as f64);
        }
        assert!(!converged);
        assert_eq!(m.converged_at(), None);
        assert_eq!(m.seen(), 3000);
        assert_eq!(m.retained().len(), 3000, "3000 samples fit the default window whole");
    }

    #[test]
    fn windowed_monitor_is_bit_identical_while_the_series_fits() {
        // The satellite contract: the bounded window changes memory, not
        // results — z over the retained window is the exact historical
        // full-series statistic whenever nothing has been dropped.
        let mut rng = StdRng::seed_from_u64(21);
        let series: Vec<f64> = (0..4000).map(|_| rng.gen_range(0.0..50.0)).collect();
        let mut m = GewekeMonitor::new(0.0).with_min_samples(usize::MAX); // never latch
        for &v in &series {
            m.push(v);
        }
        assert_eq!(m.retained(), series);
        let full = geweke_z(&series, GewekeConfig::default()).unwrap();
        assert_eq!(m.current_z().unwrap().to_bits(), full.to_bits());
    }

    #[test]
    fn windowed_monitor_memory_is_bounded() {
        let mut m = GewekeMonitor::new(0.1).with_window(100, 400).with_min_samples(usize::MAX);
        for i in 0..100_000 {
            m.push((i % 17) as f64);
        }
        assert_eq!(m.seen(), 100_000);
        assert_eq!(m.retained().len(), 500, "only the window is retained");
        assert!(m.current_z().is_some(), "the statistic keeps working past the window");
    }

    #[test]
    fn tighter_thresholds_need_longer_series() {
        // AR(1)-ish correlated noise: loose threshold converges earlier.
        let mut rng = StdRng::seed_from_u64(11);
        let mut x = 5.0f64;
        let series: Vec<f64> = (0..20_000)
            .map(|_| {
                x = 0.99 * x + rng.gen_range(-1.0..1.0);
                x
            })
            .collect();
        let at = |threshold: f64| -> Option<usize> {
            let mut m = GewekeMonitor::new(threshold).with_min_samples(100).with_check_interval(20);
            for &v in &series {
                if m.push(v) {
                    break;
                }
            }
            m.converged_at()
        };
        let loose = at(0.8);
        let tight = at(0.05);
        assert!(loose.is_some());
        match (loose, tight) {
            (Some(l), Some(t)) => assert!(l <= t, "loose {l} vs tight {t}"),
            (Some(_), None) => {} // tight never converged: also fine
            _ => panic!("loose threshold must converge"),
        }
    }

    #[test]
    #[should_panic(expected = "window fractions")]
    fn rejects_overlapping_windows() {
        let _ = geweke_z(&[1.0; 100], GewekeConfig { first_fraction: 0.6, last_fraction: 0.6 });
    }
}
