//! Additional convergence distances from the sampling literature: total
//! variation and Kolmogorov–Smirnov, both cited by the paper's Section I-B
//! discussion of convergence measures ("degree distribution distance, KS
//! distance and mean degree error").

/// Total-variation distance `½ Σ |p_i − q_i|` between two distributions
/// over the same support.
///
/// # Panics
/// Panics on length mismatch or non-normalizable inputs.
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    let sp: f64 = p.iter().sum();
    let sq: f64 = q.iter().sum();
    assert!(sp > 0.0 && sq > 0.0, "distributions must have positive mass");
    p.iter().zip(q).map(|(a, b)| (a / sp - b / sq).abs()).sum::<f64>() / 2.0
}

/// Kolmogorov–Smirnov distance between two *empirical samples* of scalar
/// values (e.g. the degree sequences seen by two samplers):
/// `sup_x |F_a(x) − F_b(x)|`.
///
/// # Panics
/// Panics if either sample is empty or contains NaN.
pub fn ks_distance(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS distance needs nonempty samples");
    let mut xa = a.to_vec();
    let mut xb = b.to_vec();
    xa.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    xb.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    let (na, nb) = (xa.len() as f64, xb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < xa.len() && j < xb.len() {
        let x = xa[i].min(xb[j]);
        while i < xa.len() && xa[i] <= x {
            i += 1;
        }
        while j < xb.len() && xb[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// Mean absolute error between the running mean of a series and a
/// reference value — the "mean degree error" trace used to eyeball
/// convergence (Fig 11a's flavor).
pub fn running_mean_error(series: &[f64], reference: f64) -> Vec<f64> {
    let mut out = Vec::with_capacity(series.len());
    let mut sum = 0.0;
    for (i, &x) in series.iter().enumerate() {
        sum += x;
        out.push((sum / (i + 1) as f64 - reference).abs());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tv_identical_is_zero() {
        assert_eq!(total_variation(&[0.5, 0.5], &[0.5, 0.5]), 0.0);
    }

    #[test]
    fn tv_disjoint_is_one() {
        assert!((total_variation(&[1.0, 0.0], &[0.0, 1.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_normalizes_inputs() {
        assert!((total_variation(&[2.0, 0.0], &[0.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_identical_samples() {
        let a = [1.0, 2.0, 3.0];
        assert_eq!(ks_distance(&a, &a), 0.0);
    }

    #[test]
    fn ks_disjoint_samples() {
        let a = [1.0, 2.0];
        let b = [10.0, 20.0];
        assert!((ks_distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_known_half_overlap() {
        // F_a jumps at 1, 2; F_b at 2, 3. At x ∈ [1,2): F_a=0.5, F_b=0 → 0.5.
        let a = [1.0, 2.0];
        let b = [2.0, 3.0];
        assert!((ks_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_different_sizes() {
        let a = [1.0, 1.0, 1.0, 5.0];
        let b = [1.0, 5.0];
        // F_a(1) = 0.75, F_b(1) = 0.5 → 0.25.
        assert!((ks_distance(&a, &b) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn running_mean_error_converges_for_stationary_series() {
        let series: Vec<f64> = (0..1000).map(|i| if i % 2 == 0 { 0.0 } else { 2.0 }).collect();
        let errs = running_mean_error(&series, 1.0);
        assert_eq!(errs.len(), 1000);
        assert!(errs[999] < errs[0]);
        assert!(errs[999] < 0.01);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn ks_rejects_empty() {
        let _ = ks_distance(&[], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn tv_rejects_mismatch() {
        let _ = total_variation(&[1.0], &[0.5, 0.5]);
    }
}
