//! Convergence and bias diagnostics: the Geweke indicator (Eq. 14), the
//! symmetric KL bias measure, and auxiliary distances.

pub mod distance;
pub mod geweke;
pub mod kl;

pub use distance::{ks_distance, running_mean_error, total_variation};
pub use geweke::{geweke_converged, geweke_z, GewekeConfig, GewekeMonitor};
pub use kl::{kl_divergence, symmetric_kl, VisitCounter, DEFAULT_SMOOTHING};
