//! Sampling-bias measurement: the symmetric KL divergence of Section
//! V-A.3.
//!
//! For small graphs the paper runs each sampler "for an extremely long
//! time", estimates the empirical sampling distribution from visit counts,
//! and reports `D_KL(P ‖ P_sam) + D_KL(P_sam ‖ P)` against the ideal
//! distribution `P` (degree-proportional for SRW; for MTO the target is
//! the same `P`, reached via importance reweighting).

use mto_graph::NodeId;

/// Visit-count accumulator over a known node universe.
#[derive(Clone, Debug)]
pub struct VisitCounter {
    counts: Vec<u64>,
    /// Optional per-visit weights (importance-corrected distribution).
    weighted: Vec<f64>,
    total: u64,
    total_weight: f64,
}

impl VisitCounter {
    /// Counter over `n` nodes.
    pub fn new(n: usize) -> Self {
        VisitCounter { counts: vec![0; n], weighted: vec![0.0; n], total: 0, total_weight: 0.0 }
    }

    /// Records a visit with unit weight.
    pub fn record(&mut self, v: NodeId) {
        self.record_weighted(v, 1.0);
    }

    /// Records a visit carrying an importance weight.
    pub fn record_weighted(&mut self, v: NodeId, weight: f64) {
        assert!(weight.is_finite() && weight >= 0.0, "bad weight {weight}");
        self.counts[v.index()] += 1;
        self.weighted[v.index()] += weight;
        self.total += 1;
        self.total_weight += weight;
    }

    /// Total visits recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Raw visit counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// The empirical (unweighted) sampling distribution.
    ///
    /// # Panics
    /// Panics when nothing was recorded.
    pub fn distribution(&self) -> Vec<f64> {
        assert!(self.total > 0, "empty visit counter has no distribution");
        self.counts.iter().map(|&c| c as f64 / self.total as f64).collect()
    }

    /// The importance-weighted sampling distribution.
    ///
    /// # Panics
    /// Panics when total weight is zero.
    pub fn weighted_distribution(&self) -> Vec<f64> {
        assert!(self.total_weight > 0.0, "zero-weight counter has no distribution");
        self.weighted.iter().map(|&w| w / self.total_weight).collect()
    }
}

/// `D_KL(p ‖ q)` with additive smoothing: both distributions are mixed
/// with the uniform distribution at rate `smoothing` so empty cells (nodes
/// the finite run never visited) stay finite. `smoothing = 0` is allowed
/// when `q` has full support wherever `p` does.
///
/// # Panics
/// Panics on length mismatch, negative entries, or non-normalizable input.
pub fn kl_divergence(p: &[f64], q: &[f64], smoothing: f64) -> f64 {
    assert_eq!(p.len(), q.len(), "distribution length mismatch");
    assert!(smoothing >= 0.0, "negative smoothing");
    let n = p.len() as f64;
    let norm = |xs: &[f64]| -> Vec<f64> {
        let sum: f64 = xs.iter().sum();
        assert!(sum > 0.0, "distribution sums to zero");
        xs.iter()
            .map(|&x| {
                assert!(x >= 0.0, "negative probability {x}");
                (x / sum) * (1.0 - smoothing) + smoothing / n
            })
            .collect()
    };
    let ps = norm(p);
    let qs = norm(q);
    let mut kl = 0.0;
    for (pi, qi) in ps.iter().zip(&qs) {
        if *pi > 0.0 {
            assert!(*qi > 0.0, "q has a hole where p has mass; increase smoothing");
            kl += pi * (pi / qi).ln();
        }
    }
    kl.max(0.0) // guard tiny negative from rounding
}

/// The paper's bias measure: `D_KL(P‖P_sam) + D_KL(P_sam‖P)`.
pub fn symmetric_kl(p: &[f64], q: &[f64], smoothing: f64) -> f64 {
    kl_divergence(p, q, smoothing) + kl_divergence(q, p, smoothing)
}

/// Default smoothing used by the experiments (a tenth of a uniform cell).
pub const DEFAULT_SMOOTHING: f64 = 1e-4;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_distributions_have_zero_divergence() {
        let p = vec![0.25, 0.25, 0.5];
        assert_eq!(kl_divergence(&p, &p, 0.0), 0.0);
        assert_eq!(symmetric_kl(&p, &p, 0.0), 0.0);
    }

    #[test]
    fn known_value_two_point() {
        // KL([1,0] || [0.5,0.5]) = ln 2.
        let kl = kl_divergence(&[1.0, 0.0], &[0.5, 0.5], 0.0);
        assert!((kl - std::f64::consts::LN_2).abs() < 1e-12);
    }

    #[test]
    fn divergence_is_positive_for_different_distributions() {
        let p = vec![0.9, 0.1];
        let q = vec![0.1, 0.9];
        assert!(kl_divergence(&p, &q, 0.0) > 0.5);
        let sym = symmetric_kl(&p, &q, 0.0);
        assert!((sym - 2.0 * kl_divergence(&p, &q, 0.0)).abs() < 1e-12, "symmetric case");
    }

    #[test]
    fn symmetric_kl_is_symmetric() {
        let p = vec![0.7, 0.2, 0.1];
        let q = vec![0.3, 0.3, 0.4];
        assert!((symmetric_kl(&p, &q, 1e-6) - symmetric_kl(&q, &p, 1e-6)).abs() < 1e-12);
    }

    #[test]
    fn smoothing_handles_missing_support() {
        let p = vec![0.5, 0.5, 0.0];
        let q = vec![0.0, 0.5, 0.5];
        // Without smoothing this would panic; with it, finite.
        let v = symmetric_kl(&p, &q, 1e-3);
        assert!(v.is_finite() && v > 0.0);
    }

    #[test]
    #[should_panic(expected = "hole")]
    fn zero_smoothing_with_holes_panics() {
        let _ = kl_divergence(&[1.0, 0.0], &[0.0, 1.0], 0.0);
    }

    #[test]
    fn unnormalized_inputs_are_normalized() {
        let p = vec![2.0, 2.0];
        let q = vec![1.0, 1.0];
        assert_eq!(kl_divergence(&p, &q, 0.0), 0.0);
    }

    #[test]
    fn visit_counter_distribution() {
        let mut c = VisitCounter::new(3);
        c.record(NodeId(0));
        c.record(NodeId(0));
        c.record(NodeId(2));
        assert_eq!(c.total(), 3);
        let d = c.distribution();
        assert!((d[0] - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(d[1], 0.0);
        assert!((d[2] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_distribution_rebalances() {
        let mut c = VisitCounter::new(2);
        // Node 0 visited 9x with weight 1/9 (hub), node 1 once with 1.
        for _ in 0..9 {
            c.record_weighted(NodeId(0), 1.0 / 9.0);
        }
        c.record_weighted(NodeId(1), 1.0);
        let d = c.weighted_distribution();
        assert!((d[0] - 0.5).abs() < 1e-12);
        assert!((d[1] - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empty visit counter")]
    fn empty_counter_panics() {
        let _ = VisitCounter::new(2).distribution();
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = kl_divergence(&[1.0], &[0.5, 0.5], 0.0);
    }
}
