//! The MTO-Sampler: a random walk that rewires its own topology on the fly
//! (Algorithm 1).
//!
//! At the current node `u` the walker picks a candidate neighbor `v`
//! uniformly from the *overlay* neighborhood `N*(u)` and queries it. Then:
//!
//! 1. **Removal** (Theorem 3 / Theorem 5): if `e_uv` is provably
//!    non-cross-cutting, delete it from the overlay and pick again —
//!    the walk never traverses a deleted edge.
//! 2. **Replacement** (Theorem 4): if the candidate `v` has overlay degree
//!    exactly 3, then with probability `replace_prob` pick
//!    `w ~ Uniform(N*(v) \ {u})` with `e_uw` absent, rewire
//!    `e_uv → e_uw`, and make `w` the candidate. (The paper's pseudocode
//!    leaves the redirect ambiguous; we follow the interpretation licensed
//!    by Theorem 4 — see DESIGN.md §5.)
//! 3. **Lazy coin**: move to the candidate with probability ½, else stay
//!    (the pseudocode's `rand(0,1) < 1/2`), which keeps the chain
//!    aperiodic.
//!
//! The stationary distribution of the walk is `τ*(v) = k*_v / 2|E*|` over
//! the *overlay*, so importance weights use the overlay degree — with
//! three estimation modes for `k*_v` (see [`OverlayDegreeMode`]).

use mto_graph::NodeId;
use mto_osn::{QueryClient, Result};
use rand::Rng;

use crate::rewire::overlay::OverlayDelta;
use crate::rewire::removal::{is_removable_from_neighborhoods, is_removable_with_history};
use crate::rewire::replacement::{plan_replacement, PIVOT_DEGREE};
use crate::rng::RngBlock;
use crate::walk::walker::Walker;

/// Which neighborhood counts feed the Theorem 3/5 criterion.
///
/// The paper's pseudocode checks "`e_uv` is removable" against the data
/// the web interface returned — the **original** neighborhoods. That is
/// the view that reproduces the running example's numbers
/// (`Φ(G*) ≈ 0.053` on the barbell): intra-clique edges stay removable
/// (9 common neighbors) no matter how many have already been dropped, and
/// the minimum-degree guard is what stops the thinning.
///
/// The **overlay** view re-evaluates the criterion against the rewired
/// topology. It is the conservative reading of Theorem 3 ("not
/// cross-cutting *in the graph being walked*"): removal self-limits as
/// common counts shrink. On the barbell it stalls after roughly a matching
/// (the K₁₁ criterion is margin-1), yielding a much smaller conductance
/// gain. Both views are provided; experiments default to the
/// paper-faithful [`CriterionView::Original`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CriterionView {
    /// Evaluate against the interface's original responses (paper default).
    Original,
    /// Evaluate against the current overlay (conservative).
    Overlay,
}

/// Which rewiring moves the sampler is allowed to make — the ablation axes
/// of Fig 10 (`MTO_RM`, `MTO_RP`, `MTO_Both`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MtoConfig {
    /// Enable Theorem 3 edge removal.
    pub removal: bool,
    /// Enable Theorem 4 edge replacement.
    pub replacement: bool,
    /// Enable the Theorem 5 degree-history extension of the removal
    /// criterion.
    pub extension: bool,
    /// Probability of attempting a replacement when a degree-3 pivot is
    /// encountered.
    pub replace_prob: f64,
    /// Lazy walk (recommended; Algorithm 1's coin).
    pub lazy: bool,
    /// RNG seed.
    pub seed: u64,
    /// Criterion evaluation view (see [`CriterionView`]).
    pub criterion_view: CriterionView,
    /// Never remove an edge that would push either endpoint's overlay
    /// degree below this floor. Keeps the walk un-strandable (≥1) and, at
    /// the default of 2, keeps the overlay inside the cyclic regime the
    /// paper's `G*` figure shows.
    pub min_overlay_degree: usize,
}

impl Default for MtoConfig {
    fn default() -> Self {
        MtoConfig {
            removal: true,
            replacement: true,
            extension: false,
            replace_prob: 0.5,
            lazy: true,
            seed: 1,
            criterion_view: CriterionView::Original,
            min_overlay_degree: 2,
        }
    }
}

impl MtoConfig {
    /// Removal-only ablation (`MTO_RM` in Fig 10).
    pub fn removal_only() -> Self {
        MtoConfig { replacement: false, ..Default::default() }
    }

    /// Replacement-only ablation (`MTO_RP` in Fig 10).
    pub fn replacement_only() -> Self {
        MtoConfig { removal: false, ..Default::default() }
    }

    /// Both moves plus the Theorem 5 extension.
    pub fn with_extension() -> Self {
        MtoConfig { extension: true, ..Default::default() }
    }
}

/// How to obtain `k*_v` for importance weighting (Section IV-A's
/// "probability revision").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OverlayDegreeMode {
    /// Use the overlay degree implied by modifications discovered so far.
    /// Free; slightly biased early, exact in the long run.
    Discovered,
    /// Apply the removal criterion to every incident edge, querying each
    /// neighbor: exact `k*_v` for the *fully-removed* overlay, at a cost
    /// of up to `k_v` extra queries.
    ExactRemoval,
    /// The paper's suggestion: sample `m` incident edges, extrapolate the
    /// removable fraction.
    SampledRemoval(usize),
}

/// Counters describing the rewiring work performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RewireStats {
    /// Edges removed from the overlay.
    pub removals: u64,
    /// Replacements performed (`e_uv → e_uw`).
    pub replacements: u64,
    /// Candidates rejected for replacement (wrong degree or no target).
    pub replacement_rejections: u64,
}

impl std::ops::AddAssign for RewireStats {
    fn add_assign(&mut self, rhs: RewireStats) {
        self.removals += rhs.removals;
        self.replacements += rhs.replacements;
        self.replacement_rejections += rhs.replacement_rejections;
    }
}

/// Always-on hot-path probe: Theorem 3/5 criterion scan effort.
///
/// Kept outside [`RewireStats`] so the session-snapshot codec (which
/// persists and replay-checks the rewiring counters) is untouched: the
/// probe is derived telemetry, recomputed for free by any replay. The
/// per-scan cost is three integer updates — cheap enough to leave on in
/// the hottest path (the `micro/obs` bench group and the `BENCH_7.json`
/// instrumented-vs-disabled comparison keep that claim honest).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScanProbe {
    /// Criterion evaluations (one per candidate edge checked).
    pub criterion_scans: u64,
    /// Total neighbor-list entries walked by those evaluations — the
    /// "eligibility-scan length" bill of the sorted-list intersections.
    pub criterion_scanned: u64,
    /// Longest single scan (`|N(u)| + |N(v)|` of the worst edge).
    pub max_scan: u64,
}

impl ScanProbe {
    /// Records one criterion evaluation that walked `scanned` entries.
    #[inline]
    fn record(&mut self, scanned: u64) {
        self.criterion_scans += 1;
        self.criterion_scanned += scanned;
        self.max_scan = self.max_scan.max(scanned);
    }

    /// Mean entries walked per criterion evaluation.
    pub fn mean_scan(&self) -> f64 {
        if self.criterion_scans == 0 {
            return 0.0;
        }
        self.criterion_scanned as f64 / self.criterion_scans as f64
    }
}

impl std::ops::AddAssign for ScanProbe {
    fn add_assign(&mut self, rhs: ScanProbe) {
        self.criterion_scans += rhs.criterion_scans;
        self.criterion_scanned += rhs.criterion_scanned;
        self.max_scan = self.max_scan.max(rhs.max_scan);
    }
}

/// The MTO sampler.
pub struct MtoSampler<C> {
    client: C,
    overlay: OverlayDelta,
    config: MtoConfig,
    current: NodeId,
    rng: RngBlock,
    history: Vec<NodeId>,
    stats: RewireStats,
    probe: ScanProbe,
    weight_mode: OverlayDegreeMode,
    // Reusable scratch buffers: steady-state stepping fills these in place
    // instead of allocating fresh neighbor lists. Each is mem::take'n out
    // for the duration of the call that uses it (the borrow checker cannot
    // see that `self.client` and a buffer field are disjoint through a
    // `&mut self` method call) and restored afterwards, so capacity is
    // retained across steps.
    buf_u: Vec<NodeId>,
    buf_v: Vec<NodeId>,
    buf_a: Vec<NodeId>,
    buf_b: Vec<NodeId>,
    buf_probe: Vec<NodeId>,
    buf_deg: Vec<NodeId>,
    eligible: Vec<NodeId>,
}

impl<C: QueryClient> MtoSampler<C> {
    /// Starts a sampler at `start` (queried immediately).
    pub fn new(mut client: C, start: NodeId, config: MtoConfig) -> Result<Self> {
        assert!(
            (0.0..=1.0).contains(&config.replace_prob),
            "replace_prob {} outside [0, 1]",
            config.replace_prob
        );
        client.fetch_degree(start)?;
        Ok(MtoSampler {
            client,
            overlay: OverlayDelta::new(),
            config,
            current: start,
            rng: RngBlock::seed_from_u64(config.seed),
            history: vec![start],
            stats: RewireStats::default(),
            probe: ScanProbe::default(),
            weight_mode: OverlayDegreeMode::Discovered,
            buf_u: Vec::new(),
            buf_v: Vec::new(),
            buf_a: Vec::new(),
            buf_b: Vec::new(),
            buf_probe: Vec::new(),
            buf_deg: Vec::new(),
            eligible: Vec::new(),
        })
    }

    /// Rebuilds a sampler that had already taken `steps_taken` steps — the
    /// event-sourced resumable-walker state contract.
    ///
    /// An `MtoSampler` is a pure function of `(config, start, interface
    /// responses)`: its RNG is seeded from the config and every decision
    /// depends only on drawn randomness plus the (immutable) responses. So
    /// a walker needs no serialized RNG or overlay state to be resumable —
    /// replaying `steps_taken` steps reproduces position, history, overlay
    /// and stats exactly. Replay against a warm [`QueryClient`] cache (the
    /// `mto-serve` `HistoryStore` path) issues **zero** new unique queries,
    /// because the original run already paid for every node the prefix
    /// visits.
    pub fn resume(client: C, start: NodeId, config: MtoConfig, steps_taken: usize) -> Result<Self> {
        let mut sampler = Self::new(client, start, config)?;
        for _ in 0..steps_taken {
            sampler.step()?;
        }
        Ok(sampler)
    }

    /// Selects the `k*` estimation mode used by importance weights.
    pub fn set_weight_mode(&mut self, mode: OverlayDegreeMode) {
        self.weight_mode = mode;
    }

    /// Rewiring counters.
    pub fn stats(&self) -> RewireStats {
        self.stats
    }

    /// Criterion scan-effort probe counters.
    pub fn probe(&self) -> ScanProbe {
        self.probe
    }

    /// The overlay delta accumulated so far.
    pub fn overlay(&self) -> &OverlayDelta {
        &self.overlay
    }

    /// Access to the underlying client.
    pub fn client(&self) -> &C {
        &self.client
    }

    /// Mutable access to the underlying client.
    pub fn client_mut(&mut self) -> &mut C {
        &mut self.client
    }

    /// Overlay neighborhood `N*(v)`; queries `v` if unseen.
    pub fn overlay_neighbors(&mut self, v: NodeId) -> Result<Vec<NodeId>> {
        let mut out = Vec::new();
        self.overlay_neighbors_into(v, &mut out)?;
        Ok(out)
    }

    /// Fills `out` with `N*(v)` without allocating (given grown capacity):
    /// the base neighborhood lands in `out` via the client's zero-copy
    /// path, then the overlay delta is applied in place.
    fn overlay_neighbors_into(&mut self, v: NodeId, out: &mut Vec<NodeId>) -> Result<()> {
        self.client.fetch_neighbors_into(v, out)?;
        self.overlay.adjust_neighbors_in_place(v, out);
        Ok(())
    }

    /// Whether the overlay currently contains the edge `(a, b)`; both
    /// endpoints may be unqueried (falls back to the delta plus a base
    /// lookup through `a` if cached, else through `b`, else queries `a`).
    fn overlay_has_edge(&mut self, a: NodeId, b: NodeId) -> Result<bool> {
        // Probe through the endpoint most likely cached, preserving the
        // historical preference order: a if known, else b if known, else a.
        let (through, target) =
            if self.client.known_degree(a).is_some() || self.client.known_degree(b).is_none() {
                (a, b)
            } else {
                (b, a)
            };
        // Bill the probe lookup, then search the cached list — borrowed
        // from the arena when possible, via the scratch buffer otherwise.
        self.client.fetch_degree(through)?;
        let base_has = if let Some(base) = self.client.known_neighbors(through) {
            base.binary_search(&target).is_ok()
        } else {
            let mut probe = std::mem::take(&mut self.buf_probe);
            self.client.cached_neighbors_into(through, &mut probe);
            let has = probe.binary_search(&target).is_ok();
            self.buf_probe = probe;
            has
        };
        Ok(self.overlay.has_edge(base_has, a, b))
    }

    /// Theorem 3/5 check for the edge `(u, v)`. `nu`/`nv` must be the
    /// neighborhoods in the configured [`CriterionView`]; the Theorem 5
    /// degree oracle reads the same view.
    fn edge_is_removable(&self, nu: &[NodeId], nv: &[NodeId]) -> bool {
        if self.config.extension {
            is_removable_with_history(nu, nv, |w| {
                let base = self.client.known_degree(w)?;
                Some(match self.config.criterion_view {
                    CriterionView::Original => base,
                    CriterionView::Overlay => self.overlay.adjust_degree(w, base),
                })
            })
        } else {
            is_removable_from_neighborhoods(nu, nv)
        }
    }

    /// Theorem 3/5 check for edge `(a, b)` fetching neighborhoods in the
    /// configured view (no min-degree guard — that is a walk-safety
    /// concern, not part of the criterion).
    fn edge_removable_in_view(&mut self, a: NodeId, b: NodeId) -> Result<bool> {
        // Bill both endpoints up front (same lookup order as materializing
        // each neighborhood would); afterwards both are cached and the
        // criterion can usually run on borrowed arena slices with zero
        // copies — only an overlay-touched endpoint, or a client that
        // cannot hand out borrows, goes through the scratch buffers.
        self.client.fetch_degree(a)?;
        self.client.fetch_degree(b)?;
        let mut na = std::mem::take(&mut self.buf_a);
        let mut nb = std::mem::take(&mut self.buf_b);
        let view = self.config.criterion_view;
        let (removable, scanned) = {
            let sa = criterion_slice(&self.client, &self.overlay, view, a, &mut na);
            let sb = criterion_slice(&self.client, &self.overlay, view, b, &mut nb);
            let scanned = (sa.len() + sb.len()) as u64;
            (self.edge_is_removable(sa, sb), scanned)
        };
        self.probe.record(scanned);
        self.buf_a = na;
        self.buf_b = nb;
        Ok(removable)
    }

    /// Estimates `k*_v` under the configured [`OverlayDegreeMode`].
    pub fn overlay_degree_estimate(&mut self, v: NodeId, mode: OverlayDegreeMode) -> Result<f64> {
        let mut nv = std::mem::take(&mut self.buf_deg);
        let estimate = self.degree_estimate_with(v, mode, &mut nv);
        self.buf_deg = nv;
        estimate
    }

    fn degree_estimate_with(
        &mut self,
        v: NodeId,
        mode: OverlayDegreeMode,
        nv: &mut Vec<NodeId>,
    ) -> Result<f64> {
        self.overlay_neighbors_into(v, nv)?;
        let discovered = nv.len() as f64;
        match mode {
            OverlayDegreeMode::Discovered => Ok(discovered.max(1.0)),
            OverlayDegreeMode::ExactRemoval => {
                let mut kept = 0usize;
                for &w in nv.iter() {
                    if self.overlay.is_added(v, w) {
                        kept += 1; // replacement edges are never removable
                        continue;
                    }
                    if !self.edge_removable_in_view(v, w)? {
                        kept += 1;
                    }
                }
                Ok((kept as f64).max(1.0))
            }
            OverlayDegreeMode::SampledRemoval(m) => {
                if nv.is_empty() {
                    return Ok(1.0);
                }
                let m = m.max(1).min(nv.len());
                // Sample without replacement via partial Fisher–Yates.
                let mut pool: Vec<NodeId> = nv.clone();
                let mut removable = 0usize;
                for i in 0..m {
                    let j = self.rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                    let w = pool[i];
                    if self.overlay.is_added(v, w) {
                        continue;
                    }
                    if self.edge_removable_in_view(v, w)? {
                        removable += 1;
                    }
                }
                let frac = removable as f64 / m as f64;
                Ok((discovered * (1.0 - frac)).max(1.0))
            }
        }
    }

    /// One candidate-selection pass: picks a neighbor, applies removal /
    /// replacement, and returns the surviving candidate (`None` when every
    /// pick was removed and `N*(u)` emptied — a degenerate graph).
    fn select_candidate(&mut self) -> Result<Option<NodeId>> {
        let mut nbrs_u = std::mem::take(&mut self.buf_u);
        let mut nbrs_v = std::mem::take(&mut self.buf_v);
        let picked = self.select_candidate_with(&mut nbrs_u, &mut nbrs_v);
        self.buf_u = nbrs_u;
        self.buf_v = nbrs_v;
        picked
    }

    fn select_candidate_with(
        &mut self,
        nbrs_u: &mut Vec<NodeId>,
        nbrs_v: &mut Vec<NodeId>,
    ) -> Result<Option<NodeId>> {
        // Bounded by the overlay degree of `u`: each removal strictly
        // shrinks N*(u). A defensive cap guards against logic errors.
        for _ in 0..10_000 {
            self.overlay_neighbors_into(self.current, nbrs_u)?;
            if nbrs_u.is_empty() {
                return Ok(None);
            }
            let v = nbrs_u[self.rng.gen_range(0..nbrs_u.len())];
            self.overlay_neighbors_into(v, nbrs_v)?;

            // Step 1: removal. Replacement-created edges are exempt —
            // Theorem 3 reasons about the original common-neighbor
            // structure, and deleting a Theorem 4 edge would undo its
            // conductance gain. Two safety guards accompany the criterion:
            //  * min-degree: both endpoints stay walkable;
            //  * overlay common neighbor ≥ 1: a u–w–v path survives the
            //    removal, so overlay connectivity is preserved inductively
            //    (the Original criterion view would otherwise be able to
            //    shatter a clique into disjoint cycles).
            let guard_ok = nbrs_u.len() > self.config.min_overlay_degree
                && nbrs_v.len() > self.config.min_overlay_degree
                && sorted_lists_intersect(nbrs_u, nbrs_v);
            if self.config.removal
                && guard_ok
                && !self.overlay.is_added(self.current, v)
                && self.edge_removable_in_view(self.current, v)?
            {
                self.overlay.remove_edge(self.current, v);
                self.stats.removals += 1;
                continue;
            }

            // Step 2: replacement around the degree-3 pivot `v`.
            if self.config.replacement
                && nbrs_v.len() == PIVOT_DEGREE
                && self.rng.gen::<f64>() < self.config.replace_prob
            {
                // Collect eligibility before borrowing `self` mutably in
                // the closure: check overlay adjacency of u to each target.
                self.eligible.clear();
                for i in 0..nbrs_v.len() {
                    let w = nbrs_v[i];
                    if w != self.current && !self.overlay_has_edge(self.current, w)? {
                        self.eligible.push(w);
                    }
                }
                if self.eligible.is_empty() {
                    self.stats.replacement_rejections += 1;
                } else {
                    let pick = self.eligible[self.rng.gen_range(0..self.eligible.len())];
                    let eligible = &self.eligible;
                    let current = self.current;
                    let plan = plan_replacement(
                        current,
                        v,
                        nbrs_v,
                        |w| !eligible.contains(&w) && w != current,
                        |_| pick,
                    )
                    .expect("eligibility already established");
                    self.overlay.remove_edge(plan.u, plan.v);
                    self.overlay.add_edge(plan.u, plan.w);
                    self.stats.replacements += 1;
                    return Ok(Some(plan.w));
                }
            }

            return Ok(Some(v));
        }
        unreachable!("candidate selection exceeded the defensive iteration cap");
    }
}

/// Neighborhood of `v` in the requested criterion view, assuming `v` is
/// already cached (billed by the caller). Returns a borrowed arena slice
/// whenever possible; falls back to filling `buf` when the overlay has
/// touched `v` or the client cannot expose borrows (e.g. lock-guarded).
fn criterion_slice<'a, C: QueryClient>(
    client: &'a C,
    overlay: &OverlayDelta,
    view: CriterionView,
    v: NodeId,
    buf: &'a mut Vec<NodeId>,
) -> &'a [NodeId] {
    if let Some(base) = client.known_neighbors(v) {
        match view {
            CriterionView::Original => return base,
            CriterionView::Overlay if !overlay.touches(v) => return base,
            CriterionView::Overlay => {
                overlay.adjust_neighbors_into(v, base, buf);
                return buf;
            }
        }
    }
    client.cached_neighbors_into(v, buf);
    if matches!(view, CriterionView::Overlay) {
        overlay.adjust_neighbors_in_place(v, buf);
    }
    buf
}

/// Whether two sorted neighbor lists share at least one element
/// (early-exit — the connectivity guard only needs existence).
fn sorted_lists_intersect(a: &[NodeId], b: &[NodeId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

impl<C: QueryClient> Walker for MtoSampler<C> {
    fn name(&self) -> &'static str {
        "MTO"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(&mut self) -> Result<NodeId> {
        if let Some(candidate) = self.select_candidate()? {
            // Lazy coin: move or stay.
            if !self.config.lazy || self.rng.gen_bool(0.5) {
                // Arrival query keeps the invariant that the current node
                // is always cached; degree-only, so nothing is copied.
                self.client.fetch_degree(candidate)?;
                self.current = candidate;
            }
        }
        self.history.push(self.current);
        Ok(self.current)
    }

    fn history(&self) -> &[NodeId] {
        &self.history
    }

    fn query_cost(&self) -> u64 {
        self.client.unique_queries()
    }

    fn importance_weight(&mut self, v: NodeId) -> Result<f64> {
        let mode = self.weight_mode;
        let k_star = self.overlay_degree_estimate(v, mode)?;
        Ok(1.0 / k_star)
    }

    fn prefetch_candidates(&self) -> Vec<NodeId> {
        // Candidate selection draws from N*(u): the overlay-adjusted
        // neighborhood of the current node. Both the removal criterion
        // (which needs N*(v) of the pick) and the arrival query land
        // there, so those nodes are the highest-value speculation.
        match self.client.cached_neighbors(self.current) {
            Some(base) => self.overlay.adjust_neighbors(self.current, &base),
            None => Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::{complete_graph, paper_barbell};
    use mto_osn::{CachedClient, OsnService};

    fn sampler_on(
        g: &mto_graph::Graph,
        start: NodeId,
        config: MtoConfig,
    ) -> MtoSampler<CachedClient<OsnService>> {
        let client = CachedClient::new(OsnService::with_defaults(g));
        MtoSampler::new(client, start, config).unwrap()
    }

    #[test]
    fn walk_moves_only_on_overlay_edges() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::default());
        let mut prev = s.current();
        for _ in 0..300 {
            let next = s.step().unwrap();
            if next != prev {
                let base_has = g.has_edge(prev, next);
                assert!(
                    s.overlay().has_edge(base_has, prev, next),
                    "moved along non-overlay edge {prev} → {next}"
                );
            }
            prev = next;
        }
    }

    #[test]
    fn prefetch_candidates_track_the_overlay_neighborhood() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::default());
        for _ in 0..500 {
            s.step().unwrap();
        }
        let candidates = s.prefetch_candidates();
        assert!(!candidates.is_empty(), "current node is cached, so candidates exist");
        // Candidates are exactly N*(current): the overlay view, not the
        // base neighborhood.
        let base = s.client().cached(s.current()).unwrap().neighbors.clone();
        assert_eq!(candidates, s.overlay().adjust_neighbors(s.current(), &base));
        // Free: enumerating candidates never issues queries.
        let before = s.query_cost();
        let _ = s.prefetch_candidates();
        assert_eq!(s.query_cost(), before);
    }

    #[test]
    fn removals_happen_on_the_barbell() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::removal_only());
        for _ in 0..500 {
            s.step().unwrap();
        }
        let stats = s.stats();
        assert!(stats.removals > 10, "dense cliques must shed edges, got {stats:?}");
        assert_eq!(stats.replacements, 0);
    }

    #[test]
    fn bridge_edge_is_never_removed() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::default());
        for _ in 0..2000 {
            s.step().unwrap();
        }
        assert!(
            !s.overlay().is_removed(NodeId(0), NodeId(11)),
            "the only cross-cutting edge must survive"
        );
    }

    #[test]
    fn overlay_stays_connected_on_barbell() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::default());
        for _ in 0..2000 {
            s.step().unwrap();
        }
        let overlay = s.overlay().materialize(&g);
        let comps = mto_graph::algo::connected_components(&overlay);
        assert_eq!(comps.num_components(), 1, "rewiring must preserve connectivity");
    }

    #[test]
    fn removal_never_fires_without_common_neighbors() {
        // Cycle edges share no common neighbors, so Theorem 3 never fires.
        // (Contrast K8, where common = 6, k = 7 ⇒ removable.)
        let g = mto_graph::generators::cycle_graph(12);
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::removal_only());
        for _ in 0..500 {
            s.step().unwrap();
        }
        assert_eq!(s.stats().removals, 0, "cycle edges share no common neighbors");
    }

    #[test]
    fn replacement_requires_degree_three_pivot() {
        // On K6 every node has degree 5; removal-only=false, replacement
        // alone can never fire.
        let g = complete_graph(6);
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::replacement_only());
        for _ in 0..300 {
            s.step().unwrap();
        }
        assert_eq!(s.stats().replacements, 0);
    }

    #[test]
    fn replacement_fires_once_removals_create_degree3_pivots() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::default());
        for _ in 0..5000 {
            s.step().unwrap();
        }
        // Removals thin the cliques toward degree 3, then replacements kick
        // in with probability 0.5 per eligible encounter.
        let stats = s.stats();
        assert!(stats.removals > 20, "{stats:?}");
        assert!(stats.replacements > 0, "{stats:?}");
    }

    #[test]
    fn overlay_degrees_stay_positive() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::default());
        for _ in 0..3000 {
            s.step().unwrap();
        }
        let overlay = s.overlay().materialize(&g);
        assert!(overlay.min_degree() >= 1, "no node may be stranded");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = paper_barbell();
        let cfg = MtoConfig { seed: 99, ..Default::default() };
        let mut a = sampler_on(&g, NodeId(0), cfg);
        let mut b = sampler_on(&g, NodeId(0), cfg);
        for _ in 0..500 {
            assert_eq!(a.step().unwrap(), b.step().unwrap());
        }
        assert_eq!(a.stats(), b.stats());
    }

    #[test]
    fn resume_replays_to_identical_state() {
        let g = paper_barbell();
        let cfg = MtoConfig { seed: 5, ..Default::default() };
        let mut full = sampler_on(&g, NodeId(0), cfg);
        for _ in 0..400 {
            full.step().unwrap();
        }
        let mut resumed = MtoSampler::resume(
            CachedClient::new(OsnService::with_defaults(&g)),
            NodeId(0),
            cfg,
            250,
        )
        .unwrap();
        for _ in 0..150 {
            resumed.step().unwrap();
        }
        assert_eq!(resumed.history(), full.history());
        assert_eq!(resumed.stats(), full.stats());
        assert_eq!(resumed.current(), full.current());
        assert_eq!(resumed.overlay(), full.overlay());
    }

    #[test]
    fn importance_weight_uses_overlay_degree() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::default());
        for _ in 0..2000 {
            s.step().unwrap();
        }
        // Pick a node with known removals incident.
        let v = NodeId(1);
        let k_star = s.overlay_degree_estimate(v, OverlayDegreeMode::Discovered).unwrap();
        let w = s.importance_weight(v).unwrap();
        assert!((w - 1.0 / k_star).abs() < 1e-12);
        assert!(k_star >= 1.0, "clamped below by 1");
    }

    #[test]
    fn exact_removal_mode_counts_kept_edges() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::removal_only());
        // Before any steps: every intra-clique edge of node 1 is removable,
        // so ExactRemoval sees k* = 1 only when all 10 intra-clique edges
        // are removable... node 1 has 10 edges, all intra-clique, all
        // removable → kept = 0 → clamped to 1.
        let k = s.overlay_degree_estimate(NodeId(1), OverlayDegreeMode::ExactRemoval).unwrap();
        assert_eq!(k, 1.0);
        // Bridge endpoint keeps the bridge: 10 removable + 1 kept.
        let k0 = s.overlay_degree_estimate(NodeId(0), OverlayDegreeMode::ExactRemoval).unwrap();
        assert_eq!(k0, 1.0, "only the bridge survives at node 0");
    }

    #[test]
    fn sampled_removal_mode_is_bounded_and_sane() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::removal_only());
        let k = s.overlay_degree_estimate(NodeId(1), OverlayDegreeMode::SampledRemoval(5)).unwrap();
        assert!((1.0..=10.0).contains(&k), "got {k}");
    }

    #[test]
    fn non_lazy_walk_always_moves_on_connected_graph() {
        let g = complete_graph(6);
        let cfg =
            MtoConfig { lazy: false, removal: false, replacement: false, ..Default::default() };
        let mut s = sampler_on(&g, NodeId(0), cfg);
        let mut prev = s.current();
        for _ in 0..100 {
            let next = s.step().unwrap();
            assert_ne!(next, prev, "non-lazy MTO on K6 must always move");
            prev = next;
        }
    }

    #[test]
    fn query_cost_is_bounded_by_visited_plus_probed() {
        let g = paper_barbell();
        let mut s = sampler_on(&g, NodeId(0), MtoConfig::default());
        for _ in 0..100 {
            s.step().unwrap();
        }
        assert!(s.query_cost() <= 22, "cannot exceed the node count");
    }
}
