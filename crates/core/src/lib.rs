//! # mto-core — the MTO-Sampler and its baselines
//!
//! The primary contribution of *"Faster Random Walks By Rewiring Online
//! Social Networks On-The-Fly"* (Zhou, Zhang, Gong & Das, ICDE 2013),
//! implemented against the restrictive interface of `mto-osn`:
//!
//! * [`mto::MtoSampler`] — Algorithm 1: a lazy random walk that *rewires a
//!   virtual overlay* as it goes, removing provably non-cross-cutting
//!   edges (Theorem 3, extended by Theorem 5) and replacing edges around
//!   degree-3 pivots (Theorem 4), both of which can only raise the graph
//!   conductance and therefore shrink the mixing time;
//! * [`walk`] — the baselines: simple random walk, Metropolis–Hastings,
//!   and Random Jump;
//! * [`rewire`] — the removal/replacement criteria and the overlay delta;
//! * [`estimate`] — self-normalized importance sampling over the paper's
//!   aggregates (average degree, profile attributes, COUNT with known
//!   `|V|`);
//! * [`diagnostics`] — the Geweke convergence indicator, symmetric-KL bias
//!   measure, and auxiliary distances;
//! * [`parallel`] — many walkers, one shared cache.
//!
//! ## Example: rewiring the paper's barbell
//!
//! ```
//! use mto_core::mto::{MtoConfig, MtoSampler};
//! use mto_core::walk::Walker;
//! use mto_graph::generators::paper_barbell;
//! use mto_graph::NodeId;
//! use mto_osn::{CachedClient, OsnService};
//!
//! let service = OsnService::with_defaults(&paper_barbell());
//! let mut sampler =
//!     MtoSampler::new(CachedClient::new(service), NodeId(0), MtoConfig::default()).unwrap();
//! for _ in 0..500 {
//!     sampler.step().unwrap();
//! }
//! assert!(sampler.stats().removals > 0, "the dense cliques shed edges");
//! ```

#![warn(missing_docs)]

pub mod diagnostics;
pub mod estimate;
pub mod mto;
pub mod parallel;
pub mod rewire;
pub mod rng;
pub mod walk;

pub use mto::{CriterionView, MtoConfig, MtoSampler, OverlayDegreeMode, RewireStats};
pub use rewire::{materialize_removal_overlay, materialize_removal_overlay_with, OverlayDelta};
pub use rng::RngBlock;
pub use walk::{
    MetropolisHastingsWalk, MhrwConfig, RandomJumpWalk, RjConfig, SimpleRandomWalk, SrwConfig,
    Walker,
};
