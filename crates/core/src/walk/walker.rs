//! The common sampler interface.
//!
//! Every sampler — the SRW/MHRW/RJ baselines and the MTO-Sampler — is a
//! Markov chain driven through the restrictive interface. [`Walker`]
//! exposes the pieces the experiment harness composes: stepping, the visit
//! history (for convergence diagnostics and sample extraction), the
//! query-cost counter, and the importance weight that debiases samples
//! toward the uniform node distribution.

use mto_graph::NodeId;
use mto_osn::Result;

/// A random-walk sampler over a restrictive social-network interface.
pub trait Walker {
    /// Human-readable algorithm name (`"SRW"`, `"MTO"`, …).
    fn name(&self) -> &'static str;

    /// The node the walk is currently at.
    fn current(&self) -> NodeId;

    /// Advances one time-step of the chain (lazy chains may stay put) and
    /// returns the new position. Queries issued along the way are charged
    /// to the walker's client.
    fn step(&mut self) -> Result<NodeId>;

    /// Every position the walk has occupied, starting with the seed node.
    fn history(&self) -> &[NodeId];

    /// Unique queries consumed so far (the paper's cost measure).
    fn query_cost(&self) -> u64;

    /// Importance weight `w(v) ∝ 1 / τ(v)` of a *visited* node, where `τ`
    /// is this walk's stationary distribution — the reweighting needed for
    /// unbiased estimates of uniform-node aggregates. Constants cancel in
    /// the self-normalized estimator, so any consistent scaling is fine.
    fn importance_weight(&mut self, v: NodeId) -> Result<f64>;

    /// Speculative prefetch targets for the **walk-not-wait** driver
    /// (`mto-net`): the nodes the next step is most likely to query,
    /// derived *only* from free local knowledge — the cached neighborhood
    /// of the current position (overlay-adjusted for rewiring samplers) —
    /// never from new queries. Likelihood order, most likely first; the
    /// list may include already-cached nodes (callers filter against
    /// their own cache/in-flight state). The default is no speculation.
    fn prefetch_candidates(&self) -> Vec<NodeId> {
        Vec::new()
    }

    /// Runs `n` steps, returning the final position.
    fn run(&mut self, n: usize) -> Result<NodeId> {
        let mut last = self.current();
        for _ in 0..n {
            last = self.step()?;
        }
        Ok(last)
    }
}

/// Per-step record the experiment harness accumulates: position, the value
/// of the aggregate function there, and the importance weight.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StepSample {
    /// Node visited at this step.
    pub node: NodeId,
    /// Aggregate-function value `f(node)`.
    pub value: f64,
    /// Importance weight `w(node)`.
    pub weight: f64,
}

/// Drives a walker for `steps` steps, recording `(node, f, w)` triples.
///
/// `f` receives the walker *after* the step so it can consult cached
/// responses for the current node.
pub fn record_walk<W, F>(walker: &mut W, steps: usize, mut f: F) -> Result<Vec<StepSample>>
where
    W: Walker + ?Sized,
    F: FnMut(&mut W, NodeId) -> Result<f64>,
{
    let mut out = Vec::with_capacity(steps);
    for _ in 0..steps {
        let node = walker.step()?;
        let value = f(walker, node)?;
        let weight = walker.importance_weight(node)?;
        out.push(StepSample { node, value, weight });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic cycle "walk" for exercising the trait helpers.
    struct FixedCycle {
        nodes: Vec<NodeId>,
        at: usize,
        history: Vec<NodeId>,
        cost: u64,
    }

    impl FixedCycle {
        fn new(len: u32) -> Self {
            let nodes: Vec<NodeId> = (0..len).map(NodeId).collect();
            FixedCycle { history: vec![nodes[0]], nodes, at: 0, cost: 0 }
        }
    }

    impl Walker for FixedCycle {
        fn name(&self) -> &'static str {
            "fixed-cycle"
        }
        fn current(&self) -> NodeId {
            self.nodes[self.at]
        }
        fn step(&mut self) -> Result<NodeId> {
            self.at = (self.at + 1) % self.nodes.len();
            self.cost += 1;
            let v = self.nodes[self.at];
            self.history.push(v);
            Ok(v)
        }
        fn history(&self) -> &[NodeId] {
            &self.history
        }
        fn query_cost(&self) -> u64 {
            self.cost
        }
        fn importance_weight(&mut self, _v: NodeId) -> Result<f64> {
            Ok(1.0)
        }
    }

    #[test]
    fn run_advances_n_steps() {
        let mut w = FixedCycle::new(5);
        let end = w.run(7).unwrap();
        assert_eq!(end, NodeId(2));
        assert_eq!(w.query_cost(), 7);
        assert_eq!(w.history().len(), 8, "seed plus 7 steps");
    }

    #[test]
    fn record_walk_collects_samples() {
        let mut w = FixedCycle::new(3);
        let samples = record_walk(&mut w, 4, |_, node| Ok(node.0 as f64 * 10.0)).unwrap();
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[0], StepSample { node: NodeId(1), value: 10.0, weight: 1.0 });
        assert_eq!(samples[2].node, NodeId(0));
    }
}
