//! Random Jump baseline: MHRW plus uniform teleports.
//!
//! Following \[11\] (Albatross sampling), the walk performs a Metropolis–
//! Hastings step most of the time but, with a fixed probability (the paper
//! uses 0.5 in its experiments), jumps to a user id drawn uniformly from
//! the whole id space. Both components preserve the uniform distribution,
//! so RJ is unbiased for uniform-node aggregates without reweighting.
//!
//! The paper notes the caveat (footnote 5): the jump needs the global id
//! space, which not every provider exposes — [`RandomJumpWalk::new`] fails
//! when the provider publishes no user count.

use mto_graph::NodeId;
use mto_osn::{OsnError, QueryClient, Result};
use rand::Rng;

use crate::rng::RngBlock;
use crate::walk::walker::Walker;

/// Configuration of a [`RandomJumpWalk`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RjConfig {
    /// RNG seed.
    pub seed: u64,
    /// Probability of teleporting instead of taking an MHRW step (the
    /// paper's experiments use 0.5).
    pub jump_probability: f64,
}

impl Default for RjConfig {
    fn default() -> Self {
        RjConfig { seed: 1, jump_probability: 0.5 }
    }
}

/// Random-jump sampler.
pub struct RandomJumpWalk<C> {
    client: C,
    current: NodeId,
    rng: RngBlock,
    history: Vec<NodeId>,
    jump_probability: f64,
    id_space: usize,
    jumps: u64,
    /// Reusable neighbor scratch — warm-cache stepping allocates nothing.
    buf: Vec<NodeId>,
}

impl<C: QueryClient> RandomJumpWalk<C> {
    /// Starts at `start`.
    ///
    /// Fails with [`OsnError::UnknownUser`] if `start` is invalid, and
    /// panics if the provider does not publish a user count (the paper's
    /// footnote 5 caveat — RJ is simply not applicable there).
    pub fn new(mut client: C, start: NodeId, config: RjConfig) -> Result<Self> {
        assert!(
            (0.0..=1.0).contains(&config.jump_probability),
            "jump probability {} outside [0, 1]",
            config.jump_probability
        );
        let id_space = client
            .num_users_hint()
            .expect("Random Jump requires the provider-published user-id space (paper footnote 5)");
        client.fetch_degree(start)?;
        Ok(RandomJumpWalk {
            client,
            current: start,
            rng: RngBlock::seed_from_u64(config.seed),
            history: vec![start],
            jump_probability: config.jump_probability,
            id_space,
            jumps: 0,
            buf: Vec::new(),
        })
    }

    /// Number of teleports taken.
    pub fn jumps(&self) -> u64 {
        self.jumps
    }

    /// Access to the underlying client.
    pub fn client(&self) -> &C {
        &self.client
    }
}

impl<C: QueryClient> Walker for RandomJumpWalk<C> {
    fn name(&self) -> &'static str {
        "RJ"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(&mut self) -> Result<NodeId> {
        if self.rng.gen::<f64>() < self.jump_probability {
            // Uniform teleport over the advertised id space.
            let target = NodeId(self.rng.gen_range(0..self.id_space as u32));
            match self.client.fetch_degree(target) {
                Ok(_) => {
                    self.jumps += 1;
                    self.current = target;
                }
                // A sparse id space can contain holes; treat as a no-op
                // (the query still cost quota at the service).
                Err(OsnError::UnknownUser(_)) => {}
                Err(e) => return Err(e),
            }
        } else {
            // MHRW step toward the uniform target.
            let mut nbrs = std::mem::take(&mut self.buf);
            let fetched = self.client.fetch_neighbors_into(self.current, &mut nbrs);
            let pick = match &fetched {
                Ok(()) if !nbrs.is_empty() => {
                    let ku = nbrs.len();
                    Some((ku, nbrs[self.rng.gen_range(0..ku)]))
                }
                _ => None,
            };
            self.buf = nbrs;
            fetched?;
            if let Some((ku, proposal)) = pick {
                let kv = self.client.fetch_degree(proposal)?;
                if self.rng.gen::<f64>() < ku as f64 / kv.max(1) as f64 {
                    self.current = proposal;
                }
            }
        }
        self.history.push(self.current);
        Ok(self.current)
    }

    fn history(&self) -> &[NodeId] {
        &self.history
    }

    fn query_cost(&self) -> u64 {
        self.client.unique_queries()
    }

    fn importance_weight(&mut self, _v: NodeId) -> Result<f64> {
        // Uniform stationary distribution.
        Ok(1.0)
    }

    fn prefetch_candidates(&self) -> Vec<NodeId> {
        // Teleport targets are unpredictable; the walk branch proposes a
        // uniform neighbor of the current node, so speculate on those.
        self.client.cached_neighbors(self.current).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::{paper_barbell, star_graph};
    use mto_osn::{CachedClient, OsnService, OsnServiceConfig};

    fn walk_on(
        g: &mto_graph::Graph,
        start: NodeId,
        seed: u64,
        jump: f64,
    ) -> RandomJumpWalk<CachedClient<OsnService>> {
        let client = CachedClient::new(OsnService::with_defaults(g));
        RandomJumpWalk::new(client, start, RjConfig { seed, jump_probability: jump }).unwrap()
    }

    #[test]
    fn jumps_happen_at_the_configured_rate() {
        let g = paper_barbell();
        let mut w = walk_on(&g, NodeId(0), 3, 0.5);
        let n = 4000;
        for _ in 0..n {
            w.step().unwrap();
        }
        let frac = w.jumps() as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "jump fraction {frac}");
    }

    #[test]
    fn zero_jump_probability_reduces_to_mhrw_moves() {
        let g = paper_barbell();
        let mut w = walk_on(&g, NodeId(0), 3, 0.0);
        let mut prev = w.current();
        for _ in 0..200 {
            let next = w.step().unwrap();
            assert!(next == prev || g.has_edge(prev, next), "illegal move");
            prev = next;
        }
        assert_eq!(w.jumps(), 0);
    }

    #[test]
    fn jumps_escape_the_barbell_bottleneck() {
        // Pure MHRW started in clique A rarely reaches clique B quickly;
        // RJ with p=0.5 crosses almost immediately.
        let g = paper_barbell();
        let mut w = walk_on(&g, NodeId(1), 9, 0.5);
        let mut reached_b = false;
        for _ in 0..50 {
            if w.step().unwrap().index() >= 11 {
                reached_b = true;
                break;
            }
        }
        assert!(reached_b, "50 RJ steps should cross with ~universal probability");
    }

    #[test]
    fn stationary_distribution_is_uniform_on_star() {
        let g = star_graph(11);
        let mut w = walk_on(&g, NodeId(0), 5, 0.3);
        let mut hub_visits = 0u64;
        let n = 100_000;
        for _ in 0..n {
            if w.step().unwrap() == NodeId(0) {
                hub_visits += 1;
            }
        }
        let frac = hub_visits as f64 / n as f64;
        assert!((frac - 1.0 / 11.0).abs() < 0.02, "hub fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "user-id space")]
    fn requires_published_user_count() {
        let g = paper_barbell();
        let svc = OsnService::new(
            &g,
            OsnServiceConfig { publishes_user_count: false, ..Default::default() },
        );
        let _ = RandomJumpWalk::new(CachedClient::new(svc), NodeId(0), RjConfig::default());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_bad_jump_probability() {
        let g = paper_barbell();
        let _ = walk_on(&g, NodeId(0), 1, 1.5);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = paper_barbell();
        let mut a = walk_on(&g, NodeId(0), 11, 0.4);
        let mut b = walk_on(&g, NodeId(0), 11, 0.4);
        for _ in 0..100 {
            assert_eq!(a.step().unwrap(), b.step().unwrap());
        }
    }
}
