//! Metropolis–Hastings random walk baseline.
//!
//! MHRW targets the *uniform* stationary distribution: from `u`, propose
//! `v ~ Uniform(N(u))` and accept with probability `min(1, k_u / k_v)`.
//! Accepted or not, the proposal's degree must be learned, so each step can
//! cost a query even when the walk stays put — exactly why the paper (and
//! \[10\], \[14\]) finds MHRW less query-efficient than reweighted SRW.

use mto_graph::NodeId;
use mto_osn::{QueryClient, Result};
use rand::Rng;

use crate::rng::RngBlock;
use crate::walk::walker::Walker;

/// Configuration of a [`MetropolisHastingsWalk`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MhrwConfig {
    /// RNG seed.
    pub seed: u64,
}

impl Default for MhrwConfig {
    fn default() -> Self {
        MhrwConfig { seed: 1 }
    }
}

/// Metropolis–Hastings random walk with uniform target distribution.
pub struct MetropolisHastingsWalk<C> {
    client: C,
    current: NodeId,
    rng: RngBlock,
    history: Vec<NodeId>,
    accepted: u64,
    proposed: u64,
    /// Reusable neighbor scratch — warm-cache stepping allocates nothing.
    buf: Vec<NodeId>,
}

impl<C: QueryClient> MetropolisHastingsWalk<C> {
    /// Starts at `start` (queried immediately).
    pub fn new(mut client: C, start: NodeId, config: MhrwConfig) -> Result<Self> {
        client.fetch_degree(start)?;
        Ok(MetropolisHastingsWalk {
            client,
            current: start,
            rng: RngBlock::seed_from_u64(config.seed),
            history: vec![start],
            accepted: 0,
            proposed: 0,
            buf: Vec::new(),
        })
    }

    /// Proposals drawn so far (each cost a degree query).
    pub fn proposals(&self) -> u64 {
        self.proposed
    }

    /// Proposals rejected so far — the MH queries "wasted" on staying put.
    pub fn rejections(&self) -> u64 {
        self.proposed - self.accepted
    }

    /// Fraction of proposals accepted so far.
    pub fn acceptance_rate(&self) -> f64 {
        if self.proposed == 0 {
            return 0.0;
        }
        self.accepted as f64 / self.proposed as f64
    }

    /// Access to the underlying client.
    pub fn client(&self) -> &C {
        &self.client
    }
}

impl<C: QueryClient> Walker for MetropolisHastingsWalk<C> {
    fn name(&self) -> &'static str {
        "MHRW"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(&mut self) -> Result<NodeId> {
        let mut nbrs = std::mem::take(&mut self.buf);
        let fetched = self.client.fetch_neighbors_into(self.current, &mut nbrs);
        let pick = match &fetched {
            Ok(()) if !nbrs.is_empty() => {
                let ku = nbrs.len();
                Some((ku, nbrs[self.rng.gen_range(0..ku)]))
            }
            _ => None,
        };
        self.buf = nbrs;
        fetched?;
        if let Some((ku, proposal)) = pick {
            // Learning k_v requires querying the proposal — this is the
            // query MHRW "wastes" on rejections.
            let kv = self.client.fetch_degree(proposal)?;
            self.proposed += 1;
            let accept = ku as f64 / kv.max(1) as f64;
            if self.rng.gen::<f64>() < accept {
                self.accepted += 1;
                self.current = proposal;
            }
        }
        self.history.push(self.current);
        Ok(self.current)
    }

    fn history(&self) -> &[NodeId] {
        &self.history
    }

    fn query_cost(&self) -> u64 {
        self.client.unique_queries()
    }

    fn importance_weight(&mut self, _v: NodeId) -> Result<f64> {
        // Uniform stationary distribution: already unbiased.
        Ok(1.0)
    }

    fn prefetch_candidates(&self) -> Vec<NodeId> {
        // The next step must learn k_v of a uniform neighbor proposal.
        self.client.cached_neighbors(self.current).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::{paper_barbell, star_graph};
    use mto_osn::{CachedClient, OsnService};

    fn walk_on(
        g: &mto_graph::Graph,
        start: NodeId,
        seed: u64,
    ) -> MetropolisHastingsWalk<CachedClient<OsnService>> {
        let client = CachedClient::new(OsnService::with_defaults(g));
        MetropolisHastingsWalk::new(client, start, MhrwConfig { seed }).unwrap()
    }

    #[test]
    fn moves_follow_edges_or_stay() {
        let g = paper_barbell();
        let mut w = walk_on(&g, NodeId(0), 2);
        let mut prev = w.current();
        for _ in 0..300 {
            let next = w.step().unwrap();
            assert!(next == prev || g.has_edge(prev, next));
            prev = next;
        }
    }

    #[test]
    fn stationary_distribution_is_uniform() {
        // On the star graph SRW spends half its time at the hub; MHRW must
        // spend ~1/n of its time there.
        let g = star_graph(11);
        let mut w = walk_on(&g, NodeId(0), 5);
        let mut hub_visits = 0u64;
        let n = 200_000;
        for _ in 0..n {
            if w.step().unwrap() == NodeId(0) {
                hub_visits += 1;
            }
        }
        let frac = hub_visits as f64 / n as f64;
        assert!(
            (frac - 1.0 / 11.0).abs() < 0.02,
            "hub fraction {frac}, uniform would be {:.4}",
            1.0 / 11.0
        );
    }

    #[test]
    fn acceptance_from_hub_to_leaf_is_rare() {
        // From the star hub (degree n−1) to a leaf (degree 1) the move is
        // always accepted? No — reversed: hub→leaf acceptance is
        // min(1, k_hub/k_leaf) = 1; leaf→hub is min(1, 1/k_hub) — rare.
        // Net effect: the chain leaves the hub instantly but re-enters
        // seldom, yielding near-uniform occupancy. Just sanity-check that
        // acceptance bookkeeping runs.
        let g = star_graph(8);
        let mut w = walk_on(&g, NodeId(0), 9);
        for _ in 0..500 {
            w.step().unwrap();
        }
        let rate = w.acceptance_rate();
        assert!(rate > 0.0 && rate < 1.0, "rate {rate}");
    }

    #[test]
    fn rejected_proposals_still_cost_queries() {
        let g = star_graph(30);
        // Start at a leaf: nearly every step proposes the hub and accepts
        // with prob 1/29 — yet the hub gets queried on the very first
        // proposal.
        let mut w = walk_on(&g, NodeId(3), 4);
        w.step().unwrap();
        assert!(w.query_cost() >= 2, "proposal query must be charged");
    }

    #[test]
    fn importance_weight_is_flat() {
        let g = paper_barbell();
        let mut w = walk_on(&g, NodeId(0), 1);
        assert_eq!(w.importance_weight(NodeId(0)).unwrap(), 1.0);
        assert_eq!(w.importance_weight(NodeId(5)).unwrap(), 1.0);
    }

    #[test]
    fn deterministic_under_seed() {
        let g = paper_barbell();
        let mut a = walk_on(&g, NodeId(0), 77);
        let mut b = walk_on(&g, NodeId(0), 77);
        for _ in 0..100 {
            assert_eq!(a.step().unwrap(), b.step().unwrap());
        }
    }
}
