//! Random-walk samplers: the common [`Walker`] interface, the SRW / MHRW /
//! RJ baselines of Section I-B, and helpers for recording walks.

pub mod mhrw;
pub mod rj;
pub mod srw;
pub mod walker;

pub use mhrw::{MetropolisHastingsWalk, MhrwConfig};
pub use rj::{RandomJumpWalk, RjConfig};
pub use srw::{SimpleRandomWalk, SrwConfig};
pub use walker::{record_walk, StepSample, Walker};
