//! The simple random walk baseline (Definition 1).
//!
//! From the current node `v`, pick a neighbor uniformly at random and move
//! there; each step costs exactly one query (the arrival's neighborhood
//! fetch, cached thereafter). The stationary distribution is
//! `π(v) = k_v / 2|E|`, so estimates of uniform-node aggregates are
//! reweighted by `1/k_v` (importance sampling).

use mto_graph::NodeId;
use mto_osn::{QueryClient, Result};
use rand::Rng;

use crate::rng::RngBlock;
use crate::walk::walker::Walker;

/// Configuration of a [`SimpleRandomWalk`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SrwConfig {
    /// RNG seed (every run is deterministic given the seed).
    pub seed: u64,
    /// Lazy variant: stay put with probability ½ each step. The paper's
    /// baseline SRW is non-lazy.
    pub lazy: bool,
}

impl Default for SrwConfig {
    fn default() -> Self {
        SrwConfig { seed: 1, lazy: false }
    }
}

/// Simple random walk over a [`QueryClient`].
pub struct SimpleRandomWalk<C> {
    client: C,
    current: NodeId,
    rng: RngBlock,
    history: Vec<NodeId>,
    lazy: bool,
    /// Reusable neighbor scratch — warm-cache stepping allocates nothing.
    buf: Vec<NodeId>,
}

impl<C: QueryClient> SimpleRandomWalk<C> {
    /// Starts a walk at `start` (queried immediately — the walk needs its
    /// neighborhood to move).
    pub fn new(mut client: C, start: NodeId, config: SrwConfig) -> Result<Self> {
        client.fetch_degree(start)?;
        Ok(SimpleRandomWalk {
            client,
            current: start,
            rng: RngBlock::seed_from_u64(config.seed),
            history: vec![start],
            lazy: config.lazy,
            buf: Vec::new(),
        })
    }

    /// Access to the underlying client (for estimators needing cached
    /// profiles).
    pub fn client(&self) -> &C {
        &self.client
    }

    /// Mutable access to the underlying client.
    pub fn client_mut(&mut self) -> &mut C {
        &mut self.client
    }
}

impl<C: QueryClient> Walker for SimpleRandomWalk<C> {
    fn name(&self) -> &'static str {
        "SRW"
    }

    fn current(&self) -> NodeId {
        self.current
    }

    fn step(&mut self) -> Result<NodeId> {
        if !self.lazy || self.rng.gen_bool(0.5) {
            let mut nbrs = std::mem::take(&mut self.buf);
            let fetched = self.client.fetch_neighbors_into(self.current, &mut nbrs);
            let next = match &fetched {
                Ok(()) if !nbrs.is_empty() => Some(nbrs[self.rng.gen_range(0..nbrs.len())]),
                _ => None,
            };
            self.buf = nbrs;
            fetched?;
            if let Some(next) = next {
                // Arrival query: ensures the node's degree is known for
                // weighting and the next transition.
                self.client.fetch_degree(next)?;
                self.current = next;
            }
        }
        self.history.push(self.current);
        Ok(self.current)
    }

    fn history(&self) -> &[NodeId] {
        &self.history
    }

    fn query_cost(&self) -> u64 {
        self.client.unique_queries()
    }

    fn importance_weight(&mut self, v: NodeId) -> Result<f64> {
        let k = self.client.fetch_degree(v)?;
        // π(v) ∝ k_v ⇒ w(v) ∝ 1/k_v. Degree 0 cannot be visited.
        Ok(1.0 / k.max(1) as f64)
    }

    fn prefetch_candidates(&self) -> Vec<NodeId> {
        // The next step queries a uniform neighbor of the current node.
        self.client.cached_neighbors(self.current).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::{paper_barbell, path_graph};
    use mto_osn::{CachedClient, OsnService};

    fn walk_on(
        g: &mto_graph::Graph,
        start: NodeId,
        seed: u64,
    ) -> SimpleRandomWalk<CachedClient<OsnService>> {
        let client = CachedClient::new(OsnService::with_defaults(g));
        SimpleRandomWalk::new(client, start, SrwConfig { seed, lazy: false }).unwrap()
    }

    #[test]
    fn walk_moves_along_edges_only() {
        let g = paper_barbell();
        let mut w = walk_on(&g, NodeId(0), 7);
        let mut prev = w.current();
        for _ in 0..200 {
            let next = w.step().unwrap();
            assert!(g.has_edge(prev, next), "teleported {prev} → {next}");
            prev = next;
        }
    }

    #[test]
    fn history_grows_per_step() {
        let g = path_graph(5);
        let mut w = walk_on(&g, NodeId(2), 3);
        for _ in 0..10 {
            w.step().unwrap();
        }
        assert_eq!(w.history().len(), 11);
        assert_eq!(w.history()[0], NodeId(2));
    }

    #[test]
    fn query_cost_counts_distinct_nodes_only() {
        let g = path_graph(3); // walk shuttles among 3 nodes forever
        let mut w = walk_on(&g, NodeId(1), 5);
        for _ in 0..50 {
            w.step().unwrap();
        }
        assert_eq!(w.query_cost(), 3, "only 3 unique queries possible");
    }

    #[test]
    fn deterministic_under_seed() {
        let g = paper_barbell();
        let mut a = walk_on(&g, NodeId(0), 42);
        let mut b = walk_on(&g, NodeId(0), 42);
        for _ in 0..100 {
            assert_eq!(a.step().unwrap(), b.step().unwrap());
        }
    }

    #[test]
    fn stationary_distribution_is_degree_proportional() {
        // On the barbell, bridge endpoints (degree 11) must be visited more
        // often than plain clique nodes (degree 10), proportionally.
        let g = paper_barbell();
        let mut w = walk_on(&g, NodeId(3), 11);
        let mut visits = [0u64; 22];
        for _ in 0..400_000 {
            let v = w.step().unwrap();
            visits[v.index()] += 1;
        }
        let total: u64 = visits.iter().sum();
        let vol = 222.0;
        for v in g.nodes() {
            let expected = g.degree(v) as f64 / vol;
            let got = visits[v.index()] as f64 / total as f64;
            assert!(
                (got - expected).abs() < 0.2 * expected,
                "node {v}: visited {got:.4}, stationary {expected:.4}"
            );
        }
    }

    #[test]
    fn importance_weight_is_reciprocal_degree() {
        let g = paper_barbell();
        let mut w = walk_on(&g, NodeId(0), 1);
        assert!((w.importance_weight(NodeId(0)).unwrap() - 1.0 / 11.0).abs() < 1e-12);
        assert!((w.importance_weight(NodeId(1)).unwrap() - 1.0 / 10.0).abs() < 1e-12);
    }

    #[test]
    fn lazy_walk_stays_roughly_half_the_time() {
        let g = paper_barbell();
        let client = CachedClient::new(OsnService::with_defaults(&g));
        let mut w =
            SimpleRandomWalk::new(client, NodeId(0), SrwConfig { seed: 3, lazy: true }).unwrap();
        let mut stays = 0;
        let mut prev = w.current();
        let n = 4000;
        for _ in 0..n {
            let next = w.step().unwrap();
            if next == prev {
                stays += 1;
            }
            prev = next;
        }
        let frac = stays as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.05, "stay fraction {frac}");
    }

    #[test]
    fn isolated_start_stays_forever() {
        let mut g = path_graph(2);
        let isolated = g.add_node();
        let mut w = walk_on(&g, isolated, 1);
        for _ in 0..5 {
            assert_eq!(w.step().unwrap(), isolated);
        }
    }
}
