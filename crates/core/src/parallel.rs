//! Parallel MTO walkers over a shared budget.
//!
//! The paper notes (Section VI) that MTO applies directly to the
//! many-parallel-walks deployment of \[4\]: each walker rewires and walks
//! independently, while sharing the local cache — so a neighborhood paid
//! for by one walker is free for all. This module runs `k` samplers on
//! [`std::thread::scope`] scoped threads against one [`SharedClient`];
//! scoped spawning lets the walkers borrow the shared client without any
//! `'static` bound or extra dependency.
//!
//! Design note: each walker keeps its *own* overlay. Sharing the overlay
//! would also be sound (modifications are conductance-monotone regardless
//! of who discovered them) but makes runs nondeterministic under
//! scheduling; per-walker overlays keep every walker reproducible given
//! its seed, and the caches — the expensive part — are still shared.

use mto_graph::NodeId;
use mto_osn::{CachedClient, QueryClient, Result, SharedClient, SocialNetworkInterface};

use crate::mto::{MtoConfig, MtoSampler, RewireStats};
use crate::walk::walker::Walker;

/// Outcome of one parallel walker.
#[derive(Clone, Debug)]
pub struct ParallelWalkResult {
    /// Index of the walker.
    pub walker_id: usize,
    /// Start node.
    pub start: NodeId,
    /// Visited positions (seed node first).
    pub history: Vec<NodeId>,
    /// Rewiring counters.
    pub stats: RewireStats,
}

/// Runs `starts.len()` MTO samplers for `steps` steps each, sharing one
/// cache/budget. Walker `i` uses `config.seed + i` so results are
/// reproducible yet decorrelated.
///
/// Returns per-walker results ordered by walker index, plus the total
/// unique-query cost.
pub fn run_parallel_mto<I>(
    interface: I,
    starts: &[NodeId],
    steps: usize,
    config: MtoConfig,
) -> Result<(Vec<ParallelWalkResult>, u64)>
where
    I: SocialNetworkInterface + Send + Sync,
{
    let shared = SharedClient::new(CachedClient::new(interface));
    let mut results: Vec<Option<ParallelWalkResult>> = Vec::new();
    results.resize_with(starts.len(), || None);

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (i, &start) in starts.iter().enumerate() {
            let client = shared.clone();
            let cfg = MtoConfig { seed: config.seed.wrapping_add(i as u64), ..config };
            handles.push((
                i,
                scope.spawn(move || -> Result<ParallelWalkResult> {
                    let mut sampler = MtoSampler::new(client, start, cfg)?;
                    for _ in 0..steps {
                        sampler.step()?;
                    }
                    Ok(ParallelWalkResult {
                        walker_id: i,
                        start,
                        history: sampler.history().to_vec(),
                        stats: sampler.stats(),
                    })
                }),
            ));
        }
        for (i, h) in handles {
            let res = h.join().expect("walker thread panicked");
            results[i] = Some(res?);
        }
        Ok::<(), mto_osn::OsnError>(())
    })?;

    let cost = shared.unique_queries();
    Ok((results.into_iter().map(|r| r.expect("all walkers joined")).collect(), cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mto_graph::generators::paper_barbell;
    use mto_osn::OsnService;

    #[test]
    fn parallel_walkers_share_the_cache() {
        let g = paper_barbell();
        let service = OsnService::with_defaults(&g);
        let starts: Vec<NodeId> = (0..4u32).map(NodeId).collect();
        let (results, cost) =
            run_parallel_mto(service, &starts, 300, MtoConfig::default()).unwrap();
        assert_eq!(results.len(), 4);
        for r in &results {
            assert_eq!(r.history.len(), 301);
        }
        // 4 walkers × 300 steps would cost far more than 22 without cache
        // sharing; with it, the budget is capped by the node count.
        assert!(cost <= 22, "shared cache must bound cost at |V|, got {cost}");
    }

    #[test]
    fn walkers_have_decorrelated_seeds() {
        let g = paper_barbell();
        let service = OsnService::with_defaults(&g);
        let starts = vec![NodeId(0), NodeId(0)];
        let (results, _) = run_parallel_mto(service, &starts, 200, MtoConfig::default()).unwrap();
        assert_ne!(
            results[0].history, results[1].history,
            "same start, different seeds → different paths"
        );
    }

    #[test]
    fn each_walker_performs_rewiring() {
        let g = paper_barbell();
        let service = OsnService::with_defaults(&g);
        let starts: Vec<NodeId> = vec![NodeId(0), NodeId(11)];
        let (results, _) = run_parallel_mto(service, &starts, 1000, MtoConfig::default()).unwrap();
        for r in &results {
            assert!(r.stats.removals > 0, "walker {} removed nothing", r.walker_id);
        }
    }

    #[test]
    fn parallel_run_covers_both_cliques_faster() {
        // Two walkers seeded in opposite cliques cover the graph even when
        // single-walker runs of the same length might not cross the bridge.
        let g = paper_barbell();
        let service = OsnService::with_defaults(&g);
        let starts = vec![NodeId(1), NodeId(12)];
        let (results, _) = run_parallel_mto(service, &starts, 1500, MtoConfig::default()).unwrap();
        let mut seen = std::collections::HashSet::new();
        for r in &results {
            seen.extend(r.history.iter().copied());
        }
        let clique_a = seen.iter().filter(|v| v.index() < 11).count();
        let clique_b = seen.iter().filter(|v| v.index() >= 11).count();
        assert!(clique_a > 5 && clique_b > 5, "A: {clique_a}, B: {clique_b}");
    }

    #[test]
    fn parallel_runs_are_deterministic_across_interleavings() {
        // Regression guard for the per-walker-overlay design note above:
        // thread scheduling must never leak into results. Two runs with the
        // same seeds produce byte-identical histories and stats even though
        // the cache-fill interleaving differs between them.
        let g = paper_barbell();
        let starts: Vec<NodeId> = (0..8u32).map(|i| NodeId(i % 22)).collect();
        let config = MtoConfig { seed: 42, ..Default::default() };
        let run = || {
            let service = OsnService::with_defaults(&g);
            run_parallel_mto(service, &starts, 500, config).unwrap()
        };
        let (a, cost_a) = run();
        let (b, cost_b) = run();
        assert_eq!(cost_a, cost_b);
        for (ra, rb) in a.iter().zip(&b) {
            assert_eq!(ra.walker_id, rb.walker_id);
            assert_eq!(ra.history, rb.history, "walker {} diverged", ra.walker_id);
            assert_eq!(ra.stats, rb.stats, "walker {} stats diverged", ra.walker_id);
        }
    }

    #[test]
    fn empty_start_list_is_a_noop() {
        let g = paper_barbell();
        let service = OsnService::with_defaults(&g);
        let (results, cost) = run_parallel_mto(service, &[], 100, MtoConfig::default()).unwrap();
        assert!(results.is_empty());
        assert_eq!(cost, 0);
    }
}
